"""Tests for the persistent solve cache (:mod:`repro.cache`)."""

import json

import pytest

from repro.api import Query, StaticAnalyzer
from repro.cache import (
    CACHE_FORMAT_VERSION,
    DiskSolveCache,
    SolveRecord,
    formula_digest,
    lean_alphabet,
    solve_cache_key,
)
from repro.logic import syntax as sx
from repro.logic.parser import parse_formula


QUERY = Query.containment("child::a[b]", "child::a")


# ---------------------------------------------------------------------------
# Content addressing
# ---------------------------------------------------------------------------


def test_digest_is_alpha_invariant():
    # Two structurally identical fixpoints over *different* bound names (as
    # produced by the globally-fresh variable generator in two processes).
    first = sx.mu1(lambda x: sx.prop("a") | sx.dia(1, x))
    second = sx.mu1(lambda x: sx.prop("a") | sx.dia(1, x))
    assert first is not second  # different bound names, so not interned
    assert formula_digest(first) == formula_digest(second)
    assert solve_cache_key(first) == solve_cache_key(second)


def test_digest_distinguishes_formulas():
    digests = {
        formula_digest(parse_formula(text))
        for text in ("a & <1>b", "a | <1>b", "a & <2>b", "a & <1>c", "~a & <1>b")
    }
    assert len(digests) == 5


def test_solve_cache_key_covers_options_and_alphabet():
    formula = parse_formula("a & <1>b")
    assert solve_cache_key(formula, track_marks=True) != solve_cache_key(
        formula, track_marks=False
    )
    alphabet = lean_alphabet(parse_formula("a & @href"))
    assert alphabet == {"labels": ["a"], "attributes": ["href"]}


# ---------------------------------------------------------------------------
# The store itself
# ---------------------------------------------------------------------------


def test_put_get_round_trip(tmp_path):
    cache = DiskSolveCache(tmp_path)
    formula = parse_formula("a & <1>b")
    record = SolveRecord(
        satisfiable=True,
        counterexample="<a><b/></a>",
        statistics={"lean_size": 9},
        solve_seconds=0.25,
    )
    path = cache.put(formula, record)
    assert path.is_file()
    assert len(cache) == 1
    assert cache.get(formula) == record
    entry = next(iter(cache.entries()))
    assert entry["version"] == CACHE_FORMAT_VERSION
    assert entry["alphabet"]["labels"] == ["a", "b"]


def test_corrupt_entries_are_misses(tmp_path):
    cache = DiskSolveCache(tmp_path)
    formula = parse_formula("a & <1>b")
    record = SolveRecord(True, None, {}, 0.0)
    path = cache.put(formula, record)
    path.write_text("{ truncated", encoding="utf-8")
    assert cache.get(formula) is None
    # A different key under the same entry name is also rejected.
    payload = {
        "version": CACHE_FORMAT_VERSION,
        "key": "0" * 64,
        **record.as_dict(),
    }
    path.write_text(json.dumps(payload), encoding="utf-8")
    assert cache.get(formula) is None


def test_clear_removes_entries(tmp_path):
    cache = DiskSolveCache(tmp_path)
    cache.put(parse_formula("a"), SolveRecord(True, None, {}, 0.0))
    cache.put(parse_formula("b"), SolveRecord(True, None, {}, 0.0))
    assert cache.clear() == 2
    assert len(cache) == 0


# ---------------------------------------------------------------------------
# Through the analyzer: two instances, one cache directory
# ---------------------------------------------------------------------------


def test_second_analyzer_answers_from_disk(tmp_path):
    first = StaticAnalyzer(cache_dir=tmp_path)
    original = first.solve(QUERY)
    assert first.solver_runs == 1
    assert first.disk_cache_writes == 1

    # A second instance re-translates the query (fresh recursion variables),
    # yet must find the verdict on disk without running the solver.
    second = StaticAnalyzer(cache_dir=tmp_path)
    replayed = second.solve(QUERY)
    assert second.solver_runs == 0
    assert second.disk_cache_hits == 1
    assert replayed.from_cache and replayed.cache == "disk"
    assert replayed.holds == original.holds
    assert replayed.counterexample == original.counterexample
    assert replayed.statistics["lean_size"] == original.statistics["lean_size"]

    # Within one instance the in-memory layer answers before the disk.
    again = second.solve(QUERY)
    assert again.cache == "memory"
    assert second.disk_cache_hits == 1


def test_counterexample_survives_the_disk_round_trip(tmp_path):
    failing = Query.containment("child::a", "child::a[b]")
    first = StaticAnalyzer(cache_dir=tmp_path).solve(failing)
    second = StaticAnalyzer(cache_dir=tmp_path).solve(failing)
    assert not first.holds and not second.holds
    assert first.counterexample is not None
    assert second.counterexample == first.counterexample


def test_clearing_the_disk_cache_invalidates(tmp_path):
    first = StaticAnalyzer(cache_dir=tmp_path)
    first.solve(QUERY)
    assert first.disk_cache.clear() == 1
    second = StaticAnalyzer(cache_dir=tmp_path)
    second.solve(QUERY)
    assert second.solver_runs == 1  # miss: the entry was invalidated


def test_disk_cache_disabled_by_default(tmp_path):
    analyzer = StaticAnalyzer()
    assert analyzer.disk_cache is None
    analyzer.solve(QUERY)
    assert analyzer.cache_statistics()["disk_cache_writes"] == 0


def test_batch_report_counts_disk_hits(tmp_path):
    StaticAnalyzer(cache_dir=tmp_path).solve(QUERY)
    report = StaticAnalyzer(cache_dir=tmp_path).solve_many([QUERY, QUERY])
    assert report.solver_runs == 0
    assert report.disk_cache_hits == 1
    assert report.cache_hits == 1  # the repeat, from memory
    payload = json.loads(report.to_json())
    assert payload["disk_cache_hits"] == 1


def test_unsound_solver_options_do_not_share_entries(tmp_path):
    sound = StaticAnalyzer(cache_dir=tmp_path)
    sound.solve(QUERY)
    ablated = StaticAnalyzer(cache_dir=tmp_path, track_marks=False)
    ablated.solve(QUERY)
    assert ablated.disk_cache_hits == 0  # keys differ by track_marks
    assert ablated.solver_runs == 1


def test_concurrent_writers_publish_atomically(tmp_path):
    # Simulate a racing writer: the scratch file of one writer never shadows
    # the published entry of another, and duplicate puts are idempotent.
    cache_a = DiskSolveCache(tmp_path)
    cache_b = DiskSolveCache(tmp_path)
    formula = parse_formula("a & <1>b")
    record = SolveRecord(True, "<a/>", {"lean_size": 9}, 0.1)
    cache_a.put(formula, record)
    cache_b.put(formula, record)
    assert len(cache_a) == 1
    assert cache_a.get(formula) == record
    assert not list(cache_a.root.glob("**/*.tmp"))  # no scratch files leak


@pytest.mark.parametrize("expression", ["child::a[b]", ".//a[@href]"])
def test_attribute_alphabet_is_part_of_the_key(tmp_path, expression):
    analyzer = StaticAnalyzer(cache_dir=tmp_path)
    analyzer.solve(Query.satisfiability(expression))
    for entry in analyzer.disk_cache.entries():
        assert ("@" in expression) == bool(entry["alphabet"]["attributes"])
