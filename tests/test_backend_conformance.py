"""Cross-backend conformance suite for the BDD engines.

Every engine registered in :data:`repro.bdd.backends.BACKENDS` must be
observationally equivalent: same verdicts, same model counts, same algebraic
laws, same statistics counters for the same operation sequence.  The suite
parametrises each property test over the registry (registering a backend
enrols it automatically) and finishes with a seeded differential check that
builds a few hundred random formula DAGs on *all* backends at once and
demands identical satisfiability and model counts.

Node ids are *not* comparable across engines (the arena's terminals differ
from the dict engine's); within one engine they are canonical — equal
functions must be the same id — and that is tested too.
"""

import itertools
import random

import pytest

from repro.bdd.backends import BACKENDS, available_backends, create_manager
from repro.bdd.protocol import BDDBackend

NAMES = ["v0", "v1", "v2", "v3", "v4", "v5", "v6", "v7"]


@pytest.fixture(params=sorted(BACKENDS))
def manager(request):
    return create_manager(NAMES, backend=request.param)


def brute_force(function, names=NAMES):
    table = set()
    for bits in itertools.product((False, True), repeat=len(names)):
        if function.evaluate(dict(zip(names, bits))):
            table.add(bits)
    return table


# ---------------------------------------------------------------------------
# Protocol and registry
# ---------------------------------------------------------------------------


def test_registry_instances_satisfy_protocol():
    for name in available_backends():
        instance = create_manager(NAMES, backend=name)
        assert isinstance(instance, BDDBackend)
        assert instance.backend_name == name
        assert instance.TRUE != instance.FALSE


def test_resolve_precedence(monkeypatch):
    from repro.bdd.backends import BACKEND_ENV, resolve_backend

    monkeypatch.delenv(BACKEND_ENV, raising=False)
    assert resolve_backend() == "dict"
    monkeypatch.setenv(BACKEND_ENV, "arena")
    assert resolve_backend() == "arena"
    assert resolve_backend("dict") == "dict"  # explicit beats environment
    with pytest.raises(ValueError):
        resolve_backend("no-such-engine")


# ---------------------------------------------------------------------------
# Algebraic laws (each backend independently)
# ---------------------------------------------------------------------------


def test_negation_involution(manager):
    a, b = manager.variable("v0"), manager.variable("v1")
    f = (a & ~b) | (b ^ a)
    assert (~~f).node == f.node
    assert (~f).node != f.node
    assert (~manager.true()).node == manager.false().node


def test_ite_identities(manager):
    a, b, c = (manager.variable(n) for n in ("v0", "v1", "v2"))
    f = a.iff(b) | c
    assert f.ite(manager.true(), manager.false()).node == f.node
    assert f.ite(b, b).node == b.node
    assert a.ite(b, c).node == ((a & b) | (~a & c)).node
    assert (a ^ b).node == a.ite(~b, b).node
    assert a.iff(b).node == a.ite(b, ~b).node
    assert a.implies(b).node == (~a | b).node


def test_de_morgan_and_absorption(manager):
    a, b = manager.variable("v3"), manager.variable("v5")
    assert (~(a & b)).node == (~a | ~b).node
    assert (a | (a & b)).node == a.node
    assert (a & (a | b)).node == a.node


def test_quantifier_laws(manager):
    a, b, c = (manager.variable(n) for n in ("v0", "v1", "v2"))
    f = (a & b) | (~a & c)
    # ∃x f == f|x=0 ∨ f|x=1 ; ∀x f == f|x=0 ∧ f|x=1.
    assert f.exists(["v0"]).node == (f.restrict({"v0": False}) | f.restrict({"v0": True})).node
    assert f.forall(["v0"]).node == (f.restrict({"v0": False}) & f.restrict({"v0": True})).node
    # Quantifiers over distinct variables commute.
    assert f.exists(["v0"]).exists(["v1"]).node == f.exists(["v1"]).exists(["v0"]).node
    assert f.exists(["v0", "v1"]).node == f.exists(["v1"]).exists(["v0"]).node
    # ∀x f == ¬∃x ¬f.
    assert f.forall(["v1"]).node == (~((~f).exists(["v1"]))).node
    # and_exists is the fused relational product.
    g = b.iff(c)
    assert f.and_exists(g, ["v1", "v2"]).node == (f & g).exists(["v1", "v2"]).node


def test_rename_quantifier_commutation(manager):
    a, b, c = (manager.variable(n) for n in ("v0", "v2", "v4"))
    f = (a ^ b) | (b & c)
    mapping = {"v0": "v1", "v2": "v3", "v4": "v5"}
    renamed = f.rename(mapping)
    # Semantics: renamed(y) == f(x) pointwise under the substitution.
    for bits in itertools.product((False, True), repeat=len(NAMES)):
        assignment = dict(zip(NAMES, bits))
        pulled = {n: assignment[mapping.get(n, n)] for n in NAMES}
        assert renamed.evaluate(assignment) == f.evaluate(pulled)
    # ∃(unrenamed var) commutes with the rename.
    assert f.exists(["v4"]).rename({"v0": "v1"}).node == f.rename({"v0": "v1"}).exists(["v4"]).node


def test_canonicity_equal_functions_equal_ids(manager):
    a, b, c, d = (manager.variable(n) for n in ("v0", "v1", "v2", "v3"))
    left = (a & b) | (a & c) | (b & c)
    right = (a | b) & (a | c) & (b | c)  # majority, factored differently
    assert left.node == right.node
    assert ((a ^ b) ^ c ^ d).node == (a ^ (b ^ (c ^ d))).node
    assert (left & ~left).node == manager.false().node
    assert (left | ~left).node == manager.true().node


def test_counting_and_assignments(manager):
    a, b, c = (manager.variable(n) for n in ("v0", "v1", "v2"))
    f = (a & b) | c
    assert f.count_assignments(["v0", "v1", "v2"]) == len(brute_force(f, ["v0", "v1", "v2"]))
    assert manager.true().count_assignments(["v0"]) == 2
    assert manager.false().count_assignments() == 0
    picked = f.pick_assignment()
    assert picked is not None
    full = {name: picked.get(name, False) for name in NAMES}
    assert f.evaluate(full)
    models = list(f.iter_assignments(["v0", "v1", "v2"]))
    assert len(models) == f.count_assignments(["v0", "v1", "v2"])
    assert all(f.evaluate({**{n: False for n in NAMES}, **m}) for m in models)


def test_statistics_deterministic_per_backend():
    def workload(engine):
        m = create_manager(NAMES, backend=engine)
        a, b, c = (m.variable(n) for n in ("v0", "v1", "v2"))
        f = (a ^ b).iff(c) | (a & b)
        f = f.and_exists(b | c, ["v1"])
        _ = (~f).exists(["v0"])
        return m.statistics().as_dict()

    for engine in available_backends():
        first, second = workload(engine), workload(engine)
        assert first == second, engine
        assert first["ite_calls"] > 0
        assert first["node_count"] >= 1


def test_gc_preserves_semantics(manager):
    a, b, c = (manager.variable(n) for n in ("v0", "v1", "v2"))
    kept = (a & b) | (~a & c)
    table = brute_force(kept)
    # Build garbage the sweep should reclaim.
    for i in range(6):
        _ = (a ^ b).ite(c, manager.variable(NAMES[3 + i % 4]))
    holder = {"f": kept}
    manager.add_gc_hook(
        lambda: [holder["f"].node],
        lambda remap: holder.update(f=manager.wrap(manager.translate(remap, holder["f"].node))),
    )
    before = manager.generation
    remap = manager.garbage_collect()
    assert manager.generation == before + 1
    # The relocation map covers both terminals (mapped to themselves).
    assert remap[manager.TRUE] == manager.TRUE
    assert remap[manager.FALSE] == manager.FALSE
    assert brute_force(holder["f"]) == table
    # The engine keeps working after the sweep.
    assert (holder["f"] | ~holder["f"]).is_true


# ---------------------------------------------------------------------------
# Seeded randomized differential check: all backends on the same DAGs
# ---------------------------------------------------------------------------

TRIALS = 200


def _random_dag(rng, manager):
    """Build one random formula DAG; mirrors exactly for every manager."""
    pool = [manager.variable(rng.choice(NAMES)) for _ in range(3)]
    ops = rng.randrange(4, 14)
    for _ in range(ops):
        op = rng.randrange(9)
        f = rng.choice(pool)
        g = rng.choice(pool)
        if op == 0:
            pool.append(~f)
        elif op == 1:
            pool.append(f & g)
        elif op == 2:
            pool.append(f | g)
        elif op == 3:
            pool.append(f ^ g)
        elif op == 4:
            pool.append(f.iff(g))
        elif op == 5:
            pool.append(f.ite(g, rng.choice(pool)))
        elif op == 6:
            names = rng.sample(NAMES, rng.randrange(1, 3))
            pool.append(f.exists(names) if rng.random() < 0.5 else f.forall(names))
        elif op == 7:
            half = len(NAMES) // 2
            mapping = dict(zip(NAMES[:half], NAMES[half:]))
            if rng.random() < 0.5:
                mapping = {value: key for key, value in mapping.items()}
            pool.append(f.rename(mapping))
        else:
            names = rng.sample(NAMES, rng.randrange(1, 3))
            pool.append(f.and_exists(g, names))
    return pool[-1]


def test_differential_random_dags():
    engines = available_backends()
    assert len(engines) >= 2, "the differential check needs at least two backends"
    master = random.Random(20260807)
    for trial in range(TRIALS):
        seed = master.randrange(2**60)
        results = {}
        for engine in engines:
            rng = random.Random(seed)
            manager = create_manager(NAMES, backend=engine)
            function = _random_dag(rng, manager)
            sample_rng = random.Random(seed + 1)
            samples = tuple(
                function.evaluate({name: sample_rng.random() < 0.5 for name in NAMES})
                for _ in range(8)
            )
            results[engine] = (
                function.is_false,
                function.is_true,
                function.count_assignments(NAMES),
                samples,
            )
        reference = results[engines[0]]
        for engine in engines[1:]:
            assert results[engine] == reference, (
                f"trial {trial} (seed {seed}): backend {engine!r} disagrees "
                f"with {engines[0]!r}: {results[engine]} != {reference}"
            )


def test_psi_type_count_agrees_across_backends():
    """The symbolic |Types(ψ)| (Section 7.1) matches explicit enumeration."""
    from repro.logic import syntax as sx
    from repro.logic.closure import lean as compute_lean
    from repro.solver.truth import count_types_symbolically, psi_types

    formula = sx.mk_and(sx.prop("a"), sx.dia(1, sx.mk_or(sx.prop("b"), sx.dia(2, sx.prop("a")))))
    lean = compute_lean(formula)
    explicit = sum(1 for _ in psi_types(lean))
    for engine in available_backends():
        assert count_types_symbolically(lean, backend=engine) == explicit, engine


# ---------------------------------------------------------------------------
# Regression: product caches must be backend-qualified
# ---------------------------------------------------------------------------


def test_product_cache_keys_are_backend_qualified():
    """Node ids are engine-local: the witness-product cache must never mix
    entries from managers of different backends (regression for the cache
    that keyed on bare node ids)."""
    from repro.logic import syntax as sx
    from repro.logic.closure import lean as compute_lean
    from repro.solver.relations import LeanEncoding, TransitionRelation

    formula = sx.mk_and(sx.prop("a"), sx.dia(1, sx.prop("b")))
    lean = compute_lean(formula)
    for engine in available_backends():
        encoding = LeanEncoding(lean, backend=engine)
        relation = TransitionRelation(encoding, 1)
        target = encoding.types_constraint()
        relation.witness(target)
        assert all(
            key[0] == engine for key in relation._product_cache
        ), f"cache keys of the {engine!r} relation must carry the backend name"

        # A target from a *different* manager must be rejected, not silently
        # looked up by its (engine-local) node id.
        other_engine = next(e for e in available_backends() if e != engine)
        foreign = LeanEncoding(lean, backend=other_engine)
        with pytest.raises(ValueError, match="different BDD manager"):
            relation.witness(foreign.types_constraint())
