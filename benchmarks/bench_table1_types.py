"""Table 1 — XML types used in the experiments.

Paper's numbers: SMIL 1.0 has 19 element symbols and 11 binary type variables;
XHTML 1.0 Strict has 77 element symbols and 325 binary type variables.  The
symbol counts are reproduced exactly; the variable counts depend on how the
content models are compiled to binary types (our construction hash-conses
continuations), so the measured counts are reported next to the paper's.
"""

import pytest

from conftest import write_report
from repro.xmltypes.binarize import binarize_dtd
from repro.xmltypes.compile import compile_grammar
from repro.xmltypes.library import smil_dtd, xhtml_strict_dtd

PAPER = {"SMIL 1.0": (19, 11), "XHTML 1.0 Strict": (77, 325)}


def _row(name, dtd):
    grammar = binarize_dtd(dtd).restricted_to_reachable()
    return name, dtd.symbol_count(), grammar.variable_count(), grammar


@pytest.mark.parametrize(
    "name,getter", [("SMIL 1.0", smil_dtd), ("XHTML 1.0 Strict", xhtml_strict_dtd)]
)
def test_table1_type_statistics(benchmark, name, getter):
    dtd = getter()
    _name, symbols, variables, grammar = benchmark(_row, name, dtd)
    paper_symbols, paper_variables = PAPER[name]
    assert symbols == paper_symbols
    assert variables > 0
    write_report(
        f"table1_{name.split()[0].lower()}",
        [
            "DTD              | Symbols (paper/ours) | Binary type variables (paper/ours)",
            f"{name:<16} | {paper_symbols:>7} / {symbols:<10} | {paper_variables:>7} / {variables}",
        ],
    )
    # The formula translation of each type is computable and non-trivial.
    assert compile_grammar(grammar) is not None
