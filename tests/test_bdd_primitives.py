"""Tests for the BDD engine's caches, statistics and maintenance hooks."""

import pytest

from repro.bdd.manager import BDDManager

NAMES = ["a", "b", "c", "d"]


@pytest.fixture
def manager():
    return BDDManager(NAMES)


def test_ite_computed_table_hits(manager):
    a = manager.var_node("a")
    b = manager.var_node("b")
    manager.ite(a, b, manager.FALSE)
    before = manager.statistics().ite_cache_hits
    manager.ite(a, b, manager.FALSE)
    after = manager.statistics().ite_cache_hits
    assert after > before


def test_ite_cache_key_is_canonical_for_commutative_shapes(manager):
    a = manager.var_node("a")
    b = manager.var_node("b")
    # Warm the cache with a ∧ b, then issue b ∧ a: the canonical computed
    # table must answer the swapped call without recomputation.
    manager.conj(a, b)
    before = manager.statistics().ite_cache_hits
    assert manager.conj(b, a) == manager.conj(a, b)
    assert manager.statistics().ite_cache_hits > before
    # Same for disjunction.
    manager.disj(a, b)
    before = manager.statistics().ite_cache_hits
    manager.disj(b, a)
    assert manager.statistics().ite_cache_hits > before


def test_ite_handles_deep_chains_iteratively(manager):
    # One ITE whose expansion descends through 3000 alternating levels would
    # break a naively recursive ITE (default recursion limit: 1000); the
    # iterative engine must not care.  The two operand chains are built
    # bottom-up so each construction step is O(1).
    depth = 3000
    deep = BDDManager([f"v{i}" for i in range(depth)])
    evens = deep.TRUE
    odds = deep.TRUE
    for i in reversed(range(depth)):
        node = deep.var_node(f"v{i}")
        if i % 2 == 0:
            evens = deep.ite(node, evens, deep.FALSE)
        else:
            odds = deep.ite(node, odds, deep.FALSE)
    result = deep.conj(evens, odds)
    assert deep.dag_size(result) == depth
    assert deep.dag_size(deep.neg(result)) == depth


def test_negation_cache_is_two_way(manager):
    a = manager.var_node("a")
    b = manager.var_node("b")
    function = manager.conj(a, b)
    negated = manager.neg(function)
    before = manager.statistics().neg_cache_hits
    # Double negation is answered from the cache, in both directions.
    assert manager.neg(negated) == function
    assert manager.neg(function) == negated
    assert manager.statistics().neg_cache_hits >= before + 2


def test_restrict_cofactors(manager):
    a = manager.var_node("a")
    b = manager.var_node("b")
    function = manager.ite(a, b, manager.FALSE)
    assert manager.restrict(function, {"a": True}) == b
    assert manager.restrict(function, {"a": False}) == manager.FALSE
    assert manager.restrict(function, {"a": True, "b": True}) == manager.TRUE
    assert manager.cofactor(function, "a", True) == b
    # Restriction over variables outside the support is the identity.
    assert manager.restrict(function, {"d": True}) == function


def test_restrict_results_are_memoised(manager):
    a = manager.var_node("a")
    b = manager.var_node("b")
    function = manager.conj(a, b)
    first = manager.restrict(function, {"a": True})
    entries = manager.statistics().cache_entries
    assert manager.restrict(function, {"a": True}) == first
    assert manager.statistics().cache_entries == entries


def test_node_count_statistics(manager):
    stats = manager.statistics()
    assert stats.var_count == 4
    assert stats.node_count == 0
    a = manager.var_node("a")
    b = manager.var_node("b")
    manager.conj(a, b)
    stats = manager.statistics()
    assert stats.node_count == 3  # a, b and the conjunction node
    assert stats.peak_node_count >= stats.node_count
    assert stats.ite_calls > 0
    payload = stats.as_dict()
    assert payload["node_count"] == 3
    assert set(payload) >= {"ite_calls", "ite_cache_hits", "neg_calls", "gc_runs"}


def test_clear_caches_preserves_results(manager):
    a = manager.var_node("a")
    b = manager.var_node("b")
    function = manager.conj(a, b)
    manager.clear_caches()
    assert manager.statistics().cache_entries == 0
    # Node ids survive a cache clear; recomputation gives the same node.
    assert manager.conj(a, b) == function


def test_garbage_collect_reclaims_and_relocates(manager):
    a = manager.var_node("a")
    b = manager.var_node("b")
    c = manager.var_node("c")
    keep = manager.conj(a, b)
    manager.disj(manager.conj(a, c), manager.var_node("d"))  # becomes garbage
    before = manager.node_count()
    remap = manager.garbage_collect([keep])
    assert manager.node_count() < before
    assert manager.statistics().gc_runs == 1
    assert manager.statistics().nodes_reclaimed == before - manager.node_count()
    # The surviving function is intact under the relocation map.
    relocated = remap[keep]
    assert manager.evaluate(relocated, {"a": True, "b": True})
    assert not manager.evaluate(relocated, {"a": True, "b": False})
    assert manager.support(relocated) == {"a", "b"}
    # Terminals map to themselves.
    assert remap[manager.FALSE] == manager.FALSE
    assert remap[manager.TRUE] == manager.TRUE


def test_garbage_collect_then_rebuild_is_consistent(manager):
    a = manager.var_node("a")
    b = manager.var_node("b")
    keep = manager.conj(a, b)
    remap = manager.garbage_collect([keep])
    # Rebuilding the same function after collection lands on the same node.
    assert manager.conj(manager.var_node("a"), manager.var_node("b")) == remap[keep]


def test_child_constraint_matches_its_partitioned_form():
    # The monolithic wrapper must agree with the partitioned constraint the
    # model reconstruction consumes.
    from repro.logic import syntax as sx
    from repro.logic.closure import lean as compute_lean
    from repro.solver.relations import LeanEncoding, TransitionRelation

    formula = sx.prop("a") & sx.dia(1, sx.prop("b")) & sx.START
    encoding = LeanEncoding(compute_lean(formula))
    relation = TransitionRelation(encoding, 1)
    # A parent claiming ⟨1⟩⊤ and ⟨1⟩b (all other bits clear).
    bits = {
        encoding.top_index(1): True,
        encoding.lean.position(sx.dia(1, sx.prop("b"))): True,
    }
    monolithic = relation.child_constraint(bits)
    rebuilt = encoding.manager.true()
    for part in relation.child_constraint_parts(bits):
        rebuilt = rebuilt & part
    assert monolithic == rebuilt
    assert not monolithic.is_false


def test_rename_fast_path_used_for_order_preserving_maps():
    manager = BDDManager(["x0", "y0", "x1", "y1"])
    x0 = manager.var_node("x0")
    x1 = manager.var_node("x1")
    function = manager.conj(x0, x1)
    before = manager.statistics().rename_fast_paths
    renamed = manager.rename(function, {"x0": "y0", "x1": "y1"})
    assert manager.statistics().rename_fast_paths == before + 1
    assert manager.support(renamed) == {"y0", "y1"}
    assert manager.evaluate(renamed, {"y0": True, "y1": True})


def test_rename_general_path_for_order_swapping_maps():
    manager = BDDManager(["x0", "x1"])
    x0 = manager.var_node("x0")
    x1 = manager.var_node("x1")
    function = manager.disj(x0, manager.neg(x1))  # x0 ∨ ¬x1 (asymmetric)
    before = manager.statistics().rename_fast_paths
    swapped = manager.rename(function, {"x0": "x1", "x1": "x0"})
    assert manager.statistics().rename_fast_paths == before
    for vx0 in (False, True):
        for vx1 in (False, True):
            # The renamed function is x1 ∨ ¬x0.
            assert manager.evaluate(swapped, {"x0": vx0, "x1": vx1}) == (vx1 or not vx0)
