"""Figures 12-14 — the Wikipedia DTD fragment through the whole type pipeline.

Reproduces the paper's illustration of the regular tree type embedding:
DTD text (Figure 12) → binary tree type grammar (Figure 13) → Lµ formula
(Figure 14), and measures each stage.
"""

from conftest import write_report
from repro.logic.printer import format_formula_pretty
from repro.logic.syntax import formula_size
from repro.xmltypes.binarize import binarize_dtd
from repro.xmltypes.compile import compile_grammar
from repro.xmltypes.library import wikipedia_dtd


def _pipeline():
    dtd = wikipedia_dtd()
    grammar = binarize_dtd(dtd).restricted_to_reachable()
    formula = compile_grammar(grammar)
    return dtd, grammar, formula


def test_fig12_14_wikipedia_pipeline(benchmark):
    dtd, grammar, formula = benchmark(_pipeline)
    assert dtd.symbol_count() == 9          # "9 terminals." in Figure 13
    assert grammar.variable_count() >= 9    # "9 type variables." (ours adds content vars)
    lines = [
        f"Figure 12: DTD with {dtd.symbol_count()} element symbols",
        "",
        "Figure 13: binary encoding",
        grammar.describe(),
        "",
        f"Figure 14: Lµ formula ({formula_size(formula)} nodes)",
        format_formula_pretty(formula),
    ]
    write_report("fig12_14_wikipedia", lines)
