"""Tests of the XPath → Lµ translation (Proposition 5.1).

The key property is 5.1(1): the translated formula holds exactly at the nodes
selected by the expression.  It is checked here both on hand-picked documents
and on randomly generated documents and mark positions (hypothesis).
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.logic.cyclefree import is_cycle_free
from repro.logic.semantics import interpret
from repro.logic.syntax import formula_size
from repro.trees.focus import all_focuses
from repro.trees.unranked import Tree, parse_tree
from repro.xpath.compile import compile_xpath
from repro.xpath.parser import parse_xpath
from repro.xpath.semantics import select

EXPRESSIONS = [
    "child::a",
    "child::a[child::b]",
    "descendant::b[parent::a]",
    "a/b",
    "/a/b",
    "a//b",
    "//b",
    "ancestor::a",
    "ancestor-or-self::*",
    "preceding-sibling::a",
    "following-sibling::*[b]",
    "following::b",
    "preceding::a",
    "parent::a/child::b",
    "self::a[b and not(c)]",
    "a/b | child::b",
    "descendant::a ∩ child::*",
    "a/(b | c)/d",
    "child::c/preceding-sibling::a[child::b]",
    "descendant::a[ancestor::a]",
]

DOCUMENTS = [
    "<r><a><c/></a><a><d/><b/></a><b/></r>",
    "<a><b/><a><b/><c/></a></a>",
    "<a><a><a/></a></a>",
    "<r><c/><a><b/></a><d/></r>",
    "<b><a/><b><a><b/></a></b></b>",
]


def _agreement(expr_text: str, document: Tree) -> None:
    expr = parse_xpath(expr_text)
    formula = compile_xpath(expr)
    universe = frozenset(all_focuses(document))
    assert interpret(formula, universe) == select(expr, document), (
        f"translation of {expr_text!r} disagrees with the denotational "
        f"semantics on {document}"
    )


@pytest.mark.parametrize("expr_text", EXPRESSIONS)
@pytest.mark.parametrize("doc_text", DOCUMENTS)
def test_translation_agrees_with_semantics_root_mark(expr_text, doc_text):
    document = parse_tree(doc_text).unmark_all().mark_at(())
    _agreement(expr_text, document)


@pytest.mark.parametrize("expr_text", EXPRESSIONS[:8])
def test_translation_agrees_with_semantics_inner_marks(expr_text):
    base = parse_tree("<r><a><c/></a><a><d/><b/></a><b/></r>").unmark_all()
    for path, _node in sorted(base.iter_paths()):
        _agreement(expr_text, base.mark_at(path))


def test_translation_is_cycle_free_and_linear():
    for expr_text in EXPRESSIONS:
        formula = compile_xpath(expr_text)
        assert is_cycle_free(formula), expr_text
        # Linear-size bound (Proposition 5.1(3)) with a generous constant.
        assert formula_size(formula) <= 40 * (len(expr_text) + 1), expr_text


def test_context_formula_constrains_the_start_node():
    from repro.logic import syntax as sx

    document = parse_tree("<r><a><b/></a><c><b/></c></r>").unmark_all()
    formula = compile_xpath("child::b", context=sx.prop("a"))
    # With the mark on the "a" node the context holds, with it on "c" it fails.
    marked_a = document.mark_at((0,))
    marked_c = document.mark_at((1,))
    selected_a = interpret(formula, frozenset(all_focuses(marked_a)))
    selected_c = interpret(formula, frozenset(all_focuses(marked_c)))
    assert {f.name for f in selected_a} == {"b"}
    assert selected_c == frozenset()


# -- property-based agreement on random documents ----------------------------------------

_LABELS = st.sampled_from(["a", "b", "c", "d"])


def _random_trees():
    return st.recursive(
        st.builds(lambda label: Tree(label, ()), _LABELS),
        lambda children: st.builds(
            lambda label, kids: Tree(label, tuple(kids)),
            _LABELS,
            st.lists(children, max_size=3),
        ),
        max_leaves=7,
    )


@settings(max_examples=60, deadline=None)
@given(
    document=_random_trees(),
    expr_index=st.integers(min_value=0, max_value=len(EXPRESSIONS) - 1),
    mark_seed=st.integers(min_value=0, max_value=1_000_000),
)
def test_translation_agreement_property(document, expr_index, mark_seed):
    paths = [path for path, _node in sorted(document.iter_paths())]
    mark = paths[mark_seed % len(paths)]
    marked = document.mark_at(mark)
    _agreement(EXPRESSIONS[expr_index], marked)
