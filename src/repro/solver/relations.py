"""BDD encoding of ψ-types and of the transition relations ∆ₐ (Sections 7.1, 7.3).

Every Lean formula is represented by one BDD variable; a ψ-type is a
bit-vector assignment of these variables.  Two vectors are used: the unprimed
vector ``x`` for the types being added and the primed vector ``y`` for their
candidate witnesses.  The relation ``∆ₐ(x, y)`` is a conjunction of
equivalences — one per modal Lean formula for programs ``a`` and ``ā`` — and
is never built as a single BDD: following Section 7.3 it is kept as a list of
partitions that are conjoined with the frontier one at a time while
quantifying out primed variables as early as possible.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.bdd.backends import create_manager
from repro.bdd.manager import BDD
from repro.bdd.ordering import cone_of_influence, interleaved_pairs
from repro.bdd.protocol import BDDBackend
from repro.logic import syntax as sx
from repro.logic.closure import Lean
from repro.trees.focus import FORWARD_MODALITIES, MODALITIES


class LeanEncoding:
    """Bit-vector encoding of ψ-types over a BDD manager.

    Variable ``x{i}`` stands for "the i-th Lean formula belongs to the type";
    ``y{i}`` is its primed (witness) copy.  The variable order interleaves the
    two vectors and follows the Lean order, which itself follows the
    breadth-first traversal of the formula (Section 7.4).
    """

    def __init__(self, lean: Lean, interleaved: bool = True, backend: str | None = None):
        self.lean = lean
        self.x_names = [f"x{i}" for i in range(len(lean))]
        self.y_names = [f"y{i}" for i in range(len(lean))]
        if interleaved:
            order = []
            for x_name, y_name in zip(self.x_names, self.y_names):
                order.append(x_name)
                order.append(y_name)
        else:
            order = self.x_names + self.y_names
        self.manager: BDDBackend = create_manager(order, backend=backend)
        self._status_cache: dict[tuple[sx.Formula, bool], BDD] = {}
        self._x_to_y = dict(zip(self.x_names, self.y_names))
        self._y_to_x = dict(zip(self.y_names, self.x_names))
        self.manager.add_gc_hook(self._gc_roots, self._gc_remap)

    # -- garbage-collection participation ----------------------------------------

    def _gc_roots(self):
        return [function.node for function in self._status_cache.values()]

    def _gc_remap(self, remap: dict[int, int]) -> None:
        manager = self.manager
        self._status_cache = {
            key: manager.wrap(manager.translate(remap, function.node))
            for key, function in self._status_cache.items()
        }

    # -- literals ------------------------------------------------------------------

    def x(self, index: int) -> BDD:
        return self.manager.variable(self.x_names[index])

    def y(self, index: int) -> BDD:
        return self.manager.variable(self.y_names[index])

    def literal(self, index: int, primed: bool) -> BDD:
        return self.y(index) if primed else self.x(index)

    def to_primed(self, function: BDD) -> BDD:
        return function.rename(self._x_to_y)

    def to_unprimed(self, function: BDD) -> BDD:
        return function.rename(self._y_to_x)

    # -- structural predicates (Section 7.1) ------------------------------------------

    def top_index(self, program: int) -> int:
        return self.lean.position(sx.dia(program, sx.TRUE))

    def isparent(self, program: int, primed: bool = False) -> BDD:
        """``isparentₐ``: the bit for ``⟨a⟩⊤`` is set."""
        return self.literal(self.top_index(program), primed)

    def ischild(self, program: int, primed: bool = False) -> BDD:
        """``ischildₐ``: the bit for ``⟨ā⟩⊤`` is set."""
        return self.literal(self.top_index(-program), primed)

    def start(self, primed: bool = False) -> BDD:
        return self.literal(self.lean.start_index, primed)

    def root_filter(self, formula: sx.Formula, primed: bool = False) -> BDD:
        """Root types satisfying ``formula``: no pending backward modality.

        This is the final check of the fixpoint loop — ``¬ischild₁ ∧
        ¬ischild₂ ∧ statusᵩ`` — shared between the single-query solver and
        the merged batch solver, where one such filter per goal bit reads
        each query's verdict out of the one shared proved set.
        """
        return (
            ~self.ischild(1, primed)
            & ~self.ischild(2, primed)
            & self.status(formula, primed)
        )

    # -- the truth-status of a formula as a boolean function ----------------------------

    def status(self, formula: sx.Formula, primed: bool = False) -> BDD:
        """The BDD of ``statusᵩ`` over the (un)primed vector (Section 7.1)."""
        key = (formula, primed)
        cached = self._status_cache.get(key)
        if cached is not None:
            return cached
        kind = formula.kind
        manager = self.manager
        if kind == sx.KIND_TRUE:
            result = manager.true()
        elif kind == sx.KIND_FALSE:
            result = manager.false()
        elif kind == sx.KIND_PROP:
            result = self.literal(self.lean.proposition_index(formula.label), primed)
        elif kind == sx.KIND_NPROP:
            result = ~self.literal(self.lean.proposition_index(formula.label), primed)
        elif kind == sx.KIND_ATTR:
            result = self._attribute_status(formula.label, primed)
        elif kind == sx.KIND_NATTR:
            result = ~self._attribute_status(formula.label, primed)
        elif kind == sx.KIND_START:
            result = self.start(primed)
        elif kind == sx.KIND_NSTART:
            result = ~self.start(primed)
        elif kind == sx.KIND_NDIA:
            result = ~self.literal(self.top_index(formula.prog), primed)
        elif kind == sx.KIND_DIA:
            result = self.literal(self.lean.position(formula), primed)
        elif kind == sx.KIND_AND:
            result = self.status(formula.left, primed) & self.status(formula.right, primed)
        elif kind == sx.KIND_OR:
            result = self.status(formula.left, primed) | self.status(formula.right, primed)
        elif formula.is_fixpoint:
            result = self.status(sx.expand_fixpoint(formula), primed)
        else:
            raise ValueError(f"cannot compute the status of {formula!r}")
        self._status_cache[key] = result
        return result

    def _attribute_status(self, name: str, primed: bool) -> BDD:
        """The BDD of an attribute proposition ``@name``.

        The wildcard ``@*`` is not a bit of its own: it is the disjunction of
        every attribute bit of the lean (including the "other attribute" bit),
        so its negation "no attribute at all" comes out right as well.
        """
        if name == sx.ANY_ATTRIBUTE:
            result = self.manager.false()
            for attribute in self.lean.attributes:
                result = result | self.literal(
                    self.lean.attribute_index(attribute), primed
                )
            return result
        return self.literal(self.lean.attribute_index(name), primed)

    # -- the characteristic function of Types(ψ) ------------------------------------------

    def types_constraint(
        self,
        primed: bool = False,
        modal_indices: frozenset[int] | None = None,
        labels: frozenset[str] | None = None,
    ) -> BDD:
        """χ_Types: modal consistency, first/second child exclusion, one label.

        ``modal_indices`` restricts the modal-consistency conjuncts to a
        subset of the Lean's modal bits — the merged batch solver passes each
        goal's cone so a goal's proved sets never constrain (or even mention)
        another goal's bits.

        ``labels`` restricts the exactly-one-label constraint to a subset of
        the Lean's propositions; the rest are simply never mentioned.  A
        goal solved against a merged Lean keeps its own pruned alphabet this
        way: nothing in the goal's fixpoint (this constraint, its partition
        views, its root filter) touches a foreign label bit, so its proved
        sets stay cylinders over those bits — node-for-node the BDDs its own
        per-query Lean would produce (pruned type translations read "any
        other label" through the shared ``#other`` proposition, whose
        meaning foreign labels must not dilute).  The sets being equal does
        not make the *decoded* witness equal, though: merging can reorder
        the shared variables, so reconstruction additionally pins its picks
        to the goal's per-query Lean order
        (:func:`repro.solver.models._pick`).
        """
        manager = self.manager
        constraint = manager.true()
        # Modal consistency: ⟨a⟩ϕ ∈ t implies ⟨a⟩⊤ ∈ t.
        for program, _sub, index in self.lean.modal_items():
            if index == self.top_index(program):
                continue
            if modal_indices is not None and index not in modal_indices:
                continue
            constraint = constraint & self.literal(index, primed).implies(
                self.literal(self.top_index(program), primed)
            )
        # A node cannot be both a first child and a second child.
        constraint = constraint & ~(
            self.literal(self.top_index(-1), primed)
            & self.literal(self.top_index(-2), primed)
        )
        # Exactly one atomic proposition (among the kept labels).
        label_literals = [
            self.literal(self.lean.proposition_index(label), primed)
            for label in self.lean.propositions
            if labels is None or label in labels
        ]
        at_least_one = manager.false()
        for literal in label_literals:
            at_least_one = at_least_one | literal
        at_most_one = manager.true()
        for i in range(len(label_literals)):
            for j in range(i + 1, len(label_literals)):
                at_most_one = at_most_one & ~(label_literals[i] & label_literals[j])
        return constraint & at_least_one & at_most_one


@dataclass
class _Partition:
    """One conjunct Rᵢ(x, y) of ∆ₐ, with the primed variables it depends on."""

    function: BDD
    primed_support: frozenset[str]


@dataclass
class _ScheduleStep:
    """One step of the precomputed early-quantification schedule.

    ``block`` is the conjunction of the partitions grouped at this step (built
    once, at relation-construction time) and ``eliminable`` the primed
    variables that no later step mentions, so they can be quantified out as
    soon as the block has been conjoined with the frontier.
    ``primed_support`` is the union of the grouped partitions' primed
    supports and ``partition_count`` how many partitions the step bundles —
    both feed the cone-of-influence skipping of :meth:`TransitionRelation.
    _skippable_steps`.
    """

    block: BDD
    eliminable: frozenset[str]
    primed_support: frozenset[str] = frozenset()
    partition_count: int = 1
    #: Persistent relational-product memo for this step (the block and the
    #: eliminated variables are fixed, so only the incoming frontier varies);
    #: cleared on garbage collection.
    cache: dict[tuple[int, int], int] = field(default_factory=dict)


@dataclass
class _Component:
    """A set of schedule steps connected through shared primed variables.

    Components are variable-disjoint from one another, so the relational
    product factorises across them: a component whose variables the frontier
    never mentions contributes ``∃ vars . ∧ blocks`` — a constant that is
    computed once (lazily, on the first skip opportunity) and, when it is
    ``⊤``, lets the whole component be skipped.
    """

    steps: frozenset[int]
    variables: frozenset[str]
    vacuous: bool | None = field(default=None, compare=False)


class TransitionRelation:
    """The relation ∆ₐ of Definition 6.2 in partitioned (or monolithic) form.

    ``witness(target)`` computes the Wit formula of Section 7.1: the set of
    types ``x`` such that, *if* ``x`` claims an ``a``-child, a compatible
    witness exists in ``target``; ``witness_strict`` additionally requires the
    child to exist (used for propagating the start mark through a branch).
    Both share one relational product per target: the product is cached by
    the target's node id, so the fixpoint loop of :mod:`repro.solver.symbolic`
    never recomputes it when a set is unchanged between iterations (or when
    both the guarded and the strict witness of the same set are needed).

    **Frontier (delta) products.**  The fixpoint sets grow monotonically, and
    the relational product distributes over union::

        ∃y ((U ∨ δ)(y) ∧ ∆ₐ(x,y))  =  ∃y (U(y) ∧ ∆ₐ) ∨ ∃y (δ(y) ∧ ∆ₐ)

    so a caller that names the *chain* a target belongs to and hands over the
    delta it grew by (``witness(U, chain="unmarked", delta=δ)`` — the solver
    computes δ anyway to detect stabilisation) gets an incremental product:
    only the delta is pushed through the partitions, and the result is
    disjoined with the chain's previous product.  Late fixpoint iterations
    therefore touch BDDs proportional to what *changed*, not to the whole
    proved set.  ``delta_products`` counts the products answered this way and
    ``partitions_skipped`` the partitions avoided by the cone-of-influence
    check (a partition component whose primed variables the frontier never
    mentions, and whose projection is vacuous, cannot affect the product —
    and every partition of a product against the empty set).
    """

    def __init__(
        self,
        encoding: LeanEncoding,
        program: int,
        early_quantification: bool = True,
        monolithic: bool = False,
        modal_indices: frozenset[int] | None = None,
    ):
        if program not in FORWARD_MODALITIES:
            raise ValueError("transition relations are built for programs 1 and 2 only")
        self.encoding = encoding
        self.program = program
        self.early_quantification = early_quantification
        self.monolithic = monolithic
        # Restriction to one goal's cone of Lean bits: the merged batch
        # solver keeps its fixpoint state factored per goal, and a goal's
        # relation view must neither constrain nor quantify bits the goal's
        # closure never mentions (the missing equivalences would otherwise
        # force every other goal's ``x_i`` to ``∃y.status``-shaped junk).
        self.modal_indices = modal_indices
        self.partitions = self._build_partitions()
        self._monolithic_relation: BDD | None = None
        if monolithic:
            relation = encoding.manager.true()
            for partition in self.partitions:
                relation = relation & partition.function
            self._monolithic_relation = relation
        self._schedule = (
            self._build_schedule() if early_quantification and not monolithic else []
        )
        self._partition_primed: frozenset[str] = frozenset().union(
            *(partition.primed_support for partition in self.partitions)
        ) if self.partitions else frozenset()
        self._step_supports: dict[int, frozenset[str]] = {
            index: step.primed_support for index, step in enumerate(self._schedule)
        }
        self._components = self._build_components()
        # Keyed by (backend name, target node id): node ids are only unique
        # *within* an engine, so a bare id could alias a stale entry after a
        # backend switch re-created the encoding in the same process.
        self._product_cache: dict[tuple[str, int], BDD] = {}
        # chain name -> product of the chain's last target (incremental base).
        self._chains: dict[str, BDD] = {}
        self.product_calls = 0
        self.product_cache_hits = 0
        self.delta_products = 0
        self.partitions_skipped = 0
        encoding.manager.add_gc_hook(self._gc_roots, self._gc_remap)

    # -- garbage-collection participation ----------------------------------------

    def _gc_roots(self):
        roots = [partition.function.node for partition in self.partitions]
        roots.extend(step.block.node for step in self._schedule)
        if self._monolithic_relation is not None:
            roots.append(self._monolithic_relation.node)
        roots.extend(product.node for product in self._product_cache.values())
        roots.extend(product.node for product in self._chains.values())
        return roots

    def _gc_remap(self, remap: dict[int, int]) -> None:
        """Translate every stored node id; drop entries whose key died.

        Product-cache *keys* are target node ids owned by the solver — a key
        the solver no longer kept alive is stale and must be cleared (keeping
        it could silently alias a different function that now occupies the
        reclaimed id).
        """
        manager = self.encoding.manager
        wrap = lambda function: manager.wrap(manager.translate(remap, function.node))
        for partition in self.partitions:
            partition.function = wrap(partition.function)
        for step in self._schedule:
            step.block = wrap(step.block)
            step.cache.clear()
        if self._monolithic_relation is not None:
            self._monolithic_relation = wrap(self._monolithic_relation)
        self._product_cache = {
            (backend, remap[node]): wrap(product)
            for (backend, node), product in self._product_cache.items()
            if node in remap
        }
        self._chains = {
            chain: wrap(product) for chain, product in self._chains.items()
        }

    def _build_partitions(self) -> list[_Partition]:
        encoding = self.encoding
        partitions: list[_Partition] = []
        for item_program, sub, index in encoding.lean.modal_items():
            if sub is sx.TRUE:
                continue
            if self.modal_indices is not None and index not in self.modal_indices:
                continue
            if item_program == self.program:
                # x_i  <=>  status_sub(y)
                function = encoding.x(index).iff(encoding.status(sub, primed=True))
            elif item_program == -self.program:
                # y_i  <=>  status_sub(x)
                function = encoding.y(index).iff(encoding.status(sub, primed=False))
            else:
                continue
            primed_support = frozenset(
                name for name in function.support() if name.startswith("y")
            )
            partitions.append(_Partition(function, primed_support))
        return partitions

    def _build_schedule(self) -> list[_ScheduleStep]:
        """Precompute the elimination order of Section 7.3.

        The greedy choice eliminates, at each step, the primed variable
        mentioned by the *fewest remaining partitions* (so each block
        conjoins as few partitions as possible), breaking ties towards the
        shallowest variable in the interleaved order (quantifying
        top-of-order ``y`` variables early collapses the upper levels of
        every intermediate before the deeper equivalences are conjoined).
        Against the previous min-total-support choice this measures ~3x
        faster products on the deep-nesting scaling family and slightly
        faster XHTML rows (see BENCH_scaling.json / BENCH_frontier.json).
        The order only depends on the partitions, never on the frontier, so
        the grouping of partitions into blocks — and the block conjunctions
        themselves — are computed once here instead of on every relational
        product.  A variable becomes eliminable at the first step after which
        no later block mentions it; the frontier is pure-primed, so it blocks
        nothing.
        """
        level_of = self.encoding.manager.level_of
        remaining = list(self.partitions)
        grouped: list[list[_Partition]] = []
        while remaining:
            mention_counts: dict[str, int] = {}
            for partition in remaining:
                for name in partition.primed_support:
                    mention_counts[name] = mention_counts.get(name, 0) + 1
            if not mention_counts:
                grouped.append(remaining)
                break
            cheapest = min(
                mention_counts, key=lambda name: (mention_counts[name], level_of(name))
            )
            grouped.append([p for p in remaining if cheapest in p.primed_support])
            remaining = [p for p in remaining if cheapest not in p.primed_support]

        steps: list[_ScheduleStep] = []
        seen_later: set[str] = set()
        pending_steps: list[tuple[BDD, frozenset[str], int]] = []
        for group in grouped:
            block = self.encoding.manager.true()
            support: set[str] = set()
            for partition in group:
                block = block & partition.function
                support |= partition.primed_support
            pending_steps.append((block, frozenset(support), len(group)))
        for block, support, count in reversed(pending_steps):
            steps.append(_ScheduleStep(block, support - seen_later, support, count))
            seen_later |= support
        steps.reverse()
        return steps

    def _build_components(self) -> list[_Component]:
        """Partition the schedule steps into variable-disjoint components."""
        remaining = set(self._step_supports)
        components: list[_Component] = []
        while remaining:
            seed = remaining.pop()
            members = {seed} | cone_of_influence(
                {index: self._step_supports[index] for index in remaining},
                self._step_supports[seed],
            )
            remaining -= members
            variables = frozenset().union(
                *(self._step_supports[index] for index in members)
            )
            components.append(_Component(frozenset(members), variables))
        return components

    def _component_vacuous(self, component: _Component) -> bool:
        """Whether ``∃ component.variables . ∧ blocks`` is ``⊤``.

        Computed once per component, with the same early-quantification walk
        a relational product uses (the component's variables are disjoint
        from every other step, so each step's eliminable set stays valid).
        """
        current = self.encoding.manager.true()
        for index in sorted(component.steps):
            step = self._schedule[index]
            current = current.and_exists(step.block, step.eliminable)
        leftover = component.variables & set(current.support())
        if leftover:
            current = current.exists(leftover)
        return current.is_true

    def _skippable_steps(self, frontier_support: set[str]) -> frozenset[int]:
        """Schedule steps this product can skip (cone-of-influence check).

        A component is skippable when the frontier mentions none of its
        variables *and* its projection is vacuous; its blocks then contribute
        the constant ``⊤`` to the factorised product.
        """
        if not self._schedule:
            return frozenset()
        needed = cone_of_influence(self._step_supports, frontier_support)
        if len(needed) == len(self._schedule):
            return frozenset()
        skippable: set[int] = set()
        for component in self._components:
            if component.steps & needed:
                continue
            if component.vacuous is None:
                component.vacuous = self._component_vacuous(component)
            if component.vacuous:
                skippable |= component.steps
        return frozenset(skippable)

    # -- relational products -----------------------------------------------------------

    def _product(self, frontier_y: BDD) -> BDD:
        """``∃ y . frontier(y) ∧ ∆ₐ(x, y)`` with early quantification."""
        all_primed = set(self.encoding.y_names)

        if self.monolithic and self._monolithic_relation is not None:
            return frontier_y.and_exists(self._monolithic_relation, all_primed)

        if not self.early_quantification:
            conjunction = frontier_y
            for partition in self.partitions:
                conjunction = conjunction & partition.function
            return conjunction.exists(all_primed)

        current = frontier_y
        frontier_support = set(current.support()) & all_primed
        # Variables only the frontier mentions can go immediately: no
        # partition constrains them.
        frontier_only = frontier_support - self._partition_primed
        if frontier_only:
            current = current.exists(frontier_only)
        quantified: set[str] = set(frontier_only)
        skipped = self._skippable_steps(frontier_support)
        for index, step in enumerate(self._schedule):
            if index in skipped:
                self.partitions_skipped += step.partition_count
                continue
            current = current.and_exists(step.block, step.eliminable, step.cache)
            quantified |= step.eliminable
        leftover = (all_primed - quantified) & set(current.support())
        if leftover:
            current = current.exists(leftover)
        return current

    def _frontier(self, target_x: BDD) -> BDD:
        """The primed frontier ``target(y) ∧ ischildₐ(y)`` of a product."""
        return self.encoding.to_primed(target_x) & self.encoding.ischild(
            self.program, primed=True
        )

    def _witness_product(
        self, target_x: BDD, chain: str | None = None, delta: BDD | None = None
    ) -> BDD:
        """``∃y (target(y) ∧ ischildₐ(y) ∧ ∆ₐ(x,y))``, cached per target node.

        ``chain`` names the monotonically-growing sequence of sets the target
        belongs to (the solver's ``"unmarked"``/``"marked"`` chains) and
        ``delta`` the set the target grew by since the chain's previous
        product — the caller's invariant is ``target = previous ∨ delta``.
        When both are given and a previous product exists, only the delta is
        pushed through the partitions (see the class docstring).
        """
        manager = self.encoding.manager
        if target_x.manager is not manager:
            raise ValueError(
                "witness target was built on a different BDD manager "
                f"(relation uses the {manager.backend_name!r} backend); node "
                "ids are not portable across engines"
            )
        if target_x.is_false:
            # ∃y (⊥ ∧ ∆ₐ) — nothing to compute, every partition is skipped.
            self.partitions_skipped += len(self.partitions)
            product = manager.false()
            if chain is not None:
                self._chains[chain] = product
            return product
        cache_key = (manager.backend_name, target_x.node)
        cached = self._product_cache.get(cache_key)
        if cached is not None:
            self.product_cache_hits += 1
            if chain is not None:
                self._chains[chain] = cached
            return cached
        base_product = self._chains.get(chain) if chain is not None else None
        self.product_calls += 1
        if base_product is not None and delta is not None:
            self.delta_products += 1
            product = base_product | self._product(self._frontier(delta))
        else:
            product = self._product(self._frontier(target_x))
        self._product_cache[cache_key] = product
        if chain is not None:
            self._chains[chain] = product
        return product

    def witness(
        self, target_x: BDD, chain: str | None = None, delta: BDD | None = None
    ) -> BDD:
        """``Witₐ(target)``: ``isparentₐ(x) → ∃y (target(y) ∧ ischildₐ(y) ∧ ∆ₐ(x,y))``."""
        product = self._witness_product(target_x, chain, delta)
        return self.encoding.isparent(self.program).implies(product)

    def witness_strict(
        self, target_x: BDD, chain: str | None = None, delta: BDD | None = None
    ) -> BDD:
        """Like :meth:`witness` but the child must exist (mark propagation)."""
        product = self._witness_product(target_x, chain, delta)
        return self.encoding.isparent(self.program) & product

    def child_constraint_parts(self, parent_bits: dict[int, bool]) -> list[BDD]:
        """The admissible-children constraint as a list of conjuncts (over ``x``).

        Used by model reconstruction: given the parent's bit-vector, a child
        type must support exactly the parent's ``⟨a⟩ϕ`` claims and claim
        exactly the ``⟨ā⟩ϕ`` formulas whose body holds at the parent.

        The conjunction of all parts can be exponentially larger than any
        individual part, so the constraint is returned *partitioned* — cheap
        single-literal parts first, then the status BDDs by ascending size —
        and callers intersect the parts one at a time against an existing set
        of types (which prunes the intermediates), exactly like the solver
        never builds ``∆ₐ`` monolithically.
        """
        from repro.solver.truth import status_on_set

        lean = self.encoding.lean
        members = frozenset(
            item for index, item in enumerate(lean.items) if parent_bits.get(index, False)
        )
        literal_parts: list[BDD] = [self.encoding.ischild(self.program, primed=False)]
        status_parts: list[BDD] = []
        for item_program, sub, index in lean.modal_items():
            if sub is sx.TRUE:
                continue
            if self.modal_indices is not None and index not in self.modal_indices:
                continue
            if item_program == self.program:
                required = parent_bits.get(index, False)
                status = self.encoding.status(sub, primed=False)
                status_parts.append(status if required else ~status)
            elif item_program == -self.program:
                holds_at_parent = status_on_set(sub, members)
                literal = self.encoding.x(index)
                literal_parts.append(literal if holds_at_parent else ~literal)
        status_parts.sort(key=lambda part: part.dag_size())
        return literal_parts + status_parts

    def child_constraint(self, parent_bits: dict[int, bool]) -> BDD:
        """Monolithic form of :meth:`child_constraint_parts` (small leans only)."""
        constraint = self.encoding.manager.true()
        for part in self.child_constraint_parts(parent_bits):
            constraint = constraint & part
        return constraint
