"""Fuzz cases and the on-disk corpus format of ``tests/corpus/``.

A :class:`FuzzCase` is one decision problem as *plain data*: the query kind,
the XPath expressions in surface syntax, and the DTD as source text (or
``None`` for "any tree").  Keeping cases textual makes them trivially
picklable (for ``--workers``), shrinkable, and serialisable.

Corpus entries are JSON files, one case per file::

    {
      "name": "fuzz-seed0-trial17",
      "origin": "repro fuzz --seed 0 (trial 17)",
      "kind": "containment",
      "exprs": ["a/b", "a//b"],
      "dtd": "<!ELEMENT a (b)*><!ELEMENT b EMPTY>",
      "root": "a",
      "expected": {"satisfiable": false, "holds": true},
      "disagreement": null
    }

``expected`` records the verdict every engine agreed on when the case was
written; ``disagreement`` is non-null only for unresolved fuzz findings (a
checked-in disagreement keeps failing ``tests/test_corpus.py`` until the
underlying bug is fixed, which is exactly the point).
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field, replace
from pathlib import Path

from repro.xmltypes.dtd import DTD, parse_dtd

#: Query kinds the fuzzer exercises (a subset of :data:`repro.api.KINDS`:
#: the kinds that reduce to a *single* satisfiability question, so one
#: symbolic verdict is compared per trial).
FUZZ_KINDS = ("satisfiability", "emptiness", "containment", "overlap")

#: Kinds whose property *holds* when the reduced formula is satisfiable.
POSITIVE_KINDS = frozenset({"satisfiability", "overlap"})


@dataclass(frozen=True)
class FuzzCase:
    """One generated decision problem, as plain serialisable data."""

    kind: str
    exprs: tuple[str, ...]
    dtd_source: str | None = None
    root: str | None = None

    def __post_init__(self) -> None:
        if self.kind not in FUZZ_KINDS:
            raise ValueError(f"unknown fuzz kind {self.kind!r}; expected {FUZZ_KINDS}")
        expected = 2 if self.kind in ("containment", "overlap") else 1
        if len(self.exprs) != expected:
            raise ValueError(
                f"{self.kind} takes {expected} expression(s), got {len(self.exprs)}"
            )

    def dtd(self) -> DTD | None:
        """The parsed DTD of the case (``None`` for untyped problems)."""
        if self.dtd_source is None:
            return None
        return parse_dtd(self.dtd_source, root=self.root, name="fuzz")

    def holds(self, satisfiable: bool) -> bool:
        """Map a satisfiability verdict to the property the kind asks about."""
        return satisfiable if self.kind in POSITIVE_KINDS else not satisfiable

    def describe(self) -> str:
        typed = f" under <!DOCTYPE {self.root}>" if self.dtd_source else ""
        return f"{self.kind} of {' vs '.join(self.exprs)}{typed}"

    def as_dict(self) -> dict:
        return {
            "kind": self.kind,
            "exprs": list(self.exprs),
            "dtd": self.dtd_source,
            "root": self.root,
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "FuzzCase":
        return cls(
            kind=payload["kind"],
            exprs=tuple(payload["exprs"]),
            dtd_source=payload.get("dtd"),
            root=payload.get("root"),
        )

    def without_type(self) -> "FuzzCase":
        return replace(self, dtd_source=None, root=None)

    def digest(self) -> str:
        """A short content hash used for corpus file names and dedup."""
        blob = json.dumps(self.as_dict(), sort_keys=True).encode("utf-8")
        return hashlib.sha256(blob).hexdigest()[:12]


@dataclass
class CorpusEntry:
    """A corpus file: the case plus the verdict recorded when it was written."""

    case: FuzzCase
    name: str
    origin: str = ""
    #: ``{"satisfiable": bool, "holds": bool}`` when every engine agreed.
    expected: dict | None = None
    #: Unresolved fuzz finding (kind + detail), ``None`` for regression seeds.
    disagreement: dict | None = None
    path: Path | None = field(default=None, compare=False)

    def as_dict(self) -> dict:
        return {
            "name": self.name,
            "origin": self.origin,
            **self.case.as_dict(),
            "expected": self.expected,
            "disagreement": self.disagreement,
        }

    @classmethod
    def from_dict(cls, payload: dict, path: Path | None = None) -> "CorpusEntry":
        return cls(
            case=FuzzCase.from_dict(payload),
            name=payload.get("name", path.stem if path else "corpus-case"),
            origin=payload.get("origin", ""),
            expected=payload.get("expected"),
            disagreement=payload.get("disagreement"),
            path=path,
        )


def load_corpus(directory: str | Path) -> list[CorpusEntry]:
    """Every corpus entry under ``directory``, sorted by file name."""
    root = Path(directory)
    if not root.is_dir():
        return []
    entries = []
    for path in sorted(root.glob("*.json")):
        payload = json.loads(path.read_text(encoding="utf-8"))
        entries.append(CorpusEntry.from_dict(payload, path=path))
    return entries


def write_corpus_case(
    directory: str | Path,
    case: FuzzCase,
    *,
    origin: str,
    expected: dict | None = None,
    disagreement: dict | None = None,
) -> Path:
    """Serialise a (shrunk) case into the corpus; returns the file path.

    File names are content-addressed, so re-running a deterministic fuzz
    campaign rewrites the same files instead of accumulating duplicates.
    """
    root = Path(directory)
    root.mkdir(parents=True, exist_ok=True)
    name = f"fuzz-{case.kind}-{case.digest()}"
    entry = CorpusEntry(
        case=case,
        name=name,
        origin=origin,
        expected=expected,
        disagreement=disagreement,
    )
    path = root / f"{name}.json"
    path.write_text(
        json.dumps(entry.as_dict(), indent=2, ensure_ascii=False) + "\n",
        encoding="utf-8",
    )
    return path
