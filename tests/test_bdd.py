"""Unit and property tests for the ROBDD engine."""

import itertools

import pytest
from hypothesis import given, strategies as st

from repro.bdd.manager import BDDManager
from repro.bdd.ordering import interleaved_pairs, order_by_first_use

NAMES = ["a", "b", "c", "d"]


@pytest.fixture
def manager():
    return BDDManager(NAMES)


def brute_force(function, names=NAMES):
    """Truth table of a BDD as a set of satisfying assignments."""
    table = set()
    for bits in itertools.product((False, True), repeat=len(names)):
        assignment = dict(zip(names, bits))
        if function.evaluate(assignment):
            table.add(bits)
    return table


def test_terminals(manager):
    assert manager.true().is_true
    assert manager.false().is_false
    assert (~manager.true()).is_false


def test_variable_and_negation(manager):
    a = manager.variable("a")
    assert a.evaluate({"a": True}) and not a.evaluate({"a": False})
    assert (~a).evaluate({"a": False})


def test_connectives_against_truth_tables(manager):
    a, b, c, d = (manager.variable(name) for name in NAMES)
    cases = {
        "and": (a & b, lambda va, vb, vc, vd: va and vb),
        "or": (a | b, lambda va, vb, vc, vd: va or vb),
        "xor": (a ^ c, lambda va, vb, vc, vd: va != vc),
        "iff": (b.iff(d), lambda va, vb, vc, vd: vb == vd),
        "implies": (a.implies(d), lambda va, vb, vc, vd: (not va) or vd),
        "ite": (a.ite(b, c), lambda va, vb, vc, vd: vb if va else vc),
    }
    for name, (function, predicate) in cases.items():
        expected = {
            bits
            for bits in itertools.product((False, True), repeat=4)
            if predicate(*bits)
        }
        assert brute_force(function) == expected, name


def test_reduction_canonical_form(manager):
    a, b = manager.variable("a"), manager.variable("b")
    assert ((a & b) | (a & ~b)).node == a.node  # Shannon reduction
    assert (a | ~a).is_true
    assert (a & ~a).is_false


def test_exists_and_forall(manager):
    a, b = manager.variable("a"), manager.variable("b")
    function = a & b
    assert brute_force(function.exists(["a"])) == brute_force(b)
    assert function.forall(["a"]).is_false
    assert (a | b).forall(["a"]).node == b.node


def test_and_exists_equals_conjoin_then_quantify(manager):
    a, b, c, d = (manager.variable(name) for name in NAMES)
    left = (a & b) | (c & ~d)
    right = a.iff(c) & (b | d)
    fused = left.and_exists(right, ["a", "c"])
    naive = (left & right).exists(["a", "c"])
    assert fused.node == naive.node


def test_rename(manager):
    a, b = manager.variable("a"), manager.variable("b")
    renamed = (a & ~b).rename({"a": "c", "b": "d"})
    assert renamed.support() == {"c", "d"}
    assert renamed.evaluate({"c": True, "d": False})


def test_restrict(manager):
    a, b = manager.variable("a"), manager.variable("b")
    assert (a & b).restrict({"a": True}).node == b.node
    assert (a & b).restrict({"a": False}).is_false


def test_support_and_dag_size(manager):
    a, b, c = manager.variable("a"), manager.variable("b"), manager.variable("c")
    function = (a & b) | c
    assert function.support() == {"a", "b", "c"}
    assert function.dag_size() >= 3
    assert manager.true().dag_size() == 0


def test_pick_assignment(manager):
    a, b = manager.variable("a"), manager.variable("b")
    assert (a & ~b).pick_assignment() == {"a": True, "b": False}
    assert manager.false().pick_assignment() is None
    chosen = (a | b).pick_assignment()
    assert (a | b).evaluate({"a": False, "b": False, **chosen})


def test_count_assignments(manager):
    a, b, c, d = (manager.variable(name) for name in NAMES)
    assert manager.true().count_assignments() == 16
    assert (a & b).count_assignments() == 4
    assert (a | b).count_assignments(["a", "b"]) == 3


def test_iter_assignments(manager):
    a, b = manager.variable("a"), manager.variable("b")
    models = list((a ^ b).iter_assignments(["a", "b"]))
    assert len(models) == 2
    assert {frozenset(m.items()) for m in models} == {
        frozenset({("a", True), ("b", False)}.items() if False else {("a", True), ("b", False)}),
        frozenset({("a", False), ("b", True)}),
    }


def test_no_implicit_truthiness(manager):
    with pytest.raises(TypeError):
        bool(manager.true())


def test_duplicate_variable_rejected(manager):
    with pytest.raises(ValueError):
        manager.add_variable("a")


def test_ordering_helpers():
    assert interleaved_pairs(["x0", "x1"]) == ["x0", "x0'", "x1", "x1'"]
    ordered = order_by_first_use(["p", "q", "r"], [["r"], ["q", "p"]])
    assert ordered == ["r", "p", "q"] or ordered == ["r", "q", "p"]


# -- property-based equivalence with Python boolean evaluation -------------------------


@st.composite
def boolean_exprs(draw, depth=3):
    if depth == 0 or draw(st.booleans()):
        return ("var", draw(st.sampled_from(NAMES)))
    op = draw(st.sampled_from(["and", "or", "not", "xor"]))
    if op == "not":
        return ("not", draw(boolean_exprs(depth=depth - 1)))
    return (op, draw(boolean_exprs(depth=depth - 1)), draw(boolean_exprs(depth=depth - 1)))


def build_bdd(manager, expr):
    if expr[0] == "var":
        return manager.variable(expr[1])
    if expr[0] == "not":
        return ~build_bdd(manager, expr[1])
    left, right = build_bdd(manager, expr[1]), build_bdd(manager, expr[2])
    return {"and": left & right, "or": left | right, "xor": left ^ right}[expr[0]]


def eval_expr(expr, assignment):
    if expr[0] == "var":
        return assignment[expr[1]]
    if expr[0] == "not":
        return not eval_expr(expr[1], assignment)
    left, right = eval_expr(expr[1], assignment), eval_expr(expr[2], assignment)
    return {"and": left and right, "or": left or right, "xor": left != right}[expr[0]]


@given(boolean_exprs())
def test_bdd_matches_boolean_semantics(expr):
    manager = BDDManager(NAMES)
    function = build_bdd(manager, expr)
    for bits in itertools.product((False, True), repeat=len(NAMES)):
        assignment = dict(zip(NAMES, bits))
        assert function.evaluate(assignment) == eval_expr(expr, assignment)


@given(boolean_exprs(), st.sampled_from(NAMES))
def test_quantification_property(expr, name):
    manager = BDDManager(NAMES)
    function = build_bdd(manager, expr)
    exists = function.exists([name])
    forall = function.forall([name])
    for bits in itertools.product((False, True), repeat=len(NAMES)):
        assignment = dict(zip(NAMES, bits))
        either = any(
            function.evaluate({**assignment, name: value}) for value in (False, True)
        )
        both = all(
            function.evaluate({**assignment, name: value}) for value in (False, True)
        )
        assert exists.evaluate(assignment) == either
        assert forall.evaluate(assignment) == both
