"""Negation of Lµ formulas (end of Section 4).

For cycle-free formulas over finite focused trees the least and greatest
fixpoints coincide (Lemma 4.2), so the logic restricted to least fixpoints is
closed under negation using De Morgan's dualities extended to modalities and
fixpoints::

    ¬⟨a⟩ϕ              =  ¬⟨a⟩⊤ ∨ ⟨a⟩¬ϕ
    ¬(µ Xᵢ = ϕᵢ in ψ)  =  µ Xᵢ = ¬ϕᵢ{Xᵢ/¬Xᵢ} in ¬ψ{Xᵢ/¬Xᵢ}

The substitution ``{Xᵢ/¬Xᵢ}`` is realised by simply *not* negating bound
recursion variables: after the transformation the variable stands for the
complement of its original interpretation.  Negating a formula with free
recursion variables is therefore rejected.
"""

from __future__ import annotations

from repro.core.errors import ReproError
from repro.logic import syntax as sx


class NegationError(ReproError):
    """Raised when asked to negate a formula with free recursion variables."""


def negate(formula: sx.Formula) -> sx.Formula:
    """Return the negation of ``formula`` in negation normal form."""
    return _negate(formula, flipped=frozenset(), cache={})


def _negate(
    formula: sx.Formula,
    flipped: frozenset[str],
    cache: dict[tuple[int, frozenset[str]], sx.Formula],
) -> sx.Formula:
    key = (id(formula), flipped)
    cached = cache.get(key)
    if cached is not None:
        return cached
    kind = formula.kind
    if kind == sx.KIND_TRUE:
        result = sx.FALSE
    elif kind == sx.KIND_FALSE:
        result = sx.TRUE
    elif kind == sx.KIND_PROP:
        result = sx.nprop(formula.label)
    elif kind == sx.KIND_NPROP:
        result = sx.prop(formula.label)
    elif kind == sx.KIND_ATTR:
        result = sx.nattr(formula.label)
    elif kind == sx.KIND_NATTR:
        result = sx.attr(formula.label)
    elif kind == sx.KIND_START:
        result = sx.NSTART
    elif kind == sx.KIND_NSTART:
        result = sx.START
    elif kind == sx.KIND_VAR:
        if formula.label not in flipped:
            raise NegationError(
                f"cannot negate free recursion variable {formula.label!r}; "
                "negation is only defined for closed formulas"
            )
        # The variable now denotes the complement of its original meaning.
        result = formula
    elif kind == sx.KIND_OR:
        result = sx.mk_and(
            _negate(formula.left, flipped, cache), _negate(formula.right, flipped, cache)
        )
    elif kind == sx.KIND_AND:
        result = sx.mk_or(
            _negate(formula.left, flipped, cache), _negate(formula.right, flipped, cache)
        )
    elif kind == sx.KIND_DIA:
        if formula.left is sx.TRUE:
            result = sx.no_dia(formula.prog)
        else:
            result = sx.mk_or(
                sx.no_dia(formula.prog),
                sx.dia(formula.prog, _negate(formula.left, flipped, cache)),
            )
    elif kind == sx.KIND_NDIA:
        result = sx.dia(formula.prog, sx.TRUE)
    elif kind in (sx.KIND_MU, sx.KIND_NU):
        new_flipped = flipped | {name for name, _ in formula.defs}
        new_defs = tuple(
            (name, _negate(definition, new_flipped, cache))
            for name, definition in formula.defs
        )
        new_body = _negate(formula.body, new_flipped, cache)
        # On finite focused trees the two fixpoints coincide for cycle-free
        # formulas (Lemma 4.2); the rest of the system only manipulates µ, so
        # the dual of either fixpoint is produced as a µ as well.
        result = sx.mu(new_defs, new_body) if new_defs else new_body
    else:  # pragma: no cover - defensive
        raise AssertionError(f"unknown formula kind {kind!r}")
    cache[key] = result
    return result


def implies_formula(left: sx.Formula, right: sx.Formula) -> sx.Formula:
    """The formula ``left ∧ ¬right`` whose unsatisfiability witnesses ``left ⟹ right``.

    This is the containment test of Section 8: ``e₁ ⊆ e₂`` holds exactly when
    ``ϕ₁ ∧ ¬ϕ₂`` has no satisfying finite focused tree.
    """
    return sx.mk_and(left, negate(right))
