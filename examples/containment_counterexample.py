"""The worked example of the paper (Section 6.3, Figure 18).

Checks whether ``child::c/preceding-sibling::a[b]`` is contained in
``child::c[b]``.  It is not: the solver builds a counterexample tree of depth
3 — a context node with an ``a`` child (itself having a ``b`` child) followed
by a ``c`` child — exactly the tree shown in Figure 18.

Run with::

    python examples/containment_counterexample.py
"""

from repro import check_containment, parse_xpath, select, serialize_tree
from repro.logic.printer import format_formula
from repro.xpath.compile import compile_xpath

QUERY_1 = "child::c/preceding-sibling::a[child::b]"
QUERY_2 = "child::c[child::b]"


def main() -> None:
    print("query 1:", QUERY_1)
    print("query 2:", QUERY_2)
    print()
    print("translation of query 1:", format_formula(compile_xpath(QUERY_1)))
    print("translation of query 2:", format_formula(compile_xpath(QUERY_2)))
    print()

    result = check_containment(QUERY_1, QUERY_2)
    print(result.describe())
    stats = result.solver_result.statistics
    print(f"lean size: {stats.lean_size}, fixpoint iterations: {stats.iterations}")

    document = result.counterexample
    print("counterexample document:", serialize_tree(document))
    print("pretty-printed:")
    print(serialize_tree(document, indent=2))

    # Double-check the counterexample against the XPath interpreter: the first
    # query selects a node that the second one misses.
    selected_1 = select(parse_xpath(QUERY_1), document)
    selected_2 = select(parse_xpath(QUERY_2), document)
    print("selected by query 1:", sorted(f.name for f in selected_1))
    print("selected by query 2:", sorted(f.name for f in selected_2))

    # The reverse containment does not hold either.
    print(check_containment(QUERY_2, QUERY_1).describe())


if __name__ == "__main__":
    main()
