"""Tests of the decision problems of Section 8 (analysis API)."""

import pytest

from repro.analysis import (
    Analyzer,
    check_containment,
    check_coverage,
    check_emptiness,
    check_equivalence,
    check_overlap,
    check_satisfiability,
    check_type_inclusion,
)
from repro.xmltypes.dtd import parse_dtd
from repro.xpath.parser import parse_xpath
from repro.xpath.semantics import select

from conftest import assert_genuine_counterexample

SIMPLE_DTD = parse_dtd(
    "<!ELEMENT r (a*, b?)><!ELEMENT a (c)><!ELEMENT b EMPTY><!ELEMENT c EMPTY>",
    root="r",
)


def test_satisfiability_and_emptiness_without_type():
    assert check_satisfiability("child::a").holds
    assert not check_emptiness("child::a").holds
    # self::a intersected with self::b can never select anything.
    assert check_emptiness("self::a ∩ self::b").holds


def test_satisfiability_under_type_constraint():
    # Under the simple DTD, an "a" node always has a "c" child ...
    assert check_satisfiability("child::a[c]", SIMPLE_DTD).holds
    # ... and never has a "b" child.
    assert check_emptiness("child::a[b]", SIMPLE_DTD).holds


def test_containment_positive_and_negative():
    assert check_containment("child::a", "child::*").holds
    negative = check_containment("child::*", "child::a")
    assert not negative.holds
    assert_genuine_counterexample(negative)


def test_containment_counterexample_is_genuine():
    result = check_containment("child::c/preceding-sibling::a[child::b]", "child::c[child::b]")
    assert not result.holds
    document = assert_genuine_counterexample(result)
    bigger = select(parse_xpath("child::c/preceding-sibling::a[child::b]"), document)
    smaller = select(parse_xpath("child::c[child::b]"), document)
    assert bigger - smaller, "counterexample does not separate the two queries"


def test_containment_under_types():
    # Under the DTD the only children an "a" element may have are "c" elements,
    # so the containment holds with the type constraint and fails without it.
    assert check_containment(
        "child::a/child::*", "child::a/child::c", type1=SIMPLE_DTD, type2=SIMPLE_DTD
    ).holds
    assert not check_containment("child::a/child::*", "child::a/child::c").holds


def test_equivalence():
    forward, backward = check_equivalence("child::a[b]", "child::a[child::b]")
    assert forward.holds and backward.holds
    forward, backward = check_equivalence("child::a", "child::*")
    assert forward.holds and not backward.holds


def test_overlap():
    assert check_overlap("child::a", "child::*[not(b)]").holds
    assert not check_overlap("child::a", "child::b").holds


def test_coverage():
    assert check_coverage("child::*", ["child::a", "child::*[not(self::a)]"]).holds
    result = check_coverage("child::*", ["child::a", "child::b"])
    assert not result.holds
    assert_genuine_counterexample(result)


def test_type_inclusion():
    output_type = parse_dtd("<!ELEMENT a (c)><!ELEMENT c EMPTY>", root="a")
    assert check_type_inclusion("child::a", SIMPLE_DTD, output_type).holds
    wrong_output = parse_dtd("<!ELEMENT a EMPTY>", root="a")
    assert not check_type_inclusion("child::a", SIMPLE_DTD, wrong_output).holds


def test_analyzer_describe_and_timing():
    result = Analyzer().containment("child::a", "child::*")
    assert result.time_ms >= 0.0
    assert "containment" in result.describe()


def test_analyzer_accepts_parsed_expressions_and_formulas():
    from repro.xmltypes.compile import compile_dtd

    expr = parse_xpath("child::a")
    type_formula = compile_dtd(SIMPLE_DTD)
    assert Analyzer().satisfiability(expr, type_formula).holds
