"""Tests of the denotational semantics of XPath (Figures 5 and 6)."""

import pytest

from repro.trees.unranked import parse_tree
from repro.xpath.parser import parse_xpath
from repro.xpath.semantics import select, select_labels

DOC = parse_tree(
    "<library!>"
    "<book><title/><chapter><section/><section><note/></section></chapter></book>"
    "<book><chapter/></book>"
    "<journal><title/></journal>"
    "</library>"
)


def labels(expr_text, document=DOC):
    return select_labels(parse_xpath(expr_text), document)


def test_child_axis():
    assert labels("book") == ["book", "book"]
    assert labels("child::journal") == ["journal"]


def test_child_with_star():
    assert labels("*") == ["book", "book", "journal"]


def test_path_composition():
    assert labels("book/chapter/section") == ["section", "section"]


def test_descendant_and_descendant_or_self():
    assert labels("descendant::section") == ["section", "section"]
    assert labels("book//note") == ["note"]


def test_parent_and_ancestor():
    marked = DOC.unmark_all().mark_at((0, 1, 1, 0))  # the note node
    assert labels("parent::*", marked) == ["section"]
    assert labels("ancestor::book", marked) == ["book"]
    assert labels("ancestor-or-self::*", marked) == [
        "library",
        "book",
        "chapter",
        "section",
        "note",
    ]


def test_sibling_axes():
    marked = DOC.unmark_all().mark_at((0, 1, 0))  # first section
    assert labels("following-sibling::*", marked) == ["section"]
    marked2 = DOC.unmark_all().mark_at((0, 1, 1))  # second section
    assert labels("preceding-sibling::*", marked2) == ["section"]


def test_following_and_preceding():
    marked = DOC.unmark_all().mark_at((0, 0))  # the title of the first book
    following = labels("following::*", marked)
    assert "chapter" in following and "journal" in following
    assert "library" not in following and "title" not in following[:1] or True
    marked2 = DOC.unmark_all().mark_at((2,))  # journal
    preceding = labels("preceding::*", marked2)
    assert "book" in preceding and "note" in preceding
    assert "library" not in preceding


def test_self_axis_and_qualifier():
    assert labels("self::*") == ["library"]
    assert labels("book[chapter/section]") == ["book"]
    assert labels("book[not(chapter/section)]") == ["book"]


def test_qualifier_with_and_or():
    assert labels("book[title and chapter]") == ["book"]
    assert labels("*[title or chapter]") == ["book", "book", "journal"]


def test_absolute_path_ignores_mark_position():
    marked_deep = DOC.unmark_all().mark_at((0, 1, 1, 0))
    assert labels("/book/title", marked_deep) == ["title"]


def test_union_and_intersection():
    assert labels("book | journal") == ["book", "book", "journal"]
    assert labels("*[title] ∩ book") == ["book"]


def test_path_union_in_the_middle():
    assert labels("book/(title | chapter)") == ["title", "chapter", "chapter"]


def test_select_requires_a_marked_document():
    with pytest.raises(ValueError):
        select(parse_xpath("a"), parse_tree("<a><b/></a>"))


def test_primer_example_from_section5():
    # /child::book/child::chapter/child::section from the paper's primer text.
    document = parse_tree(
        "<book!><chapter><section/></chapter><chapter><section/><section/></chapter></book>"
    )
    assert labels("/child::chapter/child::section", document) == ["section"] * 3
