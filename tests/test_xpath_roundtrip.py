"""Parse→print→parse round-trip property of the XPath printer.

The printer must be the left inverse of the parser up to AST equality:
``parse_xpath(str(e)) == e`` for every expression the fragment accepts.  This
caught a real precedence bug — ``a[(b or c) and d]`` used to print as
``a[b or c and d]``, which re-parses as ``a[b or (c and d)]``.
"""

import pytest

from repro.xpath import ast as xp
from repro.xpath.parser import parse_xpath

#: The benchmark queries of Figure 21 (same corpus as the integration tests).
FIGURE_21 = [
    "/a[.//b[c/*//d]/b[c//d]/b[c/d]]",
    "/a[.//b[c/*//d]/b[c/d]]",
    "a/b//c/foll-sibling::d/e",
    "a/b//d[prec-sibling::c]/e",
    "a/c/following::d/e",
    "a/b[//c]/following::d/e ∩ a/d[preceding::c]/e",
    "*//switch[ancestor::head]//seq//audio[prec-sibling::video]",
    "descendant::a[ancestor::a]",
    "/descendant::*",
    "html/(head | body)",
    "html/head/descendant::*",
    "html/body/descendant::*",
]

#: The bench-query corpus: every Figure 21 query plus expressions exercising
#: each printer production (qualifier precedence, attributes, absolute
#: qualifier paths, unions, intersections, qualified names).
CORPUS = FIGURE_21 + [
    "a[(b or c) and d]",
    "a[b or (c and d)]",
    "a[(b or c) and (d or e)]",
    "a[not(b or c) and d]",
    "a[not((b and c) or d)]",
    "a[b and c and d]",
    "a[b or c or d]",
    "a[@href]",
    "a[@href and (b or @name)]",
    "a/@href",
    "a/@*",
    "attribute::xml:lang",
    "xsl:template[xsl:param]",
    "a[not(@alt)]",
    "a[//b]",
    "a[/b/c]",
    "a[.//b]",
    "a[//b and .//c]",
    "descendant::a[@href][ancestor::a[@href]]",
    "a | b intersect c",
    "html/(head | body)[meta]",
    "a[b][c][d]",
    "..[a]/*[b]",
]


@pytest.mark.parametrize("text", CORPUS)
def test_parse_print_parse_is_identity(text):
    expr = parse_xpath(text)
    printed = str(expr)
    assert parse_xpath(printed) == expr
    # And printing is a fixpoint after one round.
    assert str(parse_xpath(printed)) == printed


def test_or_under_and_is_parenthesised():
    expr = parse_xpath("a[(b or c) and d]")
    qualifier = expr.path.qualifier
    assert isinstance(qualifier, xp.QualifierAnd)
    assert isinstance(qualifier.left, xp.QualifierOr)
    assert "(" in str(expr)
    assert parse_xpath(str(expr)) == expr


def test_wrong_precedence_reading_is_a_different_ast():
    assert parse_xpath("a[(b or c) and d]") != parse_xpath("a[b or c and d]")


#: Seeds for the generator-driven property: each drives one random
#: expression over a small element/attribute alphabet, with attribute steps
#: and nested qualifiers included (see repro.testing.generators).
GENERATOR_SEEDS = range(60)


@pytest.mark.parametrize("seed", GENERATOR_SEEDS)
def test_generated_expressions_round_trip(seed):
    import random

    from repro.testing.generators import GeneratorConfig, gen_xpath

    rng = random.Random(seed)
    expr = gen_xpath(rng, ("a", "b", "c"), ("p", "q"), GeneratorConfig())
    printed = str(expr)
    assert parse_xpath(printed) == expr, printed
    assert str(parse_xpath(printed)) == printed


def test_generated_qualifier_nesting_round_trips():
    # Right-nested connectives used to print flat and re-parse left-nested;
    # the printer now parenthesises them (found by generator coverage).
    right_nested_and = xp.RelativePath(
        xp.QualifiedPath(
            xp.Step(xp.Axis.CHILD, "a"),
            xp.QualifierAnd(
                xp.QualifierPath(xp.Step(xp.Axis.CHILD, "b")),
                xp.QualifierAnd(
                    xp.QualifierPath(xp.Step(xp.Axis.CHILD, "c")),
                    xp.QualifierPath(xp.Step(xp.Axis.CHILD, "d")),
                ),
            ),
        )
    )
    assert parse_xpath(str(right_nested_and)) == right_nested_and
    assert str(right_nested_and) == "child::a[child::b and (child::c and child::d)]"
    right_nested_or = xp.RelativePath(
        xp.QualifiedPath(
            xp.Step(xp.Axis.CHILD, "a"),
            xp.QualifierOr(
                xp.QualifierPath(xp.Step(xp.Axis.CHILD, "b")),
                xp.QualifierOr(
                    xp.QualifierPath(xp.Step(xp.Axis.CHILD, "c")),
                    xp.QualifierPath(xp.Step(xp.Axis.CHILD, "d")),
                ),
            ),
        )
    )
    assert parse_xpath(str(right_nested_or)) == right_nested_or


def test_manual_ast_round_trips():
    expr = xp.RelativePath(
        xp.QualifiedPath(
            xp.Step(xp.Axis.CHILD, "a"),
            xp.QualifierAnd(
                xp.QualifierOr(
                    xp.QualifierPath(xp.Step(xp.Axis.CHILD, "b")),
                    xp.QualifierPath(xp.AttributeStep("href")),
                ),
                xp.QualifierNot(
                    xp.QualifierPath(xp.Step(xp.Axis.DESCENDANT, None), absolute=True)
                ),
            ),
        )
    )
    assert parse_xpath(str(expr)) == expr
