"""Batch façade benchmark — amortised reuse across repeated Table 2 queries.

A realistic analysis workload (editor, optimiser, validation service) issues
the same family of decision problems over and over against the same schemas.
This benchmark replays the fast rows of Table 2 several times and compares

* the **cold path** — a fresh :class:`repro.api.StaticAnalyzer` per query, so
  every query re-translates and re-solves from scratch (this is what calling
  the one-shot helpers of :mod:`repro.analysis` in a loop costs), against
* the **batched path** — one analyzer answering the whole workload via
  :meth:`repro.api.StaticAnalyzer.solve_many`, sharing type translations,
  query translations and solver verdicts.

The measured speedup is asserted to be at least 1.5× and written to
``BENCH_api_batch.json`` together with the per-path timings so the perf
trajectory stays machine-readable across PRs.
"""

import time

from conftest import FIGURE_21, write_bench_json, write_report
from repro.api import Query, StaticAnalyzer

#: How many times the workload repeats each Table 2 query.
_REPEATS = 3

#: Minimum required advantage of the batched path over cold per-query solves.
_REQUIRED_SPEEDUP = 1.5


def _table2_queries() -> list[Query]:
    """The fast rows of Table 2 (the SMIL/XHTML rows live in the slow suite)."""
    return [
        Query.containment(FIGURE_21["e1"], FIGURE_21["e2"]),
        Query.containment(FIGURE_21["e2"], FIGURE_21["e1"]),
        Query.equivalence(FIGURE_21["e3"], FIGURE_21["e4"]),
        Query.containment(FIGURE_21["e6"], FIGURE_21["e5"]),
        Query.satisfiability("child::meta/child::title", "wikipedia"),
        Query.containment("child::history", "child::history[edit]", "wikipedia", "wikipedia"),
    ]


def test_api_batch_speedup():
    workload = _table2_queries() * _REPEATS

    # Cold path: a fresh analyzer per query — no sharing whatsoever.
    cold_started = time.perf_counter()
    cold_outcomes = [StaticAnalyzer().solve(query) for query in workload]
    cold_seconds = time.perf_counter() - cold_started

    # Batched path: one analyzer for the whole workload.
    analyzer = StaticAnalyzer()
    report = analyzer.solve_many(workload)
    batch_seconds = report.total_seconds

    # Both paths must agree on every verdict.
    for cold, batched in zip(cold_outcomes, report.outcomes):
        assert cold.holds == batched.holds, cold.problem

    speedup = cold_seconds / batch_seconds
    lines = [
        f"workload: {len(workload)} queries ({_REPEATS}x Table 2 fast rows)",
        f"cold per-query solves: {cold_seconds * 1000:8.1f} ms",
        f"batched solve_many:    {batch_seconds * 1000:8.1f} ms "
        f"({report.solver_runs} solver runs, {report.cache_hits} cache hits)",
        f"speedup: {speedup:.2f}x (required >= {_REQUIRED_SPEEDUP}x)",
    ]
    write_report("api_batch", lines)
    write_bench_json(
        "api_batch",
        {
            "benchmark": "StaticAnalyzer.solve_many vs cold per-query solves",
            "workload_queries": len(workload),
            "repeats": _REPEATS,
            "cold_seconds": round(cold_seconds, 6),
            "batch_seconds": round(batch_seconds, 6),
            "speedup": round(speedup, 3),
            "required_speedup": _REQUIRED_SPEEDUP,
            "solver_runs": report.solver_runs,
            "cache_hits": report.cache_hits,
            "cache_statistics": analyzer.cache_statistics(),
            "outcomes": [
                {"problem": outcome.problem, "holds": outcome.holds}
                for outcome in report.outcomes[: len(workload) // _REPEATS]
            ],
        },
    )
    assert speedup >= _REQUIRED_SPEEDUP, (
        f"batched path only {speedup:.2f}x faster than cold solves "
        f"(cold {cold_seconds:.3f}s vs batch {batch_seconds:.3f}s)"
    )
