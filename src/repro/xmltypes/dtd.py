"""A DTD parser covering the subset relevant to the paper's data model.

Supported declarations:

* ``<!ELEMENT name content-spec>`` with content specifications ``EMPTY``,
  ``ANY``, mixed content ``(#PCDATA | a | b)*`` and children content models
  built from sequences ``,``, choices ``|`` and the ``?``, ``*``, ``+``
  occurrence operators;
* ``<!ENTITY % name "replacement">`` parameter entities and their references
  ``%name;`` (the XHTML DTD makes heavy use of them, both in content models
  and in attribute lists);
* ``<!ATTLIST element (name type default)*>`` declarations, with the types
  ``CDATA``, the tokenised types (``ID``, ``IDREF``, ``NMTOKEN``, ...),
  ``NOTATION`` lists and enumerations, and the defaults ``#REQUIRED``,
  ``#IMPLIED``, ``#FIXED "v"`` and plain default values.  Attribute *values*
  stay outside the data model: the analyses only use which attributes an
  element declares and which of them are required.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field

from repro.core.errors import ParseError
from repro.xmltypes import content as cm


@dataclass(frozen=True)
class ElementDeclaration:
    """One ``<!ELEMENT ...>`` declaration."""

    name: str
    content: cm.ContentModel


#: Attribute default kinds (the ``DefaultDecl`` production of XML 1.0).
REQUIRED = "#REQUIRED"
IMPLIED = "#IMPLIED"
FIXED = "#FIXED"
DEFAULTED = "#DEFAULT"


@dataclass(frozen=True)
class AttributeDeclaration:
    """One attribute definition from an ``<!ATTLIST ...>`` declaration.

    ``attribute_type`` is the declared type keyword (``CDATA``, ``ID``, ...)
    or ``"enumeration"`` for ``(tok | tok | ...)`` lists, whose tokens are
    kept in ``values``.  ``default`` is one of :data:`REQUIRED`,
    :data:`IMPLIED`, :data:`FIXED` or :data:`DEFAULTED`; ``value`` holds the
    fixed/default attribute value when one was declared.
    """

    name: str
    attribute_type: str = "CDATA"
    values: tuple[str, ...] = ()
    default: str = IMPLIED
    value: str | None = None

    @property
    def required(self) -> bool:
        """Whether a valid element must carry the attribute.

        Only ``#REQUIRED`` forces the attribute to be physically present;
        ``#FIXED`` and plain defaults are supplied by validators, so their
        attributes may be absent from the serialised document.
        """
        return self.default == REQUIRED


@dataclass
class DTD:
    """A parsed DTD: element and attribute declarations plus a designated root."""

    elements: dict[str, ElementDeclaration] = field(default_factory=dict)
    root: str | None = None
    name: str = "dtd"
    #: Attribute declarations per element name, in declaration order.
    attlists: dict[str, tuple[AttributeDeclaration, ...]] = field(default_factory=dict)

    def element_names(self) -> tuple[str, ...]:
        """Declared element names, in declaration order."""
        return tuple(self.elements)

    def content_of(self, name: str) -> cm.ContentModel:
        return self.elements[name].content

    def attributes_of(self, name: str) -> tuple[AttributeDeclaration, ...]:
        """The attribute declarations of an element (empty when none)."""
        return self.attlists.get(name, ())

    def attribute_names(self) -> tuple[str, ...]:
        """Every attribute name declared anywhere in the DTD, sorted."""
        return tuple(
            sorted({decl.name for decls in self.attlists.values() for decl in decls})
        )

    def declares_attribute(self, element: str, attribute: str) -> bool:
        return any(decl.name == attribute for decl in self.attributes_of(element))

    def required_attributes(self, element: str) -> tuple[str, ...]:
        """The ``#REQUIRED`` attribute names of an element, in order."""
        return tuple(
            decl.name for decl in self.attributes_of(element) if decl.required
        )

    def with_root(self, root: str) -> "DTD":
        """A copy of the DTD with a different designated root element."""
        if root not in self.elements:
            raise ValueError(f"element {root!r} is not declared by this DTD")
        return DTD(
            elements=dict(self.elements),
            root=root,
            name=self.name,
            attlists=dict(self.attlists),
        )

    def symbol_count(self) -> int:
        """Number of element symbols (the "Symbols" column of Table 1)."""
        return len(self.elements)


_COMMENT_RE = re.compile(r"<!--.*?-->", re.DOTALL)
_ENTITY_RE = re.compile(r'<!ENTITY\s+%\s+([\w.\-]+)\s+"([^"]*)"\s*>')
# The body may contain '>' inside quoted default values (legal per XML 1.0),
# so the declaration only ends at a '>' outside quotes.
_ATTLIST_RE = re.compile(r"<!ATTLIST\s+((?:[^>\"']|\"[^\"]*\"|'[^']*')*)>", re.DOTALL)
_ELEMENT_RE = re.compile(r"<!ELEMENT\s+([\w.\-:]+)\s+(.*?)>", re.DOTALL)
_PE_REF_RE = re.compile(r"%([\w.\-]+);")
_NAME_RE = re.compile(r"[\w.\-:]+")


def parse_dtd(text: str, root: str | None = None, name: str = "dtd") -> DTD:
    """Parse DTD text into a :class:`DTD`.

    ``root`` designates the document element; when omitted it defaults to the
    first declared element.
    """
    without_comments = _COMMENT_RE.sub(" ", text)

    entities: dict[str, str] = {}
    for match in _ENTITY_RE.finditer(without_comments):
        entities[match.group(1)] = match.group(2)

    def expand(value: str, depth: int = 0) -> str:
        if depth > 50:
            raise ParseError("parameter entities nested too deeply (cycle?)")
        result = _PE_REF_RE.sub(
            lambda m: expand(entities.get(m.group(1), ""), depth + 1), value
        )
        return result

    stripped = _ENTITY_RE.sub(" ", without_comments)

    dtd = DTD(name=name)
    for match in _ATTLIST_RE.finditer(stripped):
        element_name, declarations = _parse_attlist(expand(match.group(1)))
        # Per XML 1.0 (section 3.3), later declarations of the same attribute
        # are ignored and multiple ATTLISTs for one element are merged.
        merged = list(dtd.attlists.get(element_name, ()))
        known = {declaration.name for declaration in merged}
        for declaration in declarations:
            if declaration.name not in known:
                merged.append(declaration)
                known.add(declaration.name)
        dtd.attlists[element_name] = tuple(merged)

    stripped = _ATTLIST_RE.sub(" ", stripped)
    for match in _ELEMENT_RE.finditer(stripped):
        element_name = match.group(1)
        spec = expand(match.group(2)).strip()
        model = _parse_content_spec(spec, element_name)
        dtd.elements[element_name] = ElementDeclaration(element_name, model)
    if not dtd.elements:
        raise ParseError("no <!ELEMENT> declaration found in DTD")
    dtd.root = root if root is not None else next(iter(dtd.elements))
    if dtd.root not in dtd.elements:
        raise ParseError(f"designated root element {dtd.root!r} is not declared")

    # ANY content models need the full element list; resolve them now.
    any_elements = [
        name_ for name_, declaration in dtd.elements.items()
        if isinstance(declaration.content, _AnyPlaceholder)
    ]
    if any_elements:
        every = cm.CStar(cm.choice([cm.CSymbol(n) for n in dtd.elements]))
        for name_ in any_elements:
            dtd.elements[name_] = ElementDeclaration(name_, every)
    return dtd


@dataclass(frozen=True)
class _AnyPlaceholder(cm.CEmpty):
    """Marker for ``ANY`` content, resolved once all elements are known."""


def _parse_content_spec(spec: str, element_name: str) -> cm.ContentModel:
    spec = spec.strip()
    if spec == "EMPTY":
        return cm.CEmpty()
    if spec == "ANY":
        return _AnyPlaceholder()
    parser = _ContentParser(spec, element_name)
    model = parser.parse()
    return model


#: The non-enumerated attribute types of XML 1.0.
_ATTRIBUTE_TYPE_KEYWORDS = (
    "CDATA",
    "IDREFS",
    "IDREF",
    "ID",
    "ENTITIES",
    "ENTITY",
    "NMTOKENS",
    "NMTOKEN",
)


class _AttlistParser:
    """Scanner for the body of an (entity-expanded) ``<!ATTLIST ...>``."""

    def __init__(self, text: str):
        self.text = text
        self.pos = 0

    def error(self, message: str) -> ParseError:
        return ParseError(f"in <!ATTLIST ...>: {message}", self.pos, self.text)

    def skip_ws(self) -> None:
        while self.pos < len(self.text) and self.text[self.pos].isspace():
            self.pos += 1

    def at_end(self) -> bool:
        self.skip_ws()
        return self.pos >= len(self.text)

    def read_name(self) -> str:
        self.skip_ws()
        match = _NAME_RE.match(self.text, self.pos)
        if match is None:
            raise self.error("expected a name")
        self.pos = match.end()
        return match.group(0)

    def accept(self, string: str) -> bool:
        self.skip_ws()
        if self.text.startswith(string, self.pos):
            self.pos += len(string)
            return True
        return False

    def read_quoted(self) -> str:
        self.skip_ws()
        if self.pos >= len(self.text) or self.text[self.pos] not in "\"'":
            raise self.error("expected a quoted attribute value")
        quote = self.text[self.pos]
        closing = self.text.find(quote, self.pos + 1)
        if closing < 0:
            raise self.error("unterminated attribute value")
        value = self.text[self.pos + 1:closing]
        self.pos = closing + 1
        return value

    def read_enumeration(self) -> tuple[str, ...]:
        tokens = [self.read_name()]
        while self.accept("|"):
            tokens.append(self.read_name())
        if not self.accept(")"):
            raise self.error("expected ')' closing an enumeration")
        return tuple(tokens)

    def read_declaration(self) -> AttributeDeclaration:
        attribute_name = self.read_name()
        values: tuple[str, ...] = ()
        if self.accept("("):
            attribute_type = "enumeration"
            values = self.read_enumeration()
        else:
            keyword = self.read_name()
            if keyword == "NOTATION":
                if not self.accept("("):
                    raise self.error("expected '(' after NOTATION")
                attribute_type = "NOTATION"
                values = self.read_enumeration()
            elif keyword in _ATTRIBUTE_TYPE_KEYWORDS:
                attribute_type = keyword
            else:
                raise self.error(f"unknown attribute type {keyword!r}")
        default = IMPLIED
        value: str | None = None
        if self.accept("#REQUIRED"):
            default = REQUIRED
        elif self.accept("#IMPLIED"):
            default = IMPLIED
        elif self.accept("#FIXED"):
            default = FIXED
            value = self.read_quoted()
        else:
            default = DEFAULTED
            value = self.read_quoted()
        return AttributeDeclaration(
            name=attribute_name,
            attribute_type=attribute_type,
            values=values,
            default=default,
            value=value,
        )


def _parse_attlist(text: str) -> tuple[str, tuple[AttributeDeclaration, ...]]:
    """Parse the (entity-expanded) body of an ``<!ATTLIST ...>`` declaration."""
    parser = _AttlistParser(text.strip())
    element_name = parser.read_name()
    declarations: list[AttributeDeclaration] = []
    while not parser.at_end():
        declarations.append(parser.read_declaration())
    return element_name, tuple(declarations)


class _ContentParser:
    """Recursive-descent parser for children and mixed content models."""

    def __init__(self, text: str, element_name: str):
        self.text = text
        self.element_name = element_name
        self.pos = 0

    def error(self, message: str) -> ParseError:
        return ParseError(
            f"in content model of <!ELEMENT {self.element_name}>: {message}",
            self.pos,
            self.text,
        )

    def skip_ws(self) -> None:
        while self.pos < len(self.text) and self.text[self.pos].isspace():
            self.pos += 1

    def at(self, string: str) -> bool:
        self.skip_ws()
        return self.text.startswith(string, self.pos)

    def accept(self, string: str) -> bool:
        if self.at(string):
            self.pos += len(string)
            return True
        return False

    def expect(self, string: str) -> None:
        if not self.accept(string):
            raise self.error(f"expected {string!r}")

    def read_name(self) -> str:
        self.skip_ws()
        match = _NAME_RE.match(self.text, self.pos)
        if match is None:
            raise self.error("expected an element name")
        self.pos = match.end()
        return match.group(0)

    def parse(self) -> cm.ContentModel:
        model = self._parse_particle()
        self.skip_ws()
        if self.pos != len(self.text):
            raise self.error("trailing characters in content model")
        return model

    def _parse_particle(self) -> cm.ContentModel:
        self.skip_ws()
        if self.accept("("):
            inner = self._parse_group_body()
            self.expect(")")
            return self._parse_occurrence(inner)
        if self.accept("#PCDATA"):
            return cm.CEmpty()
        name = self.read_name()
        return self._parse_occurrence(cm.CSymbol(name))

    def _parse_group_body(self) -> cm.ContentModel:
        first = self._parse_particle()
        self.skip_ws()
        if self.at("|"):
            parts = [first]
            while self.accept("|"):
                parts.append(self._parse_particle())
            return cm.choice(parts)
        if self.at(","):
            parts = [first]
            while self.accept(","):
                parts.append(self._parse_particle())
            return cm.sequence(parts)
        return first

    def _parse_occurrence(self, inner: cm.ContentModel) -> cm.ContentModel:
        if self.accept("?"):
            return cm.COptional(inner)
        if self.accept("*"):
            return cm.CStar(inner)
        if self.accept("+"):
            return cm.CPlus(inner)
        return inner


# -- syntactic emptiness / reachability ------------------------------------------
#
# Content models are regular expressions, so "can this element complete a
# finite valid subtree?" (productivity) and "can this element occur in a
# valid document at all?" (reachability from the designated root) are
# decidable by fixpoint over the declarations — no solver run needed.  The
# XSLT auditor uses these to decide coverage for elements no template could
# syntactically match.


def _producible(model: cm.ContentModel, ok) -> bool:
    """Can the model produce some word whose symbols all satisfy ``ok``?"""
    if isinstance(model, cm.CSymbol):
        return ok(model.name)
    if isinstance(model, cm.CSeq):
        return _producible(model.left, ok) and _producible(model.right, ok)
    if isinstance(model, cm.CChoice):
        return _producible(model.left, ok) or _producible(model.right, ok)
    if isinstance(model, (cm.COptional, cm.CStar)):
        return True
    if isinstance(model, cm.CPlus):
        return _producible(model.inner, ok)
    return True  # CEmpty


def _word_containing(model: cm.ContentModel, symbol: str, ok) -> bool:
    """Can the model produce a word containing ``symbol`` whose *other*
    occurrences all satisfy ``ok``?"""
    if isinstance(model, cm.CSymbol):
        return model.name == symbol
    if isinstance(model, cm.CSeq):
        return (
            _word_containing(model.left, symbol, ok) and _producible(model.right, ok)
        ) or (
            _producible(model.left, ok) and _word_containing(model.right, symbol, ok)
        )
    if isinstance(model, cm.CChoice):
        return _word_containing(model.left, symbol, ok) or _word_containing(
            model.right, symbol, ok
        )
    if isinstance(model, (cm.COptional, cm.CStar, cm.CPlus)):
        # One iteration holds the occurrence; the others can be skipped.
        return _word_containing(model.inner, symbol, ok)
    return False  # CEmpty


def producible_elements(dtd: DTD) -> frozenset[str]:
    """Declared elements that can root a finite valid subtree.

    Least fixpoint: an element is producible when some word of its content
    model uses only producible symbols (undeclared symbols referenced by a
    content model are unconstrained and count as producible).
    """
    declared = set(dtd.elements)
    producible: set[str] = set()

    def ok(symbol: str) -> bool:
        return symbol not in declared or symbol in producible

    changed = True
    while changed:
        changed = False
        for name in declared - producible:
            if _producible(dtd.content_of(name), ok):
                producible.add(name)
                changed = True
    return frozenset(producible)


def reachable_elements(dtd: DTD) -> frozenset[str]:
    """Declared elements that occur in at least one valid finite document.

    An element occurs in a valid document iff it is producible and some
    chain of declarations links it to the designated root such that every
    link's remaining siblings can be completed too.  With no designated
    root, any producible element may serve as the document root.
    """
    producible = producible_elements(dtd)
    if dtd.root is None:
        return producible

    def ok(symbol: str) -> bool:
        return symbol not in dtd.elements or symbol in producible

    if dtd.root not in producible:
        return frozenset()
    seen = {dtd.root}
    queue = [dtd.root]
    while queue:
        parent = queue.pop()
        model = dtd.content_of(parent)
        for child in cm.symbols(model):
            if child in seen or child not in dtd.elements or child not in producible:
                continue
            if _word_containing(model, child, ok):
                seen.add(child)
                queue.append(child)
    return frozenset(seen)
