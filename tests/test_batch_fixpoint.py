"""Merged-Lean batch solving (``batch_fixpoint``): parity and governance.

One merged fixpoint must be *observationally invisible*: every query of a
batch gets the same ``holds``/``satisfiable``/``verdict_status`` — and the
byte-identical serialised witness — that a per-query solve produces, while
``solver_runs`` counts one fixpoint per merged group instead of one per
query.  These tests pin that contract over the committed fuzz corpus (both
BDD backends), the batch counters of the sequential vs multiprocess paths,
the governor's behaviour inside a merged group (split-and-retry bisection
must leave bystanders definite), the v2 disk-cache entry format, and the
example stylesheet audit.
"""

from __future__ import annotations

import json
import textwrap
from pathlib import Path

import pytest

from repro.api import Query, StaticAnalyzer
from repro.bdd.backends import available_backends
from repro.cache import (
    CACHE_FORMAT_VERSION,
    DiskSolveCache,
    SolveRecord,
    merged_entry_key,
    solve_cache_key,
)
from repro.logic import syntax as sx
from repro.solver.governor import Budget
from repro.testing.corpus import load_corpus
from repro.testing.fuzz import _case_query
from repro.xmltypes.dtd import parse_dtd
from repro.xslt import audit_stylesheet

BACKENDS = available_backends()
CORPUS_DIR = Path(__file__).parent / "corpus"
ENTRIES = load_corpus(CORPUS_DIR)

#: The committed regression instance of test_robustness: depth-14 nested
#: containment, effectively unbounded for the symbolic solver.
PATHOLOGICAL = "/".join(["a1"] + [f"a{i}[b{i}]" for i in range(2, 15)])
PATHOLOGICAL_SUPERSET = PATHOLOGICAL.replace("[b2]", "")

EXAMPLES = Path(__file__).parent.parent / "examples"

#: What "observationally identical" means, field by field.
OBSERVABLE_FIELDS = (
    "holds",
    "satisfiable",
    "verdict_status",
    "budget_reason",
    "error_kind",
    "counterexample",
)


def _observed(outcome) -> dict:
    return {name: getattr(outcome, name) for name in OBSERVABLE_FIELDS}


# ---------------------------------------------------------------------------
# Differential: merged vs per-query over the committed corpus
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("backend", BACKENDS)
def test_merged_matches_per_query_on_corpus(backend):
    """Every committed corpus seed, as one batch: off and on must agree on
    verdicts, verdict_status *and the serialised witness document* — merged
    goals keep their per-query reductions, so even model reconstruction must
    not drift — while merged mode never runs more fixpoints."""
    queries = [_case_query(entry.case, entry.case.dtd()) for entry in ENTRIES]
    off = StaticAnalyzer(backend=backend).solve_many(queries, batch_fixpoint="off")
    on = StaticAnalyzer(backend=backend).solve_many(queries, batch_fixpoint="on")
    for entry, off_outcome, on_outcome in zip(ENTRIES, off.outcomes, on.outcomes):
        assert _observed(off_outcome) == _observed(on_outcome), entry.name
    assert on.solver_runs <= off.solver_runs
    assert on.merged_groups >= 1
    assert on.merged_queries >= 2


def test_merged_batch_is_one_fixpoint_and_counts_grouping():
    queries = [
        Query.satisfiability("child::a/child::b"),
        Query.satisfiability("child::c"),
        Query.overlap("a//b", "a/b"),
    ]
    report = StaticAnalyzer().solve_many(queries, batch_fixpoint="on")
    assert [o.holds for o in report.outcomes] == [True, True, True]
    assert report.solver_runs == 1
    assert report.merged_groups == 1
    assert report.merged_queries == 3


@pytest.mark.parametrize("backend", BACKENDS)
def test_merged_witness_pick_order_matches_solo(backend):
    """Regression (fuzz seed 7, trial 20): the merged Lean sorts ``#other``
    ahead of the concrete labels whenever a *sibling* goal's closure contains
    it, shifting BDD variable levels — and the manager's default pick walks to
    the lex-min assignment w.r.t. variable order, so the same proved sets
    decoded a different (equally valid) witness than a stand-alone solve
    (``<_><a!/></_>`` vs ``<c><a!/></c>``).  Reconstruction now pins every
    pick to the goal's own per-query Lean order."""
    dtd = parse_dtd("<!ELEMENT c EMPTY>", root="c")
    queries = [
        Query.containment("/descendant::a", "descendant::c", dtd, dtd),
        Query.satisfiability("/descendant::a", dtd),
        Query.satisfiability("descendant::c", dtd),
    ]
    off = StaticAnalyzer(backend=backend).solve_many(queries, batch_fixpoint="off")
    on = StaticAnalyzer(backend=backend).solve_many(queries, batch_fixpoint="on")
    for off_outcome, on_outcome in zip(off.outcomes, on.outcomes):
        assert _observed(off_outcome) == _observed(on_outcome)
    assert on.outcomes[0].counterexample is not None
    assert on.solver_runs == 1


def test_witness_never_decorates_undeclared_elements_with_attributes():
    """Regression (fuzz seed 7, trial 154): ``attribute_constraints`` only
    constrained *declared* elements, so an element a content model references
    without declaring (valid only as an empty node) could carry an attribute
    in a witness — which ``membership.dtd_attribute_violations`` rejects.
    Referenced-but-undeclared elements now get the same ``¬@a`` pins as an
    attribute-free declaration."""
    dtd = parse_dtd("<!ELEMENT b (a)>", root="b")
    outcome = StaticAnalyzer().solve(
        Query.containment("parent::a/descendant::*", "desc-or-self::a/@p", dtd, dtd)
    )
    assert outcome.holds is False
    assert outcome.counterexample is not None
    assert 'p="' not in outcome.counterexample


# ---------------------------------------------------------------------------
# Batch counter parity: sequential vs multiprocess
# ---------------------------------------------------------------------------


def test_parallel_batch_counters_equal_sequential(tmp_path):
    """The regression the parity sweep fixed: ``_solve_many_parallel`` must
    report the *same* ``solver_runs``/``cache_hits``/``disk_cache_hits`` as a
    sequential pass over the identical batch — including the satisfiability/
    emptiness satclass fold and the equivalence decomposition."""
    queries = [
        Query.satisfiability("child::a[b]"),
        Query.emptiness("child::a[b]"),  # same satclass: no second solve
        Query.containment("a/b", "a//b"),
        Query.equivalence("a//b", "a//b[c] | a//b[not(c)]"),
        Query.containment("a/b", "a//b"),  # duplicate
    ]
    cache_dir = str(tmp_path / "solve-cache")
    StaticAnalyzer(cache_dir=cache_dir).solve_many(queries, workers=1)

    sequential = StaticAnalyzer(cache_dir=cache_dir).solve_many(queries, workers=1)
    parallel = StaticAnalyzer(cache_dir=cache_dir).solve_many(queries, workers=2)
    assert [_observed(o) for o in parallel.outcomes] == [
        _observed(o) for o in sequential.outcomes
    ]
    assert parallel.solver_runs == sequential.solver_runs
    assert parallel.cache_hits == sequential.cache_hits
    assert parallel.disk_cache_hits == sequential.disk_cache_hits


# ---------------------------------------------------------------------------
# Resource governance inside a merged group
# ---------------------------------------------------------------------------


def test_merged_group_repins_pathological_on_both_backends():
    """The depth-14 containment, *inside a merged group*: the steps budget
    must surface as the identical structured ``budget_reason`` on both BDD
    engines (the governor's step accounting is backend-independent at the
    verdict level), and the cheap co-grouped query must come out definite."""
    queries = [
        Query.satisfiability("child::a"),
        Query.containment(PATHOLOGICAL, PATHOLOGICAL_SUPERSET),
    ]
    reasons = {}
    for backend in BACKENDS:
        report = StaticAnalyzer(backend=backend).solve_many(
            queries, budget=Budget(max_steps=100_000), batch_fixpoint="on"
        )
        cheap, pathological = report.outcomes
        assert cheap.definite and cheap.holds is True, backend
        assert pathological.unknown, backend
        reasons[backend] = pathological.budget_reason
    assert reasons == {backend: "steps" for backend in BACKENDS}


def test_merged_budget_leaves_bystanders_definite():
    """The acceptance property: a ``BudgetExceeded`` inside a merged group
    bisects the group, so every non-offending query's verdict stays definite
    and identical to an unbudgeted per-query solve."""
    bystanders = [
        Query.satisfiability("child::a/child::b"),
        Query.containment("a/b", "a//b"),
        Query.overlap("a//b", "a/b"),
        Query.emptiness("child::c"),
    ]
    queries = bystanders + [Query.containment(PATHOLOGICAL, PATHOLOGICAL_SUPERSET)]
    reference = StaticAnalyzer().solve_many(bystanders, batch_fixpoint="off")
    budgeted = StaticAnalyzer().solve_many(
        queries, budget=Budget(max_steps=100_000), batch_fixpoint="on"
    )
    for expected, outcome in zip(reference.outcomes, budgeted.outcomes):
        assert outcome.definite, outcome.problem
        assert _observed(outcome) == _observed(expected)
    assert budgeted.outcomes[-1].unknown
    assert budgeted.outcomes[-1].budget_reason == "steps"


# ---------------------------------------------------------------------------
# Disk cache: v2 format, merged-batch entries, no aliasing
# ---------------------------------------------------------------------------


def test_cache_format_version_is_bumped():
    assert CACHE_FORMAT_VERSION == 2


def test_v1_entries_are_clean_misses(tmp_path):
    """Old-format entries live under ``v1/`` (never read) or carry
    ``version: 1`` (well-formed mismatch): both are plain misses — no
    quarantine, no deletion — and the next solve republishes under v2."""
    formula = sx.prop("a")
    cache = DiskSolveCache(tmp_path)
    v1_file = tmp_path / "v1" / "ab" / "abcdef.json"
    v1_file.parent.mkdir(parents=True)
    v1_file.write_text(json.dumps({"version": 1, "satisfiable": True}))
    # A v1 payload parked at the entry's v2 path: versioned miss, kept as-is.
    stale = cache.path_for_key(cache.key_for(formula))
    stale.parent.mkdir(parents=True, exist_ok=True)
    stale.write_text(json.dumps({"version": 1, "key": cache.key_for(formula)}))

    assert cache.get(formula) is None
    assert v1_file.exists() and stale.exists()
    assert not list(tmp_path.rglob("*.corrupt"))

    record = SolveRecord(
        satisfiable=True, counterexample="<a/>", statistics={}, solve_seconds=0.1
    )
    cache.put(formula, record)
    assert cache.get(formula) == record


def test_merged_batch_entries_roundtrip_without_aliasing(tmp_path):
    cache = DiskSolveCache(tmp_path)
    goals = [sx.prop("a"), sx.mk_and(sx.prop("b"), sx.dia(1, sx.prop("c")))]
    records = [
        SolveRecord(satisfiable=True, counterexample="<a/>", statistics={}, solve_seconds=0.1),
        SolveRecord(satisfiable=False, counterexample=None, statistics={}, solve_seconds=0.2),
    ]
    cache.put_batch(goals, records)
    assert cache.get_batch(goals) == records
    # Goal-bit order is part of the encoding, hence part of the address.
    assert cache.get_batch(list(reversed(goals))) is None
    assert cache.get_batch(goals[:1]) is None
    # Batch-level entries never alias per-formula entries, in either direction.
    assert cache.get(goals[0]) is None
    single_keys = {cache.key_for(goal) for goal in goals}
    assert cache.batch_key(goals) not in single_keys
    assert merged_entry_key([solve_cache_key(goals[0])]) != solve_cache_key(goals[0])


def test_corrupt_batch_entry_is_quarantined(tmp_path):
    cache = DiskSolveCache(tmp_path)
    goals = [sx.prop("a")]
    records = [
        SolveRecord(satisfiable=True, counterexample="<a/>", statistics={}, solve_seconds=0.1)
    ]
    path = cache.put_batch(goals, records)
    path.write_text(path.read_text()[:40])  # torn write
    assert cache.get_batch(goals) is None
    assert path.with_suffix(".json.corrupt").exists()
    # The next writer republishes a good entry at the same address.
    cache.put_batch(goals, records)
    assert cache.get_batch(goals) == records


def test_merged_solves_replay_from_disk_as_single_queries(tmp_path):
    """A merged solve publishes each goal under its batch-independent
    per-formula key, so a later *single* solve of one member is a disk hit."""
    cache_dir = str(tmp_path / "solve-cache")
    queries = [
        Query.satisfiability("child::a/child::b"),
        Query.overlap("a//b", "a/b"),
    ]
    first = StaticAnalyzer(cache_dir=cache_dir)
    merged = first.solve_many(queries, batch_fixpoint="on")
    assert merged.solver_runs == 1

    second = StaticAnalyzer(cache_dir=cache_dir)
    replay = second.solve(queries[0])
    assert replay.from_cache and replay.cache == "disk"
    assert replay.holds == merged.outcomes[0].holds


# ---------------------------------------------------------------------------
# The example stylesheet audit
# ---------------------------------------------------------------------------


def test_merged_audit_is_one_fixpoint_with_identical_findings():
    """The acceptance case: the seeded example audit's whole satisfiability/
    emptiness batch must be decided in at most 2 merged fixpoints (measured:
    1), at least 5x fewer than per-query mode, with byte-identical findings."""
    stylesheet = EXAMPLES / "audit_stylesheet.xsl"
    off = audit_stylesheet(stylesheet, "xhtml-strict", batch_fixpoint="off")
    on = audit_stylesheet(stylesheet, "xhtml-strict", batch_fixpoint="on")
    off_findings = json.dumps([f.as_dict() for f in off.findings], sort_keys=True)
    on_findings = json.dumps([f.as_dict() for f in on.findings], sort_keys=True)
    assert on_findings == off_findings
    assert on.solver_runs <= 2
    assert off.solver_runs >= 5 * on.solver_runs


def test_merged_audit_small_stylesheet_matches_per_query(tmp_path):
    """A fast end-to-end audit parity check (kept cheap for -x runs): a tiny
    stylesheet with a dead template and a coverage gap, audited both ways."""
    stylesheet = tmp_path / "tiny.xsl"
    stylesheet.write_text(
        textwrap.dedent(
            """\
            <xsl:stylesheet version="1.0"
                xmlns:xsl="http://www.w3.org/1999/XSL/Transform">
              <xsl:template match="title/meta"><dead/></xsl:template>
              <xsl:template match="meta"><xsl:apply-templates/></xsl:template>
            </xsl:stylesheet>
            """
        )
    )
    off = audit_stylesheet(stylesheet, "wikipedia", batch_fixpoint="off")
    on = audit_stylesheet(stylesheet, "wikipedia", batch_fixpoint="on")
    assert [f.as_dict() for f in on.findings] == [f.as_dict() for f in off.findings]
    assert any(f.rule == "dead-template" for f in on.findings)
    assert on.solver_runs <= off.solver_runs
