"""Tests for the document-rooted type wrapper (:class:`repro.analysis.problems.Rooted`).

``Rooted(T)`` anchors the marked context node at a virtual document node
above the typed root element, so absolute expressions read as whole-document
paths (the data model XSLT patterns are defined over).  These tests pin the
semantics against the small Wikipedia schema, the wire spellings
(``"rooted:NAME"`` / ``{"rooted": ...}``), and the analyzer plumbing
(cache keys, label projection, parallel safety).
"""

import pytest

import repro.logic.syntax as sx
from repro.analysis.problems import Rooted, label_projection
from repro.api import Query, StaticAnalyzer, _describe_type, _parallel_safe
from repro.cli import wire
from repro.xmltypes.library import builtin_dtd
from repro.xpath.parser import parse_xpath_cached

ROOTED = Rooted("wikipedia")


@pytest.fixture(scope="module")
def analyzer() -> StaticAnalyzer:
    return StaticAnalyzer()


# ---------------------------------------------------------------------------
# Semantics against the Wikipedia schema
# (article -> (meta, (text|redirect)); meta -> (title, history?);
#  history -> edit+; edit -> (status?, comment?))
# ---------------------------------------------------------------------------


def _solve(analyzer, query):
    outcome = analyzer.solve(query)
    assert outcome.ok, outcome.error
    return outcome


def test_root_element_is_the_document_nodes_only_child(analyzer):
    assert _solve(analyzer, Query.satisfiability("/article", ROOTED)).holds
    # ...and only the designated root can sit there.
    assert not _solve(analyzer, Query.satisfiability("/meta", ROOTED)).holds
    # The document node has exactly one child: no second top-level element.
    assert not _solve(analyzer, Query.satisfiability("/article/article", ROOTED)).holds


def test_descendant_queries_read_whole_document(analyzer):
    assert _solve(analyzer, Query.satisfiability("//title", ROOTED)).holds
    assert _solve(
        analyzer, Query.satisfiability("/article/meta/history/edit/comment", ROOTED)
    ).holds


def test_document_node_pattern_selects_exactly_the_document_node(analyzer):
    # "/" parses to /self::* — satisfiable only under the rooted reading.
    assert _solve(analyzer, Query.satisfiability("/self::*", ROOTED)).holds
    # The document node has no element children named like grandchildren.
    assert not _solve(analyzer, Query.satisfiability("/self::*/title", ROOTED)).holds


def test_emptiness_under_rooted_type(analyzer):
    # redirect is declared EMPTY: nothing below it.
    assert _solve(analyzer, Query.emptiness("//redirect/title", ROOTED)).holds
    assert not _solve(analyzer, Query.emptiness("//edit", ROOTED)).holds


def test_containment_under_rooted_types(analyzer):
    # edit occurs only inside history.
    assert _solve(
        analyzer, Query.containment("//edit", "//history/edit", ROOTED, ROOTED)
    ).holds
    # title occurs outside history (meta/title), so the reverse framing fails.
    assert not _solve(
        analyzer, Query.containment("//title", "//history//title", ROOTED, ROOTED)
    ).holds


def test_coverage_under_rooted_types(analyzer):
    covered = Query.coverage("//edit", ["//history/edit"], ROOTED, [ROOTED])
    assert _solve(analyzer, covered).holds
    gap = Query.coverage("//edit", ["//edit[status]"], ROOTED, [ROOTED])
    outcome = _solve(analyzer, gap)
    assert not outcome.holds
    assert outcome.counterexample is not None  # a status-less edit witness


# ---------------------------------------------------------------------------
# Construction and description
# ---------------------------------------------------------------------------


def test_rooted_rejects_formulas_and_nesting():
    with pytest.raises(TypeError):
        Rooted(sx.TRUE)
    with pytest.raises(TypeError):
        Rooted(Rooted("wikipedia"))


def test_describe_type_spells_rooted_prefix():
    assert _describe_type(Rooted("xhtml")) == "rooted:xhtml"
    assert _describe_type(Rooted(None)) == "rooted:any"
    assert _describe_type(Rooted(builtin_dtd("wikipedia"))) == "rooted:wikipedia"


# ---------------------------------------------------------------------------
# Wire spellings
# ---------------------------------------------------------------------------


def test_wire_rooted_string_prefix():
    assert wire.resolve_wire_type("rooted:wikipedia") == Rooted("wikipedia")
    assert wire.resolve_wire_type("rooted:") == Rooted(None)


def test_wire_rooted_object_wraps_inline_dtd():
    resolved = wire.resolve_wire_type(
        {"rooted": {"dtd": "<!ELEMENT a (b*)><!ELEMENT b EMPTY>", "root": "a"}}
    )
    assert isinstance(resolved, Rooted)
    assert resolved.xml_type.name == "inline"


def test_wire_rooted_rejects_nesting_and_extra_keys():
    with pytest.raises(wire.WireError):
        wire.resolve_wire_type("rooted:rooted:wikipedia")
    with pytest.raises(wire.WireError):
        wire.resolve_wire_type({"rooted": "rooted:wikipedia"})
    with pytest.raises(wire.WireError):
        wire.resolve_wire_type({"rooted": "wikipedia", "dtd": "<!ELEMENT a EMPTY>"})


def test_wire_query_round_trips_rooted_types():
    query = wire.query_from_dict(
        {
            "kind": "containment",
            "exprs": ["//edit", "//history/edit"],
            "types": ["rooted:wikipedia"],
        }
    )
    assert query.types == (Rooted("wikipedia"), Rooted("wikipedia"))


# ---------------------------------------------------------------------------
# Analyzer plumbing
# ---------------------------------------------------------------------------


def test_label_projection_unwraps_rooted():
    dtd = builtin_dtd("wikipedia")
    exprs = [parse_xpath_cached("//history/edit")]
    # Mixing Rooted(T) and T is still one distinct schema: pruning applies.
    labels = label_projection(exprs, [Rooted(dtd), dtd])
    assert labels is not None
    assert set(labels) >= {"history", "edit"}


def test_rooted_queries_are_parallel_safe():
    assert _parallel_safe(Query.satisfiability("/article", ROOTED))
    assert _parallel_safe(
        Query.satisfiability("/article", Rooted(builtin_dtd("wikipedia")))
    )


def test_type_cache_key_distinguishes_rooted_from_bare():
    analyzer = StaticAnalyzer()
    assert analyzer._type_key(Rooted("wikipedia")) != analyzer._type_key("wikipedia")
    assert analyzer._type_key(Rooted("wikipedia")) == (
        "rooted",
        analyzer._type_key("wikipedia"),
    )


def test_worker_pool_agrees_with_in_process_verdicts(analyzer):
    queries = [
        Query.satisfiability("/article", ROOTED),
        Query.emptiness("//redirect/title", ROOTED),
    ]
    expected = [analyzer.solve(query).holds for query in queries]
    fresh = StaticAnalyzer()
    batch = fresh.solve_many(queries, workers=2)
    assert [outcome.holds for outcome in batch.outcomes] == expected
