"""Bundled DTD texts used by the paper's evaluation (Section 8, Table 1).

The files in this package are hand-written reproductions of the *element
structure* of the DTDs used by the paper's experiments — attributes, data
values and external parameter entities are outside the fragment studied by
the paper and are omitted (see the note in :mod:`repro.xmltypes.library`):

* ``smil10.dtd`` — SMIL 1.0 (19 element symbols), used by the e7 benchmark;
* ``xhtml1_strict.dtd`` — XHTML 1.0 Strict (77 element symbols), used by the
  e8 anchor-nesting analysis;
* ``xhtml1_core.dtd`` — a 21-element structural subset of XHTML 1.0 Strict
  that preserves the e8 "anchor through object" loophole, for fast runs;
* ``wikipedia.dtd`` — the Wikipedia fragment of Figure 12.

Load them through :func:`repro.xmltypes.library.builtin_dtd` rather than
reading the files directly.
"""
