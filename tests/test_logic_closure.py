"""Tests for the Fisher–Ladner closure and the Lean (Section 6.1)."""

import pytest

from repro.logic import syntax as sx
from repro.logic.closure import OTHER_LABEL, fisher_ladner_closure, lean
from repro.trees.focus import MODALITIES


def test_closure_contains_the_formula_and_subformulas():
    formula = sx.mk_and(sx.prop("a"), sx.dia(1, sx.prop("b")))
    closure = fisher_ladner_closure(formula)
    assert formula in closure
    assert sx.prop("a") in closure
    assert sx.dia(1, sx.prop("b")) in closure
    assert sx.prop("b") in closure


def test_closure_unwinds_fixpoints_once():
    formula = sx.mu1(lambda x: sx.dia(1, x) | sx.prop("a"))
    closure = fisher_ladner_closure(formula)
    # The expansion places the closed fixpoint under the modality.
    assert any(item.kind == sx.KIND_DIA and item.left.is_fixpoint for item in closure)


def test_closure_is_finite_for_recursive_formulas():
    formula = sx.mu(
        (
            ("X", sx.dia(1, sx.var("Y")) | sx.prop("a")),
            ("Y", sx.dia(2, sx.var("X")) | sx.prop("b")),
        ),
        sx.var("X") | sx.var("Y"),
    )
    closure = fisher_ladner_closure(formula)
    assert 0 < len(closure) < 60


def test_lean_contains_topological_propositions_first():
    computed = lean(sx.prop("a"))
    heads = computed.items[: len(MODALITIES)]
    assert [item.prog for item in heads] == list(MODALITIES)
    assert all(item.kind == sx.KIND_DIA and item.left is sx.TRUE for item in heads)
    assert computed.items[len(MODALITIES)] is sx.START


def test_lean_includes_extra_other_label():
    computed = lean(sx.prop("a"))
    assert OTHER_LABEL in computed.propositions
    assert "a" in computed.propositions


def test_lean_positions_are_consistent():
    formula = sx.mk_and(sx.prop("a"), sx.dia(1, sx.prop("b")))
    computed = lean(formula)
    for index, item in enumerate(computed.items):
        assert computed.position(item) == index
    assert computed.proposition_index("a") == computed.position(sx.prop("a"))
    # Unknown labels map to the "other" proposition.
    assert computed.proposition_index("zzz") == computed.position(sx.prop(OTHER_LABEL))


def test_lean_contains_every_modal_closure_formula():
    formula = sx.mu1(lambda x: sx.dia(-1, sx.START) | sx.dia(-2, x))
    computed = lean(formula)
    modal_programs = {program for program, _sub, _idx in computed.modal_items()}
    assert modal_programs == set(MODALITIES)
    # Both the ⟨1̄⟩s and the recursive ⟨2̄⟩(µ…) formulas are present.
    non_trivial = [sub for _p, sub, _i in computed.modal_items() if sub is not sx.TRUE]
    assert len(non_trivial) == 2


def test_lean_extra_labels_are_included():
    computed = lean(sx.prop("a"), extra_labels=("q", "r"))
    assert {"a", "q", "r", OTHER_LABEL} <= set(computed.propositions)


def test_lean_size_is_linear_in_formula_size():
    # Lean(ψ) grows linearly for a chain of modalities.
    def chain(depth: int) -> sx.Formula:
        formula = sx.prop("a")
        for _ in range(depth):
            formula = sx.dia(1, formula)
        return formula

    small = len(lean(chain(5)))
    large = len(lean(chain(10)))
    assert large - small == 5


def test_describe_mentions_sizes():
    description = lean(sx.prop("a")).describe()
    assert "Lean size" in description
