"""Tests of the declarative interpretation of Lµ formulas (Figure 2)."""

import pytest

from repro.logic import syntax as sx
from repro.logic.semantics import interpret, models_of, satisfies
from repro.trees.focus import all_focuses, focus_at
from repro.trees.unranked import parse_tree

DOC = parse_tree("<a!><b/><c><d/></c></a>")
UNIVERSE = frozenset(all_focuses(DOC))


def names(focuses):
    return sorted(f.name for f in focuses)


def test_true_and_false():
    assert interpret(sx.TRUE, UNIVERSE) == UNIVERSE
    assert interpret(sx.FALSE, UNIVERSE) == frozenset()


def test_atomic_propositions():
    assert names(interpret(sx.prop("b"), UNIVERSE)) == ["b"]
    assert names(interpret(sx.nprop("b"), UNIVERSE)) == ["a", "c", "d"]


def test_start_proposition():
    assert names(interpret(sx.START, UNIVERSE)) == ["a"]
    assert names(interpret(sx.NSTART, UNIVERSE)) == ["b", "c", "d"]


def test_modalities_follow_navigation():
    # ⟨1⟩b: the first child is named b — only the root qualifies.
    assert names(interpret(sx.dia(1, sx.prop("b")), UNIVERSE)) == ["a"]
    # ⟨2⟩c: the next sibling is named c — only b qualifies.
    assert names(interpret(sx.dia(2, sx.prop("c")), UNIVERSE)) == ["b"]
    # ⟨-1⟩⊤: being a first child.
    assert names(interpret(sx.dia(-1, sx.TRUE), UNIVERSE)) == ["b", "d"]
    # ¬⟨1⟩⊤: leaves.
    assert names(interpret(sx.no_dia(1), UNIVERSE)) == ["b", "d"]


def test_boolean_connectives():
    formula = sx.mk_or(sx.prop("b"), sx.prop("d"))
    assert names(interpret(formula, UNIVERSE)) == ["b", "d"]
    formula = sx.mk_and(sx.dia(-1, sx.TRUE), sx.nprop("b"))
    assert names(interpret(formula, UNIVERSE)) == ["d"]


def test_least_fixpoint_descendant_or_self():
    # Nodes with a d somewhere below-or-at themselves (through 1/2 navigation).
    formula = sx.mu1(lambda x: sx.prop("d") | sx.dia(1, x) | sx.dia(2, x))
    assert names(interpret(formula, UNIVERSE)) == ["a", "b", "c", "d"]


def test_least_fixpoint_without_base_case_is_empty():
    # µX.⟨1⟩X ∨ ⟨1̄⟩X has an empty least interpretation (Section 4 example).
    formula = sx.mu1(lambda x: sx.dia(1, x) | sx.dia(-1, x))
    assert interpret(formula, UNIVERSE) == frozenset()


def test_greatest_fixpoint_differs_on_non_cycle_free_formula():
    # νX.⟨1⟩X ∨ ⟨1̄⟩X contains every focused tree with at least two nodes in a
    # parent/child relation (Section 4 example).
    name = "X"
    definition = sx.dia(1, sx.var(name)) | sx.dia(-1, sx.var(name))
    formula = sx.nu(((name, definition),), definition)
    assert interpret(formula, UNIVERSE) == UNIVERSE


def test_fixpoints_coincide_for_cycle_free_formulas():
    # Lemma 4.2 on a sample of cycle-free recursive formulas.
    builders = [
        lambda x: sx.prop("d") | sx.dia(1, x) | sx.dia(2, x),
        lambda x: sx.dia(-1, sx.START) | sx.dia(-2, x),
        lambda x: sx.prop("c") | sx.dia(-1, x),
    ]
    for build in builders:
        name = sx.fresh_var_name()
        definition = build(sx.var(name))
        least = sx.mu(((name, definition),), definition)
        greatest = sx.nu(((name, definition),), definition)
        assert interpret(least, UNIVERSE) == interpret(greatest, UNIVERSE)


def test_satisfies_checks_a_single_focused_tree():
    formula = sx.mk_and(sx.prop("c"), sx.dia(1, sx.prop("d")))
    assert satisfies(formula, focus_at(DOC, (1,)))
    assert not satisfies(formula, focus_at(DOC, (0,)))


def test_satisfies_requires_single_mark():
    with pytest.raises(ValueError):
        satisfies(sx.TRUE, focus_at(parse_tree("<a><b/></a>"), ()))


def test_models_of_multiple_documents():
    other = parse_tree("<c!><d/></c>")
    result = models_of(sx.prop("d"), [DOC, other])
    assert names(result) == ["d", "d"]


def test_variable_environment_is_used():
    # ⟨1⟩V holds where the first child belongs to V's valuation.
    valuation = {"V": frozenset(f for f in UNIVERSE if f.name == "b")}
    assert names(interpret(sx.dia(1, sx.var("V")), UNIVERSE, valuation)) == ["a"]
    # ⟨2⟩V with V = the "c" nodes holds at their previous sibling "b".
    valuation = {"V": frozenset(f for f in UNIVERSE if f.name == "c")}
    assert names(interpret(sx.dia(2, sx.var("V")), UNIVERSE, valuation)) == ["b"]
