"""Merged-Lean batch fixpoint benchmark — one fixpoint per batch group.

Two workloads, shared with the ``repro bench batch`` subcommand
(:func:`repro.cli.bench.run_batch`):

* the 50-query ``cli-cache`` JSONL workload solved three ways — cold
  per-query analyzers (the established ``api-batch`` baseline), one warm
  sequential ``batch_fixpoint="off"`` analyzer, and one
  ``batch_fixpoint="on"`` analyzer running a single frontier fixpoint per
  schema/alphabet group.  Verdicts must be identical across all three
  paths and witnesses byte-identical between the two modes;
* the seeded example stylesheet audited once per mode — findings must be
  byte-identical, and the merged audit must stay under the committed
  solver-run ceiling while cutting fixpoint count by the required factor.

This wrapper re-asserts the acceptance criteria on the returned payload
and writes ``BENCH_batch_fixpoint.json``.
"""

from conftest import write_bench_json, write_report
from repro.cli.bench import (
    AUDIT_MERGED_MAX_SOLVER_RUNS,
    AUDIT_MIN_RUN_REDUCTION,
    BATCH_REQUIRED_SPEEDUP,
    run_batch,
)


def test_batch_fixpoint_merges_and_matches():
    payload = run_batch()
    workload, audit = payload["workload"], payload["audit"]

    lines = [
        f"workload: {workload['queries']} JSONL queries "
        f"({workload['distinct_problems']} distinct problems)",
        f"cold per-query analyzers: {workload['cold_per_query_seconds'] * 1000:8.1f} ms",
        f"sequential batch off:     {workload['sequential_off_seconds'] * 1000:8.1f} ms "
        f"({workload['off_solver_runs']} fixpoints)",
        f"merged batch on:          {workload['merged_on_seconds'] * 1000:8.1f} ms "
        f"({workload['on_solver_runs']} fixpoints, "
        f"{workload['merged_groups']} groups, "
        f"{workload['merged_queries']} merged queries)",
        f"speedup vs cold: {workload['speedup_vs_cold']:.2f}x "
        f"(required {workload['required_speedup']}x)",
        f"audit {audit['stylesheet']} ({audit['schema']}): "
        f"{audit['off_solver_runs']} fixpoints off vs "
        f"{audit['on_solver_runs']} on ({audit['run_reduction']:.1f}x reduction)",
    ]
    write_report("batch_fixpoint", lines)
    write_bench_json("batch_fixpoint", payload)

    # Acceptance criteria (run_batch already raises on violation; re-assert
    # on the payload so the benchmark documents them explicitly).
    assert workload["verdicts_identical"] and workload["witnesses_identical"]
    assert workload["speedup_vs_cold"] >= BATCH_REQUIRED_SPEEDUP
    assert audit["findings_identical"]
    assert audit["on_solver_runs"] <= AUDIT_MERGED_MAX_SOLVER_RUNS
    assert audit["run_reduction"] >= AUDIT_MIN_RUN_REDUCTION
