"""Translation of XPath expressions into the logic Lµ (Figures 7, 8 and 10).

Two translation modes cooperate, exactly as in the paper:

* the *navigational* mode ``E→ / P→ / A→`` produces a formula that holds at
  the nodes **selected** by the expression; it navigates backwards (with the
  converse modalities) from the selected node towards the start mark;
* the *filtering* mode ``Q← / P← / A←`` is used inside qualifiers: it states
  the existence of a path without moving to its result, using the symmetric
  axes.

The translation of a relative expression anchors the navigation at the start
mark ``s`` conjoined with the context formula ``χ``; an absolute expression
anchors it at the root of the document while requiring the marked context node
to exist below.  Proposition 5.1 states (and the test-suite checks) that the
translation agrees with the denotational semantics, is cycle-free, and has
size linear in the size of the expression and of ``χ``.

Attribute steps (the thesis extension) translate to attribute propositions on
the element in focus: ``P→[[@l]](χ) = @l ∧ χ`` and symmetrically in filtering
mode — the step does not navigate, because attribute presence is a property
of the element itself.  Absolute paths inside qualifiers anchor at a
top-level node of the document containing the filtered node, mirroring the
root context used for absolute expressions.
"""

from __future__ import annotations

from repro.logic import syntax as sx
from repro.logic.negation import negate
from repro.xpath import ast as xp
from repro.xpath.parser import parse_xpath

# -- axes: navigational mode A→ (Figure 7) --------------------------------------


def translate_axis(axis: xp.Axis, context: sx.Formula) -> sx.Formula:
    """``A→[[axis]](context)``: holds at nodes reachable through ``axis`` from
    a node satisfying ``context``."""
    if axis is xp.Axis.SELF:
        return context
    if axis is xp.Axis.CHILD:
        return sx.mu1(lambda z: sx.dia(-1, context) | sx.dia(-2, z))
    if axis is xp.Axis.FOLL_SIBLING:
        return sx.mu1(lambda z: sx.dia(-2, context) | sx.dia(-2, z))
    if axis is xp.Axis.PREC_SIBLING:
        return sx.mu1(lambda z: sx.dia(2, context) | sx.dia(2, z))
    if axis is xp.Axis.PARENT:
        return sx.dia(1, sx.mu1(lambda z: context | sx.dia(2, z)))
    if axis is xp.Axis.DESCENDANT:
        return sx.mu1(lambda z: sx.dia(-1, context | z) | sx.dia(-2, z))
    if axis is xp.Axis.DESC_OR_SELF:
        return sx.mu1(
            lambda z: context | sx.mu1(lambda y: sx.dia(-1, y | z) | sx.dia(-2, y))
        )
    if axis is xp.Axis.ANCESTOR:
        return sx.dia(1, sx.mu1(lambda z: context | sx.dia(1, z) | sx.dia(2, z)))
    if axis is xp.Axis.ANC_OR_SELF:
        return sx.mu1(lambda z: context | sx.dia(1, sx.mu1(lambda y: z | sx.dia(2, y))))
    if axis is xp.Axis.FOLLOWING:
        inner = translate_axis(
            xp.Axis.FOLL_SIBLING, translate_axis(xp.Axis.ANC_OR_SELF, context)
        )
        return translate_axis(xp.Axis.DESC_OR_SELF, inner)
    if axis is xp.Axis.PRECEDING:
        inner = translate_axis(
            xp.Axis.PREC_SIBLING, translate_axis(xp.Axis.ANC_OR_SELF, context)
        )
        return translate_axis(xp.Axis.DESC_OR_SELF, inner)
    raise AssertionError(f"unknown axis {axis!r}")


def translate_axis_filter(axis: xp.Axis, context: sx.Formula) -> sx.Formula:
    """``A←[[axis]](context) = A→[[symmetric(axis)]](context)`` (Figure 10)."""
    return translate_axis(xp.SYMMETRIC_AXIS[axis], context)


# -- paths: navigational mode P→ (Figure 8) ---------------------------------------


def _attribute_proposition(step: xp.AttributeStep) -> sx.Formula:
    name = step.name if step.name is not None else sx.ANY_ATTRIBUTE
    return sx.attr(name)


def _check_attribute_position(path: xp.Path) -> None:
    if xp.ends_in_attribute(path):
        raise ValueError(
            f"attribute step in non-trailing position of {path}: attribute "
            "steps select no tree node to continue navigating from"
        )


def translate_path(path: xp.Path, context: sx.Formula) -> sx.Formula:
    """``P→[[path]](context)``: holds at the target nodes of ``path``."""
    if isinstance(path, xp.PathCompose):
        _check_attribute_position(path.first)
        return translate_path(path.second, translate_path(path.first, context))
    if isinstance(path, xp.QualifiedPath):
        return sx.mk_and(
            translate_path(path.path, context),
            translate_qualifier(path.qualifier, sx.TRUE),
        )
    if isinstance(path, xp.PathUnion):
        return sx.mk_or(
            translate_path(path.left, context), translate_path(path.right, context)
        )
    if isinstance(path, xp.Step):
        axis_formula = translate_axis(path.axis, context)
        if path.label is None:
            return axis_formula
        return sx.mk_and(sx.prop(path.label), axis_formula)
    if isinstance(path, xp.AttributeStep):
        # The selected node is the element carrying the attribute; no
        # navigation happens (attribute nodes are not part of the model).
        return sx.mk_and(_attribute_proposition(path), context)
    raise AssertionError(f"unknown path node {path!r}")


# -- qualifiers: filtering mode Q← / P← (Figure 10) ---------------------------------


def translate_qualifier(qualifier: xp.Qualifier, context: sx.Formula) -> sx.Formula:
    """``Q←[[qualifier]](context)``: holds at nodes from which ``qualifier`` is true."""
    if isinstance(qualifier, xp.QualifierAnd):
        return sx.mk_and(
            translate_qualifier(qualifier.left, context),
            translate_qualifier(qualifier.right, context),
        )
    if isinstance(qualifier, xp.QualifierOr):
        return sx.mk_or(
            translate_qualifier(qualifier.left, context),
            translate_qualifier(qualifier.right, context),
        )
    if isinstance(qualifier, xp.QualifierNot):
        return negate(translate_qualifier(qualifier.inner, context))
    if isinstance(qualifier, xp.QualifierPath):
        exists = translate_path_filter(qualifier.path, context)
        if qualifier.absolute:
            # The path anchors at the document root: the filtered node must be
            # reachable (via descendant-or-self) from a top-level node from
            # which the path exists — the qualifier analogue of the root
            # context used for absolute expressions.
            return translate_axis(
                xp.Axis.DESC_OR_SELF, sx.mk_and(_at_top_level(), exists)
            )
        return exists
    raise AssertionError(f"unknown qualifier node {qualifier!r}")


def translate_path_filter(path: xp.Path, context: sx.Formula) -> sx.Formula:
    """``P←[[path]](context)``: states the existence of ``path`` without moving."""
    if isinstance(path, xp.PathCompose):
        _check_attribute_position(path.first)
        return translate_path_filter(path.first, translate_path_filter(path.second, context))
    if isinstance(path, xp.QualifiedPath):
        inner = sx.mk_and(context, translate_qualifier(path.qualifier, sx.TRUE))
        return translate_path_filter(path.path, inner)
    if isinstance(path, xp.PathUnion):
        return sx.mk_or(
            translate_path_filter(path.left, context),
            translate_path_filter(path.right, context),
        )
    if isinstance(path, xp.Step):
        if path.label is None:
            return translate_axis_filter(path.axis, context)
        return translate_axis_filter(path.axis, sx.mk_and(context, sx.prop(path.label)))
    if isinstance(path, xp.AttributeStep):
        return sx.mk_and(_attribute_proposition(path), context)
    raise AssertionError(f"unknown path node {path!r}")


# -- expressions: E→ (Figure 8, top) ---------------------------------------------------


def _at_top_level() -> sx.Formula:
    """Holds exactly at top-level nodes (the document root and its siblings).

    The leftmost top-level node has neither a parent nor a previous sibling;
    the others reach it through the previous-sibling chain.  The base case
    must rule *both* converse modalities out: ``¬⟨1̄⟩⊤`` alone also holds at
    every non-first sibling deep in the document (a right child of the
    binary encoding has no parent edge), which would anchor absolute paths
    at arbitrary inner nodes.
    """
    return sx.mu1(
        lambda z: sx.mk_and(sx.no_dia(-1), sx.no_dia(-2)) | sx.dia(-2, z)
    )


def _root_context(context: sx.Formula) -> sx.Formula:
    """Context formula for absolute paths: "I am at the top level and the
    marked context node (satisfying ``context``) occurs in the document"."""
    mark_below = sx.mu1(
        lambda y: sx.mk_and(context, sx.START) | sx.dia(1, y) | sx.dia(2, y)
    )
    return sx.mk_and(_at_top_level(), mark_below)


def translate_expression(expr: xp.Expr, context: sx.Formula) -> sx.Formula:
    """``E→[[expr]](context)``: holds exactly at the nodes selected by ``expr``.

    ``context`` is the formula describing the admissible start (marked) nodes;
    passing the Lµ translation of a regular tree type constrains evaluation to
    documents of that type (Section 8).
    """
    if isinstance(expr, xp.AbsolutePath):
        return translate_path(expr.path, _root_context(context))
    if isinstance(expr, xp.RelativePath):
        return translate_path(expr.path, sx.mk_and(context, sx.START))
    if isinstance(expr, xp.ExprUnion):
        return sx.mk_or(
            translate_expression(expr.left, context),
            translate_expression(expr.right, context),
        )
    if isinstance(expr, xp.ExprIntersection):
        return sx.mk_and(
            translate_expression(expr.left, context),
            translate_expression(expr.right, context),
        )
    raise AssertionError(f"unknown expression node {expr!r}")


def compile_xpath(expr: xp.Expr | str, context: sx.Formula = sx.TRUE) -> sx.Formula:
    """Translate an XPath expression (or its surface syntax) to Lµ.

    This is the user-facing entry point: ``compile_xpath("child::a[b]")``
    returns the formula satisfied exactly by the nodes selected by the
    expression when evaluation starts at a node satisfying ``context``.
    """
    if isinstance(expr, str):
        expr = parse_xpath(expr)
    return translate_expression(expr, context)
