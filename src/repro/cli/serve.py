"""``repro serve`` — a streaming JSON-lines analysis service on stdin/stdout.

The process reads one JSON request per line, answers with one JSON response
per line (flushed immediately), and exits 0 on end-of-input.  All requests
share one :class:`repro.api.StaticAnalyzer`, so an editor or load generator
can stream thousands of queries at a single set of warm caches; with
``--cache-dir`` the verdicts also persist across restarts.

With ``--workers N`` the service fans query requests out to a process pool
(responses still arrive strictly in request order; control operations act as
barriers so ``stats`` always reflects every request before them).  The
parent parses and validates every line — workers only ever see well-formed
:class:`repro.api.Query` objects — and aggregates worker cache counters into
its own statistics.

Requests are either query objects in the wire format of
:mod:`repro.cli.wire`, or control operations:

* ``{"op": "ping"}`` — liveness probe.
* ``{"op": "stats"}`` — the analyzer's cache statistics (solver runs,
  memory/disk hits, entry counts).
* ``{"op": "schemas"}`` — the bundled schema registry.

Responses echo the request's ``id`` (when present) and carry ``ok``:

* query analysed → ``{"id": ..., "ok": true, "outcome": {...}}``
  (``ok`` is false when the outcome is a structured analysis error — the
  ``outcome`` object is still present with its ``error`` field filled);
* malformed line or unknown op → ``{"id": ..., "ok": false, "error":
  {"kind": ..., "message": ...}}``.

A malformed line never terminates the loop: the service answers with an
error response and keeps reading.  The same holds for expensive queries:
with ``--deadline``/``--max-steps`` (or a per-request ``budget`` object,
which tightens the service-wide limits) a pathological query costs its
budget and returns an outcome with ``verdict_status: "unknown"`` — ``ok``
stays true, the session keeps serving.  With ``--workers``, a worker
process dying mid-solve does not take the service down either: the pool is
respawned, in-flight queries are retried once, and a query that kills its
worker twice is answered as ``unknown`` with ``budget_reason:
"worker-crash"``.
"""

from __future__ import annotations

import json
import os
import sys
from typing import IO

from repro.api import StaticAnalyzer
from repro.cli import wire
from repro.xmltypes.library import schema_catalog


def handle_op(payload: dict, analyzer: StaticAnalyzer) -> dict:
    op = payload["op"]
    if op == "ping":
        return {"ok": True, "op": op}
    if op == "stats":
        stats = dict(analyzer.cache_statistics())
        if analyzer.disk_cache is not None:
            stats["disk_cache_entries"] = len(analyzer.disk_cache)
            stats["disk_cache_directory"] = str(analyzer.disk_cache.directory)
        return {"ok": True, "op": op, "stats": stats}
    if op == "schemas":
        return {
            "ok": True,
            "op": op,
            "schemas": [info.as_dict() for info in schema_catalog()],
        }
    return {
        "ok": False,
        "error": {"kind": "ProtocolError", "message": f"unknown op {op!r}"},
    }


def handle_line(
    line: str, analyzer: StaticAnalyzer, dtd_cache: wire.DTDCache
) -> dict | None:
    """The response for one input line (``None`` for blank/comment lines)."""
    line = line.strip()
    if not line or line.startswith("#"):
        return None
    try:
        payload = json.loads(line)
    except json.JSONDecodeError as exc:
        return {"ok": False, "error": wire.error_payload(exc)}
    if not isinstance(payload, dict):
        return {
            "ok": False,
            "error": {"kind": "ProtocolError", "message": "request must be an object"},
        }
    response: dict = {}
    if "id" in payload:
        response["id"] = payload["id"]
    if "op" in payload:
        response.update(handle_op(payload, analyzer))
        return response
    try:
        query = wire.query_from_dict(payload, dtd_cache)
        budget = wire.budget_from_dict(payload)
    except (wire.WireError, ValueError) as exc:
        response.update(ok=False, error=wire.error_payload(exc))
        return response
    outcome = analyzer.solve(query, budget)
    response.update(ok=outcome.ok, outcome=outcome.as_dict())
    return response


def serve(
    input_stream: IO[str],
    output_stream: IO[str],
    cache_dir: str | None = None,
    analyzer: StaticAnalyzer | None = None,
    workers: int = 1,
    backend: str | None = None,
    budget: "object | None" = None,
    degrade: bool = False,
    batch_fixpoint: str = "off",
) -> int:
    """Run the request/response loop until end-of-input; returns exit code 0.

    With ``workers > 1`` queries are dispatched to a process pool while the
    loop keeps reading; responses are written strictly in request order.
    ``backend`` selects the BDD engine for every solver run (see
    :mod:`repro.bdd.backends`); ``budget`` bounds every solve (tightened
    further by per-request ``budget`` objects) and ``degrade`` enables the
    explicit-solver fallback for budget-exhausted queries.
    """
    analyzer = analyzer or StaticAnalyzer(
        cache_dir=cache_dir,
        backend=backend,
        budget=budget,
        degrade=degrade,
        batch_fixpoint=batch_fixpoint,
    )
    if workers > 1:
        return _serve_parallel(input_stream, output_stream, analyzer, workers)
    dtd_cache: wire.DTDCache = {}
    for line in input_stream:
        response = handle_line(line, analyzer, dtd_cache)
        if response is None:
            continue
        output_stream.write(json.dumps(response, ensure_ascii=False) + "\n")
        output_stream.flush()
    return 0


def _serve_parallel(
    input_stream: IO[str],
    output_stream: IO[str],
    analyzer: StaticAnalyzer,
    workers: int,
) -> int:
    """The pipelined loop behind ``serve(..., workers=N)``.

    A sliding window of at most ``4 * workers`` in-flight queries keeps the
    pool busy without unbounded buffering; completed heads are flushed
    eagerly after every submission, and control operations (or end of input)
    drain the window so their responses observe every earlier request.

    The loop survives pool collapses: workers drop per-query marker files
    (see :func:`repro.api._pool_solve`), so a ``BrokenProcessPool`` is
    blamed on the specific queries that were mid-solve when a worker died.
    The pool is respawned, blamed queries are retried once (a second blamed
    crash answers them as ``unknown("worker-crash")`` via
    :meth:`StaticAnalyzer._crash_outcome`), and *unblamed* in-flight queries
    are resubmitted without penalty — a poison request never costs its
    window-mates their verdicts, and the session keeps serving.
    """
    import shutil
    import tempfile
    from collections import deque
    from concurrent.futures import ProcessPoolExecutor
    from concurrent.futures.process import BrokenProcessPool

    from repro.api import _parallel_safe, _pool_initializer, _pool_solve

    dtd_cache: wire.DTDCache = {}
    max_in_flight = 4 * workers

    def emit(response: dict) -> None:
        output_stream.write(json.dumps(response, ensure_ascii=False) + "\n")
        output_stream.flush()

    def new_pool() -> ProcessPoolExecutor:
        return ProcessPoolExecutor(
            max_workers=workers,
            initializer=_pool_initializer,
            initargs=(analyzer._options(),),
        )

    pool = new_pool()
    marker_dir = tempfile.mkdtemp(prefix="repro-serve-")
    sequence = 0
    # Crashes in a row that left no marker to blame (e.g. a worker dying at
    # startup): after a few, every in-flight query takes the penalty so the
    # flush loop cannot respawn forever.
    unattributed = 0
    # Entries are mutable lists:
    #   ["ready", response]
    #   ["future", future, request_id, query, budget, crashes, seq]
    pending: deque = deque()

    def in_flight() -> int:
        return sum(1 for entry in pending if entry[0] == "future")

    def submit(entry: list) -> None:
        entry[1] = pool.submit(_pool_solve, (entry[6], entry[3], entry[4], marker_dir))

    def handle_crash() -> None:
        """Respawn the pool; retry in-flight queries, penalising only the
        ones the leftover markers blame for the collapse."""
        nonlocal pool, unattributed
        pool.shutdown(wait=False)
        pool = new_pool()
        blamed = set()
        for name in os.listdir(marker_dir):
            if not name.endswith(".running"):
                continue
            try:
                blamed.add(int(name.split(".", 1)[0]))
            except ValueError:
                continue
            try:
                os.unlink(os.path.join(marker_dir, name))
            except OSError:
                pass
        unattributed = 0 if blamed else unattributed + 1
        blame_everyone = unattributed >= 5
        for entry in pending:
            if entry[0] != "future":
                continue
            future = entry[1]
            if future.done() and future.exception() is None:
                continue  # finished before the collapse; result still good
            if entry[6] in blamed or blame_everyone:
                entry[5] += 1
            if entry[5] >= 2:
                # Twice blamed: quarantine.  One retry in a pool of one
                # separates the actual poison (dies again → unknown) from a
                # bystander that kept sharing collapse rounds with it.
                payload = analyzer._retry_isolated(
                    entry[6], entry[3], entry[4], marker_dir
                )
                if payload is None:
                    outcome = analyzer._crash_outcome(entry[3])
                else:
                    _index, outcome, runs, hits, disk_hits, disk_writes = payload
                    analyzer.solver_runs += runs
                    analyzer.solve_cache_hits += hits
                    analyzer.disk_cache_hits += disk_hits
                    analyzer.disk_cache_writes += disk_writes
                request_id = entry[2]
                response = {} if request_id is None else {"id": request_id}
                response.update(ok=outcome.ok, outcome=outcome.as_dict())
                entry[:] = ["ready", response]
            else:
                submit(entry)

    def flush(block_head: bool = False) -> None:
        """Emit completed responses from the head (in request order).

        With ``block_head`` the head future is awaited, so callers can
        apply backpressure one entry at a time.
        """
        while pending:
            entry = pending[0]
            if entry[0] == "ready":
                emit(entry[1])
            else:
                future, request_id = entry[1], entry[2]
                if not block_head and not future.done():
                    break
                try:
                    _index, outcome, runs, hits, disk_hits, disk_writes = (
                        future.result()
                    )
                except BrokenProcessPool:
                    # handle_crash rewrote the head (fresh future or a ready
                    # crash response); take it from the top of the loop.
                    handle_crash()
                    continue
                analyzer.solver_runs += runs
                analyzer.solve_cache_hits += hits
                analyzer.disk_cache_hits += disk_hits
                analyzer.disk_cache_writes += disk_writes
                response = {} if request_id is None else {"id": request_id}
                response.update(ok=outcome.ok, outcome=outcome.as_dict())
                emit(response)
                block_head = False  # only force the first head
            pending.popleft()

    def drain() -> None:
        while pending:
            flush(block_head=True)

    try:
        for line in input_stream:
            stripped = line.strip()
            if not stripped or stripped.startswith("#"):
                continue
            try:
                payload = json.loads(stripped)
            except json.JSONDecodeError as exc:
                pending.append(
                    ["ready", {"ok": False, "error": wire.error_payload(exc)}]
                )
            else:
                if not isinstance(payload, dict):
                    pending.append(
                        [
                            "ready",
                            {
                                "ok": False,
                                "error": {
                                    "kind": "ProtocolError",
                                    "message": "request must be an object",
                                },
                            },
                        ]
                    )
                elif "op" in payload:
                    # Control operations are barriers: drain so e.g. stats
                    # reflect every request submitted before them.
                    drain()
                    response = {"id": payload["id"]} if "id" in payload else {}
                    response.update(handle_op(payload, analyzer))
                    pending.append(["ready", response])
                else:
                    request_id = payload.get("id")
                    try:
                        query = wire.query_from_dict(payload, dtd_cache)
                        query_budget = wire.budget_from_dict(payload)
                    except (wire.WireError, ValueError) as exc:
                        response = {} if request_id is None else {"id": request_id}
                        response.update(ok=False, error=wire.error_payload(exc))
                        pending.append(["ready", response])
                    else:
                        if _parallel_safe(query):
                            sequence += 1
                            entry = [
                                "future", None, request_id, query, query_budget,
                                0, sequence,
                            ]
                            submit(entry)
                            pending.append(entry)
                        else:  # pragma: no cover - wire types are always safe
                            outcome = analyzer.solve(query, query_budget)
                            response = {} if request_id is None else {"id": request_id}
                            response.update(ok=outcome.ok, outcome=outcome.as_dict())
                            pending.append(["ready", response])
            flush()
            while in_flight() > max_in_flight:
                flush(block_head=True)
        drain()
    finally:
        pool.shutdown(wait=False)
        shutil.rmtree(marker_dir, ignore_errors=True)
    return 0


def run(args) -> int:
    from repro.cli.main import budget_from_args

    return serve(
        sys.stdin,
        sys.stdout,
        cache_dir=args.cache_dir,
        workers=getattr(args, "workers", 1) or 1,
        backend=getattr(args, "backend", None),
        budget=budget_from_args(args),
        degrade=getattr(args, "degrade", False),
        batch_fixpoint=getattr(args, "batch_fixpoint", None) or "off",
    )
