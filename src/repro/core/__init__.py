"""Shared utilities and error types for the repro library."""

from repro.core.errors import (
    ReproError,
    NavigationError,
    ParseError,
    CycleFreenessError,
    SolverLimitError,
)

__all__ = [
    "ReproError",
    "NavigationError",
    "ParseError",
    "CycleFreenessError",
    "SolverLimitError",
]
