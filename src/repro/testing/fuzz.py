"""The differential fuzzing campaign driver behind ``repro fuzz``.

Every trial generates one decision problem (:func:`repro.testing.generators.
gen_case`) and answers it with the symbolic engine under the full ablation
matrix — cone-of-influence label pruning on/off × frontier delta products
on/off × one run per configured BDD backend (``FuzzConfig.backends``) — then
cross-examines the verdict with the three oracles of
:mod:`repro.testing.oracle`:

* all symbolic verdicts must be identical (ablation agreement — including
  across backends, which must be observationally equivalent);
* a witness found by bounded focused-tree enumeration refutes an
  "unsatisfiable" verdict;
* the sampled Proposition 5.1 checks must find no model/semantics mismatch;
* the gated ψ-type solver's verdict must match;
* a "satisfiable" verdict's model document must replay cleanly through the
  denotational semantics and DTD membership.

With ``FuzzConfig.chaos`` the campaign additionally stress-tests *resource
governance* on every trial: a solve under a small seeded step budget must
either agree with the unbudgeted reference verdict or surface as a
structured :class:`~repro.core.errors.BudgetExceeded` (never a wrong verdict
and never any other exception), and a solve with an injected deadline-expiry
fault (:mod:`repro.testing.faults`) must raise
``BudgetExceeded(reason="deadline")`` — proving the governor's checkpoints
are reachable on arbitrary generated formulas.

Disagreements are shrunk (:func:`repro.testing.shrink.shrink_case`) and
serialised into the corpus directory, where ``tests/test_corpus.py`` replays
them forever.  Campaigns are deterministic: trial ``i`` of ``--seed S``
always fuzzes the same case, whatever ``--workers`` says.
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass, field

from repro.analysis.problems import label_projection, relevant_attributes
from repro.logic import syntax as sx
from repro.logic.negation import negate
from repro.solver.symbolic import SymbolicSolver
from repro.testing.corpus import FuzzCase, write_corpus_case
from repro.testing.generators import GeneratorConfig, gen_case
from repro.testing.oracle import (
    Bounds,
    bounded_search,
    explicit_verdict,
    replay_witness,
)
from repro.testing.shrink import shrink_case
from repro.trees.unranked import serialize_tree
from repro.xmltypes.compile import compile_dtd
from repro.xmltypes.dtd import DTD
from repro.xpath.compile import compile_xpath
from repro.xpath.parser import parse_xpath_cached

#: The ablation matrix every trial runs: (prune_labels, frontier).  The
#: third axis — the BDD backend — comes from ``FuzzConfig.backends``.
ABLATION_MATRIX = (
    (False, True),
    (False, False),
    (True, True),
    (True, False),
)

#: Default backend axis of the ablation matrix (the engine the rest of the
#: suite exercises by default; pass several names to cross-check engines).
DEFAULT_FUZZ_BACKENDS = ("dict",)


@dataclass(frozen=True)
class FuzzConfig:
    """One campaign's parameters (all deterministic given ``seed``)."""

    budget: int = 100
    seed: int = 0
    bounds: Bounds = field(default_factory=Bounds)
    generator: GeneratorConfig = field(default_factory=GeneratorConfig)
    workers: int = 1
    #: Where shrunk disagreements are serialised (``None``: not written).
    corpus_dir: str | None = None
    #: Additionally write this many shrunk *agreeing* cases as regression
    #: seeds (spread over kinds and verdicts).
    sample_corpus: int = 0
    #: BDD engines forming the third ablation axis; every (pruning,
    #: frontier) cell is solved once per backend and all verdicts must
    #: agree.  The first entry is the reference engine.
    backends: tuple[str, ...] = DEFAULT_FUZZ_BACKENDS
    #: Also run the resource-governance chaos probes on every solved trial
    #: (seeded budgeted re-solve + injected deadline expiry; see module
    #: docstring).
    chaos: bool = False
    #: Also run the merged-Lean batch ablation on every solved trial: the
    #: case (plus one satisfiability probe per expression, so the batch
    #: really groups) is solved through the analyzer with
    #: ``batch_fixpoint="on"`` and ``"off"``, and ``holds``/``satisfiable``/
    #: ``verdict_status`` and the serialised witness must match per query.
    batch_fixpoint: bool = False

    def trial_seeds(self) -> list[int]:
        """The per-trial generator seeds; independent of ``workers``."""
        master = random.Random(self.seed)
        return [master.randrange(2**62) for _ in range(self.budget)]


@dataclass
class TrialOutcome:
    """Everything one trial learned about its case."""

    index: int
    case: FuzzCase
    satisfiable: bool | None = None
    holds: bool | None = None
    #: Verdicts of the (pruning, frontier, backend) ablation matrix, keyed
    #: ``"prune=P,frontier=F,backend=B"``.
    ablation: dict = field(default_factory=dict)
    disagreements: list[dict] = field(default_factory=list)
    #: Oracle engagement counters for the campaign report.
    enumeration_checked: int = 0
    enumeration_exhausted: bool = False
    enumeration_witness: bool = False
    semantic_checks: int = 0
    explicit_engaged: bool = False
    replay_checked: bool = False
    replay_skipped: bool = False
    #: Chaos-axis engagement (``FuzzConfig.chaos``): whether the probes ran,
    #: the step budget the budgeted re-solve ran under, the structured reason
    #: when that budget ran out (``None``: it finished and agreed), and
    #: whether the injected deadline expiry surfaced correctly.
    chaos_checked: bool = False
    chaos_max_steps: int = 0
    chaos_budget_reason: str | None = None
    chaos_deadline_injected: bool = False
    #: Batch-fixpoint axis engagement (``FuzzConfig.batch_fixpoint``): how
    #: many queries the per-trial batch held and how many solver fixpoints
    #: each mode ran (merged mode must never run more than per-query mode).
    batch_checked: bool = False
    batch_queries: int = 0
    batch_merged_runs: int = 0
    batch_per_query_runs: int = 0
    #: The case's Lean exceeded ``bounds.max_lean``; nothing was solved.
    skipped_oversized: bool = False
    lean_size: int = 0
    error: str | None = None
    seconds: float = 0.0

    def as_dict(self) -> dict:
        return {
            "index": self.index,
            "case": self.case.as_dict(),
            "satisfiable": self.satisfiable,
            "holds": self.holds,
            "disagreements": self.disagreements,
            "error": self.error,
            "seconds": round(self.seconds, 6),
        }


def single_root() -> sx.Formula:
    """The focus lies in a *single-rooted* document.

    The logic's models are hedges: the solver happily exhibits witnesses
    whose top level carries several sibling trees, which no XML document can
    express and no denotational oracle in this repository can evaluate (the
    zipper's top level has no siblings).  Conjoining
    ``µZ. (¬⟨1̄⟩⊤ ∧ ¬⟨2̄⟩⊤ ∧ ¬⟨2⟩⊤) ∨ ⟨1̄⟩Z ∨ ⟨2̄⟩Z`` — "walking up and left
    from here ends at a lone top-level node" — restricts every fuzzed
    problem to the XML-document reading the oracles decide.  On
    single-rooted documents the constraint holds at every node, so it never
    distorts a verdict within the oracles' model class.
    """
    return sx.mu1(
        lambda z: sx.big_and((sx.no_dia(-1), sx.no_dia(-2), sx.no_dia(2)))
        | sx.dia(-1, z)
        | sx.dia(-2, z),
        prefix="SingleRoot",
    )


def _lean_size(formula: sx.Formula) -> int:
    """Size of the Lean the solver would work over (of the plunged formula)."""
    from repro.logic.closure import lean as compute_lean

    plunged = sx.mu1(
        lambda x: formula | sx.dia(1, x) | sx.dia(2, x), prefix="Plunge"
    )
    return len(compute_lean(plunged))


def case_formula(case: FuzzCase, dtd: DTD | None, pruned: bool) -> sx.Formula:
    """The Lµ reduction of the case (optionally label-pruned)."""
    attributes = relevant_attributes(*case.exprs)
    labels = None
    if pruned:
        labels = label_projection(case.exprs, (dtd,) * len(case.exprs))
    if dtd is None:
        context = sx.TRUE
    else:
        context = compile_dtd(dtd, attributes=attributes or None, labels=labels)
    queries = [
        compile_xpath(parse_xpath_cached(text), context) for text in case.exprs
    ]
    if case.kind in ("satisfiability", "emptiness"):
        reduced = queries[0]
    elif case.kind == "containment":
        reduced = sx.mk_and(queries[0], negate(queries[1]))
    elif case.kind == "overlap":
        reduced = sx.mk_and(queries[0], queries[1])
    else:
        raise AssertionError(f"unknown fuzz kind {case.kind!r}")
    return sx.mk_and(reduced, single_root())


def evaluate_case(
    case: FuzzCase,
    bounds: Bounds = Bounds(),
    index: int = 0,
    backends: tuple[str, ...] = DEFAULT_FUZZ_BACKENDS,
    chaos: bool = False,
    batch_fixpoint: bool = False,
) -> TrialOutcome:
    """Run one case through the ablation matrix and every oracle.

    ``backends`` is the BDD-engine axis: every (pruning, frontier) cell is
    solved once per listed engine, and a verdict split across engines is a
    disagreement like any other.  ``backends[0]`` is the reference whose
    witness feeds the replay oracle.  With ``chaos`` the resource-governance
    probes of :func:`_chaos_check` run after the oracles.
    """
    started = time.perf_counter()
    outcome = TrialOutcome(index=index, case=case)
    dtd = case.dtd()
    formulas = {
        pruned: case_formula(case, dtd, pruned) for pruned in (False, True)
    }

    # Size gate: Lemma 6.7 bounds the solver by 2^O(lean), so a rare
    # oversized case would otherwise dominate the campaign's wall clock.
    outcome.lean_size = _lean_size(formulas[False])
    if outcome.lean_size > bounds.max_lean:
        outcome.skipped_oversized = True
        outcome.seconds = time.perf_counter() - started
        return outcome

    # Symbolic verdicts: pruning on/off x frontier deltas on/off x one run
    # per BDD backend.  Formulas are hash-consed, so when pruning is a no-op
    # (untyped case, or every element name already tested) both pruning rows
    # solve the *same* formula — one solver run per (frontier, backend)
    # answers both.
    results = {}
    solved: dict[tuple, object] = {}
    for pruned, frontier in ABLATION_MATRIX:
        for backend in backends:
            key = (formulas[pruned], frontier, backend)
            if key not in solved:
                solver = SymbolicSolver(
                    formulas[pruned], frontier=frontier, backend=backend
                )
                solved[key] = solver.solve()
            results[(pruned, frontier, backend)] = solved[key]
    outcome.ablation = {
        f"prune={pruned},frontier={frontier},backend={backend}": result.satisfiable
        for (pruned, frontier, backend), result in results.items()
    }
    verdicts = {result.satisfiable for result in results.values()}
    reference = results[(False, True, backends[0])]
    outcome.satisfiable = reference.satisfiable
    outcome.holds = case.holds(reference.satisfiable)
    if len(verdicts) > 1:
        outcome.disagreements.append(
            {
                "oracle": "ablation",
                "detail": "pruning/frontier/backend switches changed the verdict",
                "verdicts": dict(outcome.ablation),
            }
        )

    # Oracle 1: bounded enumeration + sampled Proposition 5.1 checks.
    bounded = bounded_search(case, bounds, formula=formulas[False])
    outcome.enumeration_checked = bounded.documents_checked
    outcome.enumeration_exhausted = bounded.exhausted
    outcome.enumeration_witness = bounded.witness_found
    outcome.semantic_checks = bounded.semantic_checks
    for mismatch in bounded.semantic_mismatches:
        outcome.disagreements.append({"oracle": "semantics", "detail": mismatch})
    if bounded.witness_found and not reference.satisfiable:
        outcome.disagreements.append(
            {
                "oracle": "enumeration",
                "detail": (
                    "bounded enumeration found a witness but the symbolic "
                    f"solver answered unsatisfiable: {bounded.witness}"
                ),
                "witness": serialize_tree(bounded.witness),
            }
        )

    # Oracle 2: the psi-type algorithm (gated by its exponential cost).
    explicit, _estimated = explicit_verdict(formulas[False], bounds)
    if explicit is not None:
        outcome.explicit_engaged = True
        if explicit != reference.satisfiable:
            outcome.disagreements.append(
                {
                    "oracle": "explicit",
                    "detail": (
                        f"psi-type solver answered {explicit}, symbolic solver "
                        f"answered {reference.satisfiable}"
                    ),
                }
            )

    # Oracle 3: replay the symbolic model hedge.
    if reference.satisfiable:
        forest = reference.model_forest() or ()
        if not forest:
            outcome.replay_skipped = True
        else:
            outcome.replay_checked = True
            problems = replay_witness(case, forest, dtd)
            for problem in problems:
                outcome.disagreements.append({"oracle": "witness", "detail": problem})

    # Oracle 4 (chaos axis): resource governance must degrade, never lie.
    if chaos:
        _chaos_check(outcome, formulas[False], reference.satisfiable, backends[0])

    # Oracle 5 (batch axis): merged-Lean batch solving must be invisible.
    if batch_fixpoint:
        for backend in backends:
            _batch_check(outcome, case, dtd, backend)

    outcome.seconds = time.perf_counter() - started
    return outcome


def _chaos_check(
    outcome: TrialOutcome,
    formula: sx.Formula,
    reference_satisfiable: bool,
    backend: str,
) -> None:
    """The resource-governance probes behind ``FuzzConfig.chaos``.

    Two deterministic checks per trial (the step budget is seeded from the
    trial index and the case's Lean size, so campaigns stay reproducible
    whatever ``--workers`` says):

    * a re-solve under a small step budget must either agree with the
      unbudgeted reference verdict or raise a structured
      :class:`~repro.core.errors.BudgetExceeded` — a *different* verdict, or
      any other exception, is a disagreement like any oracle split;
    * a re-solve with an injected deadline expiry (the ``deadline`` fault
      point of :mod:`repro.testing.faults`) must raise
      ``BudgetExceeded(reason="deadline")`` — every governed solve polls at
      its first fixpoint iteration, so a formula on which the fault never
      surfaces means a checkpoint went missing.
    """
    from repro.core.errors import BudgetExceeded
    from repro.solver.governor import Budget
    from repro.testing import faults

    outcome.chaos_checked = True
    rng = random.Random((outcome.index << 20) ^ outcome.lean_size)
    outcome.chaos_max_steps = 2 ** rng.randint(6, 14)
    try:
        budgeted = SymbolicSolver(
            formula, budget=Budget(max_steps=outcome.chaos_max_steps), backend=backend
        ).solve()
    except BudgetExceeded as exc:
        outcome.chaos_budget_reason = exc.reason
    except Exception as exc:  # noqa: BLE001 - the property under test
        outcome.disagreements.append(
            {
                "oracle": "chaos",
                "detail": (
                    f"budgeted solve (max_steps={outcome.chaos_max_steps}) "
                    f"raised {type(exc).__name__} instead of finishing or "
                    f"raising BudgetExceeded: {exc}"
                ),
            }
        )
    else:
        if budgeted.satisfiable != reference_satisfiable:
            outcome.disagreements.append(
                {
                    "oracle": "chaos",
                    "detail": (
                        f"budgeted solve (max_steps={outcome.chaos_max_steps}) "
                        f"answered {budgeted.satisfiable}, unbudgeted "
                        f"reference answered {reference_satisfiable}"
                    ),
                }
            )

    faults.install(faults.FaultPlan([faults.FaultPoint(point="deadline")]))
    try:
        SymbolicSolver(
            formula, budget=Budget(deadline_seconds=3600.0), backend=backend
        ).solve()
    except BudgetExceeded as exc:
        if exc.reason == "deadline":
            outcome.chaos_deadline_injected = True
        else:
            outcome.disagreements.append(
                {
                    "oracle": "chaos",
                    "detail": (
                        "injected deadline expiry surfaced with reason "
                        f"{exc.reason!r} instead of 'deadline'"
                    ),
                }
            )
    except Exception as exc:  # noqa: BLE001 - the property under test
        outcome.disagreements.append(
            {
                "oracle": "chaos",
                "detail": (
                    f"injected deadline expiry raised {type(exc).__name__} "
                    f"instead of BudgetExceeded: {exc}"
                ),
            }
        )
    else:
        outcome.disagreements.append(
            {
                "oracle": "chaos",
                "detail": (
                    "injected deadline expiry never surfaced: the governed "
                    "solve finished without reaching a checkpoint"
                ),
            }
        )
    finally:
        faults.uninstall()


def _case_query(case: FuzzCase, dtd: DTD | None):
    """The :class:`repro.api.Query` asking the case's own question."""
    from repro.api import Query

    if case.kind in ("satisfiability", "emptiness"):
        return getattr(Query, case.kind)(case.exprs[0], dtd)
    if case.kind == "containment":
        return Query.containment(case.exprs[0], case.exprs[1], dtd, dtd)
    if case.kind == "overlap":
        return Query.overlap(case.exprs[0], case.exprs[1], dtd, dtd)
    raise AssertionError(f"unknown fuzz kind {case.kind!r}")


def _batch_check(
    outcome: TrialOutcome, case: FuzzCase, dtd: DTD | None, backend: str
) -> None:
    """The merged-Lean batch ablation behind ``FuzzConfig.batch_fixpoint``.

    The case's query plus one satisfiability probe per expression (so the
    batch holds several compatible queries and really merges) is solved
    twice through fresh analyzers — ``batch_fixpoint="off"`` and ``"on"`` —
    and the modes must be observationally identical per query: same
    ``holds``/``satisfiable``/``verdict_status``/``budget_reason``, same
    structured error, and the *same serialised witness document* (merged
    goals keep their per-query reductions, so even model reconstruction
    must not drift).  Merged mode may only ever run fewer fixpoints.
    """
    from repro.api import Query, StaticAnalyzer

    queries = [_case_query(case, dtd)] + [
        Query.satisfiability(text, dtd) for text in case.exprs
    ]
    per_query = StaticAnalyzer(backend=backend, batch_fixpoint="off").solve_many(
        queries
    )
    merged = StaticAnalyzer(backend=backend, batch_fixpoint="on").solve_many(queries)
    outcome.batch_checked = True
    outcome.batch_queries = len(queries)
    outcome.batch_per_query_runs += per_query.solver_runs
    outcome.batch_merged_runs += merged.solver_runs
    if merged.solver_runs > per_query.solver_runs:
        outcome.disagreements.append(
            {
                "oracle": "batch-fixpoint",
                "detail": (
                    f"merged mode ran {merged.solver_runs} fixpoints on "
                    f"backend {backend}, more than per-query mode's "
                    f"{per_query.solver_runs}"
                ),
            }
        )
    for position, (off, on) in enumerate(zip(per_query.outcomes, merged.outcomes)):
        observed = {
            field_name: (getattr(off, field_name), getattr(on, field_name))
            for field_name in (
                "holds",
                "satisfiable",
                "verdict_status",
                "budget_reason",
                "error_kind",
                "counterexample",
            )
        }
        split = {
            field_name: {"off": values[0], "on": values[1]}
            for field_name, values in observed.items()
            if values[0] != values[1]
        }
        if split:
            outcome.disagreements.append(
                {
                    "oracle": "batch-fixpoint",
                    "detail": (
                        f"batch_fixpoint on/off disagree on query {position} "
                        f"({queries[position].kind}, backend {backend})"
                    ),
                    "fields": split,
                }
            )


# ---------------------------------------------------------------------------
# Campaign driver
# ---------------------------------------------------------------------------


@dataclass
class FuzzReport:
    """Aggregated campaign outcome (JSON-able via :meth:`as_dict`)."""

    config: FuzzConfig
    trials: list[TrialOutcome] = field(default_factory=list)
    corpus_files: list[str] = field(default_factory=list)
    elapsed_seconds: float = 0.0

    @property
    def disagreements(self) -> list[dict]:
        found = []
        for trial in self.trials:
            for disagreement in trial.disagreements:
                found.append({"trial": trial.index, **disagreement})
        return found

    @property
    def errors(self) -> list[dict]:
        return [
            {"trial": trial.index, "error": trial.error}
            for trial in self.trials
            if trial.error is not None
        ]

    def as_dict(self) -> dict:
        trials = self.trials
        sat = sum(1 for t in trials if t.satisfiable)
        return {
            "budget": self.config.budget,
            "seed": self.config.seed,
            "workers": self.config.workers,
            "bounds": self.config.bounds.as_dict(),
            "trials": len(trials),
            "skipped_oversized": sum(1 for t in trials if t.skipped_oversized),
            "elapsed_seconds": round(self.elapsed_seconds, 3),
            "verdicts": {
                "satisfiable": sat,
                "unsatisfiable": sum(
                    1 for t in trials if t.satisfiable is False
                ),
            },
            "ablation": {
                "matrix": [
                    {"prune_labels": pruned, "frontier": frontier, "backend": backend}
                    for pruned, frontier in ABLATION_MATRIX
                    for backend in self.config.backends
                ],
                "backends": list(self.config.backends),
                "identical_verdicts": not any(
                    d["oracle"] == "ablation" for d in self.disagreements
                ),
            },
            "oracles": {
                "enumeration_documents": sum(t.enumeration_checked for t in trials),
                "enumeration_exhausted_trials": sum(
                    1 for t in trials if t.enumeration_exhausted
                ),
                "enumeration_witnesses": sum(
                    1 for t in trials if t.enumeration_witness
                ),
                "semantic_checks": sum(t.semantic_checks for t in trials),
                "explicit_engaged_trials": sum(
                    1 for t in trials if t.explicit_engaged
                ),
                "witness_replays": sum(1 for t in trials if t.replay_checked),
                "witness_replays_skipped": sum(
                    1 for t in trials if t.replay_skipped
                ),
            },
            "batch_fixpoint": {
                "enabled": self.config.batch_fixpoint,
                "trials": sum(1 for t in trials if t.batch_checked),
                "queries": sum(t.batch_queries for t in trials),
                "merged_runs": sum(t.batch_merged_runs for t in trials),
                "per_query_runs": sum(t.batch_per_query_runs for t in trials),
                "identical_verdicts": not any(
                    d["oracle"] == "batch-fixpoint" for d in self.disagreements
                ),
            },
            "chaos": {
                "enabled": self.config.chaos,
                "trials": sum(1 for t in trials if t.chaos_checked),
                "budgeted_unknowns": sum(
                    1 for t in trials if t.chaos_budget_reason is not None
                ),
                "budgeted_agreements": sum(
                    1
                    for t in trials
                    if t.chaos_checked and t.chaos_budget_reason is None
                ),
                "deadline_injections": sum(
                    1 for t in trials if t.chaos_deadline_injected
                ),
            },
            "disagreements": self.disagreements,
            "errors": self.errors,
            "corpus_files": list(self.corpus_files),
        }


def _run_trial(index: int, trial_seed: int, config: FuzzConfig) -> TrialOutcome:
    rng = random.Random(trial_seed)
    case = gen_case(rng, config.generator)
    try:
        return evaluate_case(
            case,
            config.bounds,
            index=index,
            backends=config.backends,
            chaos=config.chaos,
            batch_fixpoint=config.batch_fixpoint,
        )
    except Exception as exc:  # noqa: BLE001 - reported, never swallowed
        outcome = TrialOutcome(index=index, case=case)
        outcome.error = f"{type(exc).__name__}: {exc}"
        return outcome


def _run_trial_chunk(args: tuple) -> list[TrialOutcome]:
    config, indexed_seeds = args
    return [_run_trial(index, seed, config) for index, seed in indexed_seeds]


def run_fuzz(config: FuzzConfig) -> FuzzReport:
    """Run a campaign; shrink and serialise whatever disagrees.

    With ``workers > 1`` trials fan out to a process pool; results are
    identical to a sequential run because every trial draws from its own
    pre-computed seed.
    """
    started = time.perf_counter()
    seeds = config.trial_seeds()
    indexed = list(enumerate(seeds))
    if config.workers > 1 and len(indexed) > 1:
        from concurrent.futures import ProcessPoolExecutor

        chunks = [
            (config, indexed[offset :: config.workers])
            for offset in range(config.workers)
        ]
        with ProcessPoolExecutor(max_workers=config.workers) as pool:
            outcomes = [
                outcome
                for chunk in pool.map(_run_trial_chunk, chunks)
                for outcome in chunk
            ]
        outcomes.sort(key=lambda outcome: outcome.index)
    else:
        outcomes = [_run_trial(index, seed, config) for index, seed in indexed]

    report = FuzzReport(config=config, trials=outcomes)
    if config.corpus_dir is not None:
        _write_disagreements(report, config)
        if config.sample_corpus:
            _write_regression_samples(report, config)
    report.elapsed_seconds = time.perf_counter() - started
    return report


def _still_disagrees(
    bounds: Bounds,
    backends: tuple[str, ...],
    chaos: bool = False,
    batch_fixpoint: bool = False,
):
    def predicate(candidate: FuzzCase) -> bool:
        outcome = evaluate_case(
            candidate,
            bounds,
            backends=backends,
            chaos=chaos,
            batch_fixpoint=batch_fixpoint,
        )
        return bool(outcome.disagreements)

    return predicate


def _write_disagreements(report: FuzzReport, config: FuzzConfig) -> None:
    """Shrink every disagreeing case and serialise it for permanent replay."""
    for trial in report.trials:
        if not trial.disagreements:
            continue
        shrunk = shrink_case(
            trial.case,
            _still_disagrees(
                config.bounds, config.backends, config.chaos, config.batch_fixpoint
            ),
        )
        disagreement = dict(trial.disagreements[0])
        disagreement.setdefault("backends", list(config.backends))
        path = write_corpus_case(
            config.corpus_dir,
            shrunk,
            origin=f"repro fuzz --seed {config.seed} (trial {trial.index})",
            disagreement=disagreement,
        )
        _record_corpus_file(report, path)


def _verdict_preserved(
    reference: TrialOutcome, bounds: Bounds, backends: tuple[str, ...]
):
    """Shrink predicate for regression seeds: same verdict, same shape.

    Typedness is preserved (a typed case must not shrink into an untyped
    one — the corpus should keep covering the DTD translation), and every
    oracle must still agree on the candidate.
    """

    def predicate(candidate: FuzzCase) -> bool:
        if (candidate.dtd_source is None) != (reference.case.dtd_source is None):
            return False
        if _mentions_attributes(reference.case) and not _mentions_attributes(candidate):
            return False
        outcome = evaluate_case(candidate, bounds, backends=backends)
        return (
            not outcome.disagreements
            and outcome.error is None
            and outcome.satisfiable == reference.satisfiable
        )

    return predicate


def _mentions_attributes(case: FuzzCase) -> bool:
    return bool(relevant_attributes(*case.exprs))


def _write_regression_samples(report: FuzzReport, config: FuzzConfig) -> None:
    """Serialise shrunk *agreeing* cases as permanent regression seeds.

    Candidates are spread over (kind, verdict, typedness) so the corpus
    covers the problem space instead of twelve flavours of the same case;
    shrinking uses a verdict-preserving predicate, so the committed case is
    the smallest one that still exercises the same engines the same way.
    """
    chosen: dict[tuple, TrialOutcome] = {}
    for trial in report.trials:
        if trial.disagreements or trial.error is not None or trial.satisfiable is None:
            continue
        if trial.satisfiable and not trial.replay_checked:
            continue  # prefer cases whose witness actually replays
        key = (
            trial.case.kind,
            trial.satisfiable,
            trial.case.dtd_source is not None,
            _mentions_attributes(trial.case),
        )
        if key not in chosen:
            chosen[key] = trial
        if len(chosen) >= config.sample_corpus:
            break
    extra = (
        trial
        for trial in report.trials
        if not trial.disagreements
        and trial.error is None
        and trial.satisfiable is not None
        and trial not in chosen.values()
    )
    samples = list(chosen.values())
    while len(samples) < config.sample_corpus:
        candidate = next(extra, None)
        if candidate is None:
            break
        samples.append(candidate)
    for trial in samples:
        shrunk = shrink_case(
            trial.case,
            _verdict_preserved(trial, config.bounds, config.backends),
            budget=80,
        )
        final = evaluate_case(shrunk, config.bounds, backends=config.backends)
        path = write_corpus_case(
            config.corpus_dir,
            shrunk,
            origin=f"repro fuzz --seed {config.seed} (trial {trial.index}, shrunk)",
            expected={
                "satisfiable": final.satisfiable,
                "holds": final.holds,
                "backends": list(config.backends),
            },
        )
        _record_corpus_file(report, path)


def _record_corpus_file(report: FuzzReport, path) -> None:
    """Corpus file names are content-addressed: two trials shrinking to the
    same minimal case rewrite one file, which must be reported once."""
    text = str(path)
    if text not in report.corpus_files:
        report.corpus_files.append(text)
