<?xml version="1.0" encoding="utf-8"?>
<!-- Imported by examples/audit_stylesheet.xsl.  Its head/title rule is
     shadowed: the importing stylesheet declares the same match pattern at
     higher import precedence (XSLT 1.0 section 2.6.2). -->
<xsl:stylesheet xmlns:xsl="http://www.w3.org/1999/XSL/Transform" version="1.0">

  <xsl:template match="head/title">
    <imported-title/>
  </xsl:template>

</xsl:stylesheet>
