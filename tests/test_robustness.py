"""Resource governance, graceful degradation, and crash tolerance.

The solver is ``2^O(lean)`` (Lemma 6.7), so deployments facing untrusted
queries bound every solve with a :class:`repro.solver.governor.Budget` and
treat exhaustion as a first-class *unknown* verdict.  This suite covers the
whole ladder:

* the governor primitives (budget validation/merging, every trip reason);
* ``unknown`` outcomes through the API façade, including the committed
  pathological query that must trip a 2-second deadline on *both* BDD
  backends with the identical structured reason;
* graceful degradation to the bounded explicit solver;
* crash-tolerant batches: an injected mid-batch worker crash must leave
  every other verdict identical to an uninjected run;
* disk-cache corruption quarantine (including the torn-write fault point);
* the wire/CLI surface (per-request budgets, exit code 3) and the fuzzer's
  chaos axis.
"""

from __future__ import annotations

import io
import json
import textwrap
import time

import pytest

from repro.api import BatchReport, Query, StaticAnalyzer
from repro.cli import main
from repro.cli import wire
from repro.cli.analyze import EXIT_ANALYSIS_ERROR, EXIT_OK, EXIT_UNKNOWN
from repro.cli.serve import serve
from repro.core.errors import BUDGET_REASONS, BudgetExceeded
from repro.solver.governor import Budget, ResourceGovernor, governor_for
from repro.testing import faults

#: A containment whose full solve is effectively unbounded (the scaling
#: family of docs/BENCHMARKS.md at depth 14): ``a1/a2[b2]/.../a14[b14]``
#: against the same path with the first filter removed.  Committed as the
#: regression instance for deadline trips — both engines must give up on it
#: within a small deadline instead of running for minutes.
PATHOLOGICAL = "/".join(["a1"] + [f"a{i}[b{i}]" for i in range(2, 15)])
PATHOLOGICAL_SUPERSET = PATHOLOGICAL.replace("[b2]", "")


# ---------------------------------------------------------------------------
# Budget and governor primitives
# ---------------------------------------------------------------------------


def test_budget_from_dict_round_trips():
    budget = Budget.from_dict(
        {"deadline_seconds": 1.5, "max_steps": 100, "max_iterations": 7}
    )
    assert budget == Budget(deadline_seconds=1.5, max_steps=100, max_iterations=7)
    assert Budget.from_dict(budget.as_dict()) == budget
    assert Budget().unlimited and not budget.unlimited


def test_budget_from_dict_rejects_unknown_and_non_positive_fields():
    with pytest.raises(ValueError, match="unknown budget field"):
        Budget.from_dict({"max_steps": 1, "timeout": 3})
    for field in ("deadline_seconds", "max_steps", "max_iterations", "max_lean"):
        with pytest.raises(ValueError, match="must be positive"):
            Budget.from_dict({field: 0})
        with pytest.raises(ValueError, match="must be positive"):
            Budget.from_dict({field: -1})


def test_budget_merged_with_tightens_field_by_field():
    analyzer_wide = Budget(deadline_seconds=10.0, max_steps=1000)
    per_request = Budget(max_steps=50, max_lean=30)
    merged = analyzer_wide.merged_with(per_request)
    assert merged == Budget(deadline_seconds=10.0, max_steps=50, max_lean=30)
    assert analyzer_wide.merged_with(None) == analyzer_wide


def test_governor_for_returns_none_when_unlimited():
    assert governor_for(None) is None
    assert governor_for(Budget()) is None
    assert governor_for(Budget(max_steps=1)) is not None


def test_governor_trips_step_budget_within_one_stride():
    governor = ResourceGovernor(Budget(max_steps=10))
    with pytest.raises(BudgetExceeded) as info:
        for _ in range(2 * ResourceGovernor.POLL_STRIDE):
            governor.tick()
    assert info.value.reason == "steps"
    assert info.value.limit == 10
    assert info.value.observed <= 2 * ResourceGovernor.POLL_STRIDE


def test_governor_trips_deadline():
    governor = ResourceGovernor(Budget(deadline_seconds=0.001))
    time.sleep(0.01)
    with pytest.raises(BudgetExceeded) as info:
        governor.poll()
    assert info.value.reason == "deadline"


def test_governor_trips_iterations_and_lean():
    governor = ResourceGovernor(Budget(max_iterations=4))
    governor.check_iteration(4)  # at the cap: fine
    with pytest.raises(BudgetExceeded) as info:
        governor.check_iteration(5)
    assert info.value.reason == "iterations"

    governor = ResourceGovernor(Budget(max_lean=5))
    governor.check_lean(5)
    with pytest.raises(BudgetExceeded) as info:
        governor.check_lean(6)
    assert info.value.reason == "lean"


def test_governor_injected_deadline_fault():
    faults.install(faults.FaultPlan([faults.FaultPoint(point="deadline")]))
    try:
        governor = ResourceGovernor(Budget(deadline_seconds=3600.0))
        with pytest.raises(BudgetExceeded) as info:
            governor.poll()
        assert info.value.reason == "deadline"
        governor.poll()  # the point was times=1: spent after one firing
    finally:
        faults.uninstall()


def test_budget_exceeded_validates_reason():
    exc = BudgetExceeded("steps", "ran out", limit=5, observed=9)
    assert exc.as_dict() == {
        "reason": "steps",
        "message": "ran out",
        "limit": 5,
        "observed": 9,
    }
    with pytest.raises(ValueError):
        BudgetExceeded("toner", "not a reason")
    assert "worker-crash" in BUDGET_REASONS


# ---------------------------------------------------------------------------
# Unknown outcomes through the API façade
# ---------------------------------------------------------------------------


def test_step_budget_yields_structured_unknown_then_definite():
    analyzer = StaticAnalyzer()
    query = Query.containment("a/b", "a//b")
    vague = analyzer.solve(query, Budget(max_steps=1))
    assert vague.ok and not vague.definite and vague.unknown
    assert vague.verdict_status == "unknown"
    assert vague.budget_reason == "steps"
    assert vague.holds is None and vague.satisfiable is None
    assert vague.statistics["budget"]["reason"] == "steps"
    assert vague.as_dict()["verdict_status"] == "unknown"

    sharp = analyzer.solve(query)
    assert sharp.definite and sharp.verdict_status == "definite"
    assert sharp.holds is True and sharp.budget_reason is None

    # Cache layers are immune to budgets: once a definite verdict is known,
    # the same budgeted request is answered from cache instead of unknown.
    cached = analyzer.solve(query, Budget(max_steps=1))
    assert cached.definite and cached.from_cache


def test_max_lean_gate_refuses_before_solving():
    analyzer = StaticAnalyzer(budget=Budget(max_lean=5))
    outcome = analyzer.solve(Query.satisfiability("a/b[c]//d"))
    assert outcome.unknown and outcome.budget_reason == "lean"
    assert outcome.statistics["budget"]["observed"] > 5


def test_analyzer_wide_budget_merges_with_per_call_budget():
    analyzer = StaticAnalyzer(budget=Budget(max_lean=5))
    # The per-call budget relaxes the lean gate; the solve then completes.
    outcome = analyzer.solve(Query.satisfiability("a/b"), Budget(max_lean=10_000))
    assert outcome.definite and outcome.satisfiable is True


def test_error_outcomes_carry_error_status():
    outcome = StaticAnalyzer().solve(Query.satisfiability("a////"))
    assert not outcome.ok and outcome.verdict_status == "error"
    assert not outcome.definite and not outcome.unknown
    assert outcome.budget_reason is None


def test_equivalence_with_budget_is_unknown_not_wrong():
    analyzer = StaticAnalyzer()
    query = Query.equivalence("a//b", "a//b[c] | a//b[not(c)]")
    vague = analyzer.solve(query, Budget(max_steps=1))
    assert vague.unknown and vague.budget_reason == "steps"
    sharp = analyzer.solve(query)
    assert sharp.definite and sharp.holds is True


def test_batch_report_counts_unknowns():
    analyzer = StaticAnalyzer()
    outcomes = [
        analyzer.solve(Query.satisfiability("a"), None),
        analyzer.solve(Query.containment("a/b", "a//b"), Budget(max_steps=1)),
    ]
    report = BatchReport(
        outcomes=outcomes, total_seconds=0.0, solver_runs=2, cache_hits=0
    )
    assert report.unknowns == 1
    assert report.as_dict()["unknowns"] == 1


def test_pathological_query_trips_deadline_on_both_backends():
    """The committed regression instance: a 2s deadline must turn the
    effectively-unbounded depth-14 containment into a structured unknown on
    both BDD engines, with the identical reason."""
    query = Query.containment(PATHOLOGICAL, PATHOLOGICAL_SUPERSET)
    reasons = {}
    for backend in ("dict", "arena"):
        analyzer = StaticAnalyzer(backend=backend)
        started = time.perf_counter()
        outcome = analyzer.solve(query, Budget(deadline_seconds=2.0))
        elapsed = time.perf_counter() - started
        assert outcome.unknown, f"{backend}: expected unknown, got {outcome.as_dict()}"
        reasons[backend] = outcome.budget_reason
        # The deadline is enforced inside iterations (kernel ticks), so the
        # solve must stop within a small margin of the 2s budget.
        assert elapsed < 10.0, f"{backend}: deadline trip took {elapsed:.1f}s"
    assert reasons == {"dict": "deadline", "arena": "deadline"}


# ---------------------------------------------------------------------------
# Graceful degradation to the bounded explicit solver
# ---------------------------------------------------------------------------


def test_degradation_rescues_small_instances():
    analyzer = StaticAnalyzer(degrade=True)
    outcome = analyzer.solve(Query.satisfiability("a"), Budget(max_steps=1))
    assert outcome.definite and outcome.satisfiable is True
    assert outcome.statistics["degraded"] is True
    assert outcome.counterexample is not None
    # The degraded verdict is definite, so it enters the cache like any other.
    replay = analyzer.solve(Query.satisfiability("a"), Budget(max_steps=1))
    assert replay.definite and replay.from_cache


def test_degradation_declines_large_instances():
    # "a/b" estimates 6144 psi-types > DEGRADE_MAX_TYPES: the fallback would
    # cost seconds, so the analyzer stays honest and reports unknown.
    analyzer = StaticAnalyzer(degrade=True)
    outcome = analyzer.solve(Query.satisfiability("a/b"), Budget(max_steps=1))
    assert outcome.unknown and outcome.budget_reason == "steps"


def test_degradation_never_engages_for_worker_crash():
    # worker-crash unknowns mean the query kills processes; re-running it
    # in-process via the explicit solver would be reckless.
    analyzer = StaticAnalyzer(degrade=True)
    outcome = analyzer._crash_outcome(Query.satisfiability("a"))
    assert outcome.unknown and outcome.budget_reason == "worker-crash"


# ---------------------------------------------------------------------------
# Crash-tolerant batches
# ---------------------------------------------------------------------------

BATCH = [
    Query.satisfiability("a/b"),
    Query.containment("a/b", "a//b"),
    Query.satisfiability("zzpoison"),
    Query.containment("a//b", "a/b"),
    Query.satisfiability("c[d]"),
]


def _verdicts(report: BatchReport) -> list[tuple]:
    return [
        (o.verdict_status, o.holds, o.satisfiable, o.budget_reason)
        for o in report.outcomes
    ]


def test_batch_recovers_fully_from_a_single_injected_crash(tmp_path, monkeypatch):
    """One worker crash (latched: exactly one firing across the pool and its
    respawns) must be invisible in the verdicts: the isolated retry answers
    the blamed query, and every verdict equals the uninjected run's."""
    reference = StaticAnalyzer().solve_many(BATCH)
    plan = [
        {
            "point": "worker-crash",
            "match": "zzpoison",
            "times": None,
            "latch": str(tmp_path / "crash.latch"),
        }
    ]
    monkeypatch.setenv(faults.FAULTS_ENV, json.dumps(plan))
    report = StaticAnalyzer().solve_many(BATCH, workers=2)
    assert (tmp_path / "crash.latch").exists(), "the fault never fired"
    assert _verdicts(report) == _verdicts(reference)
    assert all(o.definite for o in report.outcomes)


def test_batch_quarantines_a_poison_query(monkeypatch):
    """A query that kills its worker every time (shared pool *and* isolated
    retry) becomes unknown('worker-crash'); every other verdict must be
    identical to the uninjected run."""
    reference = StaticAnalyzer().solve_many(BATCH)
    plan = [{"point": "worker-crash", "match": "zzpoison", "times": None}]
    monkeypatch.setenv(faults.FAULTS_ENV, json.dumps(plan))
    report = StaticAnalyzer().solve_many(BATCH, workers=2)
    poison = report.outcomes[2]
    assert poison.unknown and poison.budget_reason == "worker-crash"
    assert report.unknowns == 1
    for index, outcome in enumerate(report.outcomes):
        if index == 2:
            continue
        assert (
            _verdicts(report)[index] == _verdicts(reference)[index]
        ), f"bystander {index} verdict changed"


def test_batch_workers_enforce_budgets(monkeypatch):
    """Budgets pickle across the pool: workers produce the same structured
    unknown the in-process path does."""
    queries = [Query.satisfiability("a"), Query.containment("a/b", "a//b")]
    report = StaticAnalyzer().solve_many(queries, workers=2, budget=Budget(max_steps=1))
    assert all(o.unknown and o.budget_reason == "steps" for o in report.outcomes)


# ---------------------------------------------------------------------------
# Disk-cache corruption quarantine
# ---------------------------------------------------------------------------


def test_corrupt_cache_entry_is_quarantined_and_resolved(tmp_path):
    cache_dir = str(tmp_path / "cache")
    first = StaticAnalyzer(cache_dir=cache_dir)
    outcome = first.solve(Query.satisfiability("a/b"))
    assert outcome.definite
    [entry] = list(first.disk_cache.entry_paths())
    entry.write_text('{"truncated', encoding="utf-8")

    second = StaticAnalyzer(cache_dir=cache_dir)
    replay = second.solve(Query.satisfiability("a/b"))
    assert replay.definite and replay.satisfiable is True
    assert second.disk_cache_hits == 0  # the corrupt entry was a miss
    corpses = list(tmp_path.glob("cache/**/*.corrupt"))
    assert len(corpses) == 1, "the corrupt entry was not quarantined"
    # The healthy verdict was re-written; a third analyzer hits disk again.
    third = StaticAnalyzer(cache_dir=cache_dir)
    assert third.solve(Query.satisfiability("a/b")).from_cache


def test_torn_write_fault_is_survived_by_the_next_reader(tmp_path):
    cache_dir = str(tmp_path / "cache")
    faults.install(faults.FaultPlan([faults.FaultPoint(point="cache-torn-write")]))
    try:
        writer = StaticAnalyzer(cache_dir=cache_dir)
        assert writer.solve(Query.satisfiability("a/b")).definite
    finally:
        faults.uninstall()

    reader = StaticAnalyzer(cache_dir=cache_dir)
    replay = reader.solve(Query.satisfiability("a/b"))
    assert replay.definite and replay.satisfiable is True
    assert reader.disk_cache_hits == 0
    assert list(tmp_path.glob("cache/**/*.corrupt")), "torn entry not quarantined"


# ---------------------------------------------------------------------------
# Wire format and CLI surface
# ---------------------------------------------------------------------------


def test_wire_budget_from_dict():
    assert wire.budget_from_dict({"kind": "satisfiability"}) is None
    assert wire.budget_from_dict({"budget": {}}) is None  # unlimited: absent
    budget = wire.budget_from_dict({"budget": {"max_steps": 9}})
    assert budget == Budget(max_steps=9)
    with pytest.raises(wire.WireError, match="must be an object"):
        wire.budget_from_dict({"budget": 5})
    with pytest.raises(wire.WireError, match="invalid budget"):
        wire.budget_from_dict({"budget": {"timeout": 3}})
    with pytest.raises(wire.WireError, match="invalid budget"):
        wire.budget_from_dict({"budget": {"max_steps": -1}})


def test_analyze_cli_budget_exit_code_three(capsys):
    code = main(["analyze", "a/b", "a//b", "--max-steps", "1"])
    document = json.loads(capsys.readouterr().out)
    assert code == EXIT_UNKNOWN
    assert document["unknowns"] == 1 and document["errors"] == 0
    [outcome] = document["outcomes"]
    assert outcome["verdict_status"] == "unknown"
    assert outcome["budget_reason"] == "steps"


def test_analyze_cli_per_request_budgets(tmp_path, capsys):
    batch = tmp_path / "batch.jsonl"
    batch.write_text(
        json.dumps(
            {"kind": "containment", "exprs": ["a/b", "a//b"],
             "budget": {"max_steps": 1}}
        )
        + "\n"
        + json.dumps({"kind": "satisfiability", "exprs": ["a"]})
        + "\n",
        encoding="utf-8",
    )
    code = main(["analyze", "--batch", str(batch)])
    document = json.loads(capsys.readouterr().out)
    assert code == EXIT_UNKNOWN
    first, second = document["outcomes"]
    assert first["verdict_status"] == "unknown"
    assert second["verdict_status"] == "definite" and second["satisfiable"]


def test_analyze_cli_malformed_budget_is_a_conversion_error(tmp_path, capsys):
    batch = tmp_path / "batch.jsonl"
    batch.write_text(
        json.dumps(
            {"kind": "satisfiability", "exprs": ["a"], "budget": {"nope": 1}}
        )
        + "\n",
        encoding="utf-8",
    )
    code = main(["analyze", "--batch", str(batch)])
    document = json.loads(capsys.readouterr().out)
    assert code == EXIT_ANALYSIS_ERROR
    assert document["outcomes"][0]["verdict_status"] == "error"


def test_analyze_cli_definite_still_exits_zero(capsys):
    assert main(["analyze", "a", "--max-steps", "1000000"]) == EXIT_OK
    assert json.loads(capsys.readouterr().out)["unknowns"] == 0


def test_audit_cli_budget_exit_code_three(tmp_path, capsys):
    sheet = tmp_path / "sheet.xsl"
    sheet.write_text(
        '<?xml version="1.0"?>\n'
        '<xsl:stylesheet xmlns:xsl="http://www.w3.org/1999/XSL/Transform" '
        'version="1.0">\n'
        + textwrap.dedent(
            """\
            <xsl:template match="/">
              <xsl:apply-templates select="article"/>
            </xsl:template>
            <xsl:template match="article">body</xsl:template>
            """
        )
        + "</xsl:stylesheet>\n",
        encoding="utf-8",
    )
    code = main(
        ["audit", str(sheet), "--schema", "wikipedia", "--format", "json",
         "--max-steps", "1"]
    )
    report = json.loads(capsys.readouterr().out)
    assert code == EXIT_UNKNOWN
    rules = {finding["rule"] for finding in report["findings"]}
    assert "analysis-unknown" in rules
    assert all(
        finding["severity"] == "info"
        for finding in report["findings"]
        if finding["rule"] == "analysis-unknown"
    )


def _serve_lines(lines: list[dict], **kwargs) -> list[dict]:
    text = "\n".join(json.dumps(line) for line in lines)
    output = io.StringIO()
    assert serve(io.StringIO(text + "\n"), output, **kwargs) == 0
    return [json.loads(line) for line in output.getvalue().splitlines()]


def test_serve_per_request_budget_yields_unknown_and_session_continues():
    responses = _serve_lines(
        [
            {"id": 1, "kind": "containment", "exprs": ["a/b", "a//b"],
             "budget": {"max_steps": 1}},
            {"id": 2, "kind": "satisfiability", "exprs": ["a"]},
            {"op": "ping"},
        ]
    )
    assert responses[0]["id"] == 1 and responses[0]["ok"]
    assert responses[0]["outcome"]["verdict_status"] == "unknown"
    assert responses[0]["outcome"]["budget_reason"] == "steps"
    assert responses[1]["outcome"]["verdict_status"] == "definite"
    assert responses[2] == {"ok": True, "op": "ping"}


def test_serve_analyzer_wide_budget():
    responses = _serve_lines(
        [{"id": 1, "kind": "containment", "exprs": ["a/b", "a//b"]}],
        budget=Budget(max_steps=1),
    )
    assert responses[0]["outcome"]["verdict_status"] == "unknown"


def test_serve_parallel_survives_poison_request(monkeypatch):
    plan = [{"point": "worker-crash", "match": "zzpoison", "times": None}]
    monkeypatch.setenv(faults.FAULTS_ENV, json.dumps(plan))
    responses = _serve_lines(
        [
            {"id": 1, "kind": "satisfiability", "exprs": ["a"]},
            {"id": 2, "kind": "satisfiability", "exprs": ["zzpoison"]},
            {"id": 3, "kind": "containment", "exprs": ["a/b", "a//b"]},
        ],
        workers=2,
    )
    by_id = {response["id"]: response for response in responses}
    assert by_id[2]["outcome"]["verdict_status"] == "unknown"
    assert by_id[2]["outcome"]["budget_reason"] == "worker-crash"
    assert by_id[1]["outcome"]["verdict_status"] == "definite"
    assert by_id[3]["outcome"]["verdict_status"] == "definite"
    assert by_id[3]["outcome"]["holds"] is True


# ---------------------------------------------------------------------------
# The fuzzer's chaos axis
# ---------------------------------------------------------------------------


def test_fuzz_chaos_axis_finds_no_governance_bugs():
    from repro.testing.fuzz import FuzzConfig, run_fuzz

    report = run_fuzz(FuzzConfig(budget=3, seed=11, chaos=True))
    payload = report.as_dict()
    assert payload["errors"] == [] and payload["disagreements"] == []
    probed = payload["trials"] - payload["skipped_oversized"]
    assert payload["chaos"]["enabled"] is True
    assert payload["chaos"]["trials"] == probed > 0
    # Every probed trial's injected deadline expiry surfaced as a structured
    # BudgetExceeded — the governor checkpoints are reachable on arbitrary
    # generated formulas.
    assert payload["chaos"]["deadline_injections"] == probed
    assert (
        payload["chaos"]["budgeted_unknowns"]
        + payload["chaos"]["budgeted_agreements"]
        == probed
    )
