<?xml version="1.0" encoding="utf-8"?>
<!-- The clean control stylesheet: `repro audit examples/audit_clean.xsl
     (dash)(dash)schema wikipedia` must report zero findings.  The catch-all
     match="*" rule covers every element syntactically, so the coverage rule
     plans no solver queries at all. -->
<xsl:stylesheet xmlns:xsl="http://www.w3.org/1999/XSL/Transform" version="1.0">

  <xsl:template match="/">
    <xsl:apply-templates select="article"/>
  </xsl:template>

  <xsl:template match="*">
    <xsl:apply-templates select="*"/>
  </xsl:template>

  <xsl:template match="meta" priority="1">
    <xsl:value-of select="title"/>
    <xsl:if test="history">has history</xsl:if>
  </xsl:template>

</xsl:stylesheet>
