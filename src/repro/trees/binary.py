"""Binary encoding of unranked trees (first-child / next-sibling).

The logic and the satisfiability algorithm reason over binary trees: modality
``1`` reaches the first child and modality ``2`` the next sibling (Section 3).
The encoding used here is the standard isomorphism between unranked forests
and binary trees also used for regular tree types (Section 5.2 and [26] in the
paper): a forest ``t :: tl`` becomes a binary node whose left subtree encodes
the children of ``t`` and whose right subtree encodes the remaining forest
``tl``.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.trees.unranked import Tree


@dataclass(frozen=True)
class BinTree:
    """A binary tree node: label, optional left/right subtrees, optional mark,
    and the attribute names carried by the node (presence only, sorted)."""

    label: str
    left: "BinTree | None" = None
    right: "BinTree | None" = None
    marked: bool = False
    attributes: tuple[str, ...] = ()

    def __post_init__(self) -> None:
        normalised = tuple(sorted(set(self.attributes)))
        if normalised != self.attributes:
            object.__setattr__(self, "attributes", normalised)

    def size(self) -> int:
        """Number of nodes."""
        total = 1
        if self.left is not None:
            total += self.left.size()
        if self.right is not None:
            total += self.right.size()
        return total

    def depth(self) -> int:
        """Number of nodes on the longest path from this node downward."""
        left = self.left.depth() if self.left is not None else 0
        right = self.right.depth() if self.right is not None else 0
        return 1 + max(left, right)

    def labels(self) -> set[str]:
        """Set of labels occurring in this binary tree."""
        result = {self.label}
        if self.left is not None:
            result |= self.left.labels()
        if self.right is not None:
            result |= self.right.labels()
        return result

    def mark_count(self) -> int:
        """Number of marked nodes."""
        total = 1 if self.marked else 0
        if self.left is not None:
            total += self.left.mark_count()
        if self.right is not None:
            total += self.right.mark_count()
        return total


def to_binary(tree: Tree) -> BinTree:
    """Encode an unranked tree as a binary tree.

    The root of an XML document has no siblings, so the right subtree of the
    resulting root is always empty.
    """
    return _forest_to_binary((tree,))


def _forest_to_binary(forest: tuple[Tree, ...]) -> BinTree | None:
    if not forest:
        return None
    head, rest = forest[0], forest[1:]
    return BinTree(
        head.label,
        _forest_to_binary(head.children),
        _forest_to_binary(rest),
        head.marked,
        head.attributes,
    )


def to_unranked(node: BinTree) -> Tree:
    """Decode a binary tree that encodes a single unranked tree.

    The binary root must not have a right subtree (an XML document element has
    no siblings); use :func:`binary_forest_to_unranked` for general forests.
    """
    if node.right is not None:
        raise ValueError("binary root has a sibling; this is a forest, not a single tree")
    forest = binary_forest_to_unranked(node)
    return forest[0]


def binary_forest_to_unranked(node: BinTree | None) -> tuple[Tree, ...]:
    """Decode a binary tree into the forest of unranked trees it represents."""
    result: list[Tree] = []
    while node is not None:
        children = binary_forest_to_unranked(node.left)
        result.append(Tree(node.label, children, node.marked, node.attributes))
        node = node.right
    return tuple(result)
