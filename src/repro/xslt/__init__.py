"""Static analysis of XSLT 1.0 stylesheets (the ``repro audit`` subsystem).

The paper's headline use case is static analysis of XPath expressions *as
they occur in host languages* — its Fig. 21 benchmarks are drawn from XSLT
use cases.  This package lifts the solver from a yes/no oracle to a program
analyzer: it parses a stylesheet subset (:mod:`repro.xslt.parser`), compiles
every match pattern and ``select``/``test`` expression together with its
static context into the fragment's AST under a document-rooted type
constraint (:mod:`repro.xslt.patterns`), plans one decision problem per
check and decides them all through a single cache-aware
:meth:`repro.api.StaticAnalyzer.solve_many` batch
(:mod:`repro.xslt.rules`), and renders the findings as human text or stable
JSON (:mod:`repro.xslt.report`).

Rules:

========================  ========  ====================================
rule                      severity  decision problem
========================  ========  ====================================
``dead-template``         error     satisfiability of the match pattern
``shadowed-template``     error     containment against a same-mode
                                    template of higher import
                                    precedence/priority
``unreachable-branch``    warning   emptiness of an ``xsl:when``/
                                    ``xsl:if`` test in its match context
``dead-select``           warning   emptiness of a ``select`` from every
                                    node its template can match
``coverage-gap``          warning   coverage of ``//element`` by the
                                    candidate match patterns (or DTD
                                    reachability when no template could
                                    syntactically match)
========================  ========  ====================================
"""

from repro.xslt.parser import Expression, Stylesheet, StylesheetError, Template, load_stylesheet
from repro.xslt.report import AuditReport, Finding
from repro.xslt.rules import audit_stylesheet

__all__ = [
    "AuditReport",
    "Expression",
    "Finding",
    "Stylesheet",
    "StylesheetError",
    "Template",
    "audit_stylesheet",
    "load_stylesheet",
]
