"""The XHTML anchor-nesting analysis (query e8 of the paper's evaluation).

The XHTML 1.0 Strict DTD forbids an ``a`` element *directly* inside another
``a`` element, but the paper's query e8, ``descendant::a[ancestor::a]``, is
satisfiable under the DTD: anchors can still be nested through an ``object``
element.  This example reproduces that analysis and exhibits a witness
document, then shows that a repaired schema (without the loophole) makes the
query unsatisfiable.

Two variants are run:

* with the type constraint exactly as in Section 5.2 (the context above the
  typed node is unconstrained, so an ``a`` ancestor *outside* the document is
  enough);
* with the type anchored at the document root (``repro.analysis.problems.rooted``),
  which is the reading under which the analysis says something interesting
  about the schema itself: nesting must then happen through ``object``.

Run with::

    python examples/xhtml_anchor_nesting.py
"""

from repro import Analyzer, builtin_dtd, dtd_accepts, parse_dtd, serialize_tree
from repro.analysis.problems import rooted

QUERY = "descendant::a[ancestor::a]"

#: A small anchor-only schema without the object loophole, used as contrast.
STRICT_ANCHORS = """
<!ELEMENT html (body)>
<!ELEMENT body (p)*>
<!ELEMENT p (a | span)*>
<!ELEMENT a (span)*>
<!ELEMENT span (#PCDATA)>
"""


def main() -> None:
    analyzer = Analyzer()

    # Use the reduced structural subset of XHTML Strict by default; switch to
    # builtin_dtd("xhtml") for the full 77-element DTD (much slower).
    xhtml = builtin_dtd("xhtml-core")
    print(f"query: {QUERY}")

    unanchored = analyzer.satisfiability(QUERY, xhtml)
    print("type constraint as in §5.2 (context unconstrained):")
    print(" ", unanchored.describe())

    anchored = analyzer.satisfiability(QUERY, rooted(xhtml))
    print("type constraint anchored at the document root:")
    print(" ", anchored.describe())
    witness = anchored.counterexample
    if witness is not None:
        print("witness document (anchors nested through an intermediate inline element):")
        print(serialize_tree(witness, indent=2))
        print("witness validates against the DTD:", dtd_accepts(xhtml, witness.unmark_all()))
    print()

    # The same query under a root-anchored schema with no loophole is unsatisfiable.
    repaired = parse_dtd(STRICT_ANCHORS, root="html", name="no-nesting")
    print("under the repaired, root-anchored schema:")
    print(" ", analyzer.satisfiability(QUERY, rooted(repaired)).describe())


if __name__ == "__main__":
    main()
