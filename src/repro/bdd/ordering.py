"""Variable-ordering helpers (Section 7.4).

The cost of BDD operations is very sensitive to the variable order.  The paper
found that ordering the Lean formulas by a breadth-first traversal of the
formula to solve — which keeps sister subformulas close together — works best
in practice.  The Lean computed by :func:`repro.logic.closure.lean` is already
in that order; the helpers here turn an ordered Lean into the interleaved
unprimed/primed variable order used by the transition relations ``∆ₐ``.
"""

from __future__ import annotations

from typing import Hashable, Iterable, Mapping, Sequence, TypeVar

Node = TypeVar("Node", bound=Hashable)


def cone_of_influence(
    supports: Mapping[Node, frozenset[str]], goals: Iterable[str]
) -> set[Node]:
    """The constraints transitively connected to ``goals`` through shared variables.

    ``supports`` maps each constraint to the set of variables it mentions;
    ``goals`` is the variable set of interest (e.g. the support of a fixpoint
    frontier, or the element names a query tests).  A constraint belongs to
    the cone when its support intersects the goals, or intersects the support
    of another constraint already in the cone — the standard cone-of-influence
    closure used both to skip transition-relation partitions that cannot
    affect a relational product and to project type constraints onto the
    alphabet a problem can observe.
    """
    cone: set[Node] = set()
    reached: set[str] = set(goals)
    changed = True
    while changed:
        changed = False
        for node, support in supports.items():
            if node in cone or not (support & reached):
                continue
            cone.add(node)
            reached |= support
            changed = True
    return cone


def interleaved_pairs(names: Sequence[str], primed_suffix: str = "'") -> list[str]:
    """Interleave each variable with its primed copy: ``x0, x0', x1, x1', ...``

    Keeping a variable next to its primed copy is the standard ordering for
    transition relations expressed over current-state / next-state vectors; it
    keeps the equivalences ``xᵢ ↔ status(…~y…)`` of Section 7.1 narrow.
    """
    order: list[str] = []
    for name in names:
        order.append(name)
        order.append(name + primed_suffix)
    return order


def order_by_first_use(names: Iterable[str], uses: Sequence[Iterable[str]]) -> list[str]:
    """Order ``names`` by the first constraint (in ``uses``) that mentions them.

    This is a generic "locality preserving" ordering: variables used by the
    same constraint end up adjacent.  Variables never mentioned keep their
    original relative order at the end.
    """
    names = list(names)
    first_use: dict[str, int] = {}
    for index, constraint in enumerate(uses):
        for name in constraint:
            if name in names and name not in first_use:
                first_use[name] = index
    fallback = len(uses)
    return sorted(names, key=lambda name: (first_use.get(name, fallback), names.index(name)))
