"""Tests of the satisfiability solvers (Sections 6 and 7).

The central properties checked here:

* soundness — when the solver reports "satisfiable" it produces a model, and
  the model really satisfies the formula according to the declarative
  semantics of Figure 2;
* completeness — formulas known to be satisfiable (because a concrete document
  satisfies them) are reported satisfiable;
* agreement between the explicit solver (Figure 16) and the symbolic BDD
  solver (Section 7);
* the mark-tracking update keeps exactly one start mark in every model.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.logic import syntax as sx
from repro.logic.negation import negate
from repro.logic.semantics import interpret
from repro.solver.explicit import ExplicitSolver
from repro.solver.symbolic import SymbolicSolver
from repro.solver.truth import psi_types, status_on_set
from repro.logic.closure import lean as compute_lean
from repro.trees.binary import binary_forest_to_unranked
from repro.trees.focus import all_focuses
from repro.trees.unranked import parse_tree


def model_satisfies(result, formula) -> bool:
    """Check a solver model against the declarative semantics."""
    forest = result.model_forest()
    assert forest is not None
    assert sum(tree.mark_count() for tree in forest) == 1
    for tree in forest:
        if tree.mark_count() != 1:
            continue
        universe = frozenset(all_focuses(tree))
        if interpret(formula, universe):
            return True
    return False


# -- truth assignment ------------------------------------------------------------------


def test_status_of_lean_atoms():
    formula = sx.mk_and(sx.prop("a"), sx.dia(1, sx.prop("b")))
    lean = compute_lean(formula)
    members = frozenset({sx.prop("a"), sx.dia(1, sx.prop("b")), sx.dia(1, sx.TRUE)})
    assert status_on_set(formula, members)
    assert not status_on_set(sx.prop("b"), members)
    assert status_on_set(sx.nprop("b"), members)
    assert status_on_set(sx.no_dia(2), members)
    assert not status_on_set(sx.NSTART, members) is False  # ¬s holds: no mark
    assert len(lean) >= 7


def test_status_unfolds_fixpoints():
    formula = sx.mu1(lambda x: sx.prop("a") | sx.dia(1, x))
    members_direct = frozenset({sx.prop("a")})
    assert status_on_set(formula, members_direct)
    members_modal = frozenset({sx.dia(1, sx.TRUE), sx.dia(1, formula), sx.prop("b")})
    assert status_on_set(formula, members_modal)
    assert not status_on_set(formula, frozenset({sx.prop("b")}))


def test_psi_types_satisfy_constraints():
    lean = compute_lean(sx.mk_and(sx.prop("a"), sx.dia(1, sx.prop("b"))))
    types = list(psi_types(lean))
    assert types
    for assignment in types:
        assert sum(1 for item in assignment.members if item.kind == sx.KIND_PROP) == 1
        assert not (
            assignment.has_parent_program(-1) and assignment.has_parent_program(-2)
        )


# -- symbolic solver: satisfiable cases ---------------------------------------------------


SATISFIABLE = [
    sx.prop("a") & sx.START,
    sx.prop("a") & sx.dia(1, sx.prop("b")) & sx.START,
    sx.dia(1, sx.dia(2, sx.prop("c"))) & sx.no_dia(-1) & sx.START,
    sx.mu1(lambda x: sx.prop("b") | sx.dia(1, x)) & sx.START,
    sx.dia(-1, sx.prop("a") & sx.START),
    sx.NSTART & sx.dia(1, sx.START),
]


@pytest.mark.parametrize("formula", SATISFIABLE)
def test_symbolic_satisfiable_with_verified_model(formula):
    result = SymbolicSolver(formula).solve()
    assert result.satisfiable
    assert model_satisfies(result, formula)


UNSATISFIABLE = [
    sx.FALSE,
    sx.prop("a") & sx.nprop("a"),
    sx.prop("a") & sx.prop("b"),
    sx.dia(1, sx.TRUE) & sx.no_dia(1),
    sx.dia(-1, sx.TRUE) & sx.dia(-2, sx.TRUE),
    sx.START & sx.NSTART,
    sx.START & sx.dia(1, sx.START),       # two marks are impossible
    sx.mu1(lambda x: sx.dia(1, x)),       # no base case: empty least fixpoint
]


@pytest.mark.parametrize("formula", UNSATISFIABLE)
def test_symbolic_unsatisfiable(formula):
    result = SymbolicSolver(formula).solve()
    assert not result.satisfiable
    assert result.model is None


def test_symbolic_statistics_are_populated():
    result = SymbolicSolver(SATISFIABLE[1]).solve()
    stats = result.statistics.as_dict()
    assert stats["lean_size"] > 0 and stats["iterations"] >= 1
    assert stats["solve_seconds"] >= 0.0


def test_solver_options_do_not_change_the_answer():
    formula = sx.prop("a") & sx.dia(1, sx.prop("b") & sx.dia(2, sx.prop("c"))) & sx.START
    reference = SymbolicSolver(formula).solve().satisfiable
    for options in (
        {"early_quantification": False},
        {"monolithic_relation": True},
        {"interleaved_order": False},
    ):
        assert SymbolicSolver(formula, **options).solve().satisfiable == reference


def test_mark_tracking_rejects_double_mark_requirement():
    # ⟨1⟩(s ∧ ⟨2⟩s): two distinct nodes would have to carry the mark.
    formula = sx.dia(1, sx.START & sx.dia(2, sx.START))
    assert not SymbolicSolver(formula).solve().satisfiable
    # Without mark tracking (ablation mode) the solver accepts it — this is
    # exactly the unsoundness the four-case update of Figure 16 prevents.
    assert SymbolicSolver(formula, track_marks=False).solve().satisfiable


def test_cycle_freeness_check_option():
    from repro.core.errors import CycleFreenessError

    bad = sx.mu1(lambda x: sx.dia(1, sx.dia(-1, x)))
    with pytest.raises(CycleFreenessError):
        SymbolicSolver(bad, check_cycle_freeness=True)


# -- explicit solver and agreement ---------------------------------------------------------


SMALL_FORMULAS = [
    sx.prop("a") & sx.START,
    sx.prop("a") & sx.nprop("a"),
    sx.dia(1, sx.prop("b")) & sx.START,
    sx.dia(1, sx.TRUE) & sx.no_dia(1),
    sx.dia(-1, sx.START),
    sx.START & sx.dia(2, sx.TRUE),
]


@pytest.mark.parametrize("formula", SMALL_FORMULAS)
def test_explicit_and_symbolic_agree(formula):
    explicit = ExplicitSolver(formula).solve()
    symbolic = SymbolicSolver(formula).solve()
    assert explicit.satisfiable == symbolic.satisfiable
    if explicit.satisfiable:
        forest = binary_forest_to_unranked(explicit.model)
        assert sum(tree.mark_count() for tree in forest) == 1


def test_explicit_solver_reports_statistics():
    result = ExplicitSolver(sx.prop("a") & sx.START).solve()
    assert result.type_count > 0 and result.iterations >= 1


# -- satisfiability is consistent with negation (small property) ----------------------------


@settings(max_examples=25, deadline=None)
@given(
    st.sampled_from(
        [
            sx.prop("a"),
            sx.dia(1, sx.prop("b")),
            sx.no_dia(-1),
            sx.dia(2, sx.TRUE),
            sx.prop("a") & sx.dia(1, sx.prop("a")),
        ]
    )
)
def test_formula_or_negation_is_satisfiable(formula):
    anchored = formula & sx.START
    negated = negate(formula) & sx.START
    sat_positive = SymbolicSolver(anchored).solve().satisfiable
    sat_negative = SymbolicSolver(negated).solve().satisfiable
    assert sat_positive or sat_negative
