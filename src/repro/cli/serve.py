"""``repro serve`` — a streaming JSON-lines analysis service on stdin/stdout.

The process reads one JSON request per line, answers with one JSON response
per line (flushed immediately), and exits 0 on end-of-input.  All requests
share one :class:`repro.api.StaticAnalyzer`, so an editor or load generator
can stream thousands of queries at a single set of warm caches; with
``--cache-dir`` the verdicts also persist across restarts.

Requests are either query objects in the wire format of
:mod:`repro.cli.wire`, or control operations:

* ``{"op": "ping"}`` — liveness probe.
* ``{"op": "stats"}`` — the analyzer's cache statistics (solver runs,
  memory/disk hits, entry counts).
* ``{"op": "schemas"}`` — the bundled schema registry.

Responses echo the request's ``id`` (when present) and carry ``ok``:

* query analysed → ``{"id": ..., "ok": true, "outcome": {...}}``
  (``ok`` is false when the outcome is a structured analysis error — the
  ``outcome`` object is still present with its ``error`` field filled);
* malformed line or unknown op → ``{"id": ..., "ok": false, "error":
  {"kind": ..., "message": ...}}``.

A malformed line never terminates the loop: the service answers with an
error response and keeps reading.
"""

from __future__ import annotations

import json
import sys
from typing import IO

from repro.api import StaticAnalyzer
from repro.cli import wire
from repro.xmltypes.library import schema_catalog


def handle_op(payload: dict, analyzer: StaticAnalyzer) -> dict:
    op = payload["op"]
    if op == "ping":
        return {"ok": True, "op": op}
    if op == "stats":
        stats = dict(analyzer.cache_statistics())
        if analyzer.disk_cache is not None:
            stats["disk_cache_entries"] = len(analyzer.disk_cache)
            stats["disk_cache_directory"] = str(analyzer.disk_cache.directory)
        return {"ok": True, "op": op, "stats": stats}
    if op == "schemas":
        return {
            "ok": True,
            "op": op,
            "schemas": [info.as_dict() for info in schema_catalog()],
        }
    return {
        "ok": False,
        "error": {"kind": "ProtocolError", "message": f"unknown op {op!r}"},
    }


def handle_line(
    line: str, analyzer: StaticAnalyzer, dtd_cache: wire.DTDCache
) -> dict | None:
    """The response for one input line (``None`` for blank/comment lines)."""
    line = line.strip()
    if not line or line.startswith("#"):
        return None
    try:
        payload = json.loads(line)
    except json.JSONDecodeError as exc:
        return {"ok": False, "error": wire.error_payload(exc)}
    if not isinstance(payload, dict):
        return {
            "ok": False,
            "error": {"kind": "ProtocolError", "message": "request must be an object"},
        }
    response: dict = {}
    if "id" in payload:
        response["id"] = payload["id"]
    if "op" in payload:
        response.update(handle_op(payload, analyzer))
        return response
    try:
        query = wire.query_from_dict(payload, dtd_cache)
    except (wire.WireError, ValueError) as exc:
        response.update(ok=False, error=wire.error_payload(exc))
        return response
    outcome = analyzer.solve(query)
    response.update(ok=outcome.ok, outcome=outcome.as_dict())
    return response


def serve(
    input_stream: IO[str],
    output_stream: IO[str],
    cache_dir: str | None = None,
    analyzer: StaticAnalyzer | None = None,
) -> int:
    """Run the request/response loop until end-of-input; returns exit code 0."""
    analyzer = analyzer or StaticAnalyzer(cache_dir=cache_dir)
    dtd_cache: wire.DTDCache = {}
    for line in input_stream:
        response = handle_line(line, analyzer, dtd_cache)
        if response is None:
            continue
        output_stream.write(json.dumps(response, ensure_ascii=False) + "\n")
        output_stream.flush()
    return 0


def run(args) -> int:
    return serve(sys.stdin, sys.stdout, cache_dir=args.cache_dir)
