"""Textual rendering of Lµ formulas, in the style of Figure 14 of the paper.

The concrete syntax (also accepted by :mod:`repro.logic.parser`) is::

    T  F  s  ~s            truth, falsity, start proposition and its negation
    name   ~name           atomic proposition and its negation
    @name  ~@name  @*      attribute propositions (``@*``: some attribute)
    $X                     recursion variable
    <1>phi <2>phi          existential modalities (first child / next sibling)
    <-1>phi <-2>phi        converse modalities (parent / previous sibling)
    ~<1>T ...              negated modalities
    phi & psi   phi | psi  conjunction / disjunction
    let_mu X = phi, Y = psi in body
    let_nu X = phi, Y = psi in body
"""

from __future__ import annotations

from repro.logic import syntax as sx


def _format_program(program: int) -> str:
    return str(program)


def format_formula(formula: sx.Formula) -> str:
    """Render a formula as a single-line string."""
    return _format(formula, parent_precedence=0)


# Precedence levels: 1 = | , 2 = & , 3 = prefix (modalities), 4 = atoms.


def _format(formula: sx.Formula, parent_precedence: int) -> str:
    kind = formula.kind
    if kind == sx.KIND_TRUE:
        return "T"
    if kind == sx.KIND_FALSE:
        return "F"
    if kind == sx.KIND_START:
        return "s"
    if kind == sx.KIND_NSTART:
        return "~s"
    if kind == sx.KIND_PROP:
        return formula.label
    if kind == sx.KIND_NPROP:
        return f"~{formula.label}"
    if kind == sx.KIND_ATTR:
        return f"@{formula.label}"
    if kind == sx.KIND_NATTR:
        return f"~@{formula.label}"
    if kind == sx.KIND_VAR:
        return f"${formula.label}"
    if kind == sx.KIND_NDIA:
        return f"~<{_format_program(formula.prog)}>T"
    if kind == sx.KIND_DIA:
        inner = _format(formula.left, 3)
        text = f"<{_format_program(formula.prog)}>{inner}"
        return text
    if kind == sx.KIND_OR:
        # The parser is left-associative, so a right-nested operand of the
        # same connective must keep its parentheses to round-trip
        # (parse(format(f)) is f — exercised by generator-based tests).
        right = _format(formula.right, 1)
        if formula.right.kind == sx.KIND_OR:
            right = f"({right})"
        text = f"{_format(formula.left, 1)} | {right}"
        return f"({text})" if parent_precedence > 1 else text
    if kind == sx.KIND_AND:
        right = _format(formula.right, 2)
        if formula.right.kind == sx.KIND_AND:
            right = f"({right})"
        text = f"{_format(formula.left, 2)} & {right}"
        return f"({text})" if parent_precedence > 2 else text
    if kind in (sx.KIND_MU, sx.KIND_NU):
        keyword = "let_mu" if kind == sx.KIND_MU else "let_nu"
        bindings = ", ".join(
            f"{name} = {_format(definition, 0)}" for name, definition in formula.defs
        )
        text = f"{keyword} {bindings} in {_format(formula.body, 0)}"
        return f"({text})" if parent_precedence > 0 else text
    raise AssertionError(f"unknown formula kind {kind!r}")


def format_formula_pretty(formula: sx.Formula, indent: int = 2) -> str:
    """Render a formula with one fixpoint binding per line (for reports)."""
    kind = formula.kind
    if kind in (sx.KIND_MU, sx.KIND_NU):
        keyword = "let_mu" if kind == sx.KIND_MU else "let_nu"
        pad = " " * indent
        bindings = (",\n").join(
            f"{pad}{name} = {_format(definition, 0)}" for name, definition in formula.defs
        )
        return f"{keyword}\n{bindings}\nin {_format(formula.body, 0)}"
    return format_formula(formula)
