"""Cross-process persistent-cache benchmark — the CLI acceptance run.

Streams a 50-query JSONL workload through ``repro serve`` twice, in two
separate OS processes sharing one ``--cache-dir``.  The first (cold cache)
process runs the solver once per distinct Lµ formula and writes each verdict
through to the content-addressed disk cache of :mod:`repro.cache`; the second
process — equally cold *in memory*, and translating with different fresh
recursion-variable names — must answer the identical workload with **zero**
solver runs: every distinct formula a disk hit, every repeat an in-memory
hit.  Verdicts must be byte-for-byte identical across the two runs.

The measurement lives in :func:`repro.cli.bench.run_cli_cache` (shared with
the ``repro bench cli-cache`` subcommand); this wrapper asserts the
acceptance criteria and writes ``BENCH_cli_cache.json``.
"""

from conftest import write_bench_json, write_report
from repro.cli.bench import run_cli_cache


def test_cli_cache_cold_process_replay():
    payload = run_cli_cache()
    first, second = payload["first_process"], payload["second_process"]

    lines = [
        f"workload: {payload['workload_queries']} JSONL queries "
        f"({payload['distinct_problems']} distinct problems)",
        f"first process (cold cache): {first['wall_seconds'] * 1000:8.1f} ms, "
        f"{first['solver_runs']} solver runs, {first['disk_cache_writes']} entries written",
        f"second process (warm disk): {second['wall_seconds'] * 1000:8.1f} ms, "
        f"{second['solver_runs']} solver runs, {second['disk_cache_hits']} disk hits, "
        f"{second['solve_cache_hits']} memory hits",
        f"replay speedup: {payload['replay_speedup']:.1f}x",
    ]
    write_report("cli_cache", lines)
    write_bench_json("cli_cache", payload)

    # The acceptance criterion: a cold process replaying the batch performs
    # zero solver runs — everything is answered from the persistent cache.
    assert second["solver_runs"] == 0, second
    assert second["disk_cache_hits"] == first["disk_cache_writes"] > 0
    assert first["solver_runs"] > 0  # the first process really did the work
