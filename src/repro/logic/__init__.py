"""The tree logic Lµ of the paper (Section 4).

Lµ is a sub-logic of the alternation-free modal µ-calculus with converse
modalities, interpreted over finite focused trees carrying a single start
mark.  Formulas are restricted to *cycle-free* ones, for which the least and
greatest fixpoints coincide (Lemma 4.2), making the logic closed under
negation.

This package provides:

* :mod:`repro.logic.syntax`    — hash-consed formula AST and constructors,
* :mod:`repro.logic.printer`   — textual rendering (Figure 14 style),
* :mod:`repro.logic.parser`    — parser for the textual syntax,
* :mod:`repro.logic.negation`  — negation normal form via the De Morgan and
  fixpoint dualities,
* :mod:`repro.logic.cyclefree` — the cycle-freeness check of Section 4,
* :mod:`repro.logic.closure`   — Fisher–Ladner closure and the Lean (§6.1),
* :mod:`repro.logic.semantics` — the interpretation of Figure 2 over finite
  universes of focused trees, used as a test oracle.
"""

from repro.logic.syntax import (
    Formula,
    TRUE,
    FALSE,
    START,
    NSTART,
    prop,
    nprop,
    var,
    mk_or,
    mk_and,
    dia,
    no_dia,
    mu,
    nu,
    big_or,
    big_and,
    expand_fixpoint,
    substitute,
    free_variables,
    formula_size,
    iter_subformulas,
)
from repro.logic.printer import format_formula
from repro.logic.parser import parse_formula
from repro.logic.negation import negate, implies_formula
from repro.logic.cyclefree import is_cycle_free, assert_cycle_free
from repro.logic.closure import fisher_ladner_closure, lean, Lean
from repro.logic.semantics import interpret, satisfies

__all__ = [
    "Formula",
    "TRUE",
    "FALSE",
    "START",
    "NSTART",
    "prop",
    "nprop",
    "var",
    "mk_or",
    "mk_and",
    "dia",
    "no_dia",
    "mu",
    "nu",
    "big_or",
    "big_and",
    "expand_fixpoint",
    "substitute",
    "free_variables",
    "formula_size",
    "iter_subformulas",
    "format_formula",
    "parse_formula",
    "negate",
    "implies_formula",
    "is_cycle_free",
    "assert_cycle_free",
    "fisher_ladner_closure",
    "lean",
    "Lean",
    "interpret",
    "satisfies",
]
