"""The ``repro`` command line: the analyzer as a service.

The paper positions the solver as a *practical* analysis component for
editors, compilers and query optimisers; this package is that interface,
without a Python import in sight:

* :mod:`repro.cli.analyze` — ``repro analyze``: one-shot decision problems
  from arguments or a JSON/JSONL batch file.
* :mod:`repro.cli.serve` — ``repro serve``: a long-running JSON-lines
  request/response loop over stdin/stdout, so one warm analyzer (and one
  persistent cache) serves a whole editing session or load test.
* :mod:`repro.cli.schemas` — ``repro schemas``: the bundled DTD registry.
* :mod:`repro.cli.bench` — ``repro bench``: re-emit the ``BENCH_*.json``
  machine-readable benchmark reports.
* :mod:`repro.cli.wire` — the JSON wire format shared by ``analyze --batch``
  and ``serve``.

``pip install`` exposes :func:`main` as the ``repro`` console script;
``python -m repro.cli`` works from a source checkout.  User guide:
``docs/CLI.md``; wire-format reference: :mod:`repro.cli.wire`.
"""

from repro.cli.main import build_parser, main

__all__ = ["build_parser", "main"]
