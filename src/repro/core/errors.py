"""Error hierarchy shared by every subsystem of the library."""


class ReproError(Exception):
    """Base class of every error raised by the library."""


class NavigationError(ReproError):
    """Raised when a focused-tree navigation step is undefined.

    The paper (Section 3) defines the four navigation modalities as partial
    functions; following an undefined modality raises this error.
    """


class ParseError(ReproError):
    """Raised by the XPath, DTD and logic parsers on malformed input."""

    def __init__(self, message: str, position: int | None = None, text: str | None = None):
        self.position = position
        self.text = text
        if position is not None and text is not None:
            context = text[max(0, position - 20):position + 20]
            message = f"{message} (at position {position}, near {context!r})"
        super().__init__(message)


class CycleFreenessError(ReproError):
    """Raised when a formula that must be cycle-free is not (Section 4)."""


class SolverLimitError(ReproError):
    """Raised when a solver refuses an instance that exceeds a configured limit.

    The explicit solver of Figure 16 enumerates psi-types eagerly and is only
    intended for small instances and cross-validation; it raises this error
    instead of running for an unbounded amount of time.
    """
