"""Translation of binary regular tree types into Lµ (Section 5.2, Figure 14).

The translation is::

    [[∅]] = [[ε]]          = ⊥
    [[T₁ ∪ T₂]]            = [[T₁]] ∨ [[T₂]]
    [[σ(X₁, X₂)]]          = σ ∧ succ₁(X₁) ∧ succ₂(X₂)
    [[let Xᵢ.Tᵢ in T]]     = µ Xᵢ = [[Tᵢ]] in [[T]]

with the successor formulas handling the type frontier::

    succ_α(X) = ¬⟨α⟩⊤               if X is bound to ε
              = ¬⟨α⟩⊤ ∨ ⟨α⟩X        if X is nullable
              = ⟨α⟩X                 otherwise

Only downward modalities occur: a type formula describes the subtree allowed
at a node and leaves its context unconstrained, which is exactly what makes it
composable with the XPath translation in the decision problems of Section 8.
"""

from __future__ import annotations

from repro.logic import syntax as sx
from repro.xmltypes.ast import Alternative, BinaryTypeGrammar, LabelAlternative
from repro.xmltypes.binarize import binarize_dtd
from repro.xmltypes.dtd import DTD


def _variable_formula_name(grammar_name: str, variable: str) -> str:
    # Keep names readable in printed formulas and unique across grammars.
    return f"{grammar_name}.{variable}"


def _successor(
    grammar: BinaryTypeGrammar, program: int, variable: str, var_name: str
) -> sx.Formula:
    if grammar.is_epsilon_only(variable):
        return sx.no_dia(program)
    if grammar.is_empty(variable):
        # An empty continuation can never be satisfied: the whole alternative
        # is contradictory.
        return sx.FALSE
    reference = sx.var(var_name)
    if grammar.is_nullable(variable):
        return sx.mk_or(sx.no_dia(program), sx.dia(program, reference))
    return sx.dia(program, reference)


def _alternative_formula(
    grammar: BinaryTypeGrammar, alternative: Alternative, names: dict[str, str]
) -> sx.Formula:
    if not isinstance(alternative, LabelAlternative):
        # The ε alternative contributes no formula: a node cannot be the empty
        # tree.  Emptiness is expressed by the parent's succ_α(¬⟨α⟩⊤) clause.
        return sx.FALSE
    return sx.big_and(
        (
            sx.prop(alternative.label),
            _successor(grammar, 1, alternative.first, names.get(alternative.first, alternative.first)),
            _successor(grammar, 2, alternative.next, names.get(alternative.next, alternative.next)),
        )
    )


def compile_grammar(
    grammar: BinaryTypeGrammar, constrain_siblings: bool = True
) -> sx.Formula:
    """Translate a binary type grammar into a closed Lµ formula.

    The resulting formula holds at a node exactly when the subtree rooted
    there (together with its following siblings, per the binary encoding)
    belongs to the start variable's language.

    With ``constrain_siblings=False`` the siblings of the node itself are left
    unconstrained (only its content is checked).  This corresponds to the
    paper's remark that a type compared against the *result* of an XPath
    expression should not fix where the root of the type is: selected nodes
    usually sit deep inside a document and do have following siblings.
    """
    reachable = grammar.reachable_variables()
    names = {
        variable: _variable_formula_name(grammar.name, variable)
        for variable in grammar.variables
    }

    definitions: list[tuple[str, sx.Formula]] = []
    for variable in grammar.variables:
        if variable not in reachable:
            continue
        if grammar.is_epsilon_only(variable) or grammar.is_empty(variable):
            # Never referenced through ⟨α⟩X (succ_α short-circuits them).
            continue
        body = sx.big_or(
            _alternative_formula(grammar, alternative, names)
            for alternative in grammar.alternatives(variable)
        )
        definitions.append((names[variable], body))

    def start_alternative(alternative: Alternative) -> sx.Formula:
        if constrain_siblings or not isinstance(alternative, LabelAlternative):
            return _alternative_formula(grammar, alternative, names)
        return sx.mk_and(
            sx.prop(alternative.label),
            _successor(grammar, 1, alternative.first, names.get(alternative.first, alternative.first)),
        )

    start_formula = sx.big_or(
        start_alternative(alternative)
        for alternative in grammar.alternatives(grammar.start)
    )
    if not definitions:
        return start_formula
    return sx.mu(tuple(definitions), start_formula)


def compile_dtd(
    dtd: DTD, root: str | None = None, constrain_siblings: bool = True
) -> sx.Formula:
    """Translate a DTD (with designated root element) into a closed Lµ formula."""
    grammar = binarize_dtd(dtd, root=root)
    return compile_grammar(grammar, constrain_siblings=constrain_siblings)
