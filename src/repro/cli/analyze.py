"""``repro analyze`` — one-shot decision problems from the command line.

Queries come either from the positional arguments (one expression →
satisfiability, two → containment, unless ``--kind`` says otherwise) or from
a ``--batch`` file in the wire format of :mod:`repro.cli.wire`.  The full
:class:`repro.api.BatchReport` is printed to stdout as JSON; exit code 0
means every query was analysed, 1 that at least one produced a structured
error outcome (malformed expression, unknown schema, ...), 2 that the
invocation itself was unusable (bad flags, unreadable batch file), 3 that
every query was analysed without error but at least one verdict is
*unknown* — a ``--deadline``/``--max-steps``/``--max-lean`` budget (or a
per-request ``budget`` object in the batch file) ran out first.
"""

from __future__ import annotations

import json
import sys
import time

from repro.api import BatchReport, StaticAnalyzer
from repro.cli import wire
from repro.cli.main import budget_from_args

#: Exit codes of ``repro analyze`` (and ``repro serve``, which only uses 0/2).
EXIT_OK = 0
EXIT_ANALYSIS_ERROR = 1
EXIT_USAGE = 2
#: Every query analysed, no errors, but at least one budgeted verdict is
#: unknown (``verdict_status == "unknown"``).
EXIT_UNKNOWN = 3


def default_kind(expression_count: int) -> str | None:
    """The implied ``--kind`` for bare positional expressions."""
    return {1: "satisfiability", 2: "containment"}.get(expression_count)


def request_payloads(args) -> list[dict]:
    """The request objects this invocation describes (see module docstring)."""
    if args.batch:
        if args.exprs or args.kind or args.types:
            raise wire.WireError("--batch cannot be combined with inline queries")
        return wire.read_batch(args.batch)
    kind = args.kind or default_kind(len(args.exprs))
    if kind is None:
        raise wire.WireError(
            f"--kind is required for {len(args.exprs)} expressions "
            "(only 1 or 2 have an implied kind)"
        )
    payload = {"kind": kind, "exprs": list(args.exprs)}
    if args.types:
        payload["types"] = list(args.types)
    return [payload]


def run(args) -> int:
    try:
        payloads = request_payloads(args)
        if not payloads:
            raise wire.WireError("no queries to analyze")
    except (OSError, wire.WireError) as exc:
        print(f"repro analyze: {exc}", file=sys.stderr)
        return EXIT_USAGE

    # Convert what converts; wire-format failures become error entries in the
    # report (mirroring the analyzer's structured error outcomes) so one bad
    # batch line never hides the verdicts of the others.
    analyzer = StaticAnalyzer(
        cache_dir=args.cache_dir,
        backend=getattr(args, "backend", None),
        budget=budget_from_args(args),
        degrade=getattr(args, "degrade", False),
        batch_fixpoint=getattr(args, "batch_fixpoint", None) or "off",
    )
    dtd_cache: wire.DTDCache = {}
    queries, budgets, conversion_errors = [], [], {}
    for position, payload in enumerate(payloads):
        try:
            query = wire.query_from_dict(payload, dtd_cache)
            budget = wire.budget_from_dict(payload)
        except (wire.WireError, ValueError) as exc:
            # Same shape as AnalysisOutcome.as_dict() so consumers of the
            # outcomes array never meet a second schema.
            conversion_errors[position] = {
                "query": payload,
                "problem": f"{payload.get('kind', 'query') if isinstance(payload, dict) else 'query'} (failed)",
                "verdict_status": "error",
                "holds": False,
                "satisfiable": False,
                "budget_reason": None,
                "from_cache": False,
                "cache": None,
                "solve_seconds": 0.0,
                "statistics": {},
                "counterexample": None,
                "error": wire.error_payload(exc),
            }
        else:
            queries.append(query)
            budgets.append(budget)

    if any(budget is not None for budget in budgets):
        # Per-request budgets: solve one by one — each request's budget
        # tightens the flag-level budget for its own query only.
        started = time.perf_counter()
        runs = analyzer.solver_runs
        hits = analyzer.solve_cache_hits
        disk = analyzer.disk_cache_hits
        report = BatchReport(
            outcomes=[
                analyzer.solve(query, budget)
                for query, budget in zip(queries, budgets)
            ],
            total_seconds=time.perf_counter() - started,
            solver_runs=analyzer.solver_runs - runs,
            cache_hits=analyzer.solve_cache_hits - hits,
            disk_cache_hits=analyzer.disk_cache_hits - disk,
        )
    else:
        report = analyzer.solve_many(queries)
    solved = iter(report.outcomes)
    outcomes = [
        conversion_errors[position]
        if position in conversion_errors
        else next(solved).as_dict()
        for position in range(len(payloads))
    ]
    document = report.as_dict()
    document["outcomes"] = outcomes
    document["errors"] = report.errors + len(conversion_errors)
    document["cache_statistics"] = analyzer.cache_statistics()

    indent = None if args.compact else 2
    print(json.dumps(document, ensure_ascii=False, indent=indent))
    if document["errors"] != 0:
        return EXIT_ANALYSIS_ERROR
    return EXIT_UNKNOWN if report.unknowns else EXIT_OK
