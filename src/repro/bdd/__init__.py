"""A reduced ordered binary decision diagram (ROBDD) engine.

Section 7 of the paper represents sets of ψ-types implicitly as BDDs [5] and
implements the satisfiability algorithm entirely with BDD operations.  The
reference system used a mature BDD library; this package provides an
equivalent pure-Python engine with the operations the solver needs:

* hash-consed node table with a fixed variable order,
* boolean connectives via the ``apply`` / ``ite`` algorithms with memoisation,
* existential and universal quantification, and the fused
  conjunction-then-quantification (``and_exists``) used for relational
  products,
* variable renaming (for the primed/unprimed vectors ``~x`` and ``~y``),
* satisfying-assignment extraction and model counting.

Two interchangeable engines implement the :class:`repro.bdd.protocol.BDDBackend`
protocol: the original dict-of-tuples :class:`BDDManager` (``"dict"``) and the
packed-array :class:`repro.bdd.arena.ArenaBDDManager` (``"arena"``).  Client
code constructs whichever is selected through
:func:`repro.bdd.backends.create_manager`.
"""

from repro.bdd.arena import ArenaBDDManager
from repro.bdd.backends import (
    BACKEND_ENV,
    BACKENDS,
    DEFAULT_BACKEND,
    available_backends,
    create_manager,
    resolve_backend,
)
from repro.bdd.manager import BDD, BDDManager
from repro.bdd.ordering import interleaved_pairs, order_by_first_use
from repro.bdd.protocol import BDDBackend

__all__ = [
    "BACKEND_ENV",
    "BACKENDS",
    "BDD",
    "BDDBackend",
    "BDDManager",
    "ArenaBDDManager",
    "DEFAULT_BACKEND",
    "available_backends",
    "create_manager",
    "interleaved_pairs",
    "order_by_first_use",
    "resolve_backend",
]
