"""Tests for the ``repro.api`` batch façade."""

import json

import pytest

from repro.analysis import Analyzer
from repro.api import KINDS, AnalysisOutcome, BatchReport, Query, StaticAnalyzer, solve_many

#: The fast Table 2 decision problems (Figure 21 queries; the SMIL and XHTML
#: rows are exercised by the slow integration suite instead).
TABLE2_FAST = [
    Query.containment("/a[.//b[c/*//d]/b[c//d]/b[c/d]]", "/a[.//b[c/*//d]/b[c/d]]"),
    Query.containment("/a[.//b[c/*//d]/b[c/d]]", "/a[.//b[c/*//d]/b[c//d]/b[c/d]]"),
    Query.equivalence("a/b//c/foll-sibling::d/e", "a/b//d[prec-sibling::c]/e"),
    Query.containment(
        "a/b[//c]/following::d/e ∩ a/d[preceding::c]/e", "a/c/following::d/e"
    ),
]


def test_query_factories_and_validation():
    query = Query.containment("a", "b", "wikipedia")
    assert query.kind == "containment"
    assert query.exprs == ("a", "b")
    with pytest.raises(ValueError):
        Query("spelling", ("a",))
    # Arity is validated up front, not left to fail inside the solver.
    with pytest.raises(ValueError):
        Query("containment", ("a", "b"))  # missing the two type slots
    with pytest.raises(ValueError):
        Query("satisfiability", ("a", "b"), (None, None))
    assert set(KINDS) >= {"satisfiability", "containment", "equivalence"}


def test_coverage_rejects_mismatched_type_list():
    with pytest.raises(ValueError):
        Query.coverage("child::a", ["child::b", "child::a"], covering_types=[None])


def test_coverage_holds_for_trivial_cover():
    outcome = StaticAnalyzer().solve(Query.coverage("child::a", ["child::b", "child::a"]))
    assert outcome.holds is True


def test_query_as_dict_is_json_compatible():
    query = Query.coverage("a", ["b", "c"], "wikipedia")
    payload = json.loads(json.dumps(query.as_dict()))
    assert payload["kind"] == "coverage"
    assert payload["exprs"] == ["a", "b", "c"]
    assert payload["types"] == ["wikipedia", None, None]


def test_solve_many_matches_one_by_one_solve_on_table2():
    batch = StaticAnalyzer().solve_many(TABLE2_FAST)
    one_by_one = [StaticAnalyzer().solve(query) for query in TABLE2_FAST]
    assert [o.holds for o in batch.outcomes] == [o.holds for o in one_by_one]
    # And both agree with the reference Analyzer of repro.analysis.
    analyzer = Analyzer()
    expected = [
        analyzer.containment(*TABLE2_FAST[0].exprs).holds,
        analyzer.containment(*TABLE2_FAST[1].exprs).holds,
        all(r.holds for r in analyzer.equivalence(*TABLE2_FAST[2].exprs)),
        analyzer.containment(*TABLE2_FAST[3].exprs).holds,
    ]
    assert [o.holds for o in batch.outcomes] == expected == [True, False, True, False]


def test_solve_cache_shares_repeated_queries():
    analyzer = StaticAnalyzer()
    query = Query.containment("child::a[b]", "child::a")
    first = analyzer.solve(query)
    second = analyzer.solve(query)
    assert not first.from_cache
    assert second.from_cache
    assert first.holds == second.holds
    assert analyzer.solver_runs == 1
    assert analyzer.solve_cache_hits == 1


def test_equivalence_shares_containment_solves():
    analyzer = StaticAnalyzer()
    analyzer.solve(Query.containment("child::a[b]", "child::a"))
    outcome = analyzer.solve(Query.equivalence("child::a[b]", "child::a"))
    # The forward direction was already solved by the explicit containment.
    forward, backward = outcome.parts
    assert forward.from_cache
    assert not backward.from_cache
    assert outcome.holds is False  # child::a ⊄ child::a[b]
    assert outcome.counterexample is not None


def test_batch_report_is_json_round_trippable():
    report = solve_many(
        [
            Query.satisfiability("child::meta/child::title", "wikipedia"),
            Query.emptiness("child::title/child::meta", "wikipedia"),
            Query.satisfiability("child::meta/child::title", "wikipedia"),
        ]
    )
    assert isinstance(report, BatchReport)
    payload = json.loads(report.to_json())
    assert len(payload["outcomes"]) == 3
    assert payload["solver_runs"] == 2
    assert payload["cache_hits"] == 1
    first = payload["outcomes"][0]
    assert first["holds"] is True
    assert first["statistics"]["lean_size"] > 0
    assert first["counterexample"] is not None  # a witness document
    assert payload["outcomes"][2]["from_cache"] is True


def test_type_objects_and_names_are_both_accepted():
    from repro.xmltypes.library import wikipedia_dtd

    by_name = StaticAnalyzer().solve(Query.emptiness("child::meta/child::edit", "wikipedia"))
    by_object = StaticAnalyzer().solve(
        Query.emptiness("child::meta/child::edit", wikipedia_dtd())
    )
    assert by_name.holds is True
    assert by_object.holds is True


def test_type_translation_cache_is_shared_across_queries():
    # With label pruning (the default), the two queries project the schema
    # onto different element alphabets, so each gets its own translation;
    # with pruning off, the translation is shared across the whole workload.
    analyzer = StaticAnalyzer()
    analyzer.solve(Query.satisfiability("child::meta/child::title", "wikipedia"))
    analyzer.solve(Query.emptiness("child::meta/child::edit", "wikipedia"))
    stats = analyzer.cache_statistics()
    assert stats["type_cache_entries"] == 2
    assert stats["query_cache_entries"] == 2

    unpruned = StaticAnalyzer(prune_labels=False)
    unpruned.solve(Query.satisfiability("child::meta/child::title", "wikipedia"))
    unpruned.solve(Query.emptiness("child::meta/child::edit", "wikipedia"))
    stats = unpruned.cache_statistics()
    assert stats["type_cache_entries"] == 1
    assert stats["query_cache_entries"] == 2
    analyzer.clear_caches()
    assert analyzer.cache_statistics()["solve_cache_entries"] == 0


def test_outcome_time_ms_matches_seconds():
    outcome = StaticAnalyzer().solve(Query.satisfiability("child::a"))
    assert isinstance(outcome, AnalysisOutcome)
    assert outcome.time_ms == pytest.approx(outcome.solve_seconds * 1000.0)


# ---------------------------------------------------------------------------
# Structured error outcomes (one bad query must never kill a batch)
# ---------------------------------------------------------------------------


def test_malformed_expression_is_a_structured_error():
    outcome = StaticAnalyzer().solve(Query.satisfiability("child::a["))
    assert not outcome.ok
    assert outcome.holds is False
    assert outcome.error_kind == "ParseError"
    assert "qualifier" in outcome.error
    payload = json.loads(outcome.to_json())
    assert payload["error"]["kind"] == "ParseError"
    assert payload["counterexample"] is None


def test_unknown_schema_name_is_a_structured_error():
    outcome = StaticAnalyzer().solve(Query.satisfiability("child::a", "nosuch"))
    assert not outcome.ok
    assert outcome.error_kind == "SchemaLookupError"
    assert "unknown built-in DTD 'nosuch'" in outcome.error


def test_unsupported_type_object_is_a_structured_error():
    outcome = StaticAnalyzer().solve(Query.satisfiability("child::a", object()))
    assert not outcome.ok
    assert outcome.error_kind == "UnsupportedTypeError"


def test_internal_bugs_are_not_masked_as_error_outcomes(monkeypatch):
    # A KeyError out of the solver machinery is a programming error, not an
    # input error: it must raise, not become a structured outcome.
    from repro import api as api_module

    def broken_solver(*args, **kwargs):
        raise KeyError("internal bug")

    monkeypatch.setattr(api_module, "SymbolicSolver", broken_solver)
    with pytest.raises(KeyError):
        StaticAnalyzer().solve(Query.satisfiability("child::a"))


def test_successful_outcomes_report_ok_and_no_error():
    outcome = StaticAnalyzer().solve(Query.satisfiability("child::a"))
    assert outcome.ok
    assert json.loads(outcome.to_json())["error"] is None


def test_bad_query_does_not_abort_solve_many():
    report = StaticAnalyzer().solve_many(
        [
            Query.containment("child::a[b]", "child::a"),
            Query.satisfiability("child::a[", None),
            Query.emptiness("child::title/child::meta", "wikipedia"),
        ]
    )
    assert [o.ok for o in report.outcomes] == [True, False, True]
    assert report.errors == 1
    assert report.outcomes[0].holds is True
    assert report.outcomes[2].holds is True
    assert json.loads(report.to_json())["errors"] == 1


def test_equivalence_with_bad_side_is_a_structured_error():
    outcome = StaticAnalyzer().solve(Query.equivalence("child::a[", "child::a"))
    assert not outcome.ok
    assert outcome.error_kind == "ParseError"
    assert len(outcome.parts) == 2
    # Both containment directions mention the malformed expression.
    assert all(not part.ok for part in outcome.parts)


# ---------------------------------------------------------------------------
# Multiprocess batch solving
# ---------------------------------------------------------------------------


def test_solve_many_workers_matches_sequential_order_and_verdicts():
    queries = [
        Query.containment("child::a[b]", "child::a"),
        Query.satisfiability("child::a"),
        Query.containment("child::a[b]", "child::a"),  # duplicate
        Query.overlap("a//b", "a/b"),
        Query.emptiness("child::title/child::meta", "wikipedia"),
    ]
    sequential = StaticAnalyzer().solve_many(queries, workers=1)
    parallel = StaticAnalyzer().solve_many(queries, workers=2)
    assert [o.holds for o in parallel.outcomes] == [o.holds for o in sequential.outcomes]
    assert [o.problem for o in parallel.outcomes] == [o.problem for o in sequential.outcomes]
    assert parallel.workers == 2
    # Callers get back the exact query objects they submitted.
    assert all(o.query is q for o, q in zip(parallel.outcomes, queries))
    # The duplicate was answered once and replicated, like the solve cache.
    assert parallel.solver_runs == sequential.solver_runs
    assert parallel.outcomes[2].from_cache


def test_solve_many_workers_keeps_raw_formula_queries_in_parent():
    from repro.logic import syntax as sx

    queries = [
        Query.satisfiability("child::a", sx.prop("a")),  # not picklable safely
        Query.satisfiability("child::b"),
    ]
    report = StaticAnalyzer().solve_many(queries, workers=2)
    assert [o.ok for o in report.outcomes] == [True, True]
    assert [o.holds for o in report.outcomes] == [True, True]


def test_solve_many_workers_propagates_structured_errors():
    queries = [
        Query.satisfiability("child::a["),          # parse error
        Query.satisfiability("child::a", "nosuch"), # unknown schema
        Query.satisfiability("child::a"),
    ]
    report = StaticAnalyzer().solve_many(queries, workers=2)
    assert [o.ok for o in report.outcomes] == [False, False, True]
    assert report.errors == 2
    assert report.outcomes[0].error_kind == "ParseError"
    assert report.outcomes[1].error_kind == "SchemaLookupError"


def test_solve_many_workers_share_the_disk_cache(tmp_path):
    cache_dir = str(tmp_path / "solve-cache")
    first = StaticAnalyzer(cache_dir=cache_dir)
    queries = [
        Query.containment("child::a[b]", "child::a"),
        Query.overlap("a//b", "a/b"),
    ]
    report = first.solve_many(queries, workers=2)
    assert report.solver_runs == 2
    assert first.disk_cache_writes == 2  # aggregated from the workers
    # A second analyzer (fresh workers) answers everything from disk.
    second = StaticAnalyzer(cache_dir=cache_dir)
    replay = second.solve_many(queries, workers=2)
    assert replay.solver_runs == 0
    assert replay.disk_cache_hits == 2
    assert [o.holds for o in replay.outcomes] == [o.holds for o in report.outcomes]
