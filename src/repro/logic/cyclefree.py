"""Cycle-freeness of Lµ formulas (Section 4, Figure 3).

A *modality cycle* in a path of modalities is a sub-sequence ``⟨a⟩⟨ā⟩`` (a
step immediately undone by its converse).  A formula is *cycle-free* when
there is a bound, independent of the number of fixpoint unfoldings, on the
number of modality cycles in every path of the formula.

Unboundedly many modality cycles can only be produced by going around a
recursion loop whose modality word keeps creating cycles.  The check below
therefore builds the *recursion graph* of the formula:

* one node per bound recursion variable (after alpha-renaming so binders are
  unique),
* an edge ``X --w--> Y`` for every free occurrence of ``Y`` in the definition
  of ``X``, labelled with the word ``w`` of modalities crossed between the
  root of ``X``'s definition and that occurrence.

The formula has unboundedly many modality cycles exactly when some cyclic
walk of this graph yields a word whose infinite repetition contains a
modality cycle — that is, when a modality cycle occurs either inside one of
the words along the walk or at the junction of two consecutive words.  This
is decided on the finite product graph of (variable, last modality) states.

Like the paper's relation (Figure 3), the check inspects *every* fixpoint
definition, even ones that are never reachable from the fixpoint body, so
``µX = ⟨1⟩⟨1̄⟩X in ⊤`` is rejected exactly as discussed in Section 4.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.errors import CycleFreenessError
from repro.logic import syntax as sx
from repro.trees.focus import inverse


@dataclass
class _RecursionGraph:
    """Edges of the recursion graph, labelled by modality words."""

    edges: dict[str, list[tuple[str, tuple[int, ...]]]] = field(default_factory=dict)

    def add(self, source: str, target: str, word: tuple[int, ...]) -> None:
        self.edges.setdefault(source, []).append((target, word))

    def variables(self) -> set[str]:
        names = set(self.edges)
        for targets in self.edges.values():
            names.update(target for target, _word in targets)
        return names


def _build_graph(formula: sx.Formula) -> _RecursionGraph:
    renamed = sx.rename_bound_variables(formula)
    graph = _RecursionGraph()

    def walk_definition(owner: str, definition: sx.Formula) -> None:
        _walk(owner, definition, ())

    def _walk(owner: str, current: sx.Formula, word: tuple[int, ...]) -> None:
        kind = current.kind
        if kind == sx.KIND_VAR:
            graph.add(owner, current.label, word)
            return
        if kind == sx.KIND_DIA:
            _walk(owner, current.left, word + (current.prog,))
            return
        if kind in (sx.KIND_OR, sx.KIND_AND):
            _walk(owner, current.left, word)
            _walk(owner, current.right, word)
            return
        if current.is_fixpoint:
            # Definitions are only entered through occurrences of their bound
            # variables, so they are analysed as nodes of their own; the body
            # continues the current syntactic path.
            for name, definition in current.defs:
                walk_definition(name, definition)
            _walk(owner, current.body, word)
            return
        # Atoms contribute nothing.

    # The top-level formula behaves like the definition of a virtual variable
    # that nothing points back to: it cannot be part of a cycle, but walking it
    # registers every nested fixpoint definition.
    top = "__top__"
    _walk(top, renamed, ())
    return graph


def _word_has_cycle(word: tuple[int, ...], incoming: int | None) -> tuple[bool, int | None]:
    """Scan a modality word starting from a previous modality.

    Returns ``(cycle_found, last_modality)`` where ``last_modality`` is the
    final modality after the word (or ``incoming`` when the word is empty).
    """
    last = incoming
    found = False
    for modality in word:
        if last is not None and modality == inverse(last):
            found = True
        last = modality
    return found, last


def find_unbounded_cycle(formula: sx.Formula) -> list[str] | None:
    """Return a witness loop of recursion variables, or ``None`` if cycle-free.

    The witness is a list of variable names (after alpha-renaming) along a
    cyclic walk whose repeated modality word contains a modality cycle.
    """
    graph = _build_graph(formula)

    # Product states: (variable, last modality or None).  A transition is
    # "bad" when scanning its word from the incoming modality hits a cycle.
    states: set[tuple[str, int | None]] = set()
    transitions: dict[tuple[str, int | None], list[tuple[tuple[str, int | None], bool]]] = {}

    def successors(state: tuple[str, int | None]) -> list[tuple[tuple[str, int | None], bool]]:
        cached = transitions.get(state)
        if cached is not None:
            return cached
        variable, last = state
        result: list[tuple[tuple[str, int | None], bool]] = []
        for target, word in graph.edges.get(variable, ()):
            bad, new_last = _word_has_cycle(word, last)
            result.append(((target, new_last), bad))
        transitions[state] = result
        return result

    # Explore from every variable with an unknown incoming modality: a path of
    # the unfolding may enter the loop with any history, and starting from
    # "None" only under-approximates the bad transitions, which is compensated
    # by also starting from each concrete modality.
    start_states = [
        (variable, last)
        for variable in graph.variables()
        for last in (None, 1, 2, -1, -2)
    ]

    # Reachability closure over the product graph.
    stack = list(start_states)
    while stack:
        state = stack.pop()
        if state in states:
            continue
        states.add(state)
        for target, _bad in successors(state):
            if target not in states:
                stack.append(target)

    # A bad transition u -> v witnesses unboundedness when v can reach u.
    reach_cache: dict[tuple[str, int | None], set[tuple[str, int | None]]] = {}

    def reachable_from(state: tuple[str, int | None]) -> set[tuple[str, int | None]]:
        cached = reach_cache.get(state)
        if cached is not None:
            return cached
        seen: set[tuple[str, int | None]] = set()
        frontier = [state]
        while frontier:
            current = frontier.pop()
            if current in seen:
                continue
            seen.add(current)
            for target, _bad in successors(current):
                if target not in seen:
                    frontier.append(target)
        reach_cache[state] = seen
        return seen

    for state in states:
        for target, bad in successors(state):
            if bad and state in reachable_from(target):
                return [state[0], target[0]]
    return None


def is_cycle_free(formula: sx.Formula) -> bool:
    """Whether the formula is cycle-free in the sense of Section 4."""
    return find_unbounded_cycle(formula) is None


def assert_cycle_free(formula: sx.Formula) -> None:
    """Raise :class:`CycleFreenessError` when the formula is not cycle-free."""
    witness = find_unbounded_cycle(formula)
    if witness is not None:
        raise CycleFreenessError(
            "formula is not cycle-free: unbounded modality cycles around "
            f"recursion variables {witness}"
        )
