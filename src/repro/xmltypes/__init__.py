"""XML regular tree types (Section 5.2, Figures 12-14).

Regular tree languages subsume the mainstream XML schema formalisms (DTD,
XML Schema, Relax NG).  The paper embeds them into the logic through *binary*
regular tree type expressions; the pipeline reproduced here is the one shown
on the Wikipedia DTD fragment of the paper:

DTD (Figure 12)  →  binary tree type grammar (Figure 13)  →  Lµ formula (Figure 14)

* :mod:`repro.xmltypes.content`    — element content models (regular
  expressions over element names),
* :mod:`repro.xmltypes.dtd`        — a DTD parser (elements, content models,
  parameter entities),
* :mod:`repro.xmltypes.ast`        — binary regular tree type grammars,
* :mod:`repro.xmltypes.binarize`   — DTD → binary tree types,
* :mod:`repro.xmltypes.compile`    — binary tree types → Lµ,
* :mod:`repro.xmltypes.membership` — direct membership checking (validation),
* :mod:`repro.xmltypes.library`    — built-in DTDs used in the evaluation
  (SMIL 1.0, XHTML 1.0 Strict, the Wikipedia fragment).
"""

from repro.xmltypes.content import (
    ContentModel,
    CEmpty,
    CSymbol,
    CSeq,
    CChoice,
    COptional,
    CStar,
    CPlus,
)
from repro.xmltypes.dtd import DTD, ElementDeclaration, parse_dtd
from repro.xmltypes.ast import BinaryTypeGrammar, EPSILON, LabelAlternative
from repro.xmltypes.binarize import binarize_dtd
from repro.xmltypes.compile import compile_grammar, compile_dtd
from repro.xmltypes.membership import grammar_accepts, dtd_accepts
from repro.xmltypes.library import (
    SchemaInfo,
    smil_dtd,
    xhtml_strict_dtd,
    xhtml_core_dtd,
    wikipedia_dtd,
    builtin_dtd,
    schema_catalog,
    schema_info,
    schema_names,
)

__all__ = [
    "ContentModel",
    "CEmpty",
    "CSymbol",
    "CSeq",
    "CChoice",
    "COptional",
    "CStar",
    "CPlus",
    "DTD",
    "ElementDeclaration",
    "parse_dtd",
    "BinaryTypeGrammar",
    "EPSILON",
    "LabelAlternative",
    "binarize_dtd",
    "compile_grammar",
    "compile_dtd",
    "grammar_accepts",
    "dtd_accepts",
    "SchemaInfo",
    "smil_dtd",
    "xhtml_strict_dtd",
    "xhtml_core_dtd",
    "wikipedia_dtd",
    "builtin_dtd",
    "schema_catalog",
    "schema_info",
    "schema_names",
]
