"""Variable-ordering helpers (Section 7.4).

The cost of BDD operations is very sensitive to the variable order.  The paper
found that ordering the Lean formulas by a breadth-first traversal of the
formula to solve — which keeps sister subformulas close together — works best
in practice.  The Lean computed by :func:`repro.logic.closure.lean` is already
in that order; the helpers here turn an ordered Lean into the interleaved
unprimed/primed variable order used by the transition relations ``∆ₐ``.
"""

from __future__ import annotations

from typing import Iterable, Sequence


def interleaved_pairs(names: Sequence[str], primed_suffix: str = "'") -> list[str]:
    """Interleave each variable with its primed copy: ``x0, x0', x1, x1', ...``

    Keeping a variable next to its primed copy is the standard ordering for
    transition relations expressed over current-state / next-state vectors; it
    keeps the equivalences ``xᵢ ↔ status(…~y…)`` of Section 7.1 narrow.
    """
    order: list[str] = []
    for name in names:
        order.append(name)
        order.append(name + primed_suffix)
    return order


def order_by_first_use(names: Iterable[str], uses: Sequence[Iterable[str]]) -> list[str]:
    """Order ``names`` by the first constraint (in ``uses``) that mentions them.

    This is a generic "locality preserving" ordering: variables used by the
    same constraint end up adjacent.  Variables never mentioned keep their
    original relative order at the end.
    """
    names = list(names)
    first_use: dict[str, int] = {}
    for index, constraint in enumerate(uses):
        for name in constraint:
            if name in names and name not in first_use:
                first_use[name] = index
    fallback = len(uses)
    return sorted(names, key=lambda name: (first_use.get(name, fallback), names.index(name)))
