"""Argument parsing and dispatch for the ``repro`` console entry point.

Subcommands (see :mod:`repro.cli` for the overview and ``docs/CLI.md`` for
the user guide):

* ``repro analyze`` — one-shot queries from arguments or a batch file.
* ``repro audit``   — static analysis of an XSLT stylesheet against a schema.
* ``repro serve``   — streaming JSON-lines request/response loop.
* ``repro schemas`` — list/inspect the bundled DTDs.
* ``repro bench``   — re-emit the ``BENCH_*.json`` reports.
* ``repro fuzz``    — differential fuzzing against the explicit oracles.

Every subcommand shares the exit-code contract of ``repro analyze``: 0 on
success, 1 when the run found what it looked for but the answer is "bad"
(analysis errors, benchmark regressions, fuzz disagreements), 2 when the
invocation or the run itself failed — internal errors print one diagnostic
line to stderr instead of a traceback — and 3 when every query was analysed
but at least one verdict is *unknown* because a resource budget ran out
(see the ``--deadline``/``--max-steps``/``--max-lean`` options shared by
``analyze``, ``audit`` and ``serve``).

The persistent solve cache is enabled by ``--cache-dir`` on ``analyze`` and
``serve``, or by the ``REPRO_CACHE_DIR`` environment variable (the flag
wins).
"""

from __future__ import annotations

import argparse
import os
import sys

#: Environment variable consulted when ``--cache-dir`` is not given.
CACHE_DIR_ENV = "REPRO_CACHE_DIR"

#: Registered BDD engines, kept in sync with ``repro.bdd.backends.BACKENDS``
#: (hard-coded here so ``repro ... --help`` never imports the solver stack).
BACKEND_CHOICES = ("dict", "arena")


def _add_cache_dir_option(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--cache-dir",
        default=os.environ.get(CACHE_DIR_ENV) or None,
        metavar="DIR",
        help="persistent solve-cache directory (default: $REPRO_CACHE_DIR if set, "
        "else no persistence)",
    )


def _add_batch_fixpoint_option(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--batch-fixpoint",
        choices=("on", "off", "auto"),
        default=None,
        help="merged-Lean batch solving: compile compatible queries of a batch "
        "into one shared Lean and decide them in a single fixpoint (on), solve "
        "each query separately (off, the default), or merge only in-process "
        "multi-query batches (auto); verdicts and witnesses are identical "
        "either way",
    )


def _add_backend_option(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--backend",
        choices=BACKEND_CHOICES,
        default=None,
        help="BDD engine for solver runs (default: $REPRO_BDD_BACKEND if set, "
        "else dict); both engines produce identical verdicts",
    )


def _add_budget_options(parser: argparse.ArgumentParser) -> None:
    budget = parser.add_argument_group(
        "resource budgets",
        "bound every solver run; a query that runs out of budget gets a "
        "structured 'unknown' verdict (exit code 3) instead of hanging",
    )
    budget.add_argument(
        "--deadline",
        type=float,
        default=None,
        metavar="SECONDS",
        help="wall-clock deadline per solver run",
    )
    budget.add_argument(
        "--max-steps",
        type=int,
        default=None,
        metavar="N",
        help="cap on BDD kernel steps per solver run (machine-independent)",
    )
    budget.add_argument(
        "--max-iterations",
        type=int,
        default=None,
        metavar="N",
        help="cap on fixpoint iterations per solver run",
    )
    budget.add_argument(
        "--max-lean",
        type=int,
        default=None,
        metavar="N",
        help="refuse formulas whose Lean exceeds N before any BDD is built "
        "(the algorithm is 2^O(lean))",
    )
    budget.add_argument(
        "--degrade",
        action="store_true",
        help="when a budget runs out, fall back to the bounded explicit "
        "solver for instances small enough to decide eagerly",
    )


def budget_from_args(args) -> "object | None":
    """The analyzer-wide :class:`repro.solver.governor.Budget` the flags ask
    for, or ``None`` when every limit is absent (imported lazily so
    ``repro --help`` stays solver-free)."""
    from repro.solver.governor import Budget

    budget = Budget(
        deadline_seconds=getattr(args, "deadline", None),
        max_steps=getattr(args, "max_steps", None),
        max_iterations=getattr(args, "max_iterations", None),
        max_lean=getattr(args, "max_lean", None),
    )
    return None if budget.unlimited else budget


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Static analyzer for XPath/XML-type decision problems "
        "(Genevès, Layaïda & Schmitt, PLDI 2007).",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    analyze = subparsers.add_parser(
        "analyze",
        help="answer decision problems from arguments or a batch file",
        description="Answer one query (1 expression: satisfiability, 2: containment, "
        "override with --kind) or a --batch file of queries; prints a JSON report.",
    )
    analyze.add_argument("exprs", nargs="*", metavar="EXPR", help="XPath expression(s)")
    analyze.add_argument(
        "--kind",
        choices=(
            "satisfiability",
            "emptiness",
            "containment",
            "equivalence",
            "overlap",
            "coverage",
            "type_inclusion",
        ),
        help="decision problem to run on the expressions",
    )
    analyze.add_argument(
        "--type",
        dest="types",
        action="append",
        metavar="SCHEMA",
        help="type constraint per expression: a built-in schema name or a .dtd file; "
        "give once to apply to every side, repeat for per-side types",
    )
    analyze.add_argument(
        "--batch", metavar="FILE", help="JSON array or JSONL file of query objects"
    )
    analyze.add_argument(
        "--compact", action="store_true", help="single-line JSON output"
    )
    _add_cache_dir_option(analyze)
    _add_backend_option(analyze)
    _add_batch_fixpoint_option(analyze)
    _add_budget_options(analyze)

    audit = subparsers.add_parser(
        "audit",
        help="static analysis of an XSLT stylesheet against a schema",
        description="Audit an XSLT 1.0 stylesheet (with its import/include "
        "closure) against a schema: dead templates, shadowed templates, "
        "unreachable branches, dead selects, coverage gaps. All checks are "
        "decided in one batched solver pass.",
    )
    audit.add_argument("stylesheet", metavar="STYLESHEET", help="path to the .xsl file")
    audit.add_argument(
        "--schema",
        required=True,
        metavar="SCHEMA",
        help="document schema the stylesheet consumes: a built-in schema name "
        "(see `repro schemas`) or a .dtd file",
    )
    audit.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        help="output format (default: text)",
    )
    audit.add_argument(
        "--fail-on",
        choices=("error", "warning", "never"),
        default="error",
        help="lowest severity that makes the exit code 1 (default: error; "
        "'never' always exits 0 for findings)",
    )
    audit.add_argument(
        "--compact", action="store_true", help="single-line JSON output"
    )
    audit.add_argument(
        "--workers",
        type=int,
        default=1,
        metavar="N",
        help="fan the decision-problem batch out to N worker processes "
        "(default: 1, in-process)",
    )
    _add_cache_dir_option(audit)
    _add_backend_option(audit)
    _add_batch_fixpoint_option(audit)
    _add_budget_options(audit)

    serve = subparsers.add_parser(
        "serve",
        help="answer JSONL requests on stdin until end-of-input",
        description="Stream JSON-lines requests on stdin; one JSON response per "
        "line on stdout. Control ops: {\"op\": \"ping\"|\"stats\"|\"schemas\"}.",
    )
    serve.add_argument(
        "--workers",
        type=int,
        default=1,
        metavar="N",
        help="fan queries out to N worker processes (responses stay in request "
        "order; default: 1, in-process)",
    )
    _add_cache_dir_option(serve)
    _add_backend_option(serve)
    _add_batch_fixpoint_option(serve)
    _add_budget_options(serve)

    schemas = subparsers.add_parser(
        "schemas",
        help="list or inspect the bundled DTDs",
        description="List the bundled schema registry, or inspect one schema.",
    )
    schemas.add_argument("name", nargs="?", help="schema name or alias to inspect")
    schemas.add_argument("--json", action="store_true", help="machine-readable output")

    bench = subparsers.add_parser(
        "bench",
        help="re-emit the BENCH_*.json benchmark reports",
        description="Run the built-in benchmarks and write BENCH_<name>.json files.",
    )
    bench.add_argument(
        "names",
        nargs="*",
        metavar="NAME",
        help="benchmarks to run: api-batch, cli-cache, scaling, frontier, "
        "backend, audit, batch (default: all)",
    )
    bench.add_argument(
        "--quick",
        action="store_true",
        help="smoke mode: scaling/frontier run depths 1-3 only, and the run "
        "fails if the depth-3 product_calls counter regresses above the "
        "committed threshold",
    )
    bench.add_argument(
        "--output-dir",
        default=".",
        metavar="DIR",
        help="where to write the BENCH_*.json files (default: current directory)",
    )
    bench.add_argument(
        "--workers",
        type=int,
        default=None,
        metavar="N",
        help="worker processes for the multiprocess benchmark sections "
        "(default: the benchmark's own setting)",
    )

    fuzz = subparsers.add_parser(
        "fuzz",
        help="differential fuzzing against bounded explicit oracles",
        description="Generate random DTD/XPath decision problems, solve each "
        "with pruning on/off x frontier deltas on/off, and cross-check every "
        "verdict against bounded enumeration, the psi-type solver, and "
        "witness replay. Prints a JSON campaign report; exit code 1 means a "
        "disagreement was found (and shrunk into the corpus directory).",
    )
    from repro.cli import fuzz as fuzz_command

    fuzz_command.add_arguments(fuzz)

    return parser


#: Exit code for internal failures, shared by every subcommand (matching the
#: documented ``repro analyze`` contract).
EXIT_INTERNAL = 2


def main(argv: list[str] | None = None) -> int:
    """Entry point of the ``repro`` console script; returns the exit code."""
    args = build_parser().parse_args(argv)
    # Imported lazily so `repro schemas --help` never pays solver import cost.
    if args.command == "analyze":
        from repro.cli import analyze as command
    elif args.command == "audit":
        from repro.cli import audit as command
    elif args.command == "serve":
        from repro.cli import serve as command
    elif args.command == "schemas":
        from repro.cli import schemas as command
    elif args.command == "fuzz":
        from repro.cli import fuzz as command
    else:
        from repro.cli import bench as command
    try:
        return command.run(args)
    except BrokenPipeError:
        # Output was piped into something like `head` that closed early;
        # exit quietly the way standard Unix filters do.  Point stdout at
        # /dev/null so the interpreter's exit-time flush cannot raise again.
        os.dup2(os.open(os.devnull, os.O_WRONLY), sys.stdout.fileno())
        return 0
    except KeyboardInterrupt:
        raise
    except Exception as exc:  # noqa: BLE001 - the CLI's last line of defence
        # Internal errors become one diagnostic line and exit code 2, never
        # a traceback: scripts driving the CLI rely on the 0/1/2 contract.
        print(
            f"repro {args.command}: internal error: {type(exc).__name__}: {exc}",
            file=sys.stderr,
        )
        return EXIT_INTERNAL
