"""The decision problems of Section 8, reduced to Lµ satisfiability.

For XPath expressions ``e₁, …, eₙ`` and XML types ``T₁, …, Tₙ``:

* **emptiness / satisfiability**: ``E→[[e₁]]([[T₁]])`` is satisfiable iff
  ``e₁`` can select at least one node in some document of type ``T₁``;
* **containment**: ``E→[[e₁]]([[T₁]]) ∧ ¬E→[[e₂]]([[T₂]])`` is unsatisfiable
  iff every node selected by ``e₁`` (under ``T₁``) is selected by ``e₂``
  (under ``T₂``);
* **overlap**: ``E→[[e₁]]([[T₁]]) ∧ E→[[e₂]]([[T₂]])`` is satisfiable iff the
  two expressions can select a common node;
* **coverage**: ``E→[[e₁]]([[T₁]]) ∧ ⋀ᵢ ¬E→[[eᵢ]]([[Tᵢ]])`` is unsatisfiable
  iff every node selected by ``e₁`` is selected by one of the others;
* **static type checking**: ``E→[[e₁]]([[T₁]]) ∧ ¬[[T₂]]`` is unsatisfiable
  iff every node selected by ``e₁`` under ``T₁`` roots a subtree of type
  ``T₂``;
* **equivalence**: containment in both directions.

When the formula of a "negative" problem (containment, coverage, type
inclusion) is satisfiable, the satisfying model is a counterexample document,
annotated with the start mark, which is returned to the caller.

**Attributes.**  When an expression of a problem mentions attribute steps
(``@href``, ``attribute::*``), every DTD involved in the problem is compiled
with its ATTLIST constraints projected onto the union of the attribute names
the problem's expressions mention (see :mod:`repro.xmltypes.compile`): the
projection keeps the Lean small while preserving every verdict a
presence-based query can distinguish.  Attribute-free problems compile types
exactly as before.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.logic import syntax as sx
from repro.logic.closure import OTHER_ATTRIBUTE
from repro.logic.negation import negate
from repro.solver.symbolic import SolverResult, SymbolicSolver
from repro.trees.unranked import Tree
from repro.xmltypes.compile import compile_dtd, compile_grammar, project_grammar
from repro.xmltypes.membership import lift_wildcards
from repro.xmltypes.ast import BinaryTypeGrammar
from repro.xmltypes.dtd import DTD
from repro.xpath import ast as xp
from repro.xpath.compile import compile_xpath
from repro.xpath.parser import parse_xpath_cached

TypeLike = "DTD | BinaryTypeGrammar | sx.Formula | Rooted | None"
ExprLike = "xp.Expr | str"


@dataclass(frozen=True)
class Rooted:
    """A whole-document reading of a type constraint.

    The type translation of Section 5.2 leaves the context of the typed node
    unconstrained, so absolute paths in a query may anchor anywhere.
    ``Rooted(T)`` instead places the marked context node *above* the typed
    root element, as a virtual document node: it has no parent, no siblings,
    and exactly one child — the root element of a document of type ``T``.
    Absolute expressions then read as paths from the document node
    (``/html`` is the root element, ``//p`` is every ``p`` in the document,
    ``/self::*`` is the document node itself), matching the data model XSLT
    patterns are defined over.

    ``xml_type`` may be anything the analysis accepts except a raw Lµ formula
    or another ``Rooted`` (wrap the base type, not a hand-built formula — the
    wrapper must know how the inner translation is produced to place it under
    the document node).
    """

    xml_type: "DTD | BinaryTypeGrammar | str | None"

    def __post_init__(self) -> None:
        if isinstance(self.xml_type, (Rooted, sx.Formula)):
            raise TypeError(
                f"Rooted wraps a base type constraint, not {type(self.xml_type).__name__}"
            )


def document_formula(inner: sx.Formula) -> sx.Formula:
    """The Lµ formula of :class:`Rooted` given the inner type's translation.

    The marked node is the document node: a unique top-level node (no parent,
    no siblings — only a first child with no previous sibling can satisfy
    ``¬⟨-1⟩⊤ ∧ ¬⟨-2⟩⊤``) whose single child satisfies the inner constraint.
    """
    return sx.big_and(
        (
            sx.no_dia(-1),
            sx.no_dia(-2),
            sx.no_dia(2),
            sx.dia(1, sx.mk_and(inner, sx.no_dia(2))),
        )
    )


def _type_formula(
    xml_type,
    constrain_siblings: bool = True,
    attributes: tuple[str, ...] = (),
    labels: tuple[str, ...] | None = None,
) -> sx.Formula:
    """The Lµ formula of a type constraint (⊤ when there is none).

    ``constrain_siblings=False`` is used for *output* types (static type
    checking): the checked node is usually an inner node of a document and may
    have following siblings, which the type should not constrain.

    ``attributes`` is the attribute alphabet the surrounding problem observes;
    DTD types project their ATTLIST constraints onto it (other kinds of type
    constraint carry no attribute information and ignore it).

    ``labels`` is the problem's element alphabet (or ``None`` when the
    problem must not prune): DTD and grammar types collapse element names
    outside it onto the "any other label" proposition — cone-of-influence
    Lean pruning, see :func:`label_projection`.
    """
    if xml_type is None:
        return sx.TRUE
    if isinstance(xml_type, Rooted):
        return document_formula(
            _type_formula(
                xml_type.xml_type,
                constrain_siblings=True,
                attributes=attributes,
                labels=labels,
            )
        )
    if isinstance(xml_type, sx.Formula):
        return xml_type
    if isinstance(xml_type, DTD):
        return compile_dtd(
            xml_type,
            constrain_siblings=constrain_siblings,
            attributes=attributes or None,
            labels=labels,
        )
    if isinstance(xml_type, BinaryTypeGrammar):
        grammar = (
            project_grammar(xml_type, labels) if labels is not None else xml_type
        )
        return compile_grammar(grammar, constrain_siblings=constrain_siblings)
    raise TypeError(f"unsupported type constraint {xml_type!r}")


def _expression(expr) -> xp.Expr:
    return parse_xpath_cached(expr) if isinstance(expr, str) else expr


def relevant_attributes(*exprs) -> tuple[str, ...]:
    """The attribute alphabet of a problem: every name its expressions mention.

    The wildcard ``@*`` contributes the "other attribute" marker so that type
    constraints can also rule attributes outside the named alphabet in or
    out.  Returns a sorted tuple (empty for attribute-free problems).
    """
    names: set[str] = set()
    wildcard = False
    for expr in exprs:
        if expr is None:
            continue
        expr_names, expr_wildcard = xp.collect_attributes(_expression(expr))
        names |= expr_names
        wildcard = wildcard or expr_wildcard
    if wildcard:
        names.add(OTHER_ATTRIBUTE)
    return tuple(sorted(names))


def relevant_labels(*exprs) -> tuple[str, ...]:
    """The element alphabet of a problem: every name its expressions test.

    Wildcard node tests contribute nothing (they cannot distinguish labels).
    Returns a sorted tuple.
    """
    names: set[str] = set()
    for expr in exprs:
        if expr is None:
            continue
        names |= xp.collect_labels(_expression(expr))
    return tuple(sorted(names))


def label_projection(exprs, types, type_key=id) -> tuple[str, ...] | None:
    """The element alphabet to project type constraints onto, or ``None``.

    Cone-of-influence pruning collapses element names a problem's
    expressions never test onto the "any other label" proposition.  The
    collapse is a label homomorphism applied to the type constraints, so it
    is semantics-preserving exactly when every type constraint of the
    problem is collapsed *through the same homomorphism*: with two distinct
    DTDs the problem can tell types apart through names neither query
    mentions (e.g. containment between differently-typed sides), so pruning
    must be skipped — this returns ``None``.

    Concretely, pruning applies when the problem involves at most one
    distinct DTD/grammar constraint (possibly repeated, possibly mixed with
    unconstrained ``None`` sides).  Raw-formula type constraints cannot be
    projected, but their alphabet joins the kept labels so they stay sound
    alongside a pruned schema.

    ``type_key`` maps a (non-``None``, non-formula) type constraint to its
    identity for the distinctness test.  The default — object identity —
    suits direct callers holding parsed DTD/grammar objects;
    :class:`repro.api.StaticAnalyzer` passes its cache key so two mentions
    of the same built-in schema name count as one type.
    """
    distinct: set[object] = set()
    formula_labels: set[str] = set()
    for xml_type in types:
        if isinstance(xml_type, Rooted):
            # The document-node wrapper is the same label homomorphism as its
            # inner type; mixing Rooted(T) and T in one problem is still one
            # distinct schema.
            xml_type = xml_type.xml_type
        if xml_type is None:
            continue
        if isinstance(xml_type, sx.Formula):
            formula_labels |= sx.atomic_propositions(xml_type)
            continue
        distinct.add(type_key(xml_type))
    if len(distinct) > 1:
        return None
    return tuple(sorted(set(relevant_labels(*exprs)) | formula_labels))


def _required_attribute_names(xml_type) -> set[str]:
    """Every ``#REQUIRED`` attribute name of a DTD type (else ∅)."""
    if not isinstance(xml_type, DTD):
        return set()
    return {
        name
        for element in xml_type.element_names()
        for name in xml_type.required_attributes(element)
    }


def type_inclusion_attributes(expr, input_type, output_type) -> tuple[str, ...]:
    """The attribute alphabet for a static type-checking problem.

    Unlike query-versus-query problems, type inclusion uses a *negated type*
    as a predicate on the selected subtrees, so attribute names the
    expression never mentions can still decide validity: an output type with
    ``alt`` ``#REQUIRED`` on ``img`` rejects every alt-less ``img`` whether
    or not the query talks about ``alt``.  The alphabet therefore adds, on
    top of the expression's names, every ``#REQUIRED`` name of either DTD
    and every name the input type declares *on an element* for which the
    output type does not declare it (an attribute the input admits there
    that would invalidate the output; the comparison is per element — the
    output declaring the same name on a different element does not help).

    When the input type is unconstrained (``None``, a raw formula, or a
    grammar), documents may carry attribute names no finite alphabet can
    enumerate; such attributes stay outside the model, i.e. inclusion is
    decided *modulo attributes the problem cannot name* (consistent with the
    projection semantics everywhere else).
    """
    names = set(relevant_attributes(expr))
    names |= _required_attribute_names(input_type)
    names |= _required_attribute_names(output_type)
    if isinstance(input_type, DTD):
        output_attlists = (
            output_type.attlists if isinstance(output_type, DTD) else {}
        )
        for element, declarations in input_type.attlists.items():
            declared_out = {
                declaration.name for declaration in output_attlists.get(element, ())
            }
            names |= {
                declaration.name
                for declaration in declarations
                if declaration.name not in declared_out
            }
    return tuple(sorted(names))


def rooted(xml_type, attributes: tuple[str, ...] = ()) -> sx.Formula:
    """Anchor a type constraint at the document root.

    The type translation of Section 5.2 deliberately leaves the context of the
    typed node unconstrained.  For whole-document analyses (such as the XHTML
    experiments of Section 8) the paper notes that "conditions similar to
    those of absolute paths are added" when the position of the root is known;
    this helper conjoins the type formula with "no parent and no sibling", so
    the marked context node is the document root itself.  ``attributes`` is
    the attribute alphabet to project DTD attribute constraints onto (use
    :func:`relevant_attributes` of the queries the type will face).

    Note the marked node here is the *root element*: an absolute query like
    ``/html`` (a child step from the context node) then looks for ``html``
    *below* the root element and fails.  For the XPath/XSLT reading where
    absolute paths start at a document node above the root element, use the
    :class:`Rooted` wrapper instead.
    """
    return sx.big_and(
        (
            _type_formula(xml_type, attributes=attributes),
            sx.no_dia(-1),
            sx.no_dia(-2),
            sx.no_dia(2),
        )
    )


def _query_formula(
    expr,
    xml_type,
    attributes: tuple[str, ...] = (),
    labels: tuple[str, ...] | None = None,
) -> sx.Formula:
    return compile_xpath(
        _expression(expr),
        _type_formula(xml_type, attributes=attributes, labels=labels),
    )


@dataclass
class AnalysisResult:
    """Outcome of a decision problem.

    ``holds`` answers the question asked ("is e₁ contained in e₂?", "do they
    overlap?", ...); ``counterexample`` is a witness document when the
    property fails (for containment-like problems) or an example document when
    it holds (for satisfiability-like problems).
    """

    problem: str
    holds: bool
    solver_result: SolverResult
    counterexample: Tree | None = None

    @property
    def time_ms(self) -> float:
        """Solver running time in milliseconds (as reported in Table 2)."""
        return 1000.0 * self.solver_result.statistics.solve_seconds

    def describe(self) -> str:
        status = "holds" if self.holds else "does not hold"
        witness = ""
        if self.counterexample is not None:
            from repro.trees.unranked import serialize_tree

            witness = f"; witness: {serialize_tree(self.counterexample)}"
        return f"{self.problem}: {status} ({self.time_ms:.1f} ms){witness}"


@dataclass
class Analyzer:
    """Facade bundling the translations and the solver with shared options.

    ``prune_labels`` enables cone-of-influence Lean pruning: type constraints
    are projected onto the element names the problem's expressions actually
    test (see :func:`label_projection`), which shrinks the Lean — and with it
    every BDD — proportionally for queries touching a small corner of a
    large schema.  The projection is semantics-preserving and is therefore on
    by default; switch it off to reproduce the unpruned alphabets of the
    paper's figures.
    """

    early_quantification: bool = True
    monolithic_relation: bool = False
    interleaved_order: bool = True
    track_marks: bool = True
    prune_labels: bool = True

    def _labels(self, exprs, types) -> tuple[str, ...] | None:
        if not self.prune_labels:
            return None
        return label_projection(exprs, types)

    def _counterexample(self, result: SolverResult, labels, *types) -> Tree | None:
        """The witness document, lifted back to concrete element names.

        Solving under a label-projected type leaves collapsed elements with
        the placeholder label; when the problem had a DTD constraint, try to
        reassign concrete names so the witness validates against the
        original schema (best effort — the typed region may not span the
        whole document).
        """
        document = result.model_document()
        if document is None or labels is None:
            return document
        unwrapped = (
            t.xml_type if isinstance(t, Rooted) else t for t in types
        )
        dtd = next((t for t in unwrapped if isinstance(t, DTD)), None)
        if dtd is None:
            return document
        lifted = lift_wildcards(dtd, document, exclude=labels)
        return lifted if lifted is not None else document

    def _solve(self, formula: sx.Formula, extra_labels: tuple[str, ...] = ()) -> SolverResult:
        solver = SymbolicSolver(
            formula,
            extra_labels=extra_labels,
            early_quantification=self.early_quantification,
            monolithic_relation=self.monolithic_relation,
            interleaved_order=self.interleaved_order,
            track_marks=self.track_marks,
        )
        return solver.solve()

    # -- problems -----------------------------------------------------------------

    def satisfiability(self, expr, xml_type=None) -> AnalysisResult:
        """Can the expression select at least one node (under the type)?"""
        labels = self._labels((expr,), (xml_type,))
        formula = _query_formula(expr, xml_type, relevant_attributes(expr), labels)
        result = self._solve(formula)
        return AnalysisResult(
            problem=f"satisfiability of {expr}",
            holds=result.satisfiable,
            solver_result=result,
            counterexample=self._counterexample(result, labels, xml_type),
        )

    def emptiness(self, expr, xml_type=None) -> AnalysisResult:
        """Is the expression always empty (under the type)?"""
        inner = self.satisfiability(expr, xml_type)
        return AnalysisResult(
            problem=f"emptiness of {expr}",
            holds=not inner.holds,
            solver_result=inner.solver_result,
            counterexample=inner.counterexample,
        )

    def containment(self, expr1, expr2, type1=None, type2=None) -> AnalysisResult:
        """Is every node selected by ``expr1`` also selected by ``expr2``?"""
        # Both sides share one attribute alphabet: a required attribute that
        # only expr2 mentions must still constrain the models of expr1's type.
        attributes = relevant_attributes(expr1, expr2)
        labels = self._labels((expr1, expr2), (type1, type2))
        formula = sx.mk_and(
            _query_formula(expr1, type1, attributes, labels),
            negate(_query_formula(expr2, type2, attributes, labels)),
        )
        result = self._solve(formula)
        return AnalysisResult(
            problem=f"containment {expr1} ⊆ {expr2}",
            holds=not result.satisfiable,
            solver_result=result,
            counterexample=self._counterexample(result, labels, type1, type2),
        )

    def equivalence(self, expr1, expr2, type1=None, type2=None) -> tuple[AnalysisResult, AnalysisResult]:
        """Containment in both directions (XPath equivalence under constraints)."""
        forward = self.containment(expr1, expr2, type1, type2)
        backward = self.containment(expr2, expr1, type2, type1)
        return forward, backward

    def overlap(self, expr1, expr2, type1=None, type2=None) -> AnalysisResult:
        """Can the two expressions select a common node?"""
        attributes = relevant_attributes(expr1, expr2)
        labels = self._labels((expr1, expr2), (type1, type2))
        formula = sx.mk_and(
            _query_formula(expr1, type1, attributes, labels),
            _query_formula(expr2, type2, attributes, labels),
        )
        result = self._solve(formula)
        return AnalysisResult(
            problem=f"overlap of {expr1} and {expr2}",
            holds=result.satisfiable,
            solver_result=result,
            counterexample=self._counterexample(result, labels, type1, type2),
        )

    def coverage(self, expr, covering, xml_type=None, covering_types=None) -> AnalysisResult:
        """Is every node selected by ``expr`` selected by one of ``covering``?"""
        covering = list(covering)
        covering_types = list(covering_types) if covering_types is not None else [None] * len(covering)
        attributes = relevant_attributes(expr, *covering)
        labels = self._labels((expr, *covering), (xml_type, *covering_types))
        formula = _query_formula(expr, xml_type, attributes, labels)
        for other, other_type in zip(covering, covering_types):
            formula = sx.mk_and(
                formula, negate(_query_formula(other, other_type, attributes, labels))
            )
        result = self._solve(formula)
        return AnalysisResult(
            problem=f"coverage of {expr} by {len(covering)} expressions",
            holds=not result.satisfiable,
            solver_result=result,
            counterexample=self._counterexample(result, labels, xml_type, *covering_types),
        )

    def type_inclusion(self, expr, input_type, output_type) -> AnalysisResult:
        """Static type checking of an annotated query: is every node selected by
        ``expr`` under ``input_type`` the root of a subtree of ``output_type``?"""
        attributes = type_inclusion_attributes(expr, input_type, output_type)
        labels = self._labels((expr,), (input_type, output_type))
        formula = sx.mk_and(
            _query_formula(expr, input_type, attributes, labels),
            negate(
                _type_formula(
                    output_type,
                    constrain_siblings=False,
                    attributes=attributes,
                    labels=labels,
                )
            ),
        )
        result = self._solve(formula)
        return AnalysisResult(
            problem=f"type inclusion of {expr}",
            holds=not result.satisfiable,
            solver_result=result,
            counterexample=self._counterexample(result, labels, input_type, output_type),
        )


# -- module-level conveniences -------------------------------------------------------


def check_satisfiability(expr, xml_type=None, **options) -> AnalysisResult:
    return Analyzer(**options).satisfiability(expr, xml_type)


def check_emptiness(expr, xml_type=None, **options) -> AnalysisResult:
    return Analyzer(**options).emptiness(expr, xml_type)


def check_containment(expr1, expr2, type1=None, type2=None, **options) -> AnalysisResult:
    return Analyzer(**options).containment(expr1, expr2, type1, type2)


def check_equivalence(expr1, expr2, type1=None, type2=None, **options):
    return Analyzer(**options).equivalence(expr1, expr2, type1, type2)


def check_overlap(expr1, expr2, type1=None, type2=None, **options) -> AnalysisResult:
    return Analyzer(**options).overlap(expr1, expr2, type1, type2)


def check_coverage(expr, covering, xml_type=None, covering_types=None, **options) -> AnalysisResult:
    return Analyzer(**options).coverage(expr, covering, xml_type, covering_types)


def check_type_inclusion(expr, input_type, output_type, **options) -> AnalysisResult:
    return Analyzer(**options).type_inclusion(expr, input_type, output_type)
