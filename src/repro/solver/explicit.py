"""Explicit implementation of the satisfiability algorithm of Figure 16.

The algorithm repeatedly adds *triples* ``(t, w₁, w₂)`` — a ψ-type together
with witness types proving its ``⟨1⟩``/``⟨2⟩`` obligations — until either a
satisfying root type is produced or no new triple can be added.  Four variants
of the update ensure the start mark occurs exactly once in the tree being
proved: a triple is either unmarked (no mark anywhere below), or marked
because its own type carries ``s``, or marked through exactly one of its
witnesses.

Following Section 7.1, the solver actually tests the linear-size "plunging"
formula ``µX. ψ ∨ ⟨1⟩X ∨ ⟨2⟩X`` at the root: a root type (no pending backward
modality, mark present below) whose truth assignment satisfies the plunging
formula witnesses a tree in which ψ holds at some node reachable by forward
modalities, which is exactly satisfiability of ψ over focused trees.

This implementation enumerates ψ-types eagerly, so it is only usable for small
Leans; it exists to mirror the paper's abstract algorithm closely and to
cross-validate the symbolic solver of Section 7 on small instances.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.errors import SolverLimitError
from repro.logic import syntax as sx
from repro.logic.closure import Lean, lean as compute_lean
from repro.solver.models import render_attributes
from repro.solver.truth import TypeAssignment, psi_types, status_on_set
from repro.trees.binary import BinTree

#: An entry is a ψ-type plus the "contains the start mark" flag.
EntryKey = tuple[frozenset[sx.Formula], bool]


def estimate_psi_types(solver: "ExplicitSolver") -> int:
    """Upper bound on the ψ-types the explicit solver would enumerate."""
    lean = solver.lean
    modal = sum(
        1
        for item in lean.items
        if item.kind == sx.KIND_DIA and item.left is not sx.TRUE
    )
    optional = 4 + len(lean.attributes) + modal
    return len(lean.propositions) * 2 * (2**optional)


@dataclass
class _Entry:
    assignment: TypeAssignment
    contains_mark: bool
    iteration: int
    witness_first: EntryKey | None = None
    witness_second: EntryKey | None = None


@dataclass
class ExplicitResult:
    """Outcome of a run of the explicit solver."""

    satisfiable: bool
    model: BinTree | None
    iterations: int
    entry_count: int
    type_count: int
    lean: Lean


@dataclass
class ExplicitSolver:
    """Direct implementation of the bottom-up algorithm of Section 6.2."""

    formula: sx.Formula
    max_types: int = 300_000
    extra_labels: tuple[str, ...] = ()
    _plunged: sx.Formula = field(init=False, repr=False)
    _lean: Lean = field(init=False, repr=False)

    def __post_init__(self) -> None:
        self._plunged = sx.mu1(
            lambda x: self.formula | sx.dia(1, x) | sx.dia(2, x), prefix="Plunge"
        )
        self._lean = compute_lean(self._plunged, extra_labels=self.extra_labels)

    @property
    def lean(self) -> Lean:
        return self._lean

    def estimated_types(self) -> int:
        """Upper bound on the ψ-types :meth:`solve` would enumerate.

        Cheap (no enumeration): callers use it to decline instances whose
        eager ψ-type table would be too large — the fuzzer's explicit oracle
        and the API façade's graceful-degradation fallback both gate on it.
        """
        return estimate_psi_types(self)

    def solve(self) -> ExplicitResult:
        """Run the algorithm; returns satisfiability, a model, and statistics."""
        lean = self._lean
        all_types = list(psi_types(lean, limit=self.max_types))
        if not all_types:
            raise SolverLimitError("no psi-types; the lean is degenerate")

        entries: dict[EntryKey, _Entry] = {}
        iteration = 0
        while True:
            iteration += 1
            added = self._update(all_types, entries, iteration)
            winner = self._final_check(entries)
            if winner is not None:
                model = self._reconstruct(entries, winner)
                return ExplicitResult(
                    satisfiable=True,
                    model=model,
                    iterations=iteration,
                    entry_count=len(entries),
                    type_count=len(all_types),
                    lean=lean,
                )
            if not added:
                return ExplicitResult(
                    satisfiable=False,
                    model=None,
                    iterations=iteration,
                    entry_count=len(entries),
                    type_count=len(all_types),
                    lean=lean,
                )

    # -- one iteration of Upd(·) -------------------------------------------------

    def _update(
        self,
        all_types: list[TypeAssignment],
        entries: dict[EntryKey, _Entry],
        iteration: int,
    ) -> bool:
        added = False
        existing = list(entries.items())
        unmarked = [(key, entry) for key, entry in existing if not entry.contains_mark]
        marked = [(key, entry) for key, entry in existing if entry.contains_mark]

        for assignment in all_types:
            # (entry is marked, first witness marked, second witness marked)
            if assignment.marked:
                cases = [(True, False, False)]
            else:
                cases = [(False, False, False), (True, True, False), (True, False, True)]
            for entry_marked, first_marked, second_marked in cases:
                key: EntryKey = (assignment.members, entry_marked)
                if key in entries:
                    continue
                first = self._find_witness(
                    assignment, 1, marked if first_marked else unmarked, first_marked
                )
                if first is _MISSING:
                    continue
                second = self._find_witness(
                    assignment, 2, marked if second_marked else unmarked, second_marked
                )
                if second is _MISSING:
                    continue
                entries[key] = _Entry(
                    assignment=assignment,
                    contains_mark=entry_marked,
                    iteration=iteration,
                    witness_first=first,
                    witness_second=second,
                )
                added = True
        return added

    def _find_witness(
        self,
        assignment: TypeAssignment,
        program: int,
        candidates: list[tuple[EntryKey, _Entry]],
        required: bool,
    ):
        """A witness entry for program ``program``, or ``None`` when not needed.

        Returns the sentinel ``_MISSING`` when a witness is required (the type
        claims ``⟨program⟩⊤``, or the mark must come from this branch) but none
        exists among the candidates.
        """
        needs_child = assignment.has_parent_program(program)
        if not needs_child:
            return _MISSING if required else None
        for key, entry in candidates:
            if self._compatible(assignment, program, entry.assignment):
                return key
        return _MISSING

    def _compatible(
        self, parent: TypeAssignment, program: int, child: TypeAssignment
    ) -> bool:
        """The compatibility relation ∆ₐ(t, t′) of Definition 6.2."""
        if not child.has_parent_program(-program):
            return False
        for item in self._lean.items:
            if item.kind != sx.KIND_DIA or item.left is sx.TRUE:
                continue
            if item.prog == program:
                if (item in parent.members) != status_on_set(item.left, child.members):
                    return False
            elif item.prog == -program:
                if (item in child.members) != status_on_set(item.left, parent.members):
                    return False
        return True

    # -- final check and model reconstruction -----------------------------------------

    def _final_check(self, entries: dict[EntryKey, _Entry]) -> EntryKey | None:
        for key, entry in entries.items():
            if not entry.contains_mark:
                continue
            assignment = entry.assignment
            if assignment.has_parent_program(-1) or assignment.has_parent_program(-2):
                continue
            if status_on_set(self._plunged, assignment.members):
                return key
        return None

    def _reconstruct(self, entries: dict[EntryKey, _Entry], root: EntryKey) -> BinTree:
        def build(key: EntryKey) -> BinTree:
            entry = entries[key]
            first = build(entry.witness_first) if entry.witness_first is not None else None
            second = (
                build(entry.witness_second) if entry.witness_second is not None else None
            )
            return BinTree(
                label=entry.assignment.label,
                left=first,
                right=second,
                marked=entry.assignment.marked,
                attributes=render_attributes(entry.assignment.attributes),
            )

        return build(root)


class _Missing:
    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "<missing witness>"


_MISSING = _Missing()
