"""``repro audit`` — whole-stylesheet static analysis from the command line.

Audits one XSLT stylesheet (and its ``xsl:import``/``xsl:include`` closure)
against one schema, printing either a compiler-style text listing or the
stable JSON report of :meth:`repro.xslt.report.AuditReport.as_dict`.

Exit codes follow the shared CLI contract, refined by ``--fail-on``: 0 when
no finding reaches the threshold severity (default ``error``), 1 when one
does, 2 when the invocation itself was unusable (missing stylesheet,
unknown schema, malformed XML), 3 when nothing reached the threshold but at
least one audit query was *inconclusive* — a ``--deadline``/``--max-steps``
budget ran out, so the report carries ``analysis-unknown`` findings and the
audit cannot vouch for the rules those queries back.
"""

from __future__ import annotations

import sys

from repro.api import StaticAnalyzer
from repro.cli.analyze import EXIT_UNKNOWN, EXIT_USAGE
from repro.cli.main import budget_from_args
from repro.core.errors import ReproError
from repro.xslt import audit_stylesheet


def run(args) -> int:
    analyzer = StaticAnalyzer(
        cache_dir=args.cache_dir,
        backend=getattr(args, "backend", None),
        budget=budget_from_args(args),
        degrade=getattr(args, "degrade", False),
        batch_fixpoint=getattr(args, "batch_fixpoint", None) or "off",
    )
    try:
        report = audit_stylesheet(
            args.stylesheet, args.schema, analyzer=analyzer, workers=args.workers
        )
    except (OSError, ReproError) as exc:
        print(f"repro audit: {exc}", file=sys.stderr)
        return EXIT_USAGE
    if args.format == "json":
        indent = None if args.compact else 2
        print(report.to_json(ensure_ascii=False, indent=indent))
    else:
        print(report.to_text())
    fail_on = None if args.fail_on == "never" else args.fail_on
    code = report.exit_code(fail_on)
    if code == 0 and any(f.rule == "analysis-unknown" for f in report.findings):
        return EXIT_UNKNOWN
    return code
