"""The ROBDD manager: node table, boolean operations, quantification.

Nodes are identified by non-negative integers.  The two terminals are ``0``
(false) and ``1`` (true); every other node is a triple ``(level, low, high)``
stored in the manager's node table, where ``level`` is the position of the
node's variable in the manager's fixed variable order, ``low`` is the cofactor
for the variable being false and ``high`` for it being true.  The standard
reduction rules apply: no node with ``low == high``, and no two distinct nodes
with the same triple.

The :class:`BDD` wrapper pairs a node id with its manager and provides
operator overloading (``&``, ``|``, ``~``, ...) so client code reads like the
boolean formulas of Section 7.
"""

from __future__ import annotations

from typing import Iterable, Iterator, Mapping, Sequence


class BDDManager:
    """Owner of the node table and operation caches for one variable order."""

    FALSE = 0
    TRUE = 1

    def __init__(self, variables: Sequence[str] = ()):
        # Node table: index -> (level, low, high).  Entries 0 and 1 are
        # placeholders for the terminals and never dereferenced.
        self._nodes: list[tuple[int, int, int]] = [(-1, -1, -1), (-1, -1, -1)]
        self._unique: dict[tuple[int, int, int], int] = {}
        self._ite_cache: dict[tuple[int, int, int], int] = {}
        self._quant_cache: dict[tuple, int] = {}
        self._var_names: list[str] = []
        self._var_levels: dict[str, int] = {}
        for name in variables:
            self.add_variable(name)

    # -- variables -----------------------------------------------------------

    def add_variable(self, name: str) -> int:
        """Append a variable at the end of the order; returns its level."""
        if name in self._var_levels:
            raise ValueError(f"variable {name!r} already declared")
        level = len(self._var_names)
        self._var_names.append(name)
        self._var_levels[name] = level
        return level

    @property
    def variable_names(self) -> tuple[str, ...]:
        return tuple(self._var_names)

    def level_of(self, name: str) -> int:
        return self._var_levels[name]

    def name_of(self, level: int) -> str:
        return self._var_names[level]

    def var_count(self) -> int:
        return len(self._var_names)

    def node_count(self) -> int:
        """Total number of live nodes in the table (terminals excluded)."""
        return len(self._nodes) - 2

    # -- raw node constructors ------------------------------------------------

    def _mk(self, level: int, low: int, high: int) -> int:
        if low == high:
            return low
        key = (level, low, high)
        found = self._unique.get(key)
        if found is not None:
            return found
        index = len(self._nodes)
        self._nodes.append(key)
        self._unique[key] = index
        return index

    def var_node(self, name: str) -> int:
        """Node id of the literal ``name``."""
        return self._mk(self._var_levels[name], self.FALSE, self.TRUE)

    def nvar_node(self, name: str) -> int:
        """Node id of the literal ``¬name``."""
        return self._mk(self._var_levels[name], self.TRUE, self.FALSE)

    def _level(self, node: int) -> int:
        if node <= 1:
            return len(self._var_names)  # terminals sit below every variable
        return self._nodes[node][0]

    def _cofactors(self, node: int, level: int) -> tuple[int, int]:
        if node <= 1 or self._nodes[node][0] != level:
            return node, node
        _lvl, low, high = self._nodes[node]
        return low, high

    # -- core operations -------------------------------------------------------

    def ite(self, cond: int, then: int, other: int) -> int:
        """If-then-else: ``(cond ∧ then) ∨ (¬cond ∧ other)``."""
        if cond == self.TRUE:
            return then
        if cond == self.FALSE:
            return other
        if then == other:
            return then
        if then == self.TRUE and other == self.FALSE:
            return cond
        key = (cond, then, other)
        cached = self._ite_cache.get(key)
        if cached is not None:
            return cached
        level = min(self._level(cond), self._level(then), self._level(other))
        cond_low, cond_high = self._cofactors(cond, level)
        then_low, then_high = self._cofactors(then, level)
        other_low, other_high = self._cofactors(other, level)
        low = self.ite(cond_low, then_low, other_low)
        high = self.ite(cond_high, then_high, other_high)
        result = self._mk(level, low, high)
        self._ite_cache[key] = result
        return result

    def neg(self, node: int) -> int:
        return self.ite(node, self.FALSE, self.TRUE)

    def conj(self, a: int, b: int) -> int:
        return self.ite(a, b, self.FALSE)

    def disj(self, a: int, b: int) -> int:
        return self.ite(a, self.TRUE, b)

    def xor(self, a: int, b: int) -> int:
        return self.ite(a, self.neg(b), b)

    def iff(self, a: int, b: int) -> int:
        return self.ite(a, b, self.neg(b))

    def implies(self, a: int, b: int) -> int:
        return self.ite(a, b, self.TRUE)

    def conj_all(self, nodes: Iterable[int]) -> int:
        result = self.TRUE
        for node in nodes:
            result = self.conj(result, node)
            if result == self.FALSE:
                return result
        return result

    def disj_all(self, nodes: Iterable[int]) -> int:
        result = self.FALSE
        for node in nodes:
            result = self.disj(result, node)
            if result == self.TRUE:
                return result
        return result

    # -- quantification --------------------------------------------------------

    def exists(self, node: int, names: Iterable[str]) -> int:
        """Existential quantification over the given variables."""
        levels = frozenset(self._var_levels[name] for name in names)
        if not levels:
            return node
        return self._exists(node, levels, cache_tag=("exists", levels))

    def _exists(self, node: int, levels: frozenset[int], cache_tag: tuple) -> int:
        if node <= 1:
            return node
        level, low, high = self._nodes[node]
        if level > max(levels):
            return node
        key = (cache_tag, node)
        cached = self._quant_cache.get(key)
        if cached is not None:
            return cached
        low_result = self._exists(low, levels, cache_tag)
        high_result = self._exists(high, levels, cache_tag)
        if level in levels:
            result = self.disj(low_result, high_result)
        else:
            result = self._mk(level, low_result, high_result)
        self._quant_cache[key] = result
        return result

    def forall(self, node: int, names: Iterable[str]) -> int:
        """Universal quantification over the given variables."""
        return self.neg(self.exists(self.neg(node), names))

    def and_exists(self, a: int, b: int, names: Iterable[str]) -> int:
        """The relational product ``∃ names . a ∧ b`` computed in one pass.

        This is the operation at the heart of the conjunctive-partitioning
        optimisation of Section 7.3: conjoining a partition of the transition
        relation with the current frontier and quantifying variables out
        without ever building the full conjunction.
        """
        levels = frozenset(self._var_levels[name] for name in names)
        if not levels:
            return self.conj(a, b)
        return self._and_exists(a, b, levels, cache={})

    def _and_exists(
        self, a: int, b: int, levels: frozenset[int], cache: dict[tuple[int, int], int]
    ) -> int:
        if a == self.FALSE or b == self.FALSE:
            return self.FALSE
        if a == self.TRUE and b == self.TRUE:
            return self.TRUE
        if a == self.TRUE or b == self.TRUE:
            node = b if a == self.TRUE else a
            return self._exists(node, levels, cache_tag=("exists", levels))
        if a > b:
            a, b = b, a
        key = (a, b)
        cached = cache.get(key)
        if cached is not None:
            return cached
        level = min(self._level(a), self._level(b))
        a_low, a_high = self._cofactors(a, level)
        b_low, b_high = self._cofactors(b, level)
        low = self._and_exists(a_low, b_low, levels, cache)
        high = self._and_exists(a_high, b_high, levels, cache)
        if level in levels:
            result = self.disj(low, high)
        else:
            result = self._mk(level, low, high)
        cache[key] = result
        return result

    # -- substitution / renaming ----------------------------------------------

    def rename(self, node: int, mapping: Mapping[str, str]) -> int:
        """Rename variables according to ``mapping`` (old name -> new name).

        Implemented by composing with fresh literals through ``ite``, which is
        correct for any mapping; it is cheap when the mapping preserves the
        relative order of the variables (as the solver's interleaved x/y
        vectors do).
        """
        level_map = {
            self._var_levels[old]: self._var_levels[new] for old, new in mapping.items()
        }
        cache: dict[int, int] = {}

        def go(current: int) -> int:
            if current <= 1:
                return current
            cached = cache.get(current)
            if cached is not None:
                return cached
            level, low, high = self._nodes[current]
            new_level = level_map.get(level, level)
            literal = self._mk(new_level, self.FALSE, self.TRUE)
            result = self.ite(literal, go(high), go(low))
            cache[current] = result
            return result

        return go(node)

    def restrict(self, node: int, assignment: Mapping[str, bool]) -> int:
        """Cofactor with respect to a partial assignment."""
        values = {self._var_levels[name]: value for name, value in assignment.items()}
        cache: dict[int, int] = {}

        def go(current: int) -> int:
            if current <= 1:
                return current
            cached = cache.get(current)
            if cached is not None:
                return cached
            level, low, high = self._nodes[current]
            if level in values:
                result = go(high) if values[level] else go(low)
            else:
                result = self._mk(level, go(low), go(high))
            cache[current] = result
            return result

        return go(node)

    # -- inspection -------------------------------------------------------------

    def evaluate(self, node: int, assignment: Mapping[str, bool]) -> bool:
        """Evaluate the function under a total assignment of its support."""
        current = node
        while current > 1:
            level, low, high = self._nodes[current]
            current = high if assignment.get(self._var_names[level], False) else low
        return current == self.TRUE

    def support(self, node: int) -> set[str]:
        """Names of the variables the function actually depends on."""
        seen: set[int] = set()
        levels: set[int] = set()
        stack = [node]
        while stack:
            current = stack.pop()
            if current <= 1 or current in seen:
                continue
            seen.add(current)
            level, low, high = self._nodes[current]
            levels.add(level)
            stack.append(low)
            stack.append(high)
        return {self._var_names[level] for level in levels}

    def dag_size(self, node: int) -> int:
        """Number of internal nodes reachable from ``node``."""
        seen: set[int] = set()
        stack = [node]
        while stack:
            current = stack.pop()
            if current <= 1 or current in seen:
                continue
            seen.add(current)
            _level, low, high = self._nodes[current]
            stack.append(low)
            stack.append(high)
        return len(seen)

    def pick_assignment(self, node: int) -> dict[str, bool] | None:
        """One satisfying assignment (unmentioned variables default to False)."""
        if node == self.FALSE:
            return None
        assignment: dict[str, bool] = {}
        current = node
        while current > 1:
            level, low, high = self._nodes[current]
            name = self._var_names[level]
            if low != self.FALSE:
                assignment[name] = False
                current = low
            else:
                assignment[name] = True
                current = high
        return assignment

    def count_assignments(self, node: int, over: Sequence[str] | None = None) -> int:
        """Number of satisfying assignments over the given variables.

        ``over`` defaults to every declared variable.
        """
        names = list(over) if over is not None else list(self._var_names)
        levels = sorted(self._var_levels[name] for name in names)
        position = {level: i for i, level in enumerate(levels)}
        cache: dict[int, int] = {}

        def count(current: int) -> int:
            # Result is the count over variables strictly below the current
            # node's level within `levels`; scaled by the caller.
            if current == self.FALSE:
                return 0
            if current == self.TRUE:
                return 1
            cached = cache.get(current)
            if cached is None:
                level, low, high = self._nodes[current]
                if level not in position:
                    raise ValueError(
                        f"node depends on variable {self._var_names[level]!r} "
                        "not included in the count"
                    )
                cached = count(low) * _gap(level, low) + count(high) * _gap(level, high)
                cache[current] = cached
            return cached

        def _gap(level: int, child: int) -> int:
            # Number of skipped decision variables between `level` and `child`.
            child_level = self._level(child)
            upper = position[level]
            lower = (
                len(levels)
                if child <= 1
                else position.get(child_level, len(levels))
            )
            return 2 ** (lower - upper - 1)

        top = node
        top_level = self._level(top)
        if top <= 1:
            full = 2 ** len(levels)
            return full if top == self.TRUE else 0
        leading = position.get(top_level, 0)
        return count(top) * (2 ** leading)

    def iter_assignments(self, node: int, over: Sequence[str]) -> Iterator[dict[str, bool]]:
        """Iterate every satisfying assignment over exactly the given variables."""
        names = list(over)

        def go(current: int, index: int, partial: dict[str, bool]) -> Iterator[dict[str, bool]]:
            if current == self.FALSE:
                return
            if index == len(names):
                if current == self.TRUE:
                    yield dict(partial)
                return
            name = names[index]
            level = self._var_levels[name]
            current_level = self._level(current)
            if current_level == level:
                _lvl, low, high = self._nodes[current]
                partial[name] = False
                yield from go(low, index + 1, partial)
                partial[name] = True
                yield from go(high, index + 1, partial)
                del partial[name]
            else:
                partial[name] = False
                yield from go(current, index + 1, partial)
                partial[name] = True
                yield from go(current, index + 1, partial)
                del partial[name]

        yield from go(node, 0, {})

    # -- wrapper construction ---------------------------------------------------

    def false(self) -> "BDD":
        return BDD(self, self.FALSE)

    def true(self) -> "BDD":
        return BDD(self, self.TRUE)

    def variable(self, name: str) -> "BDD":
        return BDD(self, self.var_node(name))

    def wrap(self, node: int) -> "BDD":
        return BDD(self, node)


class BDD:
    """A boolean function: a node id tied to its manager, with operators."""

    __slots__ = ("manager", "node")

    def __init__(self, manager: BDDManager, node: int):
        self.manager = manager
        self.node = node

    # -- boolean structure ------------------------------------------------------

    def __invert__(self) -> "BDD":
        return BDD(self.manager, self.manager.neg(self.node))

    def __and__(self, other: "BDD") -> "BDD":
        return BDD(self.manager, self.manager.conj(self.node, other.node))

    def __or__(self, other: "BDD") -> "BDD":
        return BDD(self.manager, self.manager.disj(self.node, other.node))

    def __xor__(self, other: "BDD") -> "BDD":
        return BDD(self.manager, self.manager.xor(self.node, other.node))

    def iff(self, other: "BDD") -> "BDD":
        return BDD(self.manager, self.manager.iff(self.node, other.node))

    def implies(self, other: "BDD") -> "BDD":
        return BDD(self.manager, self.manager.implies(self.node, other.node))

    def ite(self, then: "BDD", other: "BDD") -> "BDD":
        return BDD(self.manager, self.manager.ite(self.node, then.node, other.node))

    # -- quantification ----------------------------------------------------------

    def exists(self, names: Iterable[str]) -> "BDD":
        return BDD(self.manager, self.manager.exists(self.node, names))

    def forall(self, names: Iterable[str]) -> "BDD":
        return BDD(self.manager, self.manager.forall(self.node, names))

    def and_exists(self, other: "BDD", names: Iterable[str]) -> "BDD":
        return BDD(self.manager, self.manager.and_exists(self.node, other.node, names))

    def rename(self, mapping: Mapping[str, str]) -> "BDD":
        return BDD(self.manager, self.manager.rename(self.node, mapping))

    def restrict(self, assignment: Mapping[str, bool]) -> "BDD":
        return BDD(self.manager, self.manager.restrict(self.node, assignment))

    # -- inspection ---------------------------------------------------------------

    @property
    def is_false(self) -> bool:
        return self.node == BDDManager.FALSE

    @property
    def is_true(self) -> bool:
        return self.node == BDDManager.TRUE

    def evaluate(self, assignment: Mapping[str, bool]) -> bool:
        return self.manager.evaluate(self.node, assignment)

    def support(self) -> set[str]:
        return self.manager.support(self.node)

    def dag_size(self) -> int:
        return self.manager.dag_size(self.node)

    def pick_assignment(self) -> dict[str, bool] | None:
        return self.manager.pick_assignment(self.node)

    def count_assignments(self, over: Sequence[str] | None = None) -> int:
        return self.manager.count_assignments(self.node, over)

    def iter_assignments(self, over: Sequence[str]) -> Iterator[dict[str, bool]]:
        return self.manager.iter_assignments(self.node, over)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, BDD):
            return NotImplemented
        return self.manager is other.manager and self.node == other.node

    def __hash__(self) -> int:
        return hash((id(self.manager), self.node))

    def __bool__(self) -> bool:
        raise TypeError(
            "a BDD has no implicit truth value; use .is_true / .is_false "
            "or compare with == explicitly"
        )

    def __repr__(self) -> str:
        return f"<BDD node={self.node} size={self.dag_size()}>"
