"""``repro fuzz`` — the differential fuzzing campaign from the command line.

Runs :func:`repro.testing.fuzz.run_fuzz`: every trial generates a random
decision problem, answers it with the symbolic engine under pruning on/off ×
frontier deltas on/off × one run per selected BDD backend (``--backend``,
accepting a name or ``all``), and cross-checks the verdicts against the
bounded explicit oracles (see ``docs/TESTING.md``).  The JSON campaign
report is printed to stdout.

With ``--chaos`` every trial additionally stresses resource governance: a
seeded budgeted re-solve and an injected deadline expiry must both degrade
into structured ``BudgetExceeded`` outcomes, never a wrong verdict or a hard
crash (the fault-injection harness of :mod:`repro.testing.faults`).

Exit codes follow the ``repro analyze`` contract:

* ``0`` — every trial agreed across all engines and oracles;
* ``1`` — at least one cross-oracle disagreement was found (the shrunk
  case(s) are serialised into the corpus directory for permanent replay);
* ``2`` — the campaign itself failed (internal error in a trial, unusable
  flags).

Campaigns are deterministic: ``--seed`` fixes every generated case, and
``--workers`` only changes wall-clock time, never results.
"""

from __future__ import annotations

import json
import sys
from pathlib import Path

from repro.testing.fuzz import FuzzConfig, run_fuzz
from repro.testing.generators import GeneratorConfig
from repro.testing.oracle import Bounds

EXIT_OK = 0
EXIT_DISAGREEMENT = 1
EXIT_INTERNAL = 2

#: Corpus directory used when ``--corpus-dir`` is not given and this
#: directory exists under the working directory (the in-repo layout).
DEFAULT_CORPUS_DIR = "tests/corpus"


def add_arguments(parser) -> None:
    """Flags of the ``fuzz`` subcommand (called by :mod:`repro.cli.main`)."""
    parser.add_argument(
        "--budget", type=int, default=100, metavar="N", help="trials to run (default: 100)"
    )
    parser.add_argument(
        "--seed", type=int, default=0, metavar="S",
        help="campaign seed; every trial derives deterministically from it (default: 0)",
    )
    parser.add_argument(
        "--workers", type=int, default=1, metavar="N",
        help="fan trials out to N worker processes (identical results; default: 1)",
    )
    parser.add_argument(
        "--max-depth", type=int, default=Bounds.max_depth, metavar="D",
        help="depth bound of oracle document enumeration (default: %(default)s)",
    )
    parser.add_argument(
        "--max-width", type=int, default=Bounds.max_width, metavar="W",
        help="children bound of oracle document enumeration (default: %(default)s)",
    )
    parser.add_argument(
        "--max-docs", type=int, default=Bounds.max_documents, metavar="N",
        help="marked documents the enumeration oracle examines per trial "
        "(default: %(default)s)",
    )
    parser.add_argument(
        "--semantic-samples", type=int, default=Bounds.semantic_samples, metavar="N",
        help="documents per trial cross-checked against the compiled formula "
        "(Proposition 5.1; default: %(default)s)",
    )
    parser.add_argument(
        "--explicit-types", type=int, default=Bounds.explicit_types, metavar="N",
        help="psi-type budget above which the explicit solver oracle is "
        "skipped (default: %(default)s)",
    )
    parser.add_argument(
        "--max-lean", type=int, default=Bounds.max_lean, metavar="N",
        help="skip trials whose formula Lean exceeds N entries (the solver "
        "is 2^O(lean); skips are deterministic and reported; "
        "default: %(default)s)",
    )
    parser.add_argument(
        "--corpus-dir", metavar="DIR", default=None,
        help="where shrunk disagreements are serialised for permanent replay "
        f"(default: {DEFAULT_CORPUS_DIR!r} when it exists, else disabled)",
    )
    parser.add_argument(
        "--sample-corpus", type=int, default=0, metavar="N",
        help="additionally write N shrunk agreeing cases as regression seeds",
    )
    parser.add_argument(
        "--backend", default=None, metavar="NAME",
        help="BDD engine axis of the ablation matrix: a backend name, or "
        "'all' to solve every cell once per registered engine and demand "
        "identical verdicts (default: $REPRO_BDD_BACKEND if set, else dict)",
    )
    parser.add_argument(
        "--batch-fixpoint", action="store_true",
        help="also run the merged-Lean batch ablation on every trial: the "
        "case plus per-expression satisfiability probes are solved through "
        "the analyzer with batch_fixpoint on and off (once per backend), and "
        "verdicts, verdict_status and serialised witnesses must be "
        "identical, with merged mode never running more fixpoints",
    )
    parser.add_argument(
        "--chaos", action="store_true",
        help="also stress resource governance on every trial: a seeded "
        "budgeted re-solve must agree with the reference verdict or yield a "
        "structured BudgetExceeded, and an injected deadline expiry must "
        "surface as one (never a wrong verdict, never a hard crash)",
    )
    parser.add_argument(
        "--compact", action="store_true", help="single-line JSON output"
    )


def _corpus_dir(args) -> str | None:
    if args.corpus_dir is not None:
        return args.corpus_dir
    return DEFAULT_CORPUS_DIR if Path(DEFAULT_CORPUS_DIR).is_dir() else None


def _backends(args) -> tuple[str, ...]:
    from repro.bdd.backends import available_backends, resolve_backend

    choice = getattr(args, "backend", None)
    if choice == "all":
        return available_backends()
    return (resolve_backend(choice),)


def run(args) -> int:
    if args.budget < 1:
        print("repro fuzz: --budget must be at least 1", file=sys.stderr)
        return EXIT_INTERNAL
    try:
        backends = _backends(args)
    except ValueError as exc:
        print(f"repro fuzz: {exc}", file=sys.stderr)
        return EXIT_INTERNAL
    config = FuzzConfig(
        budget=args.budget,
        seed=args.seed,
        workers=max(1, args.workers),
        bounds=Bounds(
            max_depth=args.max_depth,
            max_width=args.max_width,
            max_documents=args.max_docs,
            semantic_samples=args.semantic_samples,
            explicit_types=args.explicit_types,
            max_lean=args.max_lean,
        ),
        generator=GeneratorConfig(),
        corpus_dir=_corpus_dir(args),
        sample_corpus=args.sample_corpus,
        backends=backends,
        chaos=args.chaos,
        batch_fixpoint=getattr(args, "batch_fixpoint", False),
    )
    report = run_fuzz(config)
    payload = report.as_dict()
    indent = None if args.compact else 2
    print(json.dumps(payload, ensure_ascii=False, indent=indent))
    if payload["errors"]:
        summary = payload["errors"][0]
        print(
            f"repro fuzz: internal error in trial {summary['trial']}: "
            f"{summary['error']}",
            file=sys.stderr,
        )
        return EXIT_INTERNAL
    if payload["disagreements"]:
        print(
            f"repro fuzz: {len(payload['disagreements'])} cross-oracle "
            f"disagreement(s); shrunk cases: {payload['corpus_files']}",
            file=sys.stderr,
        )
        return EXIT_DISAGREEMENT
    return EXIT_OK
