"""Scaling study — solver cost as a function of Lean size (Lemma 6.7).

Lemma 6.7 bounds the running time by ``2^O(|Lean(ψ)|)``.  This benchmark runs
the solver on a family of containment problems of growing size (nested child
steps with qualifiers, depths 1–8) and records Lean size, iterations,
counters and time, giving the measured counterpart of the complexity claim.
The measurement lives in :func:`repro.cli.bench.run_scaling` (shared with
``repro bench scaling``, so the CLI and the suite cannot drift): a warm-up
solve runs first so one-off import/compile cost is reported separately
instead of skewing the depth-1 row, and the depth-3 ``product_calls``
counter is guarded by a committed threshold — a deterministic performance
check that needs no wall-clock.

It also compares the explicit solver of Figure 16 with the symbolic solver
of Section 7 on an instance small enough for both.
"""

from conftest import write_bench_json, write_report
from repro.cli.bench import SCALING_PRODUCT_CALLS_MAX_DEPTH3, run_scaling
from repro.logic import syntax as sx
from repro.solver.explicit import ExplicitSolver
from repro.solver.symbolic import SymbolicSolver


def test_scaling_with_query_depth(benchmark):
    payload = benchmark.pedantic(run_scaling, rounds=1, iterations=1)
    rows = payload["rows"]
    assert rows[-1]["depth"] == 8
    # The acceptance bar of the frontier-fixpoint work: every row of the
    # extended table solves in under five seconds.
    assert all(row["solve_seconds"] < 5.0 for row in rows)
    # Deterministic counter guard (the runner raises if it regresses).
    depth3 = next(row for row in rows if row["depth"] == 3)
    assert depth3["product_calls"] <= SCALING_PRODUCT_CALLS_MAX_DEPTH3

    report = ["containment of nested queries (cold warm-up reported separately)"]
    warmup = payload["warmup"]
    report.append(
        f"warm-up (cold): translation={warmup['translation_seconds'] * 1000:.1f} ms "
        f"solve={warmup['solve_seconds'] * 1000:.1f} ms"
    )
    for row in rows:
        report.append(
            f"depth {row['depth']}: lean={row['lean_size']:>3} "
            f"iterations={row['iterations']:>2} "
            f"delta_iterations={row['delta_iterations']:>2} "
            f"products={row['product_calls']:>3} "
            f"time={row['solve_seconds'] * 1000:>8.1f} ms"
        )
    write_report("scaling_lean_size", report)
    write_bench_json("scaling", payload)


def test_explicit_vs_symbolic(benchmark):
    formula = sx.prop("a") & sx.dia(1, sx.prop("b")) & sx.START

    def run():
        explicit = ExplicitSolver(formula).solve()
        symbolic = SymbolicSolver(formula).solve()
        return explicit, symbolic

    explicit, symbolic = benchmark(run)
    assert explicit.satisfiable == symbolic.satisfiable is True
    write_report(
        "scaling_explicit_vs_symbolic",
        [
            f"formula: {formula}",
            f"explicit solver (Figure 16): {explicit.entry_count} triples over "
            f"{explicit.type_count} psi-types, {explicit.iterations} iterations",
            f"symbolic solver (Section 7): lean {symbolic.statistics.lean_size}, "
            f"{symbolic.statistics.iterations} iterations, "
            f"{symbolic.statistics.solve_seconds * 1000:.1f} ms",
        ],
    )
