"""Expat-based parser for the audited XSLT 1.0 stylesheet subset.

The auditor consumes a *static* projection of a stylesheet: the template
rules (``xsl:template`` with ``match``/``name``/``mode``/``priority``), the
expressions its instructions evaluate (``xsl:apply-templates``/
``xsl:for-each``/``xsl:value-of`` ``select``, ``xsl:if``/``xsl:when``
``test``) together with their nesting, and the ``xsl:import``/
``xsl:include`` graph.  Everything else — literal result elements,
variables, attribute sets, output control — is traversed but not recorded.

Every recorded item carries file/line/column provenance (the position of
the element that declared it), so findings can point back into the source.

Import precedence follows XSLT 1.0 §2.6.2: an importing stylesheet has
higher precedence than every stylesheet it imports, and a later
``xsl:import`` outranks an earlier one.  ``xsl:include`` is textual: the
included templates take the including file's precedence.  Cyclic
imports/includes are an error.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path
from xml.parsers import expat

from repro.core.errors import ReproError

#: The XSLT namespace; elements outside it are literal result elements.
XSLT_NS = "http://www.w3.org/1999/XSL/Transform"

#: Instruction elements whose ``select`` attribute the auditor analyses.
_SELECT_SOURCES = ("xsl:apply-templates", "xsl:for-each", "xsl:value-of")

#: Instruction elements whose ``test`` attribute the auditor analyses.
_TEST_SOURCES = ("xsl:if", "xsl:when")


class StylesheetError(ReproError):
    """A stylesheet the auditor cannot load (malformed XML, missing href,
    circular imports, invalid template attributes)."""

    def __init__(
        self,
        message: str,
        file: str | None = None,
        line: int | None = None,
        column: int | None = None,
    ):
        self.file = file
        self.line = line
        self.column = column
        location = ""
        if file is not None:
            location = f"{file}:"
            if line is not None:
                location += f"{line}:"
                if column is not None:
                    location += f"{column}:"
            location += " "
        super().__init__(f"{location}{message}")


@dataclass(frozen=True)
class Expression:
    """One ``select``/``test`` attribute extracted from a template body.

    ``index`` numbers the expression within its template (document order).
    ``ancestors`` holds the indices of the enclosing ``xsl:for-each``
    selects and ``xsl:if``/``xsl:when`` tests (any of them being provably
    empty makes this expression unreachable); ``context_chain`` is the
    subset of ancestors that *move the context node* (``xsl:for-each``
    selects only), innermost last.
    """

    role: str  # "select" | "test"
    source: str  # "xsl:apply-templates" | "xsl:for-each" | ...
    text: str
    file: str
    line: int
    column: int
    index: int
    ancestors: tuple[int, ...] = ()
    context_chain: tuple[int, ...] = ()


@dataclass(frozen=True)
class Template:
    """One ``xsl:template`` rule with its audited body expressions.

    ``precedence`` is the import precedence of the file that (textually)
    holds the rule — higher wins; ``order`` is a global document-order
    tiebreak across the whole load.  ``priority`` is the explicit priority,
    or ``None`` when the XSLT default-priority rules apply per pattern
    alternative (see :func:`repro.xslt.patterns.default_priority`).
    """

    match: str | None
    name: str | None
    mode: str | None
    priority: float | None
    file: str
    line: int
    column: int
    precedence: int
    order: int
    expressions: tuple[Expression, ...] = ()


@dataclass(frozen=True)
class Stylesheet:
    """A loaded stylesheet: its template rules plus the files they came from."""

    path: str
    templates: tuple[Template, ...]
    files: tuple[str, ...]


def load_stylesheet(path: str | Path) -> Stylesheet:
    """Load a stylesheet and its ``xsl:import``/``xsl:include`` closure."""
    resolved = Path(path)
    if not resolved.is_file():
        raise StylesheetError(f"stylesheet not found: {path}")
    loader = _Loader()
    templates = loader.process(resolved.resolve(), chain=())
    return Stylesheet(
        path=str(path),
        templates=tuple(templates),
        files=tuple(loader.files),
    )


# -- loading ---------------------------------------------------------------------


@dataclass
class _RawTemplate:
    match: str | None
    name: str | None
    mode: str | None
    priority: float | None
    file: str
    line: int
    column: int
    expressions: list[Expression]


@dataclass
class _ParsedFile:
    """One parsed file: top-level entries in document order."""

    #: ``("import"|"include", href, line, column)`` references.
    references: list[tuple[str, str, int, int]]
    templates: list[_RawTemplate]


class _Loader:
    def __init__(self) -> None:
        self._precedence = 0
        self._order = 0
        self.files: list[str] = []

    def process(self, path: Path, chain: tuple[Path, ...]) -> list[Template]:
        """Post-order over the import tree: imported templates first (lower
        precedence), then this file's own (and included) templates."""
        imports, raw_templates = self._gather(path, chain)
        templates: list[Template] = []
        for import_path in imports:
            templates.extend(self.process(import_path, chain + (path,)))
        self._precedence += 1
        precedence = self._precedence
        for raw in raw_templates:
            self._order += 1
            templates.append(
                Template(
                    match=raw.match,
                    name=raw.name,
                    mode=raw.mode,
                    priority=raw.priority,
                    file=raw.file,
                    line=raw.line,
                    column=raw.column,
                    precedence=precedence,
                    order=self._order,
                    expressions=tuple(raw.expressions),
                )
            )
        return templates

    def _gather(
        self, path: Path, chain: tuple[Path, ...]
    ) -> tuple[list[Path], list[_RawTemplate]]:
        """This file's import references and its templates, with includes
        expanded inline (they share the including file's precedence)."""
        if path in chain:
            cycle = " -> ".join(str(p) for p in chain + (path,))
            raise StylesheetError(f"circular xsl:import/xsl:include: {cycle}")
        parsed = _parse_file(path)
        self.files.append(str(path))
        imports: list[Path] = []
        templates: list[_RawTemplate] = []
        for kind, href, line, column in parsed.references:
            target = (path.parent / href).resolve()
            if not target.is_file():
                raise StylesheetError(
                    f"xsl:{kind} href not found: {href}", str(path), line, column
                )
            if kind == "import":
                imports.append(target)
            else:
                sub_imports, sub_templates = self._gather(target, chain + (path,))
                imports.extend(sub_imports)
                templates.extend(sub_templates)
        templates.extend(parsed.templates)
        return imports, templates


# -- per-file expat parsing ------------------------------------------------------


def _parse_file(path: Path) -> _ParsedFile:
    handler = _Handler(str(path))
    parser = expat.ParserCreate(namespace_separator=" ")
    parser.StartElementHandler = handler.start
    parser.EndElementHandler = handler.end
    handler.parser = parser
    try:
        with path.open("rb") as stream:
            parser.ParseFile(stream)
    except expat.ExpatError as exc:
        raise StylesheetError(
            f"not well-formed XML: {expat.errors.messages[exc.code]}",
            str(path),
            exc.lineno,
            exc.offset + 1,
        ) from None
    return _ParsedFile(references=handler.references, templates=handler.templates)


class _Handler:
    def __init__(self, file: str) -> None:
        self.file = file
        self.parser: expat.XMLParserType | None = None
        self.references: list[tuple[str, str, int, int]] = []
        self.templates: list[_RawTemplate] = []
        self.depth = 0
        self.template: _RawTemplate | None = None
        #: Per open element inside a template: the indices of the expression
        #: scopes it opened (an ``xsl:for-each`` select, an ``xsl:if``/
        #: ``xsl:when`` test), or ``None``.
        self.scopes: list[tuple[int, ...] | None] = []

    def _position(self) -> tuple[int, int]:
        return self.parser.CurrentLineNumber, self.parser.CurrentColumnNumber + 1

    def _error(self, message: str) -> StylesheetError:
        line, column = self._position()
        return StylesheetError(message, self.file, line, column)

    def _xsl_name(self, name: str) -> str | None:
        """``"xsl:local"`` for elements in the XSLT namespace, else ``None``."""
        namespace, _, local = name.rpartition(" ")
        if namespace == XSLT_NS:
            return f"xsl:{local}"
        return None

    def start(self, name: str, attrs: dict[str, str]) -> None:
        self.depth += 1
        xsl = self._xsl_name(name)
        line, column = self._position()
        if self.depth == 1:
            if xsl not in ("xsl:stylesheet", "xsl:transform"):
                raise self._error(
                    "not an XSLT stylesheet: the document element must be "
                    "xsl:stylesheet or xsl:transform (simplified literal-"
                    "result-element stylesheets are outside the audited subset)"
                )
            self.scopes.append(None)
            return
        if self.template is None:
            self.scopes.append(None)
            if self.depth != 2:
                return
            if xsl in ("xsl:import", "xsl:include"):
                href = attrs.get("href")
                if href is None:
                    raise self._error(f"{xsl} requires an href attribute")
                self.references.append((xsl.split(":")[1], href, line, column))
            elif xsl == "xsl:template":
                self._start_template(attrs, line, column)
            return
        # Inside a template body.
        self.scopes.append(self._instruction(xsl, attrs, line, column))

    def _start_template(self, attrs: dict[str, str], line: int, column: int) -> None:
        match = attrs.get("match")
        name = attrs.get("name")
        if match is None and name is None:
            raise self._error("xsl:template requires a match or name attribute")
        priority: float | None = None
        if "priority" in attrs:
            try:
                priority = float(attrs["priority"])
            except ValueError:
                raise self._error(
                    f"invalid xsl:template priority {attrs['priority']!r}"
                ) from None
        self.template = _RawTemplate(
            match=match,
            name=name,
            mode=attrs.get("mode"),
            priority=priority,
            file=self.file,
            line=line,
            column=column,
            expressions=[],
        )
        self.scopes.append(None)

    def _instruction(
        self, xsl: str | None, attrs: dict[str, str], line: int, column: int
    ) -> tuple[int, ...] | None:
        """Record the expressions of one instruction; returns the expression
        scopes it opens for its children."""
        if xsl in _SELECT_SOURCES:
            text = attrs.get("select")
            if text is None:
                if xsl == "xsl:apply-templates":
                    return None  # defaults to child::node()
                raise self._error(f"{xsl} requires a select attribute")
            expression = self._record("select", xsl, text, line, column)
            if xsl == "xsl:for-each":
                return (expression.index,)
            return None
        if xsl in _TEST_SOURCES:
            text = attrs.get("test")
            if text is None:
                raise self._error(f"{xsl} requires a test attribute")
            expression = self._record("test", xsl, text, line, column)
            return (expression.index,)
        return None

    def _record(
        self, role: str, source: str, text: str, line: int, column: int
    ) -> Expression:
        ancestors: list[int] = []
        for scope in self.scopes:
            if scope is not None:
                ancestors.extend(scope)
        context_chain = tuple(
            index
            for index in ancestors
            if self.template.expressions[index].source == "xsl:for-each"
        )
        expression = Expression(
            role=role,
            source=source,
            text=text,
            file=self.file,
            line=line,
            column=column,
            index=len(self.template.expressions),
            ancestors=tuple(ancestors),
            context_chain=context_chain,
        )
        self.template.expressions.append(expression)
        return expression

    def end(self, name: str) -> None:
        self.depth -= 1
        self.scopes.pop()
        if self.depth == 1 and self.template is not None:
            self.templates.append(self.template)
            self.template = None
