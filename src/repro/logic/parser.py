"""Parser for the textual Lµ syntax produced by :mod:`repro.logic.printer`.

The grammar (lowest precedence first)::

    formula  ::=  fixpoint | disjunct
    fixpoint ::=  ("let_mu" | "let_nu") binding ("," binding)* "in" formula
    binding  ::=  NAME "=" formula
    disjunct ::=  conjunct ("|" conjunct)*
    conjunct ::=  prefix ("&" prefix)*
    prefix   ::=  "<" PROGRAM ">" prefix
               |  "~" prefix
               |  atom
    atom     ::=  "T" | "F" | "s" | NAME | "@" (NAME | "*")
               |  "$" NAME | "(" formula ")"

Negation is accepted on any subformula; it is eliminated on the fly with
:func:`repro.logic.negation.negate`, so the parsed result is always in the
negation normal form the rest of the system expects.
"""

from __future__ import annotations

import re

from repro.core.errors import ParseError
from repro.logic import syntax as sx

_TOKEN_RE = re.compile(
    r"\s*(?:(?P<keyword>let_mu|let_nu|in)\b"
    # Names are QNames (xsl:template, @xml:lang), matching the XPath tokenizer.
    r"|(?P<name>[A-Za-z_][A-Za-z0-9_.\-]*(?::[A-Za-z_][A-Za-z0-9_.\-]*)?)"
    r"|(?P<program><-?[12]>)"
    r"|(?P<symbol>[()|&~,=$@*]))"
)


class _Tokens:
    def __init__(self, text: str):
        self.text = text
        self.items: list[tuple[str, str, int]] = []
        pos = 0
        while pos < len(text):
            match = _TOKEN_RE.match(text, pos)
            if match is None:
                if text[pos:].strip() == "":
                    break
                raise ParseError("unexpected character", pos, text)
            for group in ("keyword", "name", "program", "symbol"):
                value = match.group(group)
                if value is not None:
                    self.items.append((group, value, match.start(group)))
                    break
            pos = match.end()
        self.index = 0

    def peek(self) -> tuple[str, str, int] | None:
        if self.index < len(self.items):
            return self.items[self.index]
        return None

    def next(self) -> tuple[str, str, int]:
        token = self.peek()
        if token is None:
            raise ParseError("unexpected end of formula", len(self.text), self.text)
        self.index += 1
        return token

    def accept(self, kind: str, value: str | None = None) -> bool:
        token = self.peek()
        if token is None or token[0] != kind:
            return False
        if value is not None and token[1] != value:
            return False
        self.index += 1
        return True

    def expect(self, kind: str, value: str | None = None) -> tuple[str, str, int]:
        token = self.peek()
        if token is None or token[0] != kind or (value is not None and token[1] != value):
            expected = value if value is not None else kind
            position = token[2] if token is not None else len(self.text)
            raise ParseError(f"expected {expected!r}", position, self.text)
        return self.next()


def parse_formula(text: str) -> sx.Formula:
    """Parse a textual Lµ formula."""
    tokens = _Tokens(text)
    formula = _parse_formula(tokens)
    if tokens.peek() is not None:
        raise ParseError("trailing input after formula", tokens.peek()[2], text)
    return formula


def _parse_formula(tokens: _Tokens) -> sx.Formula:
    token = tokens.peek()
    if token is not None and token[0] == "keyword" and token[1] in ("let_mu", "let_nu"):
        tokens.next()
        keyword = token[1]
        bindings: list[tuple[str, sx.Formula]] = []
        while True:
            name = tokens.expect("name")[1]
            tokens.expect("symbol", "=")
            definition = _parse_formula(tokens)
            bindings.append((name, definition))
            if not tokens.accept("symbol", ","):
                break
        tokens.expect("keyword", "in")
        body = _parse_formula(tokens)
        maker = sx.mu if keyword == "let_mu" else sx.nu
        return maker(bindings, body)
    return _parse_disjunct(tokens)


def _parse_disjunct(tokens: _Tokens) -> sx.Formula:
    result = _parse_conjunct(tokens)
    while tokens.accept("symbol", "|"):
        result = sx.mk_or(result, _parse_conjunct(tokens))
    return result


def _parse_conjunct(tokens: _Tokens) -> sx.Formula:
    result = _parse_prefix(tokens)
    while tokens.accept("symbol", "&"):
        result = sx.mk_and(result, _parse_prefix(tokens))
    return result


def _parse_prefix(tokens: _Tokens) -> sx.Formula:
    token = tokens.peek()
    if token is None:
        raise ParseError("unexpected end of formula", 0, tokens.text)
    kind, value, position = token
    if kind == "program":
        tokens.next()
        program = int(value[1:-1])
        return sx.dia(program, _parse_prefix(tokens))
    if kind == "symbol" and value == "~":
        tokens.next()
        from repro.logic.negation import negate

        return negate(_parse_prefix(tokens))
    return _parse_atom(tokens)


def _parse_atom(tokens: _Tokens) -> sx.Formula:
    kind, value, position = tokens.next()
    if kind == "symbol" and value == "(":
        inner = _parse_formula(tokens)
        tokens.expect("symbol", ")")
        return inner
    if kind == "symbol" and value == "$":
        name = tokens.expect("name")[1]
        return sx.var(name)
    if kind == "symbol" and value == "@":
        if tokens.accept("symbol", "*"):
            return sx.attr(sx.ANY_ATTRIBUTE)
        name = tokens.expect("name")[1]
        return sx.attr(name)
    if kind == "name":
        if value == "T":
            return sx.TRUE
        if value == "F":
            return sx.FALSE
        if value == "s":
            return sx.START
        return sx.prop(value)
    raise ParseError(f"unexpected token {value!r}", position, tokens.text)
