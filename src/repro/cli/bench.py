"""``repro bench`` — re-emit the machine-readable ``BENCH_*.json`` reports.

Four benchmarks are built in (the pytest wrappers under ``benchmarks/`` call
the same functions, so the numbers cannot drift between the CLI and the
suite):

* ``api-batch`` → ``BENCH_api_batch.json`` — one warm
  :meth:`repro.api.StaticAnalyzer.solve_many` pass over repeated Table 2
  queries vs. cold per-query analyzers, plus the multiprocess section:
  ``solve_many(workers=4)`` vs ``workers=1`` over the 50-query workload.
* ``cli-cache`` → ``BENCH_cli_cache.json`` — the cross-process acceptance
  run: a 50-query JSONL batch streamed through ``repro serve`` twice, in two
  separate processes sharing one ``--cache-dir``.  The second (cold) process
  must answer every query without a single solver run.
* ``scaling`` → ``BENCH_scaling.json`` — the Lemma 6.7 scaling study
  (containment of nested queries, depths 1–8), with a warm-up solve so
  first-call import/compile cost is reported separately (``warmup`` entry)
  instead of skewing the depth-1 row.  ``--quick`` runs depths 1–3 only and
  fails when the depth-3 ``product_calls`` counter regresses above
  :data:`SCALING_PRODUCT_CALLS_MAX_DEPTH3` — a deterministic performance
  guard that needs no wall-clock.
* ``frontier`` → ``BENCH_frontier.json`` — the frontier-fixpoint ablation:
  the same problems solved with and without delta products, with the
  ``delta_iterations`` / ``partitions_skipped`` counters recording how much
  incremental evaluation engaged.
* ``backend`` → ``BENCH_backend.json`` — the BDD-backend ablation: every
  scaling row solved once per registered engine (``dict`` vs ``arena``),
  verdicts and solver-level counters asserted identical, per-backend
  ``solve_seconds`` / ``bdd_ite_calls`` / peak node counts recorded.
  ``--quick`` enforces committed per-backend ``bdd_ite_calls`` ceilings.
* ``audit`` → ``BENCH_audit.json`` — the stylesheet-auditor workload: one
  :func:`repro.xslt.rules.audit_stylesheet` pass over a committed example
  (``--quick``: the clean Wikipedia control; full: the seeded XHTML
  stylesheet), recording queries planned per rule, solver runs, cache hits
  and wall time, plus a warm repeat through the same analyzer that must
  need **zero** further solver runs.
* ``batch`` → ``BENCH_batch_fixpoint.json`` — merged-Lean batch solving
  (``batch_fixpoint="on"``) vs per-query solving on the 50-query workload
  and on the seeded example audit: verdicts/witnesses/findings asserted
  identical, the merged audit's solver runs held under a committed ceiling
  (and ≥5x below per-query mode), and full mode enforcing the
  :data:`BATCH_REQUIRED_SPEEDUP` cold wall-clock speedup.
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
import tempfile
import time
from pathlib import Path

from repro.api import StaticAnalyzer
from repro.cli import wire

BENCHMARKS = (
    "api-batch",
    "cli-cache",
    "scaling",
    "frontier",
    "backend",
    "audit",
    "batch",
)

#: Emitted file names that differ from ``BENCH_<name>.json``.
_REPORT_NAMES = {"batch": "BENCH_batch_fixpoint.json"}

#: The twelve benchmark XPath expressions of Figure 21 — the single home of
#: this corpus (benchmarks/conftest.py re-exports it for the pytest files).
FIGURE_21 = {
    "e1": "/a[.//b[c/*//d]/b[c//d]/b[c/d]]",
    "e2": "/a[.//b[c/*//d]/b[c/d]]",
    "e3": "a/b//c/foll-sibling::d/e",
    "e4": "a/b//d[prec-sibling::c]/e",
    "e5": "a/c/following::d/e",
    "e6": "a/b[//c]/following::d/e ∩ a/d[preceding::c]/e",
    "e7": "*//switch[ancestor::head]//seq//audio[prec-sibling::video]",
    "e8": "descendant::a[ancestor::a]",
    "e9": "/descendant::*",
    "e10": "html/(head | body)",
    "e11": "html/head/descendant::*",
    "e12": "html/body/descendant::*",
}

#: The fast rows of Table 2 (Figure 21 queries; SMIL/XHTML rows are slow).
TABLE2_FAST = (
    ("containment", [FIGURE_21["e1"], FIGURE_21["e2"]], None),
    ("containment", [FIGURE_21["e2"], FIGURE_21["e1"]], None),
    ("equivalence", [FIGURE_21["e3"], FIGURE_21["e4"]], None),
    ("containment", [FIGURE_21["e6"], FIGURE_21["e5"]], None),
)

#: The workload base of ``api-batch`` (the 6 queries bench_api_batch.py has
#: always replayed: Table 2 fast rows plus two Wikipedia-typed problems).
API_BATCH_BASE = TABLE2_FAST + (
    ("satisfiability", ["child::meta/child::title"], ["wikipedia"]),
    ("containment", ["child::history", "child::history[edit]"], ["wikipedia"]),
)

#: Distinct building blocks of the 50-query ``cli-cache`` workload.
_CLI_CACHE_BASE = API_BATCH_BASE + (
    ("emptiness", ["child::title/child::meta"], ["wikipedia"]),
    ("satisfiability", ["descendant::a[ancestor::a]"], ["xhtml-core"]),
    ("overlap", ["a//b", "a/b"], None),
    ("coverage", ["child::a", "child::b", "child::a"], None),
)


def _query_from_spec(kind, exprs, types):
    payload = {"kind": kind, "exprs": exprs}
    if types is not None:
        payload["types"] = types
    return wire.query_from_dict(payload)


def cli_cache_workload(repeats: int = 5) -> list[dict]:
    """The 50-query JSONL workload (10 distinct problems × ``repeats``)."""
    requests = []
    for repeat in range(repeats):
        for position, (kind, exprs, types) in enumerate(_CLI_CACHE_BASE):
            payload = {
                "id": repeat * len(_CLI_CACHE_BASE) + position,
                "kind": kind,
                "exprs": exprs,
            }
            if types is not None:
                payload["types"] = types
            requests.append(payload)
    return requests


# ---------------------------------------------------------------------------
# api-batch
# ---------------------------------------------------------------------------


#: Threshold asserted by benchmarks/bench_api_batch.py and recorded in the
#: payload, so the CLI and pytest producers emit an identical schema.
API_BATCH_REQUIRED_SPEEDUP = 1.5

#: Cold-cache throughput ``solve_many(workers=4)`` must reach over
#: ``workers=1`` on the 50-query workload — only enforceable on hardware
#: that can actually run 4 workers in parallel (see ``cpu_count`` in the
#: emitted payload; a 1-core container cannot express any speedup).
MP_REQUIRED_SPEEDUP = 2.0
MP_WORKERS = 4
#: CPUs needed before the multiprocess threshold is enforced.
MP_REQUIRED_CPUS = 4


def run_api_batch(repeats: int = 3, workers: int | None = None) -> dict:
    """Warm ``solve_many`` vs. cold per-query analyzers on Table 2 fast rows."""
    workload = [_query_from_spec(*spec) for spec in API_BATCH_BASE] * repeats

    cold_started = time.perf_counter()
    cold_outcomes = [StaticAnalyzer().solve(query) for query in workload]
    cold_seconds = time.perf_counter() - cold_started

    analyzer = StaticAnalyzer()
    report = analyzer.solve_many(workload)
    for cold, batched in zip(cold_outcomes, report.outcomes):
        assert cold.holds == batched.holds, cold.problem

    return {
        "benchmark": "StaticAnalyzer.solve_many vs cold per-query solves",
        "workload_queries": len(workload),
        "repeats": repeats,
        "cold_seconds": round(cold_seconds, 6),
        "batch_seconds": round(report.total_seconds, 6),
        "speedup": round(cold_seconds / report.total_seconds, 3),
        "required_speedup": API_BATCH_REQUIRED_SPEEDUP,
        "solver_runs": report.solver_runs,
        "cache_hits": report.cache_hits,
        "cache_statistics": analyzer.cache_statistics(),
        "outcomes": [
            {"problem": outcome.problem, "holds": outcome.holds}
            for outcome in report.outcomes[: len(workload) // repeats]
        ],
        "multiprocess": run_api_batch_multiprocess(
            MP_WORKERS if workers is None else max(1, workers)
        ),
    }


def run_api_batch_multiprocess(workers: int = MP_WORKERS) -> dict:
    """Cold-cache ``solve_many(workers=N)`` vs ``workers=1`` (50 queries).

    Both runs use fresh analyzers (no disk cache): this measures raw fan-out
    throughput including pool start-up, with verdict equality and stable
    result ordering asserted.  The ``threshold_applies`` flag records
    whether the host has enough CPUs for the required speedup to be
    physically expressible.
    """
    requests = cli_cache_workload()
    queries = [
        wire.query_from_dict({k: v for k, v in r.items() if k != "id"})
        for r in requests
    ]

    sequential_started = time.perf_counter()
    sequential = StaticAnalyzer().solve_many(queries, workers=1)
    sequential_seconds = time.perf_counter() - sequential_started

    parallel_started = time.perf_counter()
    parallel = StaticAnalyzer().solve_many(queries, workers=workers)
    parallel_seconds = time.perf_counter() - parallel_started

    verdicts_sequential = [o.holds for o in sequential.outcomes]
    verdicts_parallel = [o.holds for o in parallel.outcomes]
    if verdicts_sequential != verdicts_parallel:
        raise RuntimeError("multiprocess batch changed verdicts or ordering")

    cpu_count = os.cpu_count() or 1
    return {
        "workload_queries": len(queries),
        "workers": workers,
        "cpu_count": cpu_count,
        "sequential_seconds": round(sequential_seconds, 6),
        "parallel_seconds": round(parallel_seconds, 6),
        "speedup": round(sequential_seconds / parallel_seconds, 3),
        "sequential_solver_runs": sequential.solver_runs,
        "parallel_solver_runs": parallel.solver_runs,
        "required_speedup": MP_REQUIRED_SPEEDUP,
        "threshold_applies": cpu_count >= MP_REQUIRED_CPUS,
        "verdicts_identical": True,
        "ordering_stable": True,
    }


# ---------------------------------------------------------------------------
# cli-cache
# ---------------------------------------------------------------------------


def _serve_subprocess_env() -> dict[str, str]:
    """Environment for child processes: make *this* repro importable."""
    src_dir = Path(__file__).resolve().parents[2]
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        [str(src_dir)] + ([env["PYTHONPATH"]] if env.get("PYTHONPATH") else [])
    )
    return env


def _run_serve_once(cache_dir: str, requests: list[dict]) -> dict:
    """Stream the workload through one fresh ``repro serve`` process."""
    lines = [json.dumps(request) for request in requests] + [json.dumps({"op": "stats"})]
    started = time.perf_counter()
    process = subprocess.run(
        [sys.executable, "-m", "repro.cli", "serve", "--cache-dir", cache_dir],
        input="\n".join(lines) + "\n",
        capture_output=True,
        text=True,
        env=_serve_subprocess_env(),
        check=True,
    )
    elapsed = time.perf_counter() - started
    responses = [json.loads(line) for line in process.stdout.splitlines()]
    if len(responses) != len(requests) + 1:
        raise RuntimeError(
            f"serve answered {len(responses)} lines for {len(requests) + 1} requests; "
            f"stderr: {process.stderr[-500:]}"
        )
    stats = responses[-1]["stats"]
    failures = [r for r in responses[:-1] if not r.get("ok")]
    if failures:
        raise RuntimeError(f"serve reported errors: {failures[:3]}")
    return {
        "wall_seconds": round(elapsed, 6),
        "responses": responses[:-1],
        "stats": stats,
    }


def run_cli_cache(cache_dir: str | None = None, repeats: int = 5) -> dict:
    """The acceptance benchmark: two cold processes, one persistent cache.

    The first process populates ``cache_dir``; the second must replay the
    identical workload with **zero** solver runs (every distinct formula a
    disk hit, every repeat an in-memory hit).
    """
    requests = cli_cache_workload(repeats=repeats)
    with tempfile.TemporaryDirectory(prefix="repro-bench-cache-") as scratch:
        directory = cache_dir or os.path.join(scratch, "solve-cache")
        first = _run_serve_once(directory, requests)
        second = _run_serve_once(directory, requests)

    verdicts_first = [r["outcome"]["holds"] for r in first["responses"]]
    verdicts_second = [r["outcome"]["holds"] for r in second["responses"]]
    if verdicts_first != verdicts_second:
        raise RuntimeError("cached replay changed verdicts")

    def summary(run: dict) -> dict:
        stats = run["stats"]
        return {
            "wall_seconds": run["wall_seconds"],
            "solver_runs": stats["solver_runs"],
            "solve_cache_hits": stats["solve_cache_hits"],
            "disk_cache_hits": stats["disk_cache_hits"],
            "disk_cache_writes": stats["disk_cache_writes"],
            "disk_cache_entries": stats.get("disk_cache_entries"),
        }

    return {
        "benchmark": "repro serve: cold-process replay through the persistent solve cache",
        "workload_queries": len(requests),
        "distinct_problems": len(_CLI_CACHE_BASE),
        "first_process": summary(first),
        "second_process": summary(second),
        "second_process_solver_runs": second["stats"]["solver_runs"],
        "replay_speedup": round(first["wall_seconds"] / second["wall_seconds"], 3),
        "verdicts": [
            {"id": r.get("id"), "holds": r["outcome"]["holds"]}
            for r in first["responses"][: len(_CLI_CACHE_BASE)]
        ],
    }


# ---------------------------------------------------------------------------
# scaling
# ---------------------------------------------------------------------------

#: Depths of the full scaling table (``--quick`` stops after 3).
SCALING_DEPTHS = tuple(range(1, 9))
SCALING_QUICK_DEPTHS = (1, 2, 3)

#: CI guard: the depth-3 relational-product counter must not regress above
#: this (measured 20 after the frontier fixpoint + elimination-order work of
#: PR 4, committed with headroom for benign schedule changes).  Counters are
#: deterministic, so this needs no wall-clock and never flakes.
SCALING_PRODUCT_CALLS_MAX_DEPTH3 = 22


def scaling_query(depth: int) -> str:
    """Nested path a1/a2[b2]/a3[b3]/… of the given depth."""
    steps = ["a1"] + [f"a{i}[b{i}]" for i in range(2, depth + 1)]
    return "/".join(steps)


def _scaling_row(depth: int) -> dict:
    from repro.analysis import Analyzer

    query = scaling_query(depth)
    weaker = query.replace("[b2]", "") if depth >= 2 else "*"
    result = Analyzer().containment(query, weaker)
    assert result.holds, f"depth-{depth} containment must hold"
    return {"depth": depth, "query": query, **result.solver_result.statistics.as_dict()}


def run_scaling(quick: bool = False) -> dict:
    """The Lemma 6.7 scaling study with warm-up separated from the table.

    The first solver run of a process pays one-off import/translation costs
    (compiling the XPath parser tables, building formula interning state);
    without a warm-up that lands in the depth-1 ``translation_seconds`` and
    makes depth 1 look slower than depth 2.  The warm-up row is reported
    under ``warmup`` (cold) next to the measured (warm) ``rows``.
    """
    depths = SCALING_QUICK_DEPTHS if quick else SCALING_DEPTHS
    warmup = _scaling_row(1)  # cold: first-call costs land here, visibly
    rows = [_scaling_row(depth) for depth in depths]
    payload = {
        "benchmark": "containment of nested queries (Lemma 6.7 scaling)",
        "quick": quick,
        "warmup": {
            "note": "cold first-call row; import/compile cost lands here, "
            "not in rows[0]",
            **warmup,
        },
        "product_calls_max_depth3": SCALING_PRODUCT_CALLS_MAX_DEPTH3,
        "rows": rows,
    }
    depth3 = next((row for row in rows if row["depth"] == 3), None)
    if depth3 is not None and depth3["product_calls"] > SCALING_PRODUCT_CALLS_MAX_DEPTH3:
        raise RuntimeError(
            f"performance regression: depth-3 product_calls "
            f"{depth3['product_calls']} > {SCALING_PRODUCT_CALLS_MAX_DEPTH3}"
        )
    return payload


# ---------------------------------------------------------------------------
# frontier
# ---------------------------------------------------------------------------


def run_frontier(quick: bool = False) -> dict:
    """Frontier-fixpoint ablation: delta products on vs off, per depth.

    Both engines must agree on every verdict and iteration count; the
    counters show how much incremental evaluation engaged (delta products
    admitted by the size gate, partitions skipped by the cone-of-influence
    check) and what it buys in ternary-operation counts.
    """
    from repro.analysis.problems import _query_formula
    from repro.logic import syntax as sx
    from repro.logic.negation import negate
    from repro.solver.symbolic import SymbolicSolver

    rows = []
    for depth in SCALING_QUICK_DEPTHS if quick else (1, 2, 3, 4, 5, 6):
        query = scaling_query(depth)
        weaker = query.replace("[b2]", "") if depth >= 2 else "*"
        formula = sx.mk_and(
            _query_formula(query, None), negate(_query_formula(weaker, None))
        )
        on = SymbolicSolver(formula, frontier=True).solve()
        off = SymbolicSolver(formula, frontier=False).solve()
        assert on.satisfiable == off.satisfiable
        assert on.statistics.iterations == off.statistics.iterations
        rows.append(
            {
                "depth": depth,
                "query": query,
                "frontier": {
                    key: on.statistics.as_dict()[key]
                    for key in (
                        "delta_iterations",
                        "partitions_skipped",
                        "product_calls",
                        "bdd_ite_calls",
                        "bdd_peak_node_count",
                        "solve_seconds",
                    )
                },
                "naive": {
                    key: off.statistics.as_dict()[key]
                    for key in (
                        "delta_iterations",
                        "partitions_skipped",
                        "product_calls",
                        "bdd_ite_calls",
                        "bdd_peak_node_count",
                        "solve_seconds",
                    )
                },
            }
        )
    return {
        "benchmark": "frontier (delta) fixpoint ablation",
        "quick": quick,
        "rows": rows,
    }


# ---------------------------------------------------------------------------
# backend
# ---------------------------------------------------------------------------

#: Depths of the backend ablation (``--quick`` stops after 3; the full table
#: stops at 6 to keep the slowest cell under a second per repetition).
BACKEND_DEPTHS = (1, 2, 3, 4, 5, 6)
#: Wall-clock repetitions per (depth, backend) cell; the row records the
#: minimum, with ``gc.collect()`` before each repetition — the solver's
#: manager/encoding reference cycles otherwise accumulate as cyclic garbage
#: and punish whichever backend runs later.
BACKEND_REPS = 3

#: Deterministic ``--quick`` guard: the depth-3 ``bdd_ite_calls`` counter of
#: each backend must not regress above its committed ceiling (measured
#: 13,123 for dict and 17,926 for arena — the arena counts every fused
#: kernel frame where the dict engine counts top-level ternary calls, so the
#: ceilings are per-backend by construction).  Counters are deterministic,
#: so this guard needs no wall-clock and never flakes.
BACKEND_ITE_CALLS_MAX_DEPTH3 = {"dict": 15_000, "arena": 20_500}

#: Measured reality, recorded in the payload next to each row's ``speedup``:
#: the pure-Python arena reaches ~1.1x over the dict engine on the deep
#: scaling rows (both engines are memo-bound in the CPython interpreter;
#: identical frame counts, near-identical per-frame cost).  The 2x ambition
#: needs a native-code backend behind the same protocol — see
#: docs/ARCHITECTURE.md.  The committed floor only guards against the arena
#: *losing* to dict by more than noise.
ARENA_MIN_SPEEDUP_DEEP = 0.9
ARENA_TARGET_SPEEDUP = 2.0


def run_backend(quick: bool = False) -> dict:
    """BDD-backend ablation on the scaling rows: dict vs arena, per depth.

    Every backend must produce the identical verdict, fixpoint iteration
    count and relational-product count on every row (observational
    equivalence through the :class:`repro.bdd.protocol.BDDBackend`
    protocol); the per-backend columns record what each engine spent doing
    it.  ``--quick`` additionally enforces the deterministic per-backend
    ``bdd_ite_calls`` ceilings of :data:`BACKEND_ITE_CALLS_MAX_DEPTH3`.
    """
    import gc

    from repro.analysis.problems import _query_formula
    from repro.bdd.backends import available_backends
    from repro.logic import syntax as sx
    from repro.logic.negation import negate
    from repro.solver.symbolic import SymbolicSolver

    backends = available_backends()
    depths = SCALING_QUICK_DEPTHS if quick else BACKEND_DEPTHS
    reps = 1 if quick else BACKEND_REPS
    rows = []
    for depth in depths:
        query = scaling_query(depth)
        weaker = query.replace("[b2]", "") if depth >= 2 else "*"
        formula = sx.mk_and(
            _query_formula(query, None), negate(_query_formula(weaker, None))
        )
        columns = {}
        reference = None
        for backend in backends:
            best = None
            for _ in range(reps):
                gc.collect()
                result = SymbolicSolver(formula, backend=backend).solve()
                stats = result.statistics.as_dict()
                if best is None or stats["solve_seconds"] < best["solve_seconds"]:
                    best = stats
                    best_verdict = result.satisfiable
            signature = (best_verdict, best["iterations"], best["product_calls"])
            if reference is None:
                reference = signature
            elif signature != reference:
                raise RuntimeError(
                    f"backend {backend!r} diverged at depth {depth}: "
                    f"{signature} != {reference}"
                )
            columns[backend] = {
                "satisfiable": best_verdict,
                "solve_seconds": round(best["solve_seconds"], 6),
                "iterations": best["iterations"],
                "product_calls": best["product_calls"],
                "bdd_ite_calls": best["bdd_ite_calls"],
                "bdd_ite_cache_hits": best["bdd_ite_cache_hits"],
                "bdd_peak_node_count": best["bdd_peak_node_count"],
                "bdd_node_count": best["bdd_node_count"],
            }
        row = {"depth": depth, "query": query, "backends": columns}
        if "dict" in columns and "arena" in columns and columns["arena"]["solve_seconds"]:
            row["arena_speedup"] = round(
                columns["dict"]["solve_seconds"] / columns["arena"]["solve_seconds"], 3
            )
        rows.append(row)

    payload = {
        "benchmark": "BDD backend ablation on the scaling rows (dict vs arena)",
        "quick": quick,
        "repetitions": reps,
        "backends": list(backends),
        "ite_calls_max_depth3": dict(BACKEND_ITE_CALLS_MAX_DEPTH3),
        "arena_min_speedup_deep": ARENA_MIN_SPEEDUP_DEEP,
        "arena_target_speedup": ARENA_TARGET_SPEEDUP,
        "note": (
            "verdicts/iterations/product_calls are asserted identical across "
            "backends; the pure-Python arena lands near parity on wall clock "
            "(both engines are memo-bound in CPython) — the target speedup "
            "is the headroom a native backend behind the same protocol buys"
        ),
        "rows": rows,
    }
    if quick:
        depth3 = next((row for row in rows if row["depth"] == 3), None)
        if depth3 is not None:
            for backend, ceiling in BACKEND_ITE_CALLS_MAX_DEPTH3.items():
                observed = depth3["backends"][backend]["bdd_ite_calls"]
                if observed > ceiling:
                    raise RuntimeError(
                        f"performance regression: depth-3 bdd_ite_calls of the "
                        f"{backend!r} backend {observed} > {ceiling}"
                    )
    return payload


# ---------------------------------------------------------------------------
# audit
# ---------------------------------------------------------------------------

#: The committed example stylesheets the audit benchmark replays.
AUDIT_QUICK_CASE = ("examples/audit_clean.xsl", "wikipedia")
AUDIT_FULL_CASE = ("examples/audit_stylesheet.xsl", "xhtml-strict")


def _repo_example(relative: str) -> Path:
    path = Path(__file__).resolve().parents[3] / relative
    if not path.is_file():
        raise RuntimeError(f"example stylesheet not found: {path}")
    return path


def run_audit(quick: bool = False) -> dict:
    """One auditor pass over a committed example, plus a warm repeat.

    The cold pass records the real workload (queries planned per rule, one
    ``solve_many`` batch, wall time); the warm repeat re-audits the same
    stylesheet through the same analyzer and must answer every query from
    the in-memory caches — zero further solver runs, or the run fails.
    """
    from repro.xslt import audit_stylesheet

    stylesheet, schema = AUDIT_QUICK_CASE if quick else AUDIT_FULL_CASE
    path = _repo_example(stylesheet)
    analyzer = StaticAnalyzer()

    cold_started = time.perf_counter()
    cold = audit_stylesheet(path, schema, analyzer=analyzer)
    cold_seconds = time.perf_counter() - cold_started

    warm_started = time.perf_counter()
    warm = audit_stylesheet(path, schema, analyzer=analyzer)
    warm_seconds = time.perf_counter() - warm_started

    if warm.solver_runs != 0:
        raise RuntimeError(
            f"warm audit repeat ran the solver {warm.solver_runs} time(s); "
            "every verdict should have been cached"
        )
    if [f.as_dict() for f in warm.findings] != [f.as_dict() for f in cold.findings]:
        raise RuntimeError("warm audit repeat changed the findings")

    return {
        "benchmark": "stylesheet audit: one solve_many batch, then a warm repeat",
        "quick": quick,
        "stylesheet": stylesheet,
        "schema": schema,
        "templates": cold.templates,
        "branches": cold.branches,
        "findings": cold.counts(),
        "queries_by_rule": dict(cold.queries),
        "cold": {
            "wall_seconds": round(cold_seconds, 6),
            "batch_seconds": round(cold.total_seconds, 6),
            "solver_runs": cold.solver_runs,
            "cache_hits": cold.cache_hits,
        },
        "warm": {
            "wall_seconds": round(warm_seconds, 6),
            "batch_seconds": round(warm.total_seconds, 6),
            "solver_runs": warm.solver_runs,
            "cache_hits": warm.cache_hits,
        },
        "cache_statistics": cold.cache_statistics,
    }


# ---------------------------------------------------------------------------
# batch (merged-Lean batch fixpoint)
# ---------------------------------------------------------------------------

#: Cold wall-clock speedup merged batch solving must reach over cold
#: per-query analyzers on the 50-query workload (the same baseline
#: ``api-batch`` has always measured: a fresh :class:`StaticAnalyzer` per
#: query, so repeats re-solve).  Only enforced in full mode — ``--quick``
#: shrinks the workload below timing noise and checks counters only.
BATCH_REQUIRED_SPEEDUP = 1.5

#: Committed ceiling on solver fixpoints the *merged* audit of the seeded
#: example stylesheet may run (measured 1: the whole 19-query audit batch is
#: one compatible group; 2 leaves headroom for one split-and-retry).
AUDIT_MERGED_MAX_SOLVER_RUNS = 2

#: The merged audit must run at least this many times fewer fixpoints than
#: per-query mode (measured 19 vs 1; the acceptance floor is 5x).
AUDIT_MIN_RUN_REDUCTION = 5.0


def run_batch(quick: bool = False) -> dict:
    """Merged-Lean batch fixpoint vs per-query solving, on two workloads.

    Workload 1 — the 50-query ``cli-cache`` JSONL workload: cold per-query
    analyzers (the ``api-batch`` baseline), one sequential
    ``batch_fixpoint="off"`` analyzer, and one ``batch_fixpoint="on"``
    analyzer, with verdicts asserted identical everywhere and witnesses
    asserted identical between the two modes.  Full mode enforces
    :data:`BATCH_REQUIRED_SPEEDUP` on merged-vs-cold wall clock.

    Workload 2 — the seeded example stylesheet audited once per mode:
    findings must be byte-identical, merged solver runs must stay under the
    committed :data:`AUDIT_MERGED_MAX_SOLVER_RUNS` ceiling and at least
    :data:`AUDIT_MIN_RUN_REDUCTION` times below per-query mode's runs.
    The counter guards are deterministic and enforced in both modes.
    """
    from repro.xslt import audit_stylesheet

    requests = cli_cache_workload(repeats=2 if quick else 5)
    queries = [
        wire.query_from_dict({k: v for k, v in r.items() if k != "id"})
        for r in requests
    ]

    cold_started = time.perf_counter()
    cold_outcomes = [StaticAnalyzer().solve(query) for query in queries]
    cold_seconds = time.perf_counter() - cold_started

    off_started = time.perf_counter()
    off_report = StaticAnalyzer(batch_fixpoint="off").solve_many(queries)
    off_seconds = time.perf_counter() - off_started

    on_started = time.perf_counter()
    on_report = StaticAnalyzer(batch_fixpoint="on").solve_many(queries)
    on_seconds = time.perf_counter() - on_started

    for position, (cold, off, on) in enumerate(
        zip(cold_outcomes, off_report.outcomes, on_report.outcomes)
    ):
        if not (cold.holds == off.holds == on.holds):
            raise RuntimeError(
                f"merged batch changed the verdict of query {position} "
                f"({cold.problem})"
            )
        if off.counterexample != on.counterexample:
            raise RuntimeError(
                f"merged batch changed the witness of query {position} "
                f"({off.problem})"
            )
    speedup = cold_seconds / on_seconds
    if not quick and speedup < BATCH_REQUIRED_SPEEDUP:
        raise RuntimeError(
            f"performance regression: merged batch speedup over cold "
            f"per-query analyzers {speedup:.3f} < {BATCH_REQUIRED_SPEEDUP}"
        )

    stylesheet, schema = AUDIT_FULL_CASE
    path = _repo_example(stylesheet)

    audit_off_started = time.perf_counter()
    audit_off = audit_stylesheet(
        path, schema, analyzer=StaticAnalyzer(), batch_fixpoint="off"
    )
    audit_off_seconds = time.perf_counter() - audit_off_started

    audit_on_started = time.perf_counter()
    audit_on = audit_stylesheet(
        path, schema, analyzer=StaticAnalyzer(), batch_fixpoint="on"
    )
    audit_on_seconds = time.perf_counter() - audit_on_started

    findings_off = json.dumps([f.as_dict() for f in audit_off.findings])
    findings_on = json.dumps([f.as_dict() for f in audit_on.findings])
    if findings_off != findings_on:
        raise RuntimeError("merged audit changed the findings")
    if audit_on.solver_runs > AUDIT_MERGED_MAX_SOLVER_RUNS:
        raise RuntimeError(
            f"performance regression: merged audit ran "
            f"{audit_on.solver_runs} fixpoints > ceiling "
            f"{AUDIT_MERGED_MAX_SOLVER_RUNS}"
        )
    run_reduction = audit_off.solver_runs / max(1, audit_on.solver_runs)
    if run_reduction < AUDIT_MIN_RUN_REDUCTION:
        raise RuntimeError(
            f"performance regression: merged audit runs only "
            f"{run_reduction:.1f}x fewer fixpoints than per-query mode "
            f"(< {AUDIT_MIN_RUN_REDUCTION}x)"
        )

    return {
        "benchmark": "merged-Lean batch fixpoint vs per-query solving",
        "quick": quick,
        "workload": {
            "queries": len(queries),
            "distinct_problems": len(_CLI_CACHE_BASE),
            "cold_per_query_seconds": round(cold_seconds, 6),
            "sequential_off_seconds": round(off_seconds, 6),
            "merged_on_seconds": round(on_seconds, 6),
            "speedup_vs_cold": round(speedup, 3),
            "speedup_vs_sequential_off": round(off_seconds / on_seconds, 3),
            "required_speedup": BATCH_REQUIRED_SPEEDUP,
            "off_solver_runs": off_report.solver_runs,
            "on_solver_runs": on_report.solver_runs,
            "merged_groups": on_report.merged_groups,
            "merged_queries": on_report.merged_queries,
            "verdicts_identical": True,
            "witnesses_identical": True,
            "note": (
                "cold per-query analyzers are the api-batch baseline (one "
                "fresh analyzer per query, repeats re-solve); the "
                "sequential_off column shows the same warm analyzer without "
                "merging — merging trades a modest shared-arena overhead on "
                "small disjoint batches for one fixpoint per group"
            ),
        },
        "audit": {
            "stylesheet": stylesheet,
            "schema": schema,
            "findings": audit_on.counts(),
            "findings_identical": True,
            "off_solver_runs": audit_off.solver_runs,
            "on_solver_runs": audit_on.solver_runs,
            "run_reduction": round(run_reduction, 1),
            "min_run_reduction": AUDIT_MIN_RUN_REDUCTION,
            "merged_max_solver_runs": AUDIT_MERGED_MAX_SOLVER_RUNS,
            "off_wall_seconds": round(audit_off_seconds, 6),
            "on_wall_seconds": round(audit_on_seconds, 6),
        },
    }


# ---------------------------------------------------------------------------
# CLI entry
# ---------------------------------------------------------------------------

_RUNNERS = {
    "api-batch": run_api_batch,
    "cli-cache": run_cli_cache,
    "scaling": run_scaling,
    "frontier": run_frontier,
    "backend": run_backend,
    "audit": run_audit,
    "batch": run_batch,
}

#: Benchmarks that understand the ``--quick`` smoke mode.
_QUICK_AWARE = {"scaling", "frontier", "backend", "audit", "batch"}

#: Benchmarks whose multiprocess sections honour ``--workers``.
_WORKERS_AWARE = {"api-batch"}


def run(args) -> int:
    names = args.names or list(BENCHMARKS)
    quick = getattr(args, "quick", False)
    unknown = [name for name in names if name not in _RUNNERS]
    if unknown:
        print(
            f"repro bench: unknown benchmark(s) {unknown}; "
            f"available: {', '.join(BENCHMARKS)}",
            file=sys.stderr,
        )
        return 2
    output_dir = Path(args.output_dir)
    output_dir.mkdir(parents=True, exist_ok=True)
    workers = getattr(args, "workers", None)
    for name in names:
        runner = _RUNNERS[name]
        kwargs = {}
        if quick and name in _QUICK_AWARE:
            kwargs["quick"] = True
        if workers is not None and name in _WORKERS_AWARE:
            kwargs["workers"] = workers
        try:
            payload = runner(**kwargs)
        except RuntimeError as exc:
            print(f"repro bench: {name}: {exc}", file=sys.stderr)
            return 1
        path = output_dir / _REPORT_NAMES.get(
            name, f"BENCH_{name.replace('-', '_')}.json"
        )
        path.write_text(
            json.dumps(payload, indent=2, ensure_ascii=False) + "\n", encoding="utf-8"
        )
        print(f"wrote {path}")
    return 0
