"""Tree data models: unranked XML trees, binary encodings, focused trees.

The paper (Section 3) models XML documents as *focused trees*: a zipper-style
pair of the subtree in focus and its full context (left siblings in reverse
order, parent context, right siblings).  Navigation is performed "in binary
style" through four modalities:

* ``1``  — first child,
* ``2``  — next sibling,
* ``-1`` — parent, when the focus is a leftmost sibling (written 1̄ in the paper),
* ``-2`` — previous sibling (written 2̄ in the paper).

This package provides:

* :mod:`repro.trees.unranked` — plain unranked labelled trees with a tiny
  XML-ish parser and serialiser,
* :mod:`repro.trees.binary`   — the standard binary encoding
  (first-child / next-sibling) and conversions to and from unranked trees,
* :mod:`repro.trees.focus`    — focused trees with the single start mark and
  the four navigation modalities.
"""

from repro.trees.unranked import Tree, parse_tree, serialize_tree
from repro.trees.binary import BinTree, to_binary, to_unranked
from repro.trees.focus import (
    Context,
    Enclosing,
    FocusedTree,
    MODALITIES,
    FORWARD_MODALITIES,
    BACKWARD_MODALITIES,
    inverse,
    focus_root,
    all_focuses,
    document_universe,
)

__all__ = [
    "Tree",
    "parse_tree",
    "serialize_tree",
    "BinTree",
    "to_binary",
    "to_unranked",
    "Context",
    "Enclosing",
    "FocusedTree",
    "MODALITIES",
    "FORWARD_MODALITIES",
    "BACKWARD_MODALITIES",
    "inverse",
    "focus_root",
    "all_focuses",
    "document_universe",
]
