"""Focused trees: the zipper data model of Section 3.

A focused tree is a pair ``(t, c)`` of the subtree currently in focus and its
context.  The context records the left siblings of the focus (in reverse
order), the enclosing element (or ``Top`` when the focus is at the root level)
and the right siblings.  Exactly one node of the underlying document carries
the *start mark*; the logic's start proposition ``s`` holds at a focused tree
whose focus node is the marked one.

Navigation follows the four modalities of the paper:

* ``1``  — move to the first child,
* ``2``  — move to the next sibling,
* ``-1`` — move to the parent (only when the focus is a leftmost sibling),
* ``-2`` — move to the previous sibling.

Each navigation step is a partial function; :meth:`FocusedTree.follow` returns
``None`` when the step is undefined, and :meth:`FocusedTree.follow_or_raise`
raises :class:`~repro.core.errors.NavigationError`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

from repro.core.errors import NavigationError
from repro.trees.unranked import Tree

#: The four navigation programs of the logic.  Positive numbers are the
#: forward modalities (first child, next sibling); negative numbers are their
#: converses (written with an overline in the paper).
MODALITIES: tuple[int, ...] = (1, 2, -1, -2)
FORWARD_MODALITIES: tuple[int, ...] = (1, 2)
BACKWARD_MODALITIES: tuple[int, ...] = (-1, -2)


def inverse(modality: int) -> int:
    """Return the converse program: ``inverse(1) == -1`` and so on."""
    if modality not in (1, 2, -1, -2):
        raise ValueError(f"not a modality: {modality!r}")
    return -modality


@dataclass(frozen=True)
class Enclosing:
    """The "above" part of a context node ``c[σ]``: an enclosing element."""

    context: "Context"
    label: str
    marked: bool = False
    attributes: tuple[str, ...] = ()


@dataclass(frozen=True)
class Context:
    """A context: left siblings (reversed), the part above, right siblings.

    ``parent`` is ``None`` when the focus is at the root level (the paper's
    ``Top``), otherwise an :class:`Enclosing` value ``c[σ]``.
    """

    left: tuple[Tree, ...] = ()
    parent: Enclosing | None = None
    right: tuple[Tree, ...] = ()

    @property
    def is_top(self) -> bool:
        """True when the focus is at the root level of the document."""
        return self.parent is None


#: The empty top-level context.
TOP_CONTEXT = Context((), None, ())


@dataclass(frozen=True)
class FocusedTree:
    """A focused tree ``(t, c)``; the unit of interpretation of the logic."""

    tree: Tree
    context: Context = TOP_CONTEXT

    # -- observations --------------------------------------------------------

    @property
    def name(self) -> str:
        """The label of the node in focus (the paper's ``nm``)."""
        return self.tree.label

    @property
    def marked(self) -> bool:
        """Whether the node in focus carries the start mark (proposition ``s``)."""
        return self.tree.marked

    @property
    def attributes(self) -> tuple[str, ...]:
        """The attribute names carried by the node in focus."""
        return self.tree.attributes

    def has_attribute(self, name: str | None) -> bool:
        """Whether the focus node carries attribute ``name`` (``None``/``"*"``: any)."""
        return self.tree.has_attribute(name)

    # -- navigation ----------------------------------------------------------

    def follow(self, modality: int) -> "FocusedTree | None":
        """Follow a modality, returning ``None`` when the step is undefined."""
        if modality == 1:
            return self._first_child()
        if modality == 2:
            return self._next_sibling()
        if modality == -1:
            return self._parent()
        if modality == -2:
            return self._previous_sibling()
        raise ValueError(f"not a modality: {modality!r}")

    def follow_or_raise(self, modality: int) -> "FocusedTree":
        """Follow a modality, raising :class:`NavigationError` when undefined."""
        result = self.follow(modality)
        if result is None:
            raise NavigationError(f"modality {modality} undefined at node {self.name!r}")
        return result

    def has(self, modality: int) -> bool:
        """Whether the modality is defined at this focused tree (``⟨a⟩⊤``)."""
        return self.follow(modality) is not None

    def _first_child(self) -> "FocusedTree | None":
        children = self.tree.children
        if not children:
            return None
        enclosing = Enclosing(
            self.context, self.tree.label, self.tree.marked, self.tree.attributes
        )
        return FocusedTree(children[0], Context((), enclosing, children[1:]))

    def _next_sibling(self) -> "FocusedTree | None":
        context = self.context
        if context.parent is None or not context.right:
            return None
        new_left = (self.tree,) + context.left
        return FocusedTree(
            context.right[0],
            Context(new_left, context.parent, context.right[1:]),
        )

    def _parent(self) -> "FocusedTree | None":
        context = self.context
        if context.parent is None or context.left:
            return None
        enclosing = context.parent
        rebuilt = Tree(
            enclosing.label,
            (self.tree,) + context.right,
            enclosing.marked,
            enclosing.attributes,
        )
        return FocusedTree(rebuilt, enclosing.context)

    def _previous_sibling(self) -> "FocusedTree | None":
        context = self.context
        if context.parent is None or not context.left:
            return None
        previous = context.left[0]
        new_right = (self.tree,) + context.right
        return FocusedTree(
            previous,
            Context(context.left[1:], context.parent, new_right),
        )

    # -- global views ---------------------------------------------------------

    def to_root(self) -> "FocusedTree":
        """Navigate to the top-most, left-most position (the document root)."""
        current = self
        while True:
            up = current.follow(-1)
            if up is not None:
                current = up
                continue
            back = current.follow(-2)
            if back is not None:
                current = back
                continue
            return current

    def document(self) -> Tree:
        """Rebuild the whole underlying document (an unranked tree)."""
        return self.to_root().tree

    def __str__(self) -> str:  # pragma: no cover - convenience only
        return f"FocusedTree(focus={self.name!r}, document={self.document()})"


# ---------------------------------------------------------------------------
# Building focused trees from documents
# ---------------------------------------------------------------------------


def focus_root(document: Tree) -> FocusedTree:
    """Focus a document at its root, with the empty top-level context."""
    return FocusedTree(document, TOP_CONTEXT)


def focus_at(document: Tree, path: tuple[int, ...]) -> FocusedTree:
    """Focus a document at the node designated by a child-index path."""
    focus = focus_root(document)
    for index in path:
        focus = focus.follow_or_raise(1)
        for _ in range(index):
            focus = focus.follow_or_raise(2)
    return focus


def all_focuses(document: Tree) -> Iterator[FocusedTree]:
    """Yield the document focused at each of its nodes, in document order."""
    for path, _node in sorted(document.iter_paths()):
        yield focus_at(document, path)


def document_universe(documents: list[Tree]) -> frozenset[FocusedTree]:
    """Build a finite universe of focused trees from marked documents.

    The logic's interpretation (Figure 2) ranges over the infinite set of all
    finite focused trees with a single start mark.  For testing we restrict to
    the focused trees derived from a given list of documents; each document
    must carry exactly one mark.  Because navigation never leaves a document,
    interpreting a formula inside this restricted universe agrees with the
    global interpretation on these focused trees.
    """
    universe: set[FocusedTree] = set()
    for document in documents:
        if document.mark_count() != 1:
            raise ValueError(
                f"document must carry exactly one start mark, got {document.mark_count()}"
            )
        universe.update(all_focuses(document))
    return frozenset(universe)
