"""repro — static analysis of XML paths and types.

A from-scratch Python reproduction of

    Pierre Genevès, Nabil Layaïda, Alan Schmitt.
    "Efficient Static Analysis of XML Paths and Types", PLDI 2007
    (extended version: INRIA RR-6590, 2008).

The package solves XPath decision problems — emptiness, containment, overlap,
coverage, equivalence and static type checking — in the presence of XML
regular tree types (DTDs), by translating both queries and types to a
cycle-free µ-calculus over finite focused trees and deciding satisfiability
with a BDD-based fixpoint algorithm.

Quick start::

    from repro import check_containment
    result = check_containment("child::a[b]", "child::a")
    assert result.holds                       # every a[b] child is an a child

    from repro import check_satisfiability, builtin_dtd
    result = check_satisfiability("descendant::a[ancestor::a]", builtin_dtd("xhtml"))
    print(result.holds, result.counterexample)

For batches of queries, prefer the caching façade of :mod:`repro.api`::

    from repro import Query, StaticAnalyzer
    report = StaticAnalyzer().solve_many([
        Query.containment("child::a[b]", "child::a"),
        Query.emptiness("child::title/child::meta", "wikipedia"),
    ])
"""

from repro.api import (
    AnalysisOutcome,
    BatchReport,
    Query,
    StaticAnalyzer,
    solve_many,
)
from repro.analysis import (
    AnalysisResult,
    Analyzer,
    check_containment,
    check_coverage,
    check_emptiness,
    check_equivalence,
    check_overlap,
    check_satisfiability,
    check_type_inclusion,
)
from repro.logic.negation import negate
from repro.logic.parser import parse_formula
from repro.logic.printer import format_formula
from repro.solver.explicit import ExplicitSolver
from repro.solver.symbolic import SolverResult, SymbolicSolver
from repro.trees.unranked import Tree, parse_tree, serialize_tree
from repro.xmltypes.compile import compile_dtd
from repro.xmltypes.dtd import DTD, AttributeDeclaration, parse_dtd
from repro.xmltypes.library import builtin_dtd
from repro.xmltypes.membership import dtd_accepts, dtd_attribute_violations
from repro.xpath.compile import compile_xpath
from repro.xpath.parser import parse_xpath
from repro.xpath.semantics import select

__version__ = "1.0.0"

__all__ = [
    "AnalysisOutcome",
    "BatchReport",
    "Query",
    "StaticAnalyzer",
    "solve_many",
    "AnalysisResult",
    "Analyzer",
    "check_containment",
    "check_coverage",
    "check_emptiness",
    "check_equivalence",
    "check_overlap",
    "check_satisfiability",
    "check_type_inclusion",
    "negate",
    "parse_formula",
    "format_formula",
    "ExplicitSolver",
    "SymbolicSolver",
    "SolverResult",
    "Tree",
    "parse_tree",
    "serialize_tree",
    "DTD",
    "AttributeDeclaration",
    "parse_dtd",
    "compile_dtd",
    "builtin_dtd",
    "dtd_accepts",
    "dtd_attribute_violations",
    "compile_xpath",
    "parse_xpath",
    "select",
    "__version__",
]
