"""Seeded random generators for DTDs, XPath expressions and documents.

All generators draw from an explicit :class:`random.Random` instance, so a
campaign is reproducible from its seed alone (see ``docs/TESTING.md`` for the
reproduction workflow).  The defaults deliberately favour *small* artefacts:
the differential oracles enumerate focused trees and ψ-types, whose cost is
exponential in the problem size, and small inputs shrink better.

Three invariants matter more than variety:

* every generated DTD is produced as *source text* and parsed back through
  :func:`repro.xmltypes.dtd.parse_dtd`, so the corpus files and the in-memory
  problems can never drift apart;
* every generated XPath expression satisfies ``parse_xpath(str(e)) == e`` —
  qualifiers are only attached to steps and parenthesised unions (the shapes
  the surface syntax can express), and attribute steps only appear in
  trailing or qualifier position;
* :func:`gen_tree` only emits documents that genuinely validate against the
  generated DTD (content models are *sampled*, not approximated), so it can
  seed membership oracles directly.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.testing.corpus import FUZZ_KINDS, FuzzCase
from repro.trees.unranked import Tree
from repro.xmltypes import content as cm
from repro.xmltypes.dtd import DTD, parse_dtd
from repro.xpath import ast as xp

#: Element-name pool (generated DTDs draw a prefix of it).
ELEMENT_NAMES = ("a", "b", "c", "d", "e", "f")

#: Attribute-name pool for generated ATTLIST declarations.
ATTRIBUTE_NAMES = ("p", "q", "r")

#: A label guaranteed to lie outside every generated DTD and expression
#: alphabet; queries occasionally test it so the "any other label"
#: proposition of the Lean gets exercised.
FOREIGN_LABEL = "zz"

#: An attribute name outside :data:`ATTRIBUTE_NAMES`, for the same reason.
FOREIGN_ATTRIBUTE = "zq"


@dataclass(frozen=True)
class GeneratorConfig:
    """Size knobs of the generators (see ``docs/TESTING.md``)."""

    #: Elements a generated DTD declares (uniform in ``2..max_elements``).
    max_elements: int = 4
    #: Nesting depth of generated content models.
    max_content_depth: int = 2
    #: Attribute declarations spread over the DTD (0..max_attributes).
    max_attributes: int = 2
    #: Navigation steps per generated path.
    max_steps: int = 3
    #: Nesting depth of generated qualifiers.
    max_qualifier_depth: int = 2
    #: Probability that a generated case carries a DTD type constraint.
    typed_probability: float = 0.75
    #: Probability that a generated expression mentions attribute steps
    #: (only effective when the DTD declares attributes, or untyped).
    attribute_probability: float = 0.4
    #: Depth bound for :func:`gen_tree` documents.
    max_tree_depth: int = 4
    #: Per-node child bound for :func:`gen_tree` documents.
    max_tree_width: int = 3


#: Axes weighted towards the ones with interesting translations; the heavy
#: recursive axes appear but less often so oracle enumeration stays useful.
_AXES = (
    (xp.Axis.CHILD, 6),
    (xp.Axis.SELF, 1),
    (xp.Axis.PARENT, 2),
    (xp.Axis.DESCENDANT, 3),
    (xp.Axis.DESC_OR_SELF, 2),
    (xp.Axis.ANCESTOR, 2),
    (xp.Axis.ANC_OR_SELF, 1),
    (xp.Axis.FOLL_SIBLING, 2),
    (xp.Axis.PREC_SIBLING, 2),
    (xp.Axis.FOLLOWING, 1),
    (xp.Axis.PRECEDING, 1),
)


def _weighted(rng: random.Random, table) -> object:
    choices, weights = zip(*table)
    return rng.choices(choices, weights=weights, k=1)[0]


# ---------------------------------------------------------------------------
# DTDs and content models
# ---------------------------------------------------------------------------


def gen_content_model(
    rng: random.Random, symbols: tuple[str, ...], depth: int
) -> cm.ContentModel:
    """A random content model over ``symbols`` with nesting up to ``depth``."""
    if depth <= 0 or rng.random() < 0.4:
        leaf: cm.ContentModel = cm.CSymbol(rng.choice(symbols))
        return _maybe_occurrence(rng, leaf)
    shape = rng.random()
    if shape < 0.45:
        parts = [
            gen_content_model(rng, symbols, depth - 1) for _ in range(rng.randint(2, 3))
        ]
        return _maybe_occurrence(rng, cm.sequence(parts))
    if shape < 0.9:
        parts = [
            gen_content_model(rng, symbols, depth - 1) for _ in range(rng.randint(2, 3))
        ]
        return _maybe_occurrence(rng, cm.choice(parts))
    return _maybe_occurrence(rng, gen_content_model(rng, symbols, depth - 1))


def _maybe_occurrence(rng: random.Random, model: cm.ContentModel) -> cm.ContentModel:
    roll = rng.random()
    if roll < 0.25:
        return cm.COptional(model)
    if roll < 0.45:
        return cm.CStar(model)
    if roll < 0.55:
        return cm.CPlus(model)
    return model


def render_content(model: cm.ContentModel, top: bool = True) -> str:
    """Render a content model back to DTD source syntax.

    The top-level children specification must be a parenthesised group per
    XML 1.0, so ``top=True`` wraps bare names and occurrence-suffixed
    particles once more.
    """
    if isinstance(model, cm.CEmpty):
        return "EMPTY"
    text = _render_particle(model)
    if top and not text.startswith("("):
        return f"({text})"
    if top and text.endswith(("?", "*", "+")):
        return f"({text})"
    return text


def _render_particle(model: cm.ContentModel) -> str:
    if isinstance(model, cm.CSymbol):
        return model.name
    if isinstance(model, cm.CSeq):
        return f"({_render_particle(model.left)}, {_render_particle(model.right)})"
    if isinstance(model, cm.CChoice):
        return f"({_render_particle(model.left)} | {_render_particle(model.right)})"
    if isinstance(model, cm.COptional):
        return f"{_render_group(model.inner)}?"
    if isinstance(model, cm.CStar):
        return f"{_render_group(model.inner)}*"
    if isinstance(model, cm.CPlus):
        return f"{_render_group(model.inner)}+"
    if isinstance(model, cm.CEmpty):  # pragma: no cover - only reachable nested
        return "(#PCDATA)"
    raise AssertionError(f"unknown content model {model!r}")


def _render_group(model: cm.ContentModel) -> str:
    text = _render_particle(model)
    if text.startswith("(") and not text.endswith(("?", "*", "+")):
        return text
    return f"({text})"


def gen_dtd(
    rng: random.Random, config: GeneratorConfig = GeneratorConfig()
) -> tuple[str, DTD]:
    """A random DTD as ``(source text, parsed DTD)``.

    The DTD declares 2..``max_elements`` elements; roughly a third are
    ``EMPTY``, the rest carry random content models (which may recurse, may
    reference later elements, and may describe the empty language — all of
    which are legitimate fuzz food).  A few attribute declarations are
    spread over the elements, mixing ``#REQUIRED`` and ``#IMPLIED``.
    """
    count = rng.randint(2, max(2, config.max_elements))
    names = ELEMENT_NAMES[:count]
    lines = []
    for name in names:
        if rng.random() < 0.3:
            spec = "EMPTY"
        else:
            model = gen_content_model(rng, names, config.max_content_depth)
            spec = render_content(model)
        lines.append(f"<!ELEMENT {name} {spec}>")
    for _ in range(rng.randint(0, config.max_attributes)):
        element = rng.choice(names)
        attribute = rng.choice(ATTRIBUTE_NAMES)
        default = "#REQUIRED" if rng.random() < 0.5 else "#IMPLIED"
        lines.append(f"<!ATTLIST {element} {attribute} CDATA {default}>")
    source = "\n".join(lines)
    return source, parse_dtd(source, root=names[0], name="fuzz")


# ---------------------------------------------------------------------------
# Documents valid for a DTD
# ---------------------------------------------------------------------------


def gen_tree(
    rng: random.Random,
    dtd: DTD,
    config: GeneratorConfig = GeneratorConfig(),
    attempts: int = 20,
) -> Tree | None:
    """A random document valid for the DTD, or ``None``.

    Content models are sampled directly (one random word of the language per
    node), biased towards short words near the depth bound.  ``None`` means
    no valid document fits the bounds — possible when the DTD's language is
    empty or every member is deeper than ``max_tree_depth``.
    """
    for _ in range(attempts):
        tree = _gen_element(rng, dtd, dtd.root, config.max_tree_depth, config)
        if tree is not None:
            return tree
    return None


def _gen_element(
    rng: random.Random, dtd: DTD, name: str, depth: int, config: GeneratorConfig
) -> Tree | None:
    attributes = _gen_attributes(rng, dtd, name)
    declaration = dtd.elements.get(name)
    if declaration is None:
        # Referenced but undeclared: must be empty.
        return Tree(name, (), False, attributes)
    if depth <= 0:
        # Out of depth budget: only elements that may legally be empty fit.
        if cm.nullable(declaration.content):
            return Tree(name, (), False, attributes)
        return None
    word = _sample_word(rng, declaration.content, config.max_tree_width, depth <= 1)
    if word is None:
        return None
    children = []
    for child_name in word:
        child = _gen_element(rng, dtd, child_name, depth - 1, config)
        if child is None:
            return None
        children.append(child)
    return Tree(name, tuple(children), False, attributes)


def _gen_attributes(rng: random.Random, dtd: DTD, name: str) -> tuple[str, ...]:
    attributes = []
    for declaration in dtd.attributes_of(name):
        if declaration.required or rng.random() < 0.5:
            attributes.append(declaration.name)
    return tuple(attributes)


def _sample_word(
    rng: random.Random, model: cm.ContentModel, width: int, prefer_short: bool
) -> list[str] | None:
    """One random word of the content-model language, or ``None`` if every
    choice within the width budget dead-ends."""
    if isinstance(model, cm.CEmpty):
        return []
    if isinstance(model, cm.CSymbol):
        return [model.name] if width >= 1 else None
    if isinstance(model, cm.CSeq):
        first = _sample_word(rng, model.left, width, prefer_short)
        if first is None:
            return None
        rest = _sample_word(rng, model.right, width - len(first), prefer_short)
        if rest is None:
            return None
        return first + rest
    if isinstance(model, cm.CChoice):
        branches = [model.left, model.right]
        rng.shuffle(branches)
        if prefer_short:
            branches.sort(key=lambda part: not cm.nullable(part))
        for branch in branches:
            word = _sample_word(rng, branch, width, prefer_short)
            if word is not None:
                return word
        return None
    if isinstance(model, cm.COptional):
        if prefer_short or rng.random() < 0.5:
            return []
        inner = _sample_word(rng, model.inner, width, prefer_short)
        return inner if inner is not None else []
    if isinstance(model, cm.CStar):
        if prefer_short:
            return []
        return _sample_repeats(rng, model.inner, width, rng.randint(0, 2))
    if isinstance(model, cm.CPlus):
        repeats = 1 if prefer_short else rng.randint(1, 2)
        return _sample_repeats(rng, model.inner, width, repeats, required=True)
    raise AssertionError(f"unknown content model {model!r}")


def _sample_repeats(
    rng: random.Random,
    inner: cm.ContentModel,
    width: int,
    repeats: int,
    required: bool = False,
) -> list[str] | None:
    word: list[str] = []
    for index in range(repeats):
        part = _sample_word(rng, inner, width - len(word), index == repeats - 1)
        if part is None:
            if required and index == 0:
                return None
            break
        word.extend(part)
    return word


# ---------------------------------------------------------------------------
# XPath expressions
# ---------------------------------------------------------------------------


def gen_xpath(
    rng: random.Random,
    labels: tuple[str, ...],
    attributes: tuple[str, ...] = (),
    config: GeneratorConfig = GeneratorConfig(),
) -> xp.Expr:
    """A random expression of the fragment over the given alphabets.

    ``labels`` are the element names node tests draw from (the foreign label
    is mixed in occasionally); ``attributes`` the names attribute steps use
    (empty: the expression is attribute-free).  The result always satisfies
    ``parse_xpath(str(expr)) == expr``.
    """
    return _gen_expr(rng, labels, attributes, config, depth=1)


def _gen_expr(rng, labels, attributes, config, depth: int) -> xp.Expr:
    roll = rng.random()
    # Expression-level union/intersection cannot be parenthesised in the
    # surface syntax, so operands are plain paths (the printable shapes).
    # Unions are occasionally multi-way: "a | b | c" parses left-nested, so
    # the chain is built by left-folding (the only shape that round-trips).
    if depth > 0 and roll < 0.10:
        operands = [
            _gen_expr(rng, labels, attributes, config, 0)
            for _ in range(2 if rng.random() < 0.7 else 3)
        ]
        expr = operands[0]
        for operand in operands[1:]:
            expr = xp.ExprUnion(expr, operand)
        return expr
    if depth > 0 and roll < 0.16:
        return xp.ExprIntersection(
            _gen_expr(rng, labels, attributes, config, 0),
            _gen_expr(rng, labels, attributes, config, 0),
        )
    path = _gen_path(rng, labels, attributes, config)
    if rng.random() < 0.25:
        return xp.AbsolutePath(path)
    return xp.RelativePath(path)


def _gen_path(rng, labels, attributes, config) -> xp.Path:
    """A path of qualified steps; attribute steps only in trailing position."""
    steps = rng.randint(1, max(1, config.max_steps))
    path: xp.Path | None = None
    for _ in range(steps):
        step = _gen_qualified_step(rng, labels, attributes, config)
        path = step if path is None else xp.PathCompose(path, step)
    if attributes and rng.random() < 0.3:
        trailing: xp.Path = _gen_attribute_step(rng, attributes)
        if rng.random() < 0.3:
            trailing = xp.QualifiedPath(
                trailing,
                _gen_qualifier(rng, labels, attributes, config, config.max_qualifier_depth),
            )
        path = xp.PathCompose(path, trailing)
    return path


def _gen_qualified_step(rng, labels, attributes, config) -> xp.Path:
    if rng.random() < 0.08:
        step: xp.Path = xp.PathUnion(
            _gen_union_branch(rng, labels), _gen_union_branch(rng, labels)
        )
        if rng.random() < 0.25:
            step = xp.PathUnion(step, _gen_union_branch(rng, labels))
    else:
        step = _gen_step(rng, labels)
    while rng.random() < 0.35:
        step = xp.QualifiedPath(
            step,
            _gen_qualifier(rng, labels, attributes, config, config.max_qualifier_depth),
        )
    return step


def _gen_union_branch(rng, labels) -> xp.Path:
    """One branch of a parenthesised union: a step, or a short composition
    ("html/(head/title | body)" shapes)."""
    step: xp.Path = _gen_step(rng, labels)
    if rng.random() < 0.3:
        return xp.PathCompose(step, _gen_step(rng, labels))
    return step


def _gen_step(rng, labels) -> xp.Step:
    axis = _weighted(rng, _AXES)
    roll = rng.random()
    if roll < 0.15:
        label = None  # wildcard
    elif roll < 0.22:
        label = FOREIGN_LABEL
    else:
        label = rng.choice(labels)
    return xp.Step(axis, label)


def _gen_attribute_step(rng, attributes) -> xp.AttributeStep:
    roll = rng.random()
    if roll < 0.2:
        return xp.AttributeStep(None)  # @*
    if roll < 0.3:
        return xp.AttributeStep(FOREIGN_ATTRIBUTE)
    return xp.AttributeStep(rng.choice(attributes))


def _gen_qualifier(rng, labels, attributes, config, depth: int) -> xp.Qualifier:
    roll = rng.random()
    if depth > 0 and roll < 0.18:
        return xp.QualifierAnd(
            _gen_qualifier(rng, labels, attributes, config, depth - 1),
            _gen_qualifier(rng, labels, attributes, config, depth - 1),
        )
    if depth > 0 and roll < 0.32:
        return xp.QualifierOr(
            _gen_qualifier(rng, labels, attributes, config, depth - 1),
            _gen_qualifier(rng, labels, attributes, config, depth - 1),
        )
    if depth > 0 and roll < 0.45:
        return xp.QualifierNot(
            _gen_qualifier(rng, labels, attributes, config, depth - 1)
        )
    if attributes and roll < 0.60:
        return xp.QualifierPath(_gen_attribute_step(rng, attributes))
    # A short path qualifier: one or two steps, occasionally absolute.
    path: xp.Path = _gen_step(rng, labels)
    if rng.random() < 0.3:
        path = xp.PathCompose(path, _gen_step(rng, labels))
    if attributes and rng.random() < 0.2:
        path = xp.PathCompose(path, _gen_attribute_step(rng, attributes))
    return xp.QualifierPath(path, absolute=rng.random() < 0.15)


# ---------------------------------------------------------------------------
# Whole cases
# ---------------------------------------------------------------------------


def gen_case(
    rng: random.Random, config: GeneratorConfig = GeneratorConfig()
) -> FuzzCase:
    """One random decision problem: a kind, expressions, and (maybe) a DTD."""
    kind = _weighted(
        rng,
        (
            ("containment", 4),
            ("satisfiability", 3),
            ("emptiness", 1),
            ("overlap", 2),
        ),
    )
    assert kind in FUZZ_KINDS
    dtd_source: str | None = None
    root: str | None = None
    labels: tuple[str, ...] = ELEMENT_NAMES[:3]
    attribute_pool: tuple[str, ...] = ATTRIBUTE_NAMES[:2]
    if rng.random() < config.typed_probability:
        dtd_source, dtd = gen_dtd(rng, config)
        root = dtd.root
        labels = dtd.element_names()
        attribute_pool = dtd.attribute_names() or attribute_pool
    use_attributes = rng.random() < config.attribute_probability
    attributes = attribute_pool if use_attributes else ()
    expr_count = 2 if kind in ("containment", "overlap") else 1
    exprs = tuple(
        str(gen_xpath(rng, labels, attributes, config)) for _ in range(expr_count)
    )
    return FuzzCase(kind=kind, exprs=exprs, dtd_source=dtd_source, root=root)
