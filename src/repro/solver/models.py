"""Satisfying model reconstruction (Section 7.2).

When the solver finds the formula satisfiable, it extracts a small satisfying
focused tree from the intermediate sets of types it computed: starting from a
root type selected by the final check, it repeatedly finds a witness for every
pending forward modality, searching the intermediate sets in the order they
were produced so the model depth stays minimal.  The start mark is routed
through exactly one branch, mirroring the marked/unmarked sets of the solver.

The reconstructed model is a binary tree over the Lean's atomic propositions
(the extra "any other label" proposition is rendered as ``_``), which callers
can decode back to unranked XML syntax via
:func:`repro.trees.binary.binary_forest_to_unranked`.
"""

from __future__ import annotations

from repro.bdd.manager import BDD
from repro.logic import syntax as sx
from repro.logic.closure import OTHER_ATTRIBUTE, OTHER_LABEL
from repro.solver.relations import LeanEncoding, TransitionRelation
from repro.trees.binary import BinTree

#: Label used when the model node's proposition is "any other name".
FRESH_LABEL = "_"

#: Attribute name used when a model node carries "any other attribute".
FRESH_ATTRIBUTE = "_"


def render_attributes(names: tuple[str, ...] | list[str]) -> tuple[str, ...]:
    """Map the internal "other attribute" name to a renderable placeholder."""
    return tuple(
        sorted(FRESH_ATTRIBUTE if name == OTHER_ATTRIBUTE else name for name in names)
    )


def _bits_from_assignment(encoding: LeanEncoding, assignment: dict[str, bool]) -> dict[int, bool]:
    bits: dict[int, bool] = {}
    for index, name in enumerate(encoding.x_names):
        bits[index] = assignment.get(name, False)
    return bits


def _pick(candidates: BDD, pick_order: tuple[str, ...] | None) -> dict[str, bool] | None:
    """One satisfying assignment, deterministically.

    Without ``pick_order`` this is the manager's top-down walk, which yields
    the lexicographically smallest assignment (False < True) with respect to
    the manager's *variable order*.  A merged-Lean batch solve decides a goal
    inside a shared encoding whose variable order differs from the goal's own
    per-query Lean — e.g. a sibling goal's closure can pull ``#other`` ahead
    of the concrete labels — so the same set of proved types would walk to a
    different (equally valid) witness.  ``pick_order`` pins the tie-break: the
    minimum is taken variable by variable in the *given* order, which callers
    set to the goal's per-query Lean order so merged and per-query solves
    decode byte-identical witnesses.  Variables outside the order (foreign
    goals' bits — never in the support of this goal's sets) default to False,
    exactly as the walk leaves unmentioned variables.
    """
    if pick_order is None:
        return candidates.pick_assignment()
    if candidates.is_false:
        return None
    assignment: dict[str, bool] = {}
    current = candidates
    for name in pick_order:
        low = current.cofactor(name, False)
        if low.is_false:
            assignment[name] = True
            current = current.cofactor(name, True)
        else:
            assignment[name] = False
            current = low
    return assignment


def _label_of(encoding: LeanEncoding, bits: dict[int, bool]) -> str:
    for label in encoding.lean.propositions:
        if bits.get(encoding.lean.proposition_index(label), False):
            return FRESH_LABEL if label == OTHER_LABEL else label
    return FRESH_LABEL


def _attributes_of(encoding: LeanEncoding, bits: dict[int, bool]) -> tuple[str, ...]:
    present = [
        name
        for name in encoding.lean.attributes
        if bits.get(encoding.lean.attribute_index(name), False)
    ]
    return render_attributes(present)


def reconstruct_counterexample(
    encoding: LeanEncoding,
    relations: dict[int, TransitionRelation],
    snapshots: list[tuple[BDD, BDD]],
    success: BDD,
    pick_order: tuple[str, ...] | None = None,
) -> BinTree:
    """Build a satisfying binary tree from the solver's intermediate sets.

    ``snapshots`` holds the (unmarked, marked) set pairs in the order they
    were computed; ``success`` is the non-empty set of admissible (marked)
    root types.  The root is taken from ``success`` and children are searched
    in the earliest snapshot that contains a compatible witness, which keeps
    the model depth minimal (Section 7.2).  ``pick_order`` pins every type
    pick to an explicit variable order (see :func:`_pick`) — the merged batch
    solver passes each goal's per-query Lean order so witnesses stay
    byte-identical to a stand-alone solve.
    """
    root_assignment = _pick(success, pick_order)
    if root_assignment is None:
        raise ValueError("reconstruction called on an empty success set")
    root_bits = _bits_from_assignment(encoding, root_assignment)
    return _build_node(
        encoding, relations, snapshots, root_bits, carries_mark=True,
        pick_order=pick_order,
    )


def _build_node(
    encoding: LeanEncoding,
    relations: dict[int, TransitionRelation],
    snapshots: list[tuple[BDD, BDD]],
    bits: dict[int, bool],
    carries_mark: bool,
    pick_order: tuple[str, ...] | None = None,
) -> BinTree:
    lean = encoding.lean
    marked_here = bool(bits.get(lean.start_index, False)) and carries_mark

    children: dict[int, BinTree | None] = {1: None, 2: None}
    # Decide through which branch the start mark must be routed.  The chooser
    # returns the witnesses it had to find anyway so they are not re-searched.
    mark_branch = 0
    found: dict[tuple[int, bool], dict[int, bool]] = {}
    if carries_mark and not marked_here:
        mark_branch, found = _choose_mark_branch(
            encoding, relations, snapshots, bits, pick_order
        )

    for program in (1, 2):
        needs_child = bits.get(encoding.top_index(program), False)
        if not needs_child:
            continue
        want_marked = program == mark_branch
        child_bits = found.get((program, want_marked))
        if child_bits is None:
            child_bits = _find_child(
                encoding, relations[program], snapshots, bits, want_marked,
                pick_order,
            )
        children[program] = _build_node(
            encoding, relations, snapshots, child_bits, carries_mark=want_marked,
            pick_order=pick_order,
        )

    return BinTree(
        label=_label_of(encoding, bits),
        left=children[1],
        right=children[2],
        marked=marked_here,
        attributes=_attributes_of(encoding, bits),
    )


def _choose_mark_branch(
    encoding: LeanEncoding,
    relations: dict[int, TransitionRelation],
    snapshots: list[tuple[BDD, BDD]],
    bits: dict[int, bool],
    pick_order: tuple[str, ...] | None = None,
) -> tuple[int, dict[tuple[int, bool], dict[int, bool]]]:
    """Pick the branch (1 or 2) through which the start mark is provable.

    The solver proved the type through at least one of the ``Upd`` cases
    "mark through the first branch" / "mark through the second branch"
    (Figure 16), but not necessarily through both: a branch may admit a
    *marked* witness while the other branch only has *marked* witnesses too
    (so routing the mark there would strand the second mark).  The chosen
    branch must therefore have a marked witness **and** leave every other
    claimed branch an unmarked witness — picking the first branch with a
    marked witness alone reconstructs an inconsistent tree.

    Returns the chosen branch together with the witnesses found along the
    way, keyed by ``(program, want_marked)``, so the caller reuses them
    instead of repeating the snapshot scans.
    """
    found: dict[tuple[int, bool], dict[int, bool]] = {}

    def search(program: int, want_marked: bool) -> dict[int, bool] | None:
        key = (program, want_marked)
        if key not in found:
            witness = _search_child(
                encoding, relations[program], snapshots, bits, want_marked,
                pick_order,
            )
            if witness is None:
                return None
            found[key] = witness
        return found[key]

    for program in (1, 2):
        if not bits.get(encoding.top_index(program), False):
            continue
        if search(program, True) is None:
            continue
        other = 2 if program == 1 else 1
        if bits.get(encoding.top_index(other), False):
            if search(other, False) is None:
                continue
        return program, found
    raise ValueError(
        "inconsistent solver state: a marked subtree has no branch routing "
        "exactly one mark; this indicates a bug in the mark-tracking update"
    )


def _search_child(
    encoding: LeanEncoding,
    relation: TransitionRelation,
    snapshots: list[tuple[BDD, BDD]],
    bits: dict[int, bool],
    want_marked: bool,
    pick_order: tuple[str, ...] | None = None,
) -> dict[int, bool] | None:
    """A compatible (un)marked witness from the earliest snapshot, or ``None``."""
    parts = relation.child_constraint_parts(bits)
    for unmarked, marked in snapshots:
        candidates = _intersect_all(marked if want_marked else unmarked, parts)
        if not candidates.is_false:
            assignment = _pick(candidates, pick_order)
            assert assignment is not None
            return _bits_from_assignment(encoding, assignment)
    return None


def _find_child(
    encoding: LeanEncoding,
    relation: TransitionRelation,
    snapshots: list[tuple[BDD, BDD]],
    bits: dict[int, bool],
    want_marked: bool,
    pick_order: tuple[str, ...] | None = None,
) -> dict[int, bool]:
    child_bits = _search_child(
        encoding, relation, snapshots, bits, want_marked, pick_order
    )
    if child_bits is None:
        raise ValueError(
            "inconsistent solver state: a proved type has no witness in any "
            "intermediate set; this indicates a bug in the update operation"
        )
    return child_bits


def _intersect_all(candidates: BDD, parts: list[BDD]) -> BDD:
    """Conjoin the constraint parts into ``candidates``, bailing out on ⊥.

    Conjoining part by part keeps every intermediate constrained by the
    (small) set of proved types; building the conjunction of the parts first
    can be exponentially larger (it is unconstrained by the solver's sets).
    """
    for part in parts:
        candidates = candidates & part
        if candidates.is_false:
            break
    return candidates
