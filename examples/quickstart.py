"""Quickstart: XPath containment, emptiness and counterexamples.

Run with::

    PYTHONPATH=src python examples/quickstart.py

The first half uses the one-shot helpers of :mod:`repro.analysis`; the second
half shows the recommended entry point for real workloads, the caching batch
façade of :mod:`repro.api`.
"""

from repro import (
    Query,
    StaticAnalyzer,
    check_containment,
    check_emptiness,
    check_overlap,
    compile_xpath,
    format_formula,
    parse_xpath,
    select,
    parse_tree,
    serialize_tree,
)


def main() -> None:
    # 1. Evaluate an XPath expression on a document (the "!" marks the node
    #    where evaluation starts).
    document = parse_tree("<library!><book><title/></book><book/><journal/></library>")
    expr = parse_xpath("child::book[title]")
    print("selected nodes:", [focus.name for focus in select(expr, document)])

    # 2. Look at the µ-calculus formula the query compiles to.
    print("compiled formula:", format_formula(compile_xpath("child::book[title]")))

    # 3. Decide containment between two queries (no schema needed).
    result = check_containment("child::book[title]", "child::book")
    print(result.describe())

    # 4. A containment that does not hold comes with a counterexample document.
    result = check_containment("child::book", "child::book[title]")
    print(result.describe())
    print("counterexample document:", serialize_tree(result.counterexample))

    # 5. Emptiness and overlap.
    print(check_emptiness("self::a ∩ self::b").describe())
    print(check_overlap("descendant::title", "book/title").describe())

    # 6. Batches: one StaticAnalyzer shares type translations, query
    #    translations and solver verdicts across all queries it answers.
    analyzer = StaticAnalyzer()
    report = analyzer.solve_many(
        [
            Query.satisfiability("child::meta/child::title", "wikipedia"),
            Query.emptiness("child::title/child::meta", "wikipedia"),
            Query.containment("child::history", "child::history[edit]", "wikipedia", "wikipedia"),
            # Duplicate of the first query: answered from the solve cache.
            Query.satisfiability("child::meta/child::title", "wikipedia"),
        ]
    )
    for outcome in report.outcomes:
        cached = " (cached)" if outcome.from_cache else ""
        print(f"{outcome.problem}: holds={outcome.holds}{cached}")
    print(
        f"batch: {len(report.outcomes)} queries, {report.solver_runs} solver runs, "
        f"{report.cache_hits} cache hits, {report.total_seconds * 1000:.1f} ms"
    )


if __name__ == "__main__":
    main()
