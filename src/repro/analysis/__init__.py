"""High-level XML decision problems (Section 8).

Every problem is reduced to (un)satisfiability of an Lµ formula built from the
XPath translation (Section 5.1) and the regular tree type translation
(Section 5.2), and dispatched to the symbolic solver of Section 7.
"""

from repro.analysis.problems import (
    AnalysisResult,
    Analyzer,
    check_containment,
    check_coverage,
    check_emptiness,
    check_equivalence,
    check_overlap,
    check_satisfiability,
    check_type_inclusion,
)

__all__ = [
    "AnalysisResult",
    "Analyzer",
    "check_containment",
    "check_coverage",
    "check_emptiness",
    "check_equivalence",
    "check_overlap",
    "check_satisfiability",
    "check_type_inclusion",
]
