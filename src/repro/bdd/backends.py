"""Backend registry: name → BDD engine class, plus environment resolution.

Every engine registered here must satisfy :class:`repro.bdd.protocol.BDDBackend`
and pass ``tests/test_backend_conformance.py`` (the suite parametrises over
this registry, so registering a backend automatically enrols it).

Selection precedence, highest first:

1. an explicit ``backend=`` argument (``StaticAnalyzer(backend="arena")``,
   ``repro analyze --backend arena``);
2. the ``REPRO_BDD_BACKEND`` environment variable (how CI runs the whole
   suite under each backend);
3. the default, :data:`DEFAULT_BACKEND`.
"""

from __future__ import annotations

import os
from typing import Sequence

from repro.bdd.arena import ArenaBDDManager
from repro.bdd.manager import BDDManager
from repro.bdd.protocol import BDDBackend

#: Environment variable consulted when no explicit backend is requested.
BACKEND_ENV = "REPRO_BDD_BACKEND"

#: Registry of available engines.  Adding a backend: implement the protocol,
#: register it here, and the conformance suite + fuzzer cover it.
BACKENDS: dict[str, type] = {
    BDDManager.backend_name: BDDManager,
    ArenaBDDManager.backend_name: ArenaBDDManager,
}

DEFAULT_BACKEND = BDDManager.backend_name


def available_backends() -> tuple[str, ...]:
    """Registered backend names, in registration order."""
    return tuple(BACKENDS)


def resolve_backend(backend: str | None = None) -> str:
    """Resolve an explicit choice / ``REPRO_BDD_BACKEND`` / default to a name."""
    chosen = backend or os.environ.get(BACKEND_ENV) or DEFAULT_BACKEND
    if chosen not in BACKENDS:
        raise ValueError(
            f"unknown BDD backend {chosen!r}; available: {', '.join(BACKENDS)}"
        )
    return chosen


def create_manager(variables: Sequence[str] = (), backend: str | None = None) -> BDDBackend:
    """Instantiate the chosen (or environment-selected, or default) engine."""
    return BACKENDS[resolve_backend(backend)](variables)
