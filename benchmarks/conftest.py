"""Shared helpers for the benchmark harness.

Every benchmark regenerates one table or figure of the paper's evaluation
(Section 8).  Besides the pytest-benchmark timings, each benchmark appends the
rows it reproduces to ``benchmarks/reports/<name>.txt`` so the numbers can be
compared with the paper (see EXPERIMENTS.md) without re-running pytest with
output capturing disabled.
"""

from __future__ import annotations

import json
import sys
from pathlib import Path

SRC = Path(__file__).resolve().parent.parent / "src"
if str(SRC) not in sys.path:
    sys.path.insert(0, str(SRC))

REPORT_DIR = Path(__file__).resolve().parent / "reports"

#: Machine-readable benchmark results land at the repository root as
#: ``BENCH_<name>.json`` so successive PRs can track the perf trajectory.
BENCH_JSON_DIR = Path(__file__).resolve().parent.parent


def write_report(name: str, lines: list[str]) -> None:
    """Write (and print) the reproduced rows of a table or figure."""
    REPORT_DIR.mkdir(exist_ok=True)
    text = "\n".join(lines) + "\n"
    (REPORT_DIR / f"{name}.txt").write_text(text)
    print(f"\n===== {name} =====\n{text}")


def write_bench_json(name: str, payload: dict) -> Path:
    """Write a machine-readable benchmark result to ``BENCH_<name>.json``."""
    path = BENCH_JSON_DIR / f"BENCH_{name}.json"
    path.write_text(
        json.dumps(payload, indent=2, ensure_ascii=False) + "\n", encoding="utf-8"
    )
    print(f"\nwrote {path}")
    return path


#: The twelve benchmark XPath expressions of Figure 21; the corpus lives in
#: :mod:`repro.cli.bench` (shared with ``repro bench``) and is re-exported
#: here for the benchmark files.
from repro.cli.bench import FIGURE_21  # noqa: E402  (needs the sys.path insert)
