"""Greedy shrinking of fuzz cases.

:func:`shrink_case` minimises a :class:`~repro.testing.corpus.FuzzCase`
while a caller-supplied predicate keeps holding — for a disagreement that
predicate is "the engines still disagree", for a regression seed it is "the
verdict is unchanged and every oracle still agrees".

The reduction moves mirror how the inputs were built:

* drop the type constraint entirely, or delete one element declaration,
  replace one content model by ``EMPTY``, peel occurrence operators and
  composite content models apart, drop one attribute declaration;
* replace an expression union/intersection by either side, drop a
  qualifier, a step of a composition, a ``not(...)``, an absolute anchor,
  or a branch of a qualifier connective.

Every candidate is strictly smaller than its parent (measured in source
text), so the loop terminates; the predicate budget additionally caps how
many re-evaluations a pathological case may cost.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Callable, Iterator

from repro.testing.corpus import FuzzCase
from repro.xmltypes import content as cm
from repro.xmltypes.dtd import DTD
from repro.xpath import ast as xp
from repro.xpath.parser import parse_xpath

#: Upper bound on predicate evaluations per shrink run.
DEFAULT_BUDGET = 250


def case_size(case: FuzzCase) -> int:
    """The size a shrink must strictly decrease."""
    return len(case.dtd_source or "") + sum(len(text) for text in case.exprs)


def shrink_case(
    case: FuzzCase,
    predicate: Callable[[FuzzCase], bool],
    budget: int = DEFAULT_BUDGET,
) -> FuzzCase:
    """The smallest reachable case on which the predicate still holds.

    ``predicate`` failures *and exceptions* both reject a candidate — a
    reduction that turns the case invalid (e.g. an attribute step drifting
    into non-trailing position) simply doesn't shrink.
    """
    current = case
    calls = 0
    improved = True
    while improved and calls < budget:
        improved = False
        for candidate in _candidates(current):
            if case_size(candidate) >= case_size(current):
                continue
            calls += 1
            try:
                keeps_failing = predicate(candidate)
            except Exception:
                keeps_failing = False
            if keeps_failing:
                current = candidate
                improved = True
                break
            if calls >= budget:
                break
    return current


# ---------------------------------------------------------------------------
# Candidate generation
# ---------------------------------------------------------------------------


def _candidates(case: FuzzCase) -> Iterator[FuzzCase]:
    if case.dtd_source is not None:
        yield case.without_type()
        try:
            dtd = case.dtd()
        except Exception:
            dtd = None
        if dtd is not None:
            for source, root in _dtd_reductions(dtd):
                yield replace(case, dtd_source=source, root=root)
    for index, text in enumerate(case.exprs):
        try:
            expr = parse_xpath(text)
        except Exception:
            continue
        for reduced in _expr_reductions(expr):
            exprs = list(case.exprs)
            exprs[index] = str(reduced)
            yield replace(case, exprs=tuple(exprs))


# -- DTD reductions -----------------------------------------------------------


def dtd_source_of(dtd: DTD) -> str:
    """Render a parsed DTD back to declaration source text."""
    from repro.testing.generators import render_content

    lines = [
        f"<!ELEMENT {name} {render_content(declaration.content)}>"
        for name, declaration in dtd.elements.items()
    ]
    for element, declarations in dtd.attlists.items():
        for declaration in declarations:
            default = "#REQUIRED" if declaration.required else "#IMPLIED"
            lines.append(f"<!ATTLIST {element} {declaration.name} CDATA {default}>")
    return "\n".join(lines)


def _dtd_reductions(dtd: DTD) -> Iterator[tuple[str, str]]:
    names = list(dtd.elements)
    # Delete one element declaration (references to it then mean "empty").
    for name in names:
        if len(names) == 1:
            continue
        remaining = {n: d for n, d in dtd.elements.items() if n != name}
        attlists = {n: a for n, a in dtd.attlists.items() if n != name}
        root = dtd.root if dtd.root != name else next(iter(remaining))
        reduced = DTD(elements=remaining, root=root, name=dtd.name, attlists=attlists)
        yield dtd_source_of(reduced), root
    # Replace one content model by EMPTY, or by a structural part of itself.
    for name, declaration in dtd.elements.items():
        for model in _content_reductions(declaration.content):
            elements = dict(dtd.elements)
            elements[name] = type(declaration)(name, model)
            reduced = DTD(
                elements=elements, root=dtd.root, name=dtd.name, attlists=dict(dtd.attlists)
            )
            yield dtd_source_of(reduced), dtd.root
    # Drop one attribute declaration.
    for element, declarations in dtd.attlists.items():
        for index in range(len(declarations)):
            attlists = dict(dtd.attlists)
            kept = declarations[:index] + declarations[index + 1 :]
            if kept:
                attlists[element] = kept
            else:
                del attlists[element]
            reduced = DTD(
                elements=dict(dtd.elements), root=dtd.root, name=dtd.name, attlists=attlists
            )
            yield dtd_source_of(reduced), dtd.root


def _content_reductions(model: cm.ContentModel) -> Iterator[cm.ContentModel]:
    if not isinstance(model, cm.CEmpty):
        yield cm.CEmpty()
    if isinstance(model, (cm.COptional, cm.CStar, cm.CPlus)):
        yield model.inner
        for inner in _content_reductions(model.inner):
            yield type(model)(inner)
    if isinstance(model, (cm.CSeq, cm.CChoice)):
        yield model.left
        yield model.right
        for left in _content_reductions(model.left):
            yield type(model)(left, model.right)
        for right in _content_reductions(model.right):
            yield type(model)(model.left, right)


# -- expression reductions ------------------------------------------------------


def _expr_reductions(expr: xp.Expr) -> Iterator[xp.Expr]:
    if isinstance(expr, (xp.ExprUnion, xp.ExprIntersection)):
        yield expr.left
        yield expr.right
        for left in _expr_reductions(expr.left):
            yield type(expr)(left, expr.right)
        for right in _expr_reductions(expr.right):
            yield type(expr)(expr.left, right)
        return
    if isinstance(expr, xp.AbsolutePath):
        yield xp.RelativePath(expr.path)
        for path in _path_reductions(expr.path):
            yield xp.AbsolutePath(path)
        return
    if isinstance(expr, xp.RelativePath):
        for path in _path_reductions(expr.path):
            yield xp.RelativePath(path)


def _path_reductions(path: xp.Path) -> Iterator[xp.Path]:
    if isinstance(path, xp.PathCompose):
        yield path.first
        yield path.second
        for first in _path_reductions(path.first):
            yield xp.PathCompose(first, path.second)
        for second in _path_reductions(path.second):
            yield xp.PathCompose(path.first, second)
    elif isinstance(path, xp.QualifiedPath):
        yield path.path
        for inner in _path_reductions(path.path):
            yield xp.QualifiedPath(inner, path.qualifier)
        for qualifier in _qualifier_reductions(path.qualifier):
            yield xp.QualifiedPath(path.path, qualifier)
    elif isinstance(path, xp.PathUnion):
        yield path.left
        yield path.right
    elif isinstance(path, xp.Step) and path.label is not None:
        yield xp.Step(path.axis, None)


def _qualifier_reductions(qualifier: xp.Qualifier) -> Iterator[xp.Qualifier]:
    if isinstance(qualifier, (xp.QualifierAnd, xp.QualifierOr)):
        yield qualifier.left
        yield qualifier.right
        for left in _qualifier_reductions(qualifier.left):
            yield type(qualifier)(left, qualifier.right)
        for right in _qualifier_reductions(qualifier.right):
            yield type(qualifier)(qualifier.left, right)
    elif isinstance(qualifier, xp.QualifierNot):
        yield qualifier.inner
        for inner in _qualifier_reductions(qualifier.inner):
            yield xp.QualifierNot(inner)
    elif isinstance(qualifier, xp.QualifierPath):
        if qualifier.absolute:
            yield xp.QualifierPath(qualifier.path, absolute=False)
        for path in _path_reductions(qualifier.path):
            yield xp.QualifierPath(path, qualifier.absolute)
