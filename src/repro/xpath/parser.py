"""Parser for the surface syntax of the XPath fragment.

Accepted syntax, following the XPath 1.0 recommendation restricted to the
fragment of Figure 4:

* full axis names with ``::`` (``child::a``, ``preceding-sibling::b``, ...);
  the shorter forms used in the paper (``foll-sibling``, ``prec-sibling``,
  ``desc-or-self``, ``anc-or-self``) are accepted as well;
* the abbreviations ``name`` (for ``child::name``), ``*`` (for ``child::*``),
  ``.`` (for ``self::*``), ``..`` (for ``parent::*``) and ``//`` (for
  ``/descendant-or-self::*/``);
* a leading ``/`` for absolute paths and a leading ``.//`` or ``//`` for
  relative/absolute descendant navigation;
* qualifiers between square brackets combined with ``and``, ``or`` and
  ``not(...)``;
* expression union ``e1 | e2`` and intersection ``e1 intersect e2`` (the
  paper writes ``∩``, which is also accepted), plus parenthesised path unions
  such as ``html/(head | body)``.
"""

from __future__ import annotations

import re

from repro.core.errors import ParseError
from repro.xpath import ast as xp

_AXIS_NAMES: dict[str, xp.Axis] = {
    "child": xp.Axis.CHILD,
    "self": xp.Axis.SELF,
    "parent": xp.Axis.PARENT,
    "descendant": xp.Axis.DESCENDANT,
    "descendant-or-self": xp.Axis.DESC_OR_SELF,
    "desc-or-self": xp.Axis.DESC_OR_SELF,
    "ancestor": xp.Axis.ANCESTOR,
    "ancestor-or-self": xp.Axis.ANC_OR_SELF,
    "anc-or-self": xp.Axis.ANC_OR_SELF,
    "following-sibling": xp.Axis.FOLL_SIBLING,
    "foll-sibling": xp.Axis.FOLL_SIBLING,
    "preceding-sibling": xp.Axis.PREC_SIBLING,
    "prec-sibling": xp.Axis.PREC_SIBLING,
    "following": xp.Axis.FOLLOWING,
    "preceding": xp.Axis.PRECEDING,
}

_TOKEN_RE = re.compile(
    r"\s*(?:(?P<name>[A-Za-z_][A-Za-z0-9_.\-]*)"
    r"|(?P<symbol>::|//|/|\[|\]|\(|\)|\||∩|&|\*|\.\.|\.))"
)

_STAR_STEP = xp.Step(xp.Axis.DESC_OR_SELF, None)


class _Tokens:
    def __init__(self, text: str):
        self.text = text
        self.items: list[tuple[str, str, int]] = []
        pos = 0
        while pos < len(text):
            if text[pos:].strip() == "":
                break
            match = _TOKEN_RE.match(text, pos)
            if match is None:
                raise ParseError("unexpected character in XPath expression", pos, text)
            for group in ("name", "symbol"):
                value = match.group(group)
                if value is not None:
                    self.items.append((group, value, match.start(group)))
                    break
            pos = match.end()
        self.index = 0

    def peek(self, offset: int = 0) -> tuple[str, str, int] | None:
        position = self.index + offset
        if position < len(self.items):
            return self.items[position]
        return None

    def next(self) -> tuple[str, str, int]:
        token = self.peek()
        if token is None:
            raise ParseError("unexpected end of XPath expression", len(self.text), self.text)
        self.index += 1
        return token

    def accept(self, value: str) -> bool:
        token = self.peek()
        if token is not None and token[1] == value:
            self.index += 1
            return True
        return False

    def accept_name(self, value: str) -> bool:
        token = self.peek()
        if token is not None and token[0] == "name" and token[1] == value:
            self.index += 1
            return True
        return False

    def expect(self, value: str) -> None:
        token = self.peek()
        if token is None or token[1] != value:
            position = token[2] if token is not None else len(self.text)
            raise ParseError(f"expected {value!r}", position, self.text)
        self.index += 1

    def at_end(self) -> bool:
        return self.index >= len(self.items)


def parse_xpath(text: str) -> xp.Expr:
    """Parse an XPath expression of the supported fragment."""
    tokens = _Tokens(text)
    expr = _parse_expr(tokens)
    if not tokens.at_end():
        raise ParseError("trailing input after XPath expression", tokens.peek()[2], text)
    return expr


# -- expressions: union / intersection -----------------------------------------


def _parse_expr(tokens: _Tokens) -> xp.Expr:
    left = _parse_intersection(tokens)
    while True:
        token = tokens.peek()
        if token is not None and token[1] == "|":
            tokens.next()
            right = _parse_intersection(tokens)
            left = xp.ExprUnion(left, right)
        else:
            return left


def _parse_intersection(tokens: _Tokens) -> xp.Expr:
    left = _parse_single_expr(tokens)
    while True:
        token = tokens.peek()
        if token is not None and (token[1] in ("∩", "&") or token[1] == "intersect"):
            tokens.next()
            right = _parse_single_expr(tokens)
            left = xp.ExprIntersection(left, right)
        else:
            return left


def _parse_single_expr(tokens: _Tokens) -> xp.Expr:
    token = tokens.peek()
    if token is None:
        raise ParseError("empty XPath expression", 0, tokens.text)
    if token[1] == "//":
        tokens.next()
        rest = _parse_relative_path(tokens)
        return xp.AbsolutePath(xp.PathCompose(_STAR_STEP, rest))
    if token[1] == "/":
        tokens.next()
        return xp.AbsolutePath(_parse_relative_path(tokens))
    return xp.RelativePath(_parse_relative_path(tokens))


# -- paths -----------------------------------------------------------------------


def _parse_relative_path(tokens: _Tokens) -> xp.Path:
    path = _parse_step(tokens)
    while True:
        token = tokens.peek()
        if token is None:
            return path
        if token[1] == "//":
            tokens.next()
            path = xp.PathCompose(xp.PathCompose(path, _STAR_STEP), _parse_step(tokens))
        elif token[1] == "/":
            tokens.next()
            path = xp.PathCompose(path, _parse_step(tokens))
        else:
            return path


def _parse_step(tokens: _Tokens) -> xp.Path:
    token = tokens.peek()
    if token is None:
        raise ParseError("expected an XPath step", len(tokens.text), tokens.text)
    kind, value, position = token

    if value == "(":
        tokens.next()
        inner = _parse_path_union(tokens)
        tokens.expect(")")
        return _parse_qualifiers(tokens, inner)

    if value == ".":
        tokens.next()
        return _parse_qualifiers(tokens, xp.Step(xp.Axis.SELF, None))
    if value == "..":
        tokens.next()
        return _parse_qualifiers(tokens, xp.Step(xp.Axis.PARENT, None))
    if value == "*":
        tokens.next()
        return _parse_qualifiers(tokens, xp.Step(xp.Axis.CHILD, None))

    if kind == "name":
        following = tokens.peek(1)
        if following is not None and following[1] == "::":
            axis_name = value
            axis = _AXIS_NAMES.get(axis_name)
            if axis is None:
                raise ParseError(f"unknown axis {axis_name!r}", position, tokens.text)
            tokens.next()
            tokens.next()  # '::'
            test_token = tokens.peek()
            if test_token is None:
                raise ParseError("expected a node test", len(tokens.text), tokens.text)
            if test_token[1] == "*":
                tokens.next()
                step: xp.Path = xp.Step(axis, None)
            elif test_token[0] == "name":
                tokens.next()
                step = xp.Step(axis, test_token[1])
            else:
                raise ParseError("expected a node test", test_token[2], tokens.text)
            return _parse_qualifiers(tokens, step)
        tokens.next()
        return _parse_qualifiers(tokens, xp.Step(xp.Axis.CHILD, value))

    raise ParseError(f"unexpected token {value!r} in path", position, tokens.text)


def _parse_path_union(tokens: _Tokens) -> xp.Path:
    left = _parse_relative_path(tokens)
    while tokens.accept("|"):
        right = _parse_relative_path(tokens)
        left = xp.PathUnion(left, right)
    return left


def _parse_qualifiers(tokens: _Tokens, path: xp.Path) -> xp.Path:
    while tokens.accept("["):
        qualifier = _parse_qualifier_or(tokens)
        tokens.expect("]")
        path = xp.QualifiedPath(path, qualifier)
    return path


# -- qualifiers --------------------------------------------------------------------


def _parse_qualifier_or(tokens: _Tokens) -> xp.Qualifier:
    left = _parse_qualifier_and(tokens)
    while tokens.accept_name("or"):
        right = _parse_qualifier_and(tokens)
        left = xp.QualifierOr(left, right)
    return left


def _parse_qualifier_and(tokens: _Tokens) -> xp.Qualifier:
    left = _parse_qualifier_atom(tokens)
    while tokens.accept_name("and"):
        right = _parse_qualifier_atom(tokens)
        left = xp.QualifierAnd(left, right)
    return left


def _parse_qualifier_atom(tokens: _Tokens) -> xp.Qualifier:
    token = tokens.peek()
    if token is None:
        raise ParseError("expected a qualifier", len(tokens.text), tokens.text)
    if token[0] == "name" and token[1] == "not":
        following = tokens.peek(1)
        if following is not None and following[1] == "(":
            tokens.next()
            tokens.next()
            inner = _parse_qualifier_or(tokens)
            tokens.expect(")")
            return xp.QualifierNot(inner)
    if token[1] == "(":
        tokens.next()
        inner = _parse_qualifier_or(tokens)
        tokens.expect(")")
        return inner
    path = _parse_qualifier_path(tokens)
    return xp.QualifierPath(path)


def _parse_qualifier_path(tokens: _Tokens) -> xp.Path:
    # Inside qualifiers, paths may start with "." or "//" (e.g. ".//b[c]").
    token = tokens.peek()
    if token is not None and token[1] == "//":
        tokens.next()
        rest = _parse_relative_path(tokens)
        return xp.PathCompose(_STAR_STEP, rest)
    path = _parse_relative_path(tokens)
    return path
