"""Setuptools shim.

The offline environment used for reproduction has no ``wheel`` package, which
breaks PEP 660 editable installs (``pip install -e .``) with older setuptools.
This shim keeps ``python setup.py develop`` and legacy editable installs
working; all project metadata lives in ``pyproject.toml``.
"""

from setuptools import setup

setup()
