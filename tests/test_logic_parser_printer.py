"""Tests for the textual Lµ syntax: printing and parsing round-trips."""

import pytest

from repro.core.errors import ParseError
from repro.logic import syntax as sx
from repro.logic.parser import parse_formula
from repro.logic.printer import format_formula, format_formula_pretty


def test_print_atoms():
    assert format_formula(sx.TRUE) == "T"
    assert format_formula(sx.FALSE) == "F"
    assert format_formula(sx.START) == "s"
    assert format_formula(sx.NSTART) == "~s"
    assert format_formula(sx.prop("div")) == "div"
    assert format_formula(sx.nprop("div")) == "~div"


def test_print_modalities_and_connectives():
    formula = sx.mk_and(sx.dia(1, sx.prop("a")), sx.no_dia(-2))
    assert format_formula(formula) == "<1>a & ~<-2>T"
    nested = sx.mk_or(sx.prop("a"), sx.mk_and(sx.prop("b"), sx.prop("c")))
    assert format_formula(nested) == "a | b & c"


def test_print_fixpoint():
    formula = sx.mu((("X", sx.dia(1, sx.var("X")) | sx.prop("a")),), sx.var("X"))
    assert format_formula(formula) == "let_mu X = <1>$X | a in $X"


def test_parse_atoms_and_connectives():
    assert parse_formula("T") is sx.TRUE
    assert parse_formula("a & b | c") is sx.mk_or(
        sx.mk_and(sx.prop("a"), sx.prop("b")), sx.prop("c")
    )
    assert parse_formula("<1>a & <-1>T") is sx.mk_and(
        sx.dia(1, sx.prop("a")), sx.dia(-1, sx.TRUE)
    )


def test_parse_negation_normalises():
    assert parse_formula("~<1>T") is sx.no_dia(1)
    assert parse_formula("~(a | b)") is sx.mk_and(sx.nprop("a"), sx.nprop("b"))
    assert parse_formula("~s") is sx.NSTART


def test_parse_fixpoint_with_bindings():
    formula = parse_formula("let_mu X = <1>$X | a, Y = <2>$Y | b in $X & $Y")
    assert formula.is_fixpoint
    assert [name for name, _def in formula.defs] == ["X", "Y"]


def test_parse_errors():
    with pytest.raises(ParseError):
        parse_formula("a &")
    with pytest.raises(ParseError):
        parse_formula("(a | b")
    with pytest.raises(ParseError):
        parse_formula("let_mu X = a $X")


@pytest.mark.parametrize(
    "formula",
    [
        sx.mk_and(sx.prop("a"), sx.dia(1, sx.mk_or(sx.prop("b"), sx.START))),
        sx.mu1(lambda x: sx.dia(-1, sx.START) | sx.dia(-2, x)),
        sx.mk_or(sx.no_dia(1), sx.dia(2, sx.nprop("p"))),
        sx.mu(
            (("A", sx.dia(1, sx.var("A")) | sx.prop("x")), ("B", sx.dia(2, sx.var("A")))),
            sx.var("B"),
        ),
    ],
)
def test_round_trip(formula):
    assert parse_formula(format_formula(formula)) is formula


def test_pretty_printer_splits_bindings():
    formula = sx.mu(
        (("A", sx.prop("a")), ("B", sx.prop("b"))),
        sx.var("A") | sx.var("B"),
    )
    pretty = format_formula_pretty(formula)
    assert pretty.splitlines()[0] == "let_mu"
    assert len(pretty.splitlines()) == 4


# -- generator-produced formulas -------------------------------------------------


@pytest.mark.parametrize("seed", range(40))
def test_generated_xpath_translations_round_trip(seed):
    """parse(format(f)) is f for Lµ formulas the XPath translation emits.

    The generated expressions cover attribute steps, nested qualifiers,
    negation and both translation modes, so the printed formulas exercise
    every production of the textual Lµ syntax (including fixpoint binders
    and attribute propositions).
    """
    import random

    from repro.testing.generators import GeneratorConfig, gen_xpath
    from repro.xpath.compile import compile_xpath

    rng = random.Random(seed)
    expr = gen_xpath(rng, ("a", "b"), ("p",), GeneratorConfig())
    formula = compile_xpath(expr)
    assert parse_formula(format_formula(formula)) is formula


@pytest.mark.parametrize("seed", range(10))
def test_generated_dtd_translations_round_trip(seed):
    import random

    from repro.testing.generators import GeneratorConfig, gen_dtd
    from repro.xmltypes.compile import compile_dtd

    rng = random.Random(seed)
    _source, dtd = gen_dtd(rng, GeneratorConfig())
    formula = compile_dtd(dtd)
    assert parse_formula(format_formula(formula)) is formula
