"""Unranked labelled trees (the element structure of an XML document).

The paper ignores text content and data values (Section 1 restricts the XPath
fragment to the navigational core), so a document is a tree of element labels.
Following the attribute extension of the companion thesis ("Logics for XML"),
each node additionally carries a *set of attribute names*: attribute values
stay out of the model, only presence matters.  A node may also carry the
*start mark* used by the logic to record where XPath evaluation started
(Section 3).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Iterator

from repro.core.errors import ParseError


@dataclass(frozen=True)
class Tree:
    """An unranked tree node: label, ordered children, mark, attribute names.

    Instances are immutable and hashable so they can be used inside the
    focused-tree zipper and inside sets of focused trees.  ``attributes`` is
    normalised to a sorted, duplicate-free tuple so two nodes with the same
    attribute *set* compare equal regardless of construction order.
    """

    label: str
    children: tuple["Tree", ...] = ()
    marked: bool = False
    attributes: tuple[str, ...] = ()

    def __post_init__(self) -> None:
        if not isinstance(self.children, tuple):
            object.__setattr__(self, "children", tuple(self.children))
        normalised = tuple(sorted(set(self.attributes)))
        if normalised != self.attributes:
            object.__setattr__(self, "attributes", normalised)

    def has_attribute(self, name: str | None) -> bool:
        """Whether the node carries attribute ``name`` (``None``/``"*"``: any)."""
        if name is None or name == "*":
            return bool(self.attributes)
        return name in self.attributes

    # -- structural helpers -------------------------------------------------

    def with_mark(self, marked: bool = True) -> "Tree":
        """Return the same node with its mark set to ``marked``."""
        return replace(self, marked=marked)

    def unmark_all(self) -> "Tree":
        """Return a copy of the whole tree with every mark removed."""
        return Tree(
            self.label,
            tuple(c.unmark_all() for c in self.children),
            False,
            self.attributes,
        )

    def mark_at(self, path: tuple[int, ...]) -> "Tree":
        """Return a copy with the mark placed on the node at ``path``.

        ``path`` is a sequence of child indexes from this node; the empty path
        marks this node itself.  Any pre-existing mark is preserved, so callers
        normally start from an unmarked tree (see :meth:`unmark_all`).
        """
        if not path:
            return self.with_mark(True)
        index, rest = path[0], path[1:]
        if index < 0 or index >= len(self.children):
            raise IndexError(f"no child {index} under node {self.label!r}")
        new_children = list(self.children)
        new_children[index] = new_children[index].mark_at(rest)
        return Tree(self.label, tuple(new_children), self.marked, self.attributes)

    # -- traversal ----------------------------------------------------------

    def iter_nodes(self) -> Iterator["Tree"]:
        """Yield every node of the tree in document (pre) order."""
        yield self
        for child in self.children:
            yield from child.iter_nodes()

    def iter_paths(self) -> Iterator[tuple[tuple[int, ...], "Tree"]]:
        """Yield ``(path, node)`` pairs in document order."""
        stack: list[tuple[tuple[int, ...], Tree]] = [((), self)]
        while stack:
            path, node = stack.pop()
            yield path, node
            for i in range(len(node.children) - 1, -1, -1):
                stack.append((path + (i,), node.children[i]))

    def size(self) -> int:
        """Number of nodes in the tree."""
        return 1 + sum(child.size() for child in self.children)

    def depth(self) -> int:
        """Number of nodes on the longest root-to-leaf path."""
        if not self.children:
            return 1
        return 1 + max(child.depth() for child in self.children)

    def labels(self) -> set[str]:
        """Set of labels occurring in the tree."""
        return {node.label for node in self.iter_nodes()}

    def mark_count(self) -> int:
        """Number of marked nodes (a focused tree requires exactly one)."""
        return sum(1 for node in self.iter_nodes() if node.marked)

    def find_mark(self) -> tuple[int, ...] | None:
        """Return the path of the first marked node, or ``None``."""
        for path, node in self.iter_paths():
            if node.marked:
                return path
        return None

    def __str__(self) -> str:  # pragma: no cover - convenience only
        return serialize_tree(self)


# ---------------------------------------------------------------------------
# Parsing / serialising a tiny XML-like syntax: <a href=""><b/><c></c></a>
# The start mark is written as a trailing "!" on the tag name: <a!/>.
# Attributes are presence-only: any quoted value is accepted and discarded.
# ---------------------------------------------------------------------------

_NAME_CHARS = set("abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789_-.:")


class _XmlScanner:
    """A minimal scanner for the element-only XML subset used by the library."""

    def __init__(self, text: str):
        self.text = text
        self.pos = 0

    def error(self, message: str) -> ParseError:
        return ParseError(message, self.pos, self.text)

    def skip_ws(self) -> None:
        while self.pos < len(self.text) and self.text[self.pos].isspace():
            self.pos += 1

    def expect(self, char: str) -> None:
        if self.pos >= len(self.text) or self.text[self.pos] != char:
            raise self.error(f"expected {char!r}")
        self.pos += 1

    def read_name(self) -> str:
        start = self.pos
        while self.pos < len(self.text) and self.text[self.pos] in _NAME_CHARS:
            self.pos += 1
        if self.pos == start:
            raise self.error("expected an element name")
        return self.text[start:self.pos]

    def at(self, string: str) -> bool:
        return self.text.startswith(string, self.pos)


def parse_tree(text: str) -> Tree:
    """Parse an element-only XML string into a :class:`Tree`.

    The accepted syntax is ``<name> ... </name>`` and ``<name/>``; a ``!``
    immediately after the name marks the node as the start node, e.g.
    ``<a><b!/></a>``.  Attributes are accepted as ``name`` or ``name="value"``
    (single or double quotes); only the attribute's *presence* is recorded —
    values lie outside the data model and are discarded.  Text content,
    comments and processing instructions are rejected.
    """
    scanner = _XmlScanner(text)
    scanner.skip_ws()
    tree = _parse_element(scanner)
    scanner.skip_ws()
    if scanner.pos != len(scanner.text):
        raise scanner.error("trailing content after the document element")
    return tree


def _parse_attributes(scanner: _XmlScanner) -> tuple[str, ...]:
    attributes: list[str] = []
    while True:
        scanner.skip_ws()
        if scanner.at("/>") or scanner.at(">"):
            return tuple(attributes)
        attributes.append(scanner.read_name())
        scanner.skip_ws()
        if scanner.at("="):
            scanner.pos += 1
            scanner.skip_ws()
            if not (scanner.at('"') or scanner.at("'")):
                raise scanner.error("expected a quoted attribute value")
            quote = scanner.text[scanner.pos]
            scanner.pos += 1
            closing = scanner.text.find(quote, scanner.pos)
            if closing < 0:
                raise scanner.error("unterminated attribute value")
            scanner.pos = closing + 1


def _parse_element(scanner: _XmlScanner) -> Tree:
    scanner.expect("<")
    name = scanner.read_name()
    marked = False
    if scanner.at("!"):
        marked = True
        scanner.pos += 1
    attributes = _parse_attributes(scanner)
    if scanner.at("/>"):
        scanner.pos += 2
        return Tree(name, (), marked, attributes)
    scanner.expect(">")
    children: list[Tree] = []
    while True:
        scanner.skip_ws()
        if scanner.at("</"):
            scanner.pos += 2
            closing = scanner.read_name()
            if closing != name:
                raise scanner.error(f"mismatched closing tag </{closing}> for <{name}>")
            scanner.skip_ws()
            scanner.expect(">")
            return Tree(name, tuple(children), marked, attributes)
        if scanner.at("<"):
            children.append(_parse_element(scanner))
        else:
            raise scanner.error("unexpected character inside element content")


def serialize_tree(tree: Tree, indent: int | None = None) -> str:
    """Serialise a :class:`Tree` back to the XML-like syntax of :func:`parse_tree`.

    With ``indent`` set to a non-negative integer, the output is pretty-printed
    with that many spaces per nesting level; otherwise it is a single line.
    """
    if indent is None:
        return _serialize_compact(tree)
    return "\n".join(_serialize_pretty(tree, 0, indent))


def _serialize_attributes(tree: Tree) -> str:
    # Values are not part of the data model, so attributes render as name="".
    return "".join(f' {name}=""' for name in tree.attributes)


def _serialize_compact(tree: Tree) -> str:
    mark = "!" if tree.marked else ""
    attrs = _serialize_attributes(tree)
    if not tree.children:
        return f"<{tree.label}{mark}{attrs}/>"
    inner = "".join(_serialize_compact(child) for child in tree.children)
    return f"<{tree.label}{mark}{attrs}>{inner}</{tree.label}>"


def _serialize_pretty(tree: Tree, level: int, indent: int) -> list[str]:
    pad = " " * (indent * level)
    mark = "!" if tree.marked else ""
    attrs = _serialize_attributes(tree)
    if not tree.children:
        return [f"{pad}<{tree.label}{mark}{attrs}/>"]
    lines = [f"{pad}<{tree.label}{mark}{attrs}>"]
    for child in tree.children:
        lines.extend(_serialize_pretty(child, level + 1, indent))
    lines.append(f"{pad}</{tree.label}>")
    return lines
