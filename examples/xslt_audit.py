"""The stylesheet auditor: whole-stylesheet analysis in one solver batch.

Audits the two committed example stylesheets:

* ``examples/audit_clean.xsl`` against the Wikipedia schema — the clean
  control: zero findings, and its catch-all ``match="*"`` rule means the
  coverage rule plans no solver queries at all.
* ``examples/audit_stylesheet.xsl`` against XHTML 1.0 Strict — the seeded
  example: a dead template, two shadowed templates (one by priority, one by
  import precedence), an unreachable ``xsl:when``, and a coverage gap
  (``li`` is only matched as ``ul/li``, but ``li`` also occurs in ``ol``).

Every check the auditor plans is decided in a single
``StaticAnalyzer.solve_many`` batch; the report's cache statistics show the
schema translations being shared across all of them.

Set ``REPRO_CACHE_DIR`` to reuse a persistent solve cache (CI does this so
the audit replays verdicts the smoke step already computed).

Run with:  PYTHONPATH=src python examples/xslt_audit.py
"""

import os
from pathlib import Path

from repro.api import StaticAnalyzer
from repro.xslt import audit_stylesheet

EXAMPLES = Path(__file__).resolve().parent


def main() -> None:
    analyzer = StaticAnalyzer(cache_dir=os.environ.get("REPRO_CACHE_DIR") or None)

    print("=== clean control: examples/audit_clean.xsl vs wikipedia ===")
    clean = audit_stylesheet(EXAMPLES / "audit_clean.xsl", "wikipedia", analyzer=analyzer)
    print(clean.to_text())
    assert not clean.findings, "the control stylesheet must audit clean"
    assert "coverage-gap" not in clean.queries, "catch-all => no coverage queries"

    print()
    print("=== seeded example: examples/audit_stylesheet.xsl vs xhtml-strict ===")
    report = audit_stylesheet(
        EXAMPLES / "audit_stylesheet.xsl", "xhtml-strict", analyzer=analyzer
    )
    print(report.to_text())

    rules = {finding.rule for finding in report.findings}
    for expected in (
        "dead-template",
        "shadowed-template",
        "unreachable-branch",
        "coverage-gap",
    ):
        assert expected in rules, f"seeded {expected} finding missing"
    assert report.exit_code("error") == 1

    # The batching evidence: every query went through one solve_many call,
    # and the shared schemas were translated once per (alphabet) variant,
    # not once per query — far fewer type-cache entries than 2x queries.
    # (The statistics are cumulative: this analyzer ran both audits.)
    statistics = report.cache_statistics
    queries = sum(report.queries.values())
    total_queries = queries + sum(clean.queries.values())
    answered = (
        statistics["solver_runs"]
        + statistics["solve_cache_hits"]
        + statistics["disk_cache_hits"]
    )
    assert answered >= total_queries
    assert statistics["type_cache_entries"] < 2 * total_queries
    print()
    print(
        f"batched {queries} queries -> {report.solver_runs} solver runs, "
        f"{report.cache_hits} cache hits, "
        f"{statistics['type_cache_entries']} cached type translations"
    )


if __name__ == "__main__":
    main()
