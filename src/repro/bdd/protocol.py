"""The ``BDDBackend`` protocol: the narrow interface every BDD engine implements.

The solver layers (:mod:`repro.solver.relations`, :mod:`repro.solver.symbolic`,
:mod:`repro.solver.models`, :mod:`repro.solver.truth`) consume the BDD package
exclusively through this protocol, so an engine is a drop-in as long as it
provides these operations with the contracts documented here.  Two engines
ship with the repository:

* ``"dict"`` — :class:`repro.bdd.manager.BDDManager`, the original pure-Python
  dict-of-tuples ROBDD engine;
* ``"arena"`` — :class:`repro.bdd.arena.ArenaBDDManager`, an int-indexed
  packed-array arena with complement edges and integer-packed operation
  caches.

Backends are registered in :mod:`repro.bdd.backends`; construct one with
:func:`repro.bdd.backends.create_manager` (which also honours the
``REPRO_BDD_BACKEND`` environment variable).

Contracts every backend must satisfy (verified for all registered backends by
``tests/test_backend_conformance.py``):

* **Node identity is semantic identity.**  Node ids are non-negative
  integers; two ids returned by the same manager are equal *iff* they denote
  the same boolean function (strong canonicity).  The constants
  ``manager.FALSE`` / ``manager.TRUE`` are the terminal ids — their concrete
  values are backend-specific (the arena's complement edges put ``TRUE`` at
  ``0``), so clients must compare against the attributes, never against
  literals.
* **Operations are pure** with respect to observable functions: caches and
  the node table grow, but no operation changes the function an existing id
  denotes (until :meth:`garbage_collect`, which returns a relocation map and
  invalidates everything it does not cover).
* **GC hooks.**  ``add_gc_hook(roots, remap)`` registers a participant whose
  ``roots()`` ids survive every collection and whose ``remap(relocations)``
  is called after the table is rebuilt; ``generation`` increments on every
  collection so holders of raw ids can detect staleness.  The relocation map
  covers every surviving id (terminals included) and ``translate`` raises
  ``KeyError`` on reclaimed ids.
* **Statistics.**  :meth:`statistics` returns a
  :class:`repro.bdd.manager.BDDStatistics`; ``ite_calls`` counts ternary
  *and* fused binary operations including recursive expansions (each backend
  counts its own algorithm's steps, so absolute values are backend-specific
  but deterministic for a fixed workload).
"""

from __future__ import annotations

from typing import (
    Callable,
    Iterable,
    Iterator,
    Mapping,
    Protocol,
    Sequence,
    runtime_checkable,
)

from repro.bdd.manager import BDD, BDDStatistics


@runtime_checkable
class BDDBackend(Protocol):
    """Structural interface of a BDD engine (see module docstring)."""

    #: Registry name of the backend class (``"dict"``, ``"arena"``, ...).
    backend_name: str
    #: Terminal node ids (backend-specific values; compare, don't assume).
    FALSE: int
    TRUE: int
    #: Incremented by every :meth:`garbage_collect`.
    generation: int

    # -- variables ---------------------------------------------------------
    def add_variable(self, name: str) -> int: ...
    @property
    def variable_names(self) -> tuple[str, ...]: ...
    def level_of(self, name: str) -> int: ...
    def name_of(self, level: int) -> str: ...
    def var_count(self) -> int: ...
    def node_count(self) -> int: ...

    # -- statistics / caches ----------------------------------------------
    def statistics(self) -> BDDStatistics: ...
    def clear_caches(self) -> None: ...

    # -- resource governance -----------------------------------------------
    #: Attach (or detach, with ``None``) a cooperative resource governor
    #: (:class:`repro.solver.governor.ResourceGovernor`-shaped: its ``tick()``
    #: is called once per kernel frame and may raise ``BudgetExceeded``).
    #: Engines must keep the ungoverned fast path at a single ``None`` check
    #: per frame, and must stay *consistent* after a tick raises: the node
    #: table and caches may hold partial results, but every already-returned
    #: id stays valid, so the manager remains usable (e.g. by a degraded
    #: re-run or the service's next request on a fresh solver).
    def set_governor(self, governor: object | None) -> None: ...

    # -- garbage collection ------------------------------------------------
    def add_gc_hook(
        self,
        roots: Callable[[], Iterable[int]],
        remap: Callable[[dict[int, int]], None],
    ) -> None: ...
    def garbage_collect(self, roots: Iterable[int] = ()) -> dict[int, int]: ...
    def translate(self, remap: Mapping[int, int], node: int) -> int: ...

    # -- node constructors -------------------------------------------------
    def var_node(self, name: str) -> int: ...
    def nvar_node(self, name: str) -> int: ...

    # -- boolean operations ------------------------------------------------
    def ite(self, cond: int, then: int, other: int) -> int: ...
    def neg(self, node: int) -> int: ...
    def conj(self, a: int, b: int) -> int: ...
    def disj(self, a: int, b: int) -> int: ...
    def xor(self, a: int, b: int) -> int: ...
    def iff(self, a: int, b: int) -> int: ...
    def implies(self, a: int, b: int) -> int: ...
    def conj_all(self, nodes: Iterable[int]) -> int: ...
    def disj_all(self, nodes: Iterable[int]) -> int: ...

    # -- quantification ----------------------------------------------------
    def exists(self, node: int, names: Iterable[str]) -> int: ...
    def forall(self, node: int, names: Iterable[str]) -> int: ...
    def and_exists(
        self,
        a: int,
        b: int,
        names: Iterable[str],
        cache: dict | None = None,
    ) -> int: ...

    # -- substitution ------------------------------------------------------
    def rename(self, node: int, mapping: Mapping[str, str]) -> int: ...
    def restrict(self, node: int, assignment: Mapping[str, bool]) -> int: ...
    def cofactor(self, node: int, name: str, value: bool) -> int: ...

    # -- inspection --------------------------------------------------------
    def evaluate(self, node: int, assignment: Mapping[str, bool]) -> bool: ...
    def support(self, node: int) -> set[str]: ...
    def dag_size(self, node: int, limit: int | None = None) -> int: ...
    def pick_assignment(self, node: int) -> dict[str, bool] | None: ...
    def count_assignments(
        self, node: int, over: Sequence[str] | None = None
    ) -> int: ...
    def iter_assignments(
        self, node: int, over: Sequence[str]
    ) -> Iterator[dict[str, bool]]: ...

    # -- wrapper construction ----------------------------------------------
    def false(self) -> BDD: ...
    def true(self) -> BDD: ...
    def variable(self, name: str) -> BDD: ...
    def wrap(self, node: int) -> BDD: ...
