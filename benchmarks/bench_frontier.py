"""Frontier-fixpoint ablation — delta products on vs off (PR 4 tentpole).

Runs the nested-containment family under both evaluation modes of
:class:`repro.solver.symbolic.SymbolicSolver` and records the counters that
make the incremental evaluation measurable without timing noise:
``delta_iterations`` (iterations whose relational products pushed only the
frontier delta) and ``partitions_skipped`` (relation partitions proved
irrelevant by the cone-of-influence check).  The measurement lives in
:func:`repro.cli.bench.run_frontier`, shared with ``repro bench frontier``.
"""

from conftest import write_bench_json, write_report
from repro.cli.bench import run_frontier


def test_frontier_ablation(benchmark):
    payload = benchmark.pedantic(run_frontier, rounds=1, iterations=1)
    rows = payload["rows"]
    report = ["frontier (delta) fixpoint vs naive re-evaluation"]
    for row in rows:
        frontier, naive = row["frontier"], row["naive"]
        # Equal verdicts/iterations are asserted inside the runner; the
        # frontier mode must actually engage its machinery.
        assert naive["delta_iterations"] == 0
        report.append(
            f"depth {row['depth']}: "
            f"frontier ite={frontier['bdd_ite_calls']:>8} "
            f"(delta_iterations={frontier['delta_iterations']}, "
            f"skipped={frontier['partitions_skipped']}) | "
            f"naive ite={naive['bdd_ite_calls']:>8}"
        )
    assert any(row["frontier"]["delta_iterations"] > 0 for row in rows)
    assert all(row["frontier"]["partitions_skipped"] > 0 for row in rows)
    write_report("frontier_ablation", report)
    write_bench_json("frontier", payload)
