"""Tests of the type → Lµ translation (Figure 14) and of the built-in DTD library."""

import pytest

from repro.logic.cyclefree import is_cycle_free
from repro.logic.semantics import satisfies
from repro.logic import syntax as sx
from repro.trees.focus import focus_root
from repro.trees.unranked import parse_tree
from repro.xmltypes.binarize import binarize_dtd
from repro.xmltypes.compile import compile_dtd, compile_grammar
from repro.xmltypes.dtd import parse_dtd
from repro.xmltypes.library import (
    builtin_dtd,
    smil_dtd,
    wikipedia_dtd,
    xhtml_core_dtd,
    xhtml_strict_dtd,
)
from repro.xmltypes.membership import dtd_accepts

SIMPLE_DTD = parse_dtd(
    "<!ELEMENT r (a*, b?)><!ELEMENT a (c)><!ELEMENT b EMPTY><!ELEMENT c EMPTY>",
    root="r",
)


def _root_satisfies(formula, text):
    document = parse_tree(text).unmark_all().mark_at(())
    return satisfies(formula, focus_root(document))


def test_translation_accepts_valid_documents():
    formula = compile_dtd(SIMPLE_DTD)
    for text in ["<r/>", "<r><b/></r>", "<r><a><c/></a><a><c/></a><b/></r>"]:
        assert _root_satisfies(formula, text), text


def test_translation_rejects_invalid_documents():
    formula = compile_dtd(SIMPLE_DTD)
    for text in ["<x/>", "<r><b/><a><c/></a></r>", "<r><a/></r>", "<r><b/><b/></r>"]:
        assert not _root_satisfies(formula, text), text


def test_translation_agrees_with_direct_validation_on_wikipedia():
    dtd = wikipedia_dtd()
    formula = compile_dtd(dtd)
    documents = [
        "<article><meta><title/></meta><text/></article>",
        "<article><meta><title/><history><edit/></history></meta><redirect/></article>",
        "<article><meta><title/></meta></article>",
        "<article><redirect/><meta><title/></meta></article>",
        "<edit><status/></edit>",
    ]
    for text in documents:
        document = parse_tree(text)
        assert dtd_accepts(dtd, document) == _root_satisfies(formula, text), text


def test_translation_only_uses_forward_modalities():
    formula = compile_dtd(wikipedia_dtd())
    programs = {
        sub.prog for sub in sx.iter_subformulas(formula) if sub.kind == sx.KIND_DIA
    }
    assert programs <= {1, 2}
    assert is_cycle_free(formula)


def test_translation_size_is_linear_in_grammar_size():
    grammar = binarize_dtd(wikipedia_dtd()).restricted_to_reachable()
    formula = compile_grammar(grammar)
    alternatives = sum(len(alts) for alts in grammar.variables.values())
    assert sx.formula_size(formula) <= 30 * alternatives


def test_library_table1_statistics():
    # Table 1 of the paper: SMIL 1.0 has 19 element symbols, XHTML 1.0 Strict 77.
    assert smil_dtd().symbol_count() == 19
    assert xhtml_strict_dtd().symbol_count() == 77
    assert xhtml_core_dtd().symbol_count() == 21
    assert wikipedia_dtd().symbol_count() == 9
    assert binarize_dtd(smil_dtd()).restricted_to_reachable().variable_count() >= 11
    assert binarize_dtd(xhtml_strict_dtd()).restricted_to_reachable().variable_count() >= 77


def test_builtin_lookup():
    assert builtin_dtd("smil") is smil_dtd()
    assert builtin_dtd("xhtml") is xhtml_strict_dtd()
    with pytest.raises(KeyError):
        builtin_dtd("relaxng")


def test_smil_validates_a_presentation():
    dtd = smil_dtd()
    document = parse_tree(
        "<smil><head><layout><region/></layout></head>"
        "<body><par><video><anchor/></video><audio/></par></body></smil>"
    )
    assert dtd_accepts(dtd, document)
    assert not dtd_accepts(dtd, parse_tree("<smil><body/><head/></smil>"))


def test_xhtml_core_validates_a_page():
    dtd = xhtml_core_dtd()
    document = parse_tree(
        "<html><head><title/></head>"
        "<body><div><p><a><img/></a></p></div><table><tr><td/></tr></table></body></html>"
    )
    assert dtd_accepts(dtd, document)
    # Direct anchor nesting is forbidden ...
    assert not dtd_accepts(
        dtd, parse_tree("<html><head><title/></head><body><p><a><a/></a></p></body></html>")
    )
    # ... but nesting through an object element is allowed (the e8 loophole).
    assert dtd_accepts(
        dtd,
        parse_tree(
            "<html><head><title/></head><body><p><a><object><p><a/></p></object></a></p></body></html>"
        ),
    )


def test_xhtml_strict_keeps_the_anchor_loophole():
    dtd = xhtml_strict_dtd()
    nested_through_object = parse_tree(
        "<html><head><title/></head>"
        "<body><p><a><object><p><a/></p></object></a></p></body></html>"
    )
    assert dtd_accepts(dtd, nested_through_object)
    assert not dtd_accepts(
        dtd,
        parse_tree("<html><head><title/></head><body><p><a><a/></a></p></body></html>"),
    )
