"""Differential fuzzing for the decision procedure: ``repro.testing``.

The paper's correctness claim — that the symbolic Lµ solver agrees with
XPath's denotational semantics and XML-type membership on *all* inputs — is
only as strong as the inputs it is exercised on.  This package manufactures
those inputs and cross-checks every layer of the pipeline against executable
specifications that share no code with the BDD engine:

* :mod:`repro.testing.generators` — seeded random generators for DTDs
  (:func:`gen_dtd`), XPath expressions over a DTD's alphabet
  (:func:`gen_xpath`, including attribute steps and nested qualifiers) and
  documents valid for a DTD (:func:`gen_tree`);
* :mod:`repro.testing.oracle` — a *bounded explicit oracle* that decides the
  same problems by enumerating focused trees up to depth/width bounds and
  evaluating the denotational XPath semantics, a gated run of the ψ-type
  :class:`repro.solver.explicit.ExplicitSolver`, and a witness-replay check
  for every satisfiable verdict;
* :mod:`repro.testing.shrink` — a disagreement shrinker that minimises
  failing (DTD, query) pairs while a predicate keeps holding;
* :mod:`repro.testing.fuzz` — the campaign driver behind ``repro fuzz``:
  every trial runs the symbolic solver with pruning on/off × frontier
  deltas on/off, compares all verdicts against the oracles, shrinks any
  disagreement, and serialises it into ``tests/corpus/`` for permanent
  replay by ``tests/test_corpus.py``;
* :mod:`repro.testing.faults` — deterministic fault injection (worker
  crashes, torn cache writes, expiring deadlines) behind ``repro fuzz
  --chaos`` and the robustness test-suite.

See ``docs/TESTING.md`` for the user-facing guide.
"""

from repro.testing.fuzz import (
    FuzzConfig,
    FuzzReport,
    TrialOutcome,
    evaluate_case,
    run_fuzz,
)
from repro.testing.generators import (
    GeneratorConfig,
    gen_case,
    gen_content_model,
    gen_dtd,
    gen_tree,
    gen_xpath,
    render_content,
)
from repro.testing.oracle import (
    Bounds,
    BoundedVerdict,
    bounded_search,
    enumerate_trees,
    explicit_verdict,
    replay_witness,
)
from repro.testing.shrink import shrink_case
from repro.testing.corpus import FuzzCase, load_corpus, write_corpus_case
from repro.testing import faults

__all__ = [
    "Bounds",
    "BoundedVerdict",
    "FuzzCase",
    "faults",
    "FuzzConfig",
    "FuzzReport",
    "GeneratorConfig",
    "TrialOutcome",
    "bounded_search",
    "enumerate_trees",
    "evaluate_case",
    "explicit_verdict",
    "gen_case",
    "gen_content_model",
    "gen_dtd",
    "gen_tree",
    "gen_xpath",
    "load_corpus",
    "render_content",
    "replay_witness",
    "run_fuzz",
    "shrink_case",
    "write_corpus_case",
]
