"""Execute every Python code block in ``docs/API.md``.

The API reference promises that its snippets are runnable; this test makes
that promise structural — a drifting snippet (renamed field, changed verdict,
different cache count) fails the suite and CI.  Each fenced ``python`` block
is executed in its own namespace, so blocks stay self-contained.
"""

import re
from pathlib import Path

import pytest

DOCS = Path(__file__).resolve().parent.parent / "docs" / "API.md"

_FENCED_PYTHON = re.compile(r"```python\n(.*?)```", re.DOTALL)


def _blocks() -> list[tuple[int, str]]:
    text = DOCS.read_text(encoding="utf-8")
    found = []
    for match in _FENCED_PYTHON.finditer(text):
        line = text[: match.start()].count("\n") + 2  # first line of the code
        found.append((line, match.group(1)))
    return found


BLOCKS = _blocks()


def test_api_docs_contain_snippets():
    assert len(BLOCKS) >= 6, "docs/API.md lost its runnable examples"


@pytest.mark.parametrize(
    "line,source", BLOCKS, ids=[f"API.md:{line}" for line, _ in BLOCKS]
)
def test_api_doc_block_executes(line, source):
    code = compile(source, f"{DOCS}:{line}", "exec")
    exec(code, {"__name__": f"docs_api_block_L{line}"})
