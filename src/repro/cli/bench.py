"""``repro bench`` — re-emit the machine-readable ``BENCH_*.json`` reports.

Two benchmarks are built in (the pytest wrappers under ``benchmarks/`` call
the same functions, so the numbers cannot drift between the CLI and the
suite):

* ``api-batch`` → ``BENCH_api_batch.json`` — one warm
  :meth:`repro.api.StaticAnalyzer.solve_many` pass over repeated Table 2
  queries vs. cold per-query analyzers.
* ``cli-cache`` → ``BENCH_cli_cache.json`` — the cross-process acceptance
  run: a 50-query JSONL batch streamed through ``repro serve`` twice, in two
  separate processes sharing one ``--cache-dir``.  The second (cold) process
  must answer every query without a single solver run.
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
import tempfile
import time
from pathlib import Path

from repro.api import StaticAnalyzer
from repro.cli import wire

BENCHMARKS = ("api-batch", "cli-cache")

#: The twelve benchmark XPath expressions of Figure 21 — the single home of
#: this corpus (benchmarks/conftest.py re-exports it for the pytest files).
FIGURE_21 = {
    "e1": "/a[.//b[c/*//d]/b[c//d]/b[c/d]]",
    "e2": "/a[.//b[c/*//d]/b[c/d]]",
    "e3": "a/b//c/foll-sibling::d/e",
    "e4": "a/b//d[prec-sibling::c]/e",
    "e5": "a/c/following::d/e",
    "e6": "a/b[//c]/following::d/e ∩ a/d[preceding::c]/e",
    "e7": "*//switch[ancestor::head]//seq//audio[prec-sibling::video]",
    "e8": "descendant::a[ancestor::a]",
    "e9": "/descendant::*",
    "e10": "html/(head | body)",
    "e11": "html/head/descendant::*",
    "e12": "html/body/descendant::*",
}

#: The fast rows of Table 2 (Figure 21 queries; SMIL/XHTML rows are slow).
TABLE2_FAST = (
    ("containment", [FIGURE_21["e1"], FIGURE_21["e2"]], None),
    ("containment", [FIGURE_21["e2"], FIGURE_21["e1"]], None),
    ("equivalence", [FIGURE_21["e3"], FIGURE_21["e4"]], None),
    ("containment", [FIGURE_21["e6"], FIGURE_21["e5"]], None),
)

#: The workload base of ``api-batch`` (the 6 queries bench_api_batch.py has
#: always replayed: Table 2 fast rows plus two Wikipedia-typed problems).
API_BATCH_BASE = TABLE2_FAST + (
    ("satisfiability", ["child::meta/child::title"], ["wikipedia"]),
    ("containment", ["child::history", "child::history[edit]"], ["wikipedia"]),
)

#: Distinct building blocks of the 50-query ``cli-cache`` workload.
_CLI_CACHE_BASE = API_BATCH_BASE + (
    ("emptiness", ["child::title/child::meta"], ["wikipedia"]),
    ("satisfiability", ["descendant::a[ancestor::a]"], ["xhtml-core"]),
    ("overlap", ["a//b", "a/b"], None),
    ("coverage", ["child::a", "child::b", "child::a"], None),
)


def _query_from_spec(kind, exprs, types):
    payload = {"kind": kind, "exprs": exprs}
    if types is not None:
        payload["types"] = types
    return wire.query_from_dict(payload)


def cli_cache_workload(repeats: int = 5) -> list[dict]:
    """The 50-query JSONL workload (10 distinct problems × ``repeats``)."""
    requests = []
    for repeat in range(repeats):
        for position, (kind, exprs, types) in enumerate(_CLI_CACHE_BASE):
            payload = {
                "id": repeat * len(_CLI_CACHE_BASE) + position,
                "kind": kind,
                "exprs": exprs,
            }
            if types is not None:
                payload["types"] = types
            requests.append(payload)
    return requests


# ---------------------------------------------------------------------------
# api-batch
# ---------------------------------------------------------------------------


#: Threshold asserted by benchmarks/bench_api_batch.py and recorded in the
#: payload, so the CLI and pytest producers emit an identical schema.
API_BATCH_REQUIRED_SPEEDUP = 1.5


def run_api_batch(repeats: int = 3) -> dict:
    """Warm ``solve_many`` vs. cold per-query analyzers on Table 2 fast rows."""
    workload = [_query_from_spec(*spec) for spec in API_BATCH_BASE] * repeats

    cold_started = time.perf_counter()
    cold_outcomes = [StaticAnalyzer().solve(query) for query in workload]
    cold_seconds = time.perf_counter() - cold_started

    analyzer = StaticAnalyzer()
    report = analyzer.solve_many(workload)
    for cold, batched in zip(cold_outcomes, report.outcomes):
        assert cold.holds == batched.holds, cold.problem

    return {
        "benchmark": "StaticAnalyzer.solve_many vs cold per-query solves",
        "workload_queries": len(workload),
        "repeats": repeats,
        "cold_seconds": round(cold_seconds, 6),
        "batch_seconds": round(report.total_seconds, 6),
        "speedup": round(cold_seconds / report.total_seconds, 3),
        "required_speedup": API_BATCH_REQUIRED_SPEEDUP,
        "solver_runs": report.solver_runs,
        "cache_hits": report.cache_hits,
        "cache_statistics": analyzer.cache_statistics(),
        "outcomes": [
            {"problem": outcome.problem, "holds": outcome.holds}
            for outcome in report.outcomes[: len(workload) // repeats]
        ],
    }


# ---------------------------------------------------------------------------
# cli-cache
# ---------------------------------------------------------------------------


def _serve_subprocess_env() -> dict[str, str]:
    """Environment for child processes: make *this* repro importable."""
    src_dir = Path(__file__).resolve().parents[2]
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        [str(src_dir)] + ([env["PYTHONPATH"]] if env.get("PYTHONPATH") else [])
    )
    return env


def _run_serve_once(cache_dir: str, requests: list[dict]) -> dict:
    """Stream the workload through one fresh ``repro serve`` process."""
    lines = [json.dumps(request) for request in requests] + [json.dumps({"op": "stats"})]
    started = time.perf_counter()
    process = subprocess.run(
        [sys.executable, "-m", "repro.cli", "serve", "--cache-dir", cache_dir],
        input="\n".join(lines) + "\n",
        capture_output=True,
        text=True,
        env=_serve_subprocess_env(),
        check=True,
    )
    elapsed = time.perf_counter() - started
    responses = [json.loads(line) for line in process.stdout.splitlines()]
    if len(responses) != len(requests) + 1:
        raise RuntimeError(
            f"serve answered {len(responses)} lines for {len(requests) + 1} requests; "
            f"stderr: {process.stderr[-500:]}"
        )
    stats = responses[-1]["stats"]
    failures = [r for r in responses[:-1] if not r.get("ok")]
    if failures:
        raise RuntimeError(f"serve reported errors: {failures[:3]}")
    return {
        "wall_seconds": round(elapsed, 6),
        "responses": responses[:-1],
        "stats": stats,
    }


def run_cli_cache(cache_dir: str | None = None, repeats: int = 5) -> dict:
    """The acceptance benchmark: two cold processes, one persistent cache.

    The first process populates ``cache_dir``; the second must replay the
    identical workload with **zero** solver runs (every distinct formula a
    disk hit, every repeat an in-memory hit).
    """
    requests = cli_cache_workload(repeats=repeats)
    with tempfile.TemporaryDirectory(prefix="repro-bench-cache-") as scratch:
        directory = cache_dir or os.path.join(scratch, "solve-cache")
        first = _run_serve_once(directory, requests)
        second = _run_serve_once(directory, requests)

    verdicts_first = [r["outcome"]["holds"] for r in first["responses"]]
    verdicts_second = [r["outcome"]["holds"] for r in second["responses"]]
    if verdicts_first != verdicts_second:
        raise RuntimeError("cached replay changed verdicts")

    def summary(run: dict) -> dict:
        stats = run["stats"]
        return {
            "wall_seconds": run["wall_seconds"],
            "solver_runs": stats["solver_runs"],
            "solve_cache_hits": stats["solve_cache_hits"],
            "disk_cache_hits": stats["disk_cache_hits"],
            "disk_cache_writes": stats["disk_cache_writes"],
            "disk_cache_entries": stats.get("disk_cache_entries"),
        }

    return {
        "benchmark": "repro serve: cold-process replay through the persistent solve cache",
        "workload_queries": len(requests),
        "distinct_problems": len(_CLI_CACHE_BASE),
        "first_process": summary(first),
        "second_process": summary(second),
        "second_process_solver_runs": second["stats"]["solver_runs"],
        "replay_speedup": round(first["wall_seconds"] / second["wall_seconds"], 3),
        "verdicts": [
            {"id": r.get("id"), "holds": r["outcome"]["holds"]}
            for r in first["responses"][: len(_CLI_CACHE_BASE)]
        ],
    }


# ---------------------------------------------------------------------------
# CLI entry
# ---------------------------------------------------------------------------

_RUNNERS = {"api-batch": run_api_batch, "cli-cache": run_cli_cache}


def run(args) -> int:
    names = args.names or list(BENCHMARKS)
    unknown = [name for name in names if name not in _RUNNERS]
    if unknown:
        print(
            f"repro bench: unknown benchmark(s) {unknown}; "
            f"available: {', '.join(BENCHMARKS)}",
            file=sys.stderr,
        )
        return 2
    output_dir = Path(args.output_dir)
    output_dir.mkdir(parents=True, exist_ok=True)
    for name in names:
        payload = _RUNNERS[name]()
        path = output_dir / f"BENCH_{name.replace('-', '_')}.json"
        path.write_text(
            json.dumps(payload, indent=2, ensure_ascii=False) + "\n", encoding="utf-8"
        )
        print(f"wrote {path}")
    return 0
