"""The bounded explicit oracles behind differential fuzzing.

Three independent ways of answering a fuzzed decision problem, none of which
shares code with the BDD engine:

1. **Bounded focused-tree enumeration** (:func:`bounded_search`) — enumerate
   every document up to depth/width bounds over the problem's label and
   attribute alphabets, and decide the problem *denotationally*: evaluate the
   XPath semantics (:mod:`repro.xpath.semantics`) at every marked node whose
   subtree satisfies the type constraint (:mod:`repro.xmltypes.membership`).
   Finding a witness is conclusive (the symbolic solver must agree);
   exhausting the bounds without one is conclusive only *within* the bounds.
   A sampled subset of the enumerated documents is additionally evaluated
   against the compiled Lµ formula through the logic's denotational
   semantics (:mod:`repro.logic.semantics`) — the Proposition 5.1 check that
   the translation selects exactly the denotationally-selected nodes.

2. **ψ-type enumeration** (:func:`explicit_verdict`) — the paper's abstract
   algorithm of Figure 16, :class:`repro.solver.explicit.ExplicitSolver`,
   run on the same formula.  It is a *complete* decision procedure, so its
   verdict must match the symbolic one exactly; being exponential in the
   Lean it only engages below a ψ-type budget.

3. **Witness replay** (:func:`replay_witness`) — every satisfiable symbolic
   verdict comes with a model document; the model must actually witness the
   problem: the expressions select the right nodes under the denotational
   semantics, the marked subtree validates against the DTD
   (:func:`repro.xmltypes.membership.dtd_accepts`) and carries no attribute
   violations (:func:`repro.xmltypes.membership.dtd_attribute_violations`).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Iterator

from repro.core.errors import SolverLimitError
from repro.logic import syntax as sx
from repro.logic.closure import OTHER_ATTRIBUTE
from repro.logic.semantics import interpret
from repro.solver.explicit import ExplicitSolver, estimate_psi_types
from repro.testing.corpus import FuzzCase
from repro.trees.focus import FocusedTree, all_focuses, focus_at
from repro.trees.unranked import Tree
from repro.xmltypes.compile import attribute_constraints
from repro.xmltypes.dtd import DTD
from repro.xmltypes.membership import dtd_accepts, dtd_attribute_violations
from repro.xpath.parser import parse_xpath_cached
from repro.xpath.semantics import evaluate_xpath

#: Wildcard label of lifted-but-unliftable witness nodes (see
#: :func:`repro.xmltypes.membership.lift_wildcards`) — the solver's
#: rendering of the "any other label" proposition.
from repro.solver.models import FRESH_LABEL as WILDCARD_LABEL  # noqa: E402


@dataclass(frozen=True)
class Bounds:
    """Budgets of the bounded oracles (see ``docs/TESTING.md``)."""

    #: Depth bound (nodes on a root-to-leaf path) of enumerated documents.
    max_depth: int = 3
    #: Per-node children bound of enumerated documents.
    max_width: int = 2
    #: Marked documents examined before the enumeration gives up.
    max_documents: int = 300
    #: Marked documents additionally cross-checked against the compiled
    #: formula via the logic's denotational semantics (Proposition 5.1).
    semantic_samples: int = 6
    #: ψ-type estimate above which :func:`explicit_verdict` declines to run.
    explicit_types: int = 2048
    #: Lean-size gate: trials whose (unpruned) formula exceeds this many
    #: Lean formulas are skipped entirely — the solver's cost is
    #: ``2^O(lean)`` (Lemma 6.7), so a rare oversized case would otherwise
    #: dominate a whole campaign's wall clock.  Skips are deterministic and
    #: counted in the report.
    max_lean: int = 90

    def max_nodes(self) -> int:
        """Largest document size expressible within depth/width bounds."""
        return sum(self.max_width**level for level in range(self.max_depth))

    def as_dict(self) -> dict:
        return {
            "max_depth": self.max_depth,
            "max_width": self.max_width,
            "max_documents": self.max_documents,
            "semantic_samples": self.semantic_samples,
            "explicit_types": self.explicit_types,
            "max_lean": self.max_lean,
        }


@dataclass
class BoundedVerdict:
    """Outcome of one bounded enumeration run."""

    #: A document within bounds witnesses the problem's satisfiability.
    witness_found: bool
    #: The witnessing marked document (when found).
    witness: Tree | None
    #: Marked documents examined.
    documents_checked: int
    #: Every marked document within the bounds was examined.  When False the
    #: ``max_documents`` budget ran out first, so "no witness" is only a
    #: statement about the examined prefix.
    exhausted: bool
    #: Documents cross-checked against the compiled formula (Prop. 5.1).
    semantic_checks: int = 0
    #: Human-readable mismatches between the formula's models and the
    #: denotational expectation — each one is a translation/oracle bug.
    semantic_mismatches: list[str] = field(default_factory=list)


# ---------------------------------------------------------------------------
# Document enumeration
# ---------------------------------------------------------------------------


def enumerate_trees(
    labels: tuple[str, ...],
    attribute_sets: tuple[tuple[str, ...], ...],
    bounds: Bounds,
) -> Iterator[Tree]:
    """Every unmarked tree within the bounds, smallest first.

    Trees are enumerated by total node count, so a capped consumer examines
    the smallest documents — which shrink best and cover the most distinct
    shapes per budget unit.
    """
    variants = tuple(itertools.product(labels, attribute_sets))

    def trees(nodes: int, depth: int) -> Iterator[Tree]:
        if nodes <= 0 or depth <= 0:
            return
        for label, attributes in variants:
            if nodes == 1:
                yield Tree(label, (), False, attributes)
            else:
                for children in forests(nodes - 1, bounds.max_width, depth - 1):
                    yield Tree(label, children, False, attributes)

    def forests(nodes: int, width: int, depth: int) -> Iterator[tuple[Tree, ...]]:
        if nodes == 0:
            yield ()
            return
        if width == 0 or depth == 0:
            return
        for first_size in range(1, nodes + 1):
            for first in trees(first_size, depth):
                for rest in forests(nodes - first_size, width - 1, depth):
                    yield (first,) + rest

    for total in range(1, bounds.max_nodes() + 1):
        yield from trees(total, bounds.max_depth)


def problem_alphabets(case: FuzzCase, dtd: DTD | None) -> tuple[
    tuple[str, ...], tuple[tuple[str, ...], ...]
]:
    """The label universe and attribute-set family to enumerate over.

    Labels: the DTD's element names (the query's own names otherwise), the
    names the expressions test, plus one fresh "context" label standing for
    the Lean's *any other label* proposition, so models that need a label
    outside the problem's alphabet stay within reach.

    Attribute sets: the empty set, one singleton per attribute name the
    expressions mention, and (when several) the full set.  When a query uses
    the wildcard ``@*`` the literal :data:`~repro.logic.closure.
    OTHER_ATTRIBUTE` name joins the pool — it is the concrete counterpart of
    the Lean's "other attribute" bit, and the denotational semantics treats
    it as an ordinary attribute.
    """
    from repro.analysis.problems import relevant_attributes, relevant_labels

    query_labels = set(relevant_labels(*case.exprs))
    labels = set(dtd.element_names()) if dtd is not None else set(query_labels)
    labels |= query_labels
    fresh = "w"
    while fresh in labels:
        fresh += "w"
    universe = tuple(sorted(labels)) + (fresh,)

    pool = relevant_attributes(*case.exprs)
    attribute_sets: list[tuple[str, ...]] = [()]
    attribute_sets.extend((name,) for name in pool)
    if len(pool) > 1:
        attribute_sets.append(tuple(pool))
    return universe, tuple(attribute_sets)


# ---------------------------------------------------------------------------
# The type constraint, denotationally
# ---------------------------------------------------------------------------


def _attribute_formula_holds(formula: sx.Formula, attributes: tuple[str, ...]) -> bool:
    """Evaluate a pure attribute constraint against a concrete attribute set."""
    kind = formula.kind
    if kind == sx.KIND_TRUE:
        return True
    if kind == sx.KIND_FALSE:
        return False
    if kind == sx.KIND_ATTR:
        if formula.label == sx.ANY_ATTRIBUTE:
            return bool(attributes)
        return formula.label in attributes
    if kind == sx.KIND_NATTR:
        return not _attribute_formula_holds(sx.attr(formula.label), attributes)
    if kind == sx.KIND_AND:
        return _attribute_formula_holds(formula.left, attributes) and (
            _attribute_formula_holds(formula.right, attributes)
        )
    if kind == sx.KIND_OR:
        return _attribute_formula_holds(formula.left, attributes) or (
            _attribute_formula_holds(formula.right, attributes)
        )
    raise AssertionError(f"not an attribute constraint: {formula!r}")


def type_holds_at(
    dtd: DTD | None,
    focus: FocusedTree,
    constraints: dict[str, sx.Formula] | None = None,
) -> bool:
    """Whether the compiled type constraint holds at a focused tree.

    This is the denotational counterpart of ``compile_dtd(dtd, ...)`` — the
    equivalence is exercised by the sampled Proposition 5.1 checks of
    :func:`bounded_search`:

    * the subtree in focus validates against the DTD (the start variable's
      language), and
    * the focus has no following sibling (the start alternative constrains
      the second successor), and
    * every node of the subtree satisfies the DTD's attribute constraints
      projected onto the problem's attribute alphabet.

    The focus *context* (everything above and before) is unconstrained,
    exactly as in Section 5.2.
    """
    if dtd is None:
        return True
    if focus.follow(2) is not None:
        return False
    subtree = focus.tree.unmark_all()
    if not dtd_accepts(dtd, subtree):
        return False
    if constraints:
        for node in subtree.iter_nodes():
            constraint = constraints.get(node.label)
            if constraint is not None and not _attribute_formula_holds(
                constraint, node.attributes
            ):
                return False
    return True


def selected_nodes(
    case: FuzzCase, contexts: "Tree | frozenset[FocusedTree]"
) -> frozenset[FocusedTree]:
    """The denotational answer set of the case's problem.

    ``contexts`` is a marked document or a pre-computed focus universe.  The
    underlying model must carry exactly one start mark; the type constraint
    is *not* checked here (callers gate on :func:`type_holds_at`).
    """
    if isinstance(contexts, Tree):
        contexts = frozenset(all_focuses(contexts))
    exprs = [parse_xpath_cached(text) for text in case.exprs]
    first = evaluate_xpath(exprs[0], contexts)
    if case.kind in ("satisfiability", "emptiness"):
        return first
    second = evaluate_xpath(exprs[1], contexts)
    if case.kind == "containment":
        return first - second
    if case.kind == "overlap":
        return first & second
    raise AssertionError(f"unknown fuzz kind {case.kind!r}")


# ---------------------------------------------------------------------------
# Oracle 1: bounded enumeration
# ---------------------------------------------------------------------------


def bounded_search(
    case: FuzzCase,
    bounds: Bounds = Bounds(),
    formula: sx.Formula | None = None,
) -> BoundedVerdict:
    """Search for a witness within bounds; cross-check sampled documents.

    Returns as soon as a witness turns up (a conclusive SAT answer).  When
    ``formula`` is given — the *unpruned* Lµ reduction of the case — every
    ``semantic_samples``-th document is additionally interpreted against it:
    the formula's models restricted to the document must coincide with the
    denotational answer set (Proposition 5.1 composed with the Section 5.2
    type translation).  Mismatches are reported, never raised.
    """
    dtd = case.dtd()
    labels, attribute_sets = problem_alphabets(case, dtd)
    constraints = None
    if dtd is not None:
        from repro.analysis.problems import relevant_attributes

        alphabet = relevant_attributes(*case.exprs)
        constraints = attribute_constraints(dtd, alphabet) if alphabet else None

    stride = max(1, bounds.max_documents // max(1, bounds.semantic_samples))
    checked = 0
    semantic_checks = 0
    mismatches: list[str] = []
    exhausted = True
    for base in enumerate_trees(labels, attribute_sets, bounds):
        for path, _node in sorted(base.iter_paths()):
            if checked >= bounds.max_documents:
                exhausted = False
                break
            document = base.mark_at(path)
            checked += 1
            focus = focus_at(document, path)
            answers = (
                selected_nodes(case, document)
                if type_holds_at(dtd, focus, constraints)
                else frozenset()
            )
            if formula is not None and (
                checked % stride == 0 or (answers and not mismatches)
            ):
                semantic_checks += 1
                mismatch = _semantic_mismatch(
                    formula, document, answers, dtd, focus, constraints, case
                )
                if mismatch is not None:
                    mismatches.append(mismatch)
            if answers:
                return BoundedVerdict(
                    witness_found=True,
                    witness=document,
                    documents_checked=checked,
                    exhausted=False,
                    semantic_checks=semantic_checks,
                    semantic_mismatches=mismatches,
                )
        else:
            continue
        break
    return BoundedVerdict(
        witness_found=False,
        witness=None,
        documents_checked=checked,
        exhausted=exhausted,
        semantic_checks=semantic_checks,
        semantic_mismatches=mismatches,
    )


def _semantic_mismatch(
    formula: sx.Formula,
    document: Tree,
    expected: frozenset[FocusedTree],
    dtd: DTD | None,
    focus: FocusedTree,
    constraints: dict[str, sx.Formula] | None,
    case: FuzzCase,
) -> str | None:
    """Compare the formula's models on one document with the expectation."""
    universe = frozenset(all_focuses(document))
    satisfied = interpret(formula, universe)
    if satisfied == expected:
        return None
    gained = {f.name for f in satisfied - expected}
    lost = {f.name for f in expected - satisfied}
    return (
        f"formula models disagree with denotational semantics on "
        f"{document} for {case.describe()}: formula-only foci at "
        f"{sorted(gained)}, semantics-only at {sorted(lost)}"
    )


# ---------------------------------------------------------------------------
# Oracle 2: the explicit psi-type algorithm
# ---------------------------------------------------------------------------


# ``estimate_psi_types`` moved next to the solver it estimates
# (:func:`repro.solver.explicit.estimate_psi_types`) so the API façade's
# graceful-degradation fallback can gate on it too; re-imported above for
# backwards compatibility.


def explicit_verdict(
    formula: sx.Formula, bounds: Bounds = Bounds()
) -> tuple[bool | None, int]:
    """The ψ-type algorithm's verdict, or ``None`` when it would be too big.

    Returns ``(satisfiable, estimated_types)``; the estimate is reported
    either way so campaigns can tell how often this oracle engaged.
    """
    solver = ExplicitSolver(formula)
    estimated = estimate_psi_types(solver)
    if estimated > bounds.explicit_types:
        return None, estimated
    try:
        result = solver.solve()
    except SolverLimitError:  # pragma: no cover - estimate should prevent this
        return None, estimated
    return result.satisfiable, estimated


# ---------------------------------------------------------------------------
# Oracle 3: witness replay
# ---------------------------------------------------------------------------


def replay_witness(
    case: FuzzCase,
    witness: Tree | tuple[Tree, ...],
    dtd: DTD | None = None,
) -> list[str]:
    """Validate a satisfiable verdict's model; returns the problems found.

    ``witness`` is the model document, or the solver's top-level forest.
    The logic's raw models are hedges, but the fuzz reduction conjoins the
    single-root constraint (:func:`repro.testing.fuzz.single_root`), so a
    multi-tree forest here is itself a finding and is reported as one.

    An empty list means the witness genuinely witnesses the verdict: it is
    a single document carrying exactly one start mark, the denotational
    answer set of the problem on it is non-empty, and — for typed problems
    — the marked subtree validates against the DTD (structure and
    attributes, modulo the problem's attribute alphabet) with no following
    sibling at the mark.

    Witnesses containing the wildcard label (a pruned model whose collapsed
    elements could not be lifted back) skip the membership check; the
    selection checks still run.
    """
    from repro.analysis.problems import relevant_attributes

    forest = (witness,) if isinstance(witness, Tree) else tuple(witness)
    if len(forest) != 1:
        return [
            f"witness is a hedge of {len(forest)} top-level trees; the "
            "single-root anchoring of fuzzed problems forbids hedge models"
        ]
    document = forest[0]
    problems: list[str] = []
    marks = document.mark_count()
    if marks != 1:
        return [f"witness carries {marks} start marks (expected exactly 1)"]
    if not selected_nodes(case, document):
        problems.append(
            f"witness {document} does not satisfy {case.describe()} under the "
            "denotational semantics"
        )
    dtd = dtd if dtd is not None else case.dtd()
    if dtd is None:
        return problems
    focus = focus_at(document, document.find_mark())
    if focus.follow(2) is not None:
        problems.append("marked node has a following sibling (type anchors forbid it)")
    subtree = focus.tree.unmark_all()
    if WILDCARD_LABEL in subtree.labels():
        return problems  # unlifted pruned model: membership not decidable here
    if not dtd_accepts(dtd, subtree):
        problems.append(f"marked subtree {subtree} does not validate against the DTD")
    alphabet = relevant_attributes(*case.exprs)
    violations = dtd_attribute_violations(dtd, subtree, alphabet)
    problems.extend(
        f"attribute violation in witness: {violation}" for violation in violations
    )
    return problems
