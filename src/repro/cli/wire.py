"""The JSON wire format of the ``repro`` command line.

One *request* object describes one :class:`repro.api.Query`:

.. code-block:: json

    {"id": 7,
     "kind": "containment",
     "exprs": [".//img", ".//img[@alt]"],
     "types": ["xhtml"]}

* ``kind`` — one of :data:`repro.api.KINDS`.
* ``exprs`` — the XPath expressions, subject first.
* ``types`` — optional; entries may be ``null`` ("any tree"), a built-in
  schema name (see :func:`repro.xmltypes.library.schema_names`), a path to a
  ``.dtd`` file, or an inline ``{"dtd": "<source>", "root": ..., "name": ...}``
  object.  A missing list means "no type constraints"; a single entry is
  broadcast when the kind needs more (the usual "both sides under the same
  schema" case).  Any of these forms can be anchored at a document node
  (:class:`repro.analysis.problems.Rooted` — absolute paths then start above
  the root element, as in XSLT) by prefixing a string entry with ``rooted:``
  (``"rooted:xhtml"``, ``"rooted:type.dtd"``) or wrapping an entry in
  ``{"rooted": <entry>}``.
* ``id`` — optional opaque value echoed back by ``repro serve``.
* ``budget`` — optional per-request resource budget, an object with any of
  ``deadline_seconds``, ``max_steps``, ``max_iterations``, ``max_lean`` (see
  :class:`repro.solver.governor.Budget`).  It *tightens* whatever budget the
  serving analyzer was built with; a budgeted solve that runs out yields an
  outcome with ``verdict_status: "unknown"`` and a ``budget_reason`` instead
  of a verdict.

Batch files for ``repro analyze --batch`` hold either a JSON array of request
objects or JSON Lines (one request per line; blank lines and ``#`` comment
lines are skipped).
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.analysis.problems import Rooted
from repro.api import KINDS, Query
from repro.xmltypes.dtd import DTD, parse_dtd


class WireError(ValueError):
    """A request payload that does not follow the wire format."""


#: Cache for inline/file DTDs, keyed by (source, root, name).  Re-parsing per
#: request would hand the analyzer a *new* DTD object every time and defeat
#: its identity-keyed type-translation cache.
DTDCache = dict


def resolve_wire_type(value: object, dtd_cache: DTDCache | None = None) -> object:
    """Decode one ``types`` entry into what :class:`Query` accepts."""
    if value is None:
        return None
    if isinstance(value, str):
        if value.startswith("rooted:"):
            inner = value[len("rooted:") :]
            return _wire_rooted(resolve_wire_type(inner or None, dtd_cache), value)
        if value.endswith(".dtd"):
            path = Path(value)
            if not path.is_file():
                raise WireError(f"DTD file not found: {value}")
            return _parse_cached(
                path.read_text(encoding="utf-8"), None, path.stem, dtd_cache
            )
        return value  # built-in schema name; validated by the analyzer
    if isinstance(value, dict):
        if "rooted" in value:
            if set(value) != {"rooted"}:
                raise WireError(
                    f"a rooted type object holds exactly one 'rooted' key: {value!r}"
                )
            return _wire_rooted(resolve_wire_type(value["rooted"], dtd_cache), value)
        if "dtd" not in value:
            raise WireError(f"inline type object needs a 'dtd' key: {value!r}")
        return _parse_cached(
            value["dtd"], value.get("root"), value.get("name", "inline"), dtd_cache
        )
    raise WireError(f"unsupported type constraint in request: {value!r}")


def _wire_rooted(inner: object, original: object) -> Rooted:
    if isinstance(inner, Rooted):
        raise WireError(f"'rooted' cannot be nested: {original!r}")
    return Rooted(inner)


def _parse_cached(
    source: str, root: str | None, name: str, dtd_cache: DTDCache | None
) -> DTD:
    key = (source, root, name)
    if dtd_cache is not None and key in dtd_cache:
        return dtd_cache[key]
    dtd = parse_dtd(source, root=root, name=name)
    if dtd_cache is not None:
        dtd_cache[key] = dtd
    return dtd


def query_from_dict(payload: dict, dtd_cache: DTDCache | None = None) -> Query:
    """Build a :class:`Query` from a request object (see module docstring).

    Raises :class:`WireError` on malformed payloads and :class:`ValueError`
    (from :class:`Query` itself) on arity violations.
    """
    if not isinstance(payload, dict):
        raise WireError(f"request must be a JSON object, got {type(payload).__name__}")
    unknown = set(payload) - {"id", "kind", "exprs", "types", "budget"}
    if unknown:
        raise WireError(f"unknown request keys {sorted(unknown)!r}")
    kind = payload.get("kind")
    if kind not in KINDS:
        raise WireError(f"unknown query kind {kind!r}; expected one of {KINDS}")
    exprs = payload.get("exprs")
    if (
        not isinstance(exprs, list)
        or not exprs
        or not all(isinstance(e, str) for e in exprs)
    ):
        raise WireError("'exprs' must be a non-empty list of XPath strings")
    types = payload.get("types")
    arity = Query._ARITIES[kind]
    wanted = len(exprs) if arity is None else arity[1]
    if types is None:
        types = [None] * wanted
    if not isinstance(types, list):
        raise WireError("'types' must be a list when present")
    if len(types) == 1 and wanted > 1:
        types = types * wanted  # broadcast "same schema on every side"
    resolved = tuple(resolve_wire_type(value, dtd_cache) for value in types)
    return Query(kind, tuple(exprs), resolved)


def budget_from_dict(payload: dict) -> "Budget | None":
    """The request's per-query :class:`~repro.solver.governor.Budget`.

    ``None`` when the request carries no ``budget`` key (the common case);
    raises :class:`WireError` on malformed budget objects (unknown fields,
    non-positive limits).
    """
    value = payload.get("budget") if isinstance(payload, dict) else None
    if value is None:
        return None
    if not isinstance(value, dict):
        raise WireError(f"'budget' must be an object, got {value!r}")
    from repro.solver.governor import Budget

    try:
        budget = Budget.from_dict(value)
    except (ValueError, TypeError) as exc:
        raise WireError(f"invalid budget: {exc}") from None
    return None if budget.unlimited else budget


def read_batch(path: str | Path) -> list[dict]:
    """Load a batch file (JSON array or JSON Lines) into request objects."""
    text = Path(path).read_text(encoding="utf-8")
    stripped = text.lstrip()
    if stripped.startswith("["):
        try:
            payloads = json.loads(text)
        except json.JSONDecodeError as exc:
            raise WireError(f"{path}: invalid JSON: {exc}") from None
        if not isinstance(payloads, list):
            raise WireError(f"{path}: expected a JSON array of request objects")
        return payloads
    payloads = []
    for number, line in enumerate(text.splitlines(), start=1):
        line = line.strip()
        if not line or line.startswith("#"):
            continue
        try:
            payloads.append(json.loads(line))
        except json.JSONDecodeError as exc:
            raise WireError(f"{path}:{number}: invalid JSON: {exc}") from None
    return payloads


def error_payload(exc: Exception) -> dict:
    """The wire shape of a protocol-level failure."""
    return {"kind": type(exc).__name__, "message": str(exc)}
