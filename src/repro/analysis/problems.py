"""The decision problems of Section 8, reduced to Lµ satisfiability.

For XPath expressions ``e₁, …, eₙ`` and XML types ``T₁, …, Tₙ``:

* **emptiness / satisfiability**: ``E→[[e₁]]([[T₁]])`` is satisfiable iff
  ``e₁`` can select at least one node in some document of type ``T₁``;
* **containment**: ``E→[[e₁]]([[T₁]]) ∧ ¬E→[[e₂]]([[T₂]])`` is unsatisfiable
  iff every node selected by ``e₁`` (under ``T₁``) is selected by ``e₂``
  (under ``T₂``);
* **overlap**: ``E→[[e₁]]([[T₁]]) ∧ E→[[e₂]]([[T₂]])`` is satisfiable iff the
  two expressions can select a common node;
* **coverage**: ``E→[[e₁]]([[T₁]]) ∧ ⋀ᵢ ¬E→[[eᵢ]]([[Tᵢ]])`` is unsatisfiable
  iff every node selected by ``e₁`` is selected by one of the others;
* **static type checking**: ``E→[[e₁]]([[T₁]]) ∧ ¬[[T₂]]`` is unsatisfiable
  iff every node selected by ``e₁`` under ``T₁`` roots a subtree of type
  ``T₂``;
* **equivalence**: containment in both directions.

When the formula of a "negative" problem (containment, coverage, type
inclusion) is satisfiable, the satisfying model is a counterexample document,
annotated with the start mark, which is returned to the caller.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.logic import syntax as sx
from repro.logic.negation import negate
from repro.solver.symbolic import SolverResult, SymbolicSolver
from repro.trees.unranked import Tree
from repro.xmltypes.compile import compile_dtd, compile_grammar
from repro.xmltypes.ast import BinaryTypeGrammar
from repro.xmltypes.dtd import DTD
from repro.xpath import ast as xp
from repro.xpath.compile import compile_xpath
from repro.xpath.parser import parse_xpath

TypeLike = "DTD | BinaryTypeGrammar | sx.Formula | None"
ExprLike = "xp.Expr | str"


def _type_formula(xml_type, constrain_siblings: bool = True) -> sx.Formula:
    """The Lµ formula of a type constraint (⊤ when there is none).

    ``constrain_siblings=False`` is used for *output* types (static type
    checking): the checked node is usually an inner node of a document and may
    have following siblings, which the type should not constrain.
    """
    if xml_type is None:
        return sx.TRUE
    if isinstance(xml_type, sx.Formula):
        return xml_type
    if isinstance(xml_type, DTD):
        return compile_dtd(xml_type, constrain_siblings=constrain_siblings)
    if isinstance(xml_type, BinaryTypeGrammar):
        return compile_grammar(xml_type, constrain_siblings=constrain_siblings)
    raise TypeError(f"unsupported type constraint {xml_type!r}")


def _expression(expr) -> xp.Expr:
    return parse_xpath(expr) if isinstance(expr, str) else expr


def rooted(xml_type) -> sx.Formula:
    """Anchor a type constraint at the document root.

    The type translation of Section 5.2 deliberately leaves the context of the
    typed node unconstrained.  For whole-document analyses (such as the XHTML
    experiments of Section 8) the paper notes that "conditions similar to
    those of absolute paths are added" when the position of the root is known;
    this helper conjoins the type formula with "no parent and no sibling", so
    the marked context node is the document root itself.
    """
    return sx.big_and(
        (
            _type_formula(xml_type),
            sx.no_dia(-1),
            sx.no_dia(-2),
            sx.no_dia(2),
        )
    )


def _query_formula(expr, xml_type) -> sx.Formula:
    return compile_xpath(_expression(expr), _type_formula(xml_type))


@dataclass
class AnalysisResult:
    """Outcome of a decision problem.

    ``holds`` answers the question asked ("is e₁ contained in e₂?", "do they
    overlap?", ...); ``counterexample`` is a witness document when the
    property fails (for containment-like problems) or an example document when
    it holds (for satisfiability-like problems).
    """

    problem: str
    holds: bool
    solver_result: SolverResult
    counterexample: Tree | None = None

    @property
    def time_ms(self) -> float:
        """Solver running time in milliseconds (as reported in Table 2)."""
        return 1000.0 * self.solver_result.statistics.solve_seconds

    def describe(self) -> str:
        status = "holds" if self.holds else "does not hold"
        witness = ""
        if self.counterexample is not None:
            from repro.trees.unranked import serialize_tree

            witness = f"; witness: {serialize_tree(self.counterexample)}"
        return f"{self.problem}: {status} ({self.time_ms:.1f} ms){witness}"


@dataclass
class Analyzer:
    """Facade bundling the translations and the solver with shared options."""

    early_quantification: bool = True
    monolithic_relation: bool = False
    interleaved_order: bool = True
    track_marks: bool = True

    def _solve(self, formula: sx.Formula, extra_labels: tuple[str, ...] = ()) -> SolverResult:
        solver = SymbolicSolver(
            formula,
            extra_labels=extra_labels,
            early_quantification=self.early_quantification,
            monolithic_relation=self.monolithic_relation,
            interleaved_order=self.interleaved_order,
            track_marks=self.track_marks,
        )
        return solver.solve()

    # -- problems -----------------------------------------------------------------

    def satisfiability(self, expr, xml_type=None) -> AnalysisResult:
        """Can the expression select at least one node (under the type)?"""
        formula = _query_formula(expr, xml_type)
        result = self._solve(formula)
        return AnalysisResult(
            problem=f"satisfiability of {expr}",
            holds=result.satisfiable,
            solver_result=result,
            counterexample=result.model_document(),
        )

    def emptiness(self, expr, xml_type=None) -> AnalysisResult:
        """Is the expression always empty (under the type)?"""
        inner = self.satisfiability(expr, xml_type)
        return AnalysisResult(
            problem=f"emptiness of {expr}",
            holds=not inner.holds,
            solver_result=inner.solver_result,
            counterexample=inner.counterexample,
        )

    def containment(self, expr1, expr2, type1=None, type2=None) -> AnalysisResult:
        """Is every node selected by ``expr1`` also selected by ``expr2``?"""
        formula = sx.mk_and(
            _query_formula(expr1, type1), negate(_query_formula(expr2, type2))
        )
        result = self._solve(formula)
        return AnalysisResult(
            problem=f"containment {expr1} ⊆ {expr2}",
            holds=not result.satisfiable,
            solver_result=result,
            counterexample=result.model_document(),
        )

    def equivalence(self, expr1, expr2, type1=None, type2=None) -> tuple[AnalysisResult, AnalysisResult]:
        """Containment in both directions (XPath equivalence under constraints)."""
        forward = self.containment(expr1, expr2, type1, type2)
        backward = self.containment(expr2, expr1, type2, type1)
        return forward, backward

    def overlap(self, expr1, expr2, type1=None, type2=None) -> AnalysisResult:
        """Can the two expressions select a common node?"""
        formula = sx.mk_and(_query_formula(expr1, type1), _query_formula(expr2, type2))
        result = self._solve(formula)
        return AnalysisResult(
            problem=f"overlap of {expr1} and {expr2}",
            holds=result.satisfiable,
            solver_result=result,
            counterexample=result.model_document(),
        )

    def coverage(self, expr, covering, xml_type=None, covering_types=None) -> AnalysisResult:
        """Is every node selected by ``expr`` selected by one of ``covering``?"""
        covering = list(covering)
        covering_types = list(covering_types) if covering_types is not None else [None] * len(covering)
        formula = _query_formula(expr, xml_type)
        for other, other_type in zip(covering, covering_types):
            formula = sx.mk_and(formula, negate(_query_formula(other, other_type)))
        result = self._solve(formula)
        return AnalysisResult(
            problem=f"coverage of {expr} by {len(covering)} expressions",
            holds=not result.satisfiable,
            solver_result=result,
            counterexample=result.model_document(),
        )

    def type_inclusion(self, expr, input_type, output_type) -> AnalysisResult:
        """Static type checking of an annotated query: is every node selected by
        ``expr`` under ``input_type`` the root of a subtree of ``output_type``?"""
        formula = sx.mk_and(
            _query_formula(expr, input_type),
            negate(_type_formula(output_type, constrain_siblings=False)),
        )
        result = self._solve(formula)
        return AnalysisResult(
            problem=f"type inclusion of {expr}",
            holds=not result.satisfiable,
            solver_result=result,
            counterexample=result.model_document(),
        )


# -- module-level conveniences -------------------------------------------------------


def check_satisfiability(expr, xml_type=None, **options) -> AnalysisResult:
    return Analyzer(**options).satisfiability(expr, xml_type)


def check_emptiness(expr, xml_type=None, **options) -> AnalysisResult:
    return Analyzer(**options).emptiness(expr, xml_type)


def check_containment(expr1, expr2, type1=None, type2=None, **options) -> AnalysisResult:
    return Analyzer(**options).containment(expr1, expr2, type1, type2)


def check_equivalence(expr1, expr2, type1=None, type2=None, **options):
    return Analyzer(**options).equivalence(expr1, expr2, type1, type2)


def check_overlap(expr1, expr2, type1=None, type2=None, **options) -> AnalysisResult:
    return Analyzer(**options).overlap(expr1, expr2, type1, type2)


def check_coverage(expr, covering, xml_type=None, covering_types=None, **options) -> AnalysisResult:
    return Analyzer(**options).coverage(expr, covering, xml_type, covering_types)


def check_type_inclusion(expr, input_type, output_type, **options) -> AnalysisResult:
    return Analyzer(**options).type_inclusion(expr, input_type, output_type)
