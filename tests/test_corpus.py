"""Permanent replay of the fuzz corpus (``tests/corpus/*.json``).

Every corpus entry is a shrunk fuzz case: either a regression seed written
with the verdict every engine agreed on, or an unresolved disagreement (which
keeps failing here until the underlying bug is fixed).  Replaying re-runs the
full differential evaluation — the 2×2 pruning/frontier symbolic matrix run
once per registered BDD backend, the bounded enumeration oracle with its
sampled Proposition 5.1 checks, the gated ψ-type solver, the witness
replay, and the merged-batch parity check (``batch_fixpoint=True``: the
case plus per-expression probes solved through ``solve_many`` with the
merged single-fixpoint path on and off must agree byte-for-byte) — and
asserts that everything still agrees (and still matches the recorded
verdict).

New cases appear here automatically: ``repro fuzz`` serialises every shrunk
disagreement into this directory, and ``--sample-corpus N`` adds shrunk
regression seeds.
"""

from pathlib import Path

import pytest

from repro.bdd.backends import available_backends
from repro.testing.corpus import load_corpus
from repro.testing.fuzz import evaluate_case
from repro.testing.oracle import Bounds

CORPUS_DIR = Path(__file__).parent / "corpus"
ENTRIES = load_corpus(CORPUS_DIR)

#: Corpus entries are shrunk (hence cheap), so every replay enrols every
#: registered BDD engine — the corpus doubles as a cross-backend regression
#: suite even for entries written before the backend axis was recorded.
BACKENDS = available_backends()

#: The corpus must stay populated: the fuzzing subsystem ships with at least
#: this many shrunk, replayable cases covering every kind.
MINIMUM_CASES = 10


def test_corpus_is_populated():
    assert len(ENTRIES) >= MINIMUM_CASES
    kinds = {entry.case.kind for entry in ENTRIES}
    assert kinds == {"satisfiability", "emptiness", "containment", "overlap"}
    assert any(entry.case.dtd_source is not None for entry in ENTRIES)
    assert any("@" in " ".join(entry.case.exprs) for entry in ENTRIES)


@pytest.mark.parametrize(
    "entry", ENTRIES, ids=[entry.name for entry in ENTRIES]
)
def test_corpus_case_replays_without_disagreement(entry):
    outcome = evaluate_case(
        entry.case, Bounds(), backends=BACKENDS, batch_fixpoint=True
    )
    assert outcome.error is None, outcome.error
    assert not outcome.disagreements, (
        f"{entry.name} ({entry.origin}): symbolic verdict and explicit "
        f"oracles disagree: {outcome.disagreements}"
    )
    if entry.expected is not None:
        assert outcome.satisfiable == entry.expected["satisfiable"], (
            f"{entry.name}: recorded verdict changed "
            f"(was satisfiable={entry.expected['satisfiable']})"
        )
        assert outcome.holds == entry.expected["holds"]
    if entry.disagreement is not None:
        pytest.fail(
            f"{entry.name} is a checked-in unresolved disagreement that now "
            "replays cleanly — promote it to a regression seed by replacing "
            "its 'disagreement' field with the agreed 'expected' verdict"
        )
