"""Shared fixtures for the test-suite.

The ``src`` directory is added to ``sys.path`` so the tests run even when the
package has not been installed (the offline reproduction environment lacks the
``wheel`` package needed by ``pip install -e .``; ``python setup.py develop``
is the documented fallback).
"""

from __future__ import annotations

import sys
from pathlib import Path

SRC = Path(__file__).resolve().parent.parent / "src"
if str(SRC) not in sys.path:
    sys.path.insert(0, str(SRC))

import pytest

from repro.trees.unranked import Tree, parse_tree


@pytest.fixture
def small_document() -> Tree:
    """A small document with the start mark on the root."""
    return parse_tree("<r!><a><c/></a><a><d/><b/></a><b/></r>")


@pytest.fixture
def book_document() -> Tree:
    """The book/chapter/section document from the paper's XPath primer."""
    return parse_tree(
        "<book!>"
        "<chapter><section/><section/></chapter>"
        "<chapter><section><title/></section></chapter>"
        "</book>"
    )


def documents_with_every_mark(text: str) -> list[Tree]:
    """All markings of a document: one copy per node carrying the start mark."""
    base = parse_tree(text).unmark_all()
    return [base.mark_at(path) for path, _node in sorted(base.iter_paths())]
