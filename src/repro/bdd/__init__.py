"""A reduced ordered binary decision diagram (ROBDD) engine.

Section 7 of the paper represents sets of ψ-types implicitly as BDDs [5] and
implements the satisfiability algorithm entirely with BDD operations.  The
reference system used a mature BDD library; this package provides an
equivalent pure-Python engine with the operations the solver needs:

* hash-consed node table with a fixed variable order,
* boolean connectives via the ``apply`` / ``ite`` algorithms with memoisation,
* existential and universal quantification, and the fused
  conjunction-then-quantification (``and_exists``) used for relational
  products,
* variable renaming (for the primed/unprimed vectors ``~x`` and ``~y``),
* satisfying-assignment extraction and model counting.
"""

from repro.bdd.manager import BDD, BDDManager
from repro.bdd.ordering import interleaved_pairs, order_by_first_use

__all__ = ["BDD", "BDDManager", "interleaved_pairs", "order_by_first_use"]
