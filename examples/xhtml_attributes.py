"""Attribute-aware analyses over the XHTML schema.

The paper's XPath fragment ignores attributes; this reproduction follows the
companion thesis ("Logics for XML") and models attribute *presence* as
propositions on elements, with the DTD's ``<!ATTLIST ...>`` declarations
compiled into required/forbidden-attribute constraints.  Three analyses a
schema-aware editor would ask:

1. accessibility — does every ``img`` carry an ``alt`` text?  (Yes: the DTD
   declares ``alt`` ``#REQUIRED``, so the containment holds.)
2. dead links — can an ``a`` lack ``@href``?  (Yes: ``href`` is optional on
   anchors; the analysis exhibits a counterexample document.)
3. nested links — can an ``a[@href]`` be nested inside another ``a[@href]``?
   (Yes: the DTD only forbids *direct* nesting, and the solver shows the
   loophole, attributes included.)

Run with::

    python examples/xhtml_attributes.py
"""

from repro import Analyzer, builtin_dtd, serialize_tree
from repro.analysis.problems import relevant_attributes, rooted


def main() -> None:
    analyzer = Analyzer()
    # The reduced structural subset of XHTML Strict; switch to
    # builtin_dtd("xhtml") for the full 77-element DTD (much slower).
    xhtml = builtin_dtd("xhtml-core")

    print("1. every img carries a required alt attribute:")
    alphabet = relevant_attributes("//img", "//img[@alt]")
    constrained = rooted(xhtml, alphabet)
    result = analyzer.containment(
        "//img", "//img[@alt]", type1=constrained, type2=constrained
    )
    print("  ", result.describe())

    print("2. anchors may lack href (counterexample shown):")
    alphabet = relevant_attributes("//a", "//a[@href]")
    constrained = rooted(xhtml, alphabet)
    result = analyzer.containment(
        "//a", "//a[@href]", type1=constrained, type2=constrained
    )
    print("  ", result.describe())

    print("3. an a[@href] nested inside another a[@href] is still possible:")
    result = analyzer.satisfiability(
        "descendant::a[@href][ancestor::a[@href]]", rooted(xhtml, ("href",))
    )
    print("  ", result.describe())
    witness = result.counterexample
    if witness is not None:
        print("   witness document:")
        print(serialize_tree(witness, indent=2))


if __name__ == "__main__":
    main()
