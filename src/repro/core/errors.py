"""Error hierarchy shared by every subsystem of the library."""


class ReproError(Exception):
    """Base class of every error raised by the library."""


class NavigationError(ReproError):
    """Raised when a focused-tree navigation step is undefined.

    The paper (Section 3) defines the four navigation modalities as partial
    functions; following an undefined modality raises this error.
    """


class ParseError(ReproError):
    """Raised by the XPath, DTD and logic parsers on malformed input."""

    def __init__(self, message: str, position: int | None = None, text: str | None = None):
        self.position = position
        self.text = text
        if position is not None and text is not None:
            context = text[max(0, position - 20):position + 20]
            message = f"{message} (at position {position}, near {context!r})"
        super().__init__(message)


class CycleFreenessError(ReproError):
    """Raised when a formula that must be cycle-free is not (Section 4)."""


class SchemaLookupError(ReproError, KeyError):
    """Raised when a built-in schema name is unknown.

    Subclasses :class:`KeyError` so callers doing plain dictionary-style
    lookups keep working, while the analyzer can treat it as the
    input-shaped :class:`ReproError` it is.
    """

    def __str__(self) -> str:  # KeyError would repr() the message
        return self.args[0] if self.args else ""


class UnsupportedTypeError(ReproError, TypeError):
    """Raised when a type constraint object is not of a supported kind."""


class SolverLimitError(ReproError):
    """Raised when a solver refuses an instance that exceeds a configured limit.

    The explicit solver of Figure 16 enumerates psi-types eagerly and is only
    intended for small instances and cross-validation; it raises this error
    instead of running for an unbounded amount of time.
    """


#: Structured reasons a :class:`BudgetExceeded` may carry.  These strings are
#: the wire-visible ``budget_reason`` vocabulary of unknown outcomes and must
#: stay stable (and backend-independent: the same exhausted budget reports the
#: same reason on every BDD engine).
BUDGET_REASONS = ("deadline", "steps", "iterations", "lean", "worker-crash")


class BudgetExceeded(ReproError):
    """Raised when a resource-governed solve runs out of budget.

    The algorithm is ``2^O(lean)`` (Lemma 6.7), so a deployment facing
    adversarial inputs bounds each solve with a :class:`repro.solver.governor.
    Budget` and treats exhaustion as a first-class *unknown* verdict rather
    than a failure.  ``reason`` is one of :data:`BUDGET_REASONS`; ``limit``
    and ``observed`` quantify which bound tripped and where the run stood.
    """

    def __init__(
        self,
        reason: str,
        message: str,
        *,
        limit: float | int | None = None,
        observed: float | int | None = None,
    ):
        if reason not in BUDGET_REASONS:
            raise ValueError(f"unknown budget reason {reason!r}")
        super().__init__(message)
        self.reason = reason
        self.limit = limit
        self.observed = observed

    def as_dict(self) -> dict:
        return {
            "reason": self.reason,
            "message": str(self),
            "limit": self.limit,
            "observed": self.observed,
        }
