<?xml version="1.0" encoding="utf-8"?>
<!-- A deliberately flawed XHTML stylesheet: the seeded findings below are
     what `repro audit examples/audit_stylesheet.xsl (dash)(dash)schema xhtml-strict`
     must report (see examples/xslt_audit.py and tests/test_xslt_audit.py).

     Seeded findings:
       * dead template        - match="body/title" (title only occurs in head)
       * shadowed template    - match="tbody/tr" (every tbody/tr is a tr, and
                                the match="tr" rule has explicit priority 2);
                                also the imported head/title rule (shadowed by
                                this file's identical rule at higher import
                                precedence)
       * unreachable xsl:when - test="h1/p" (h1 holds inline content only)
       * coverage gap         - li is matched only as ul/li, but li also
                                occurs inside ol (semantic gap with witness);
                                plus the aggregated syntactic gap for the
                                elements no template could match
     The match="table/caption" rule is a covered negative case: caption
     occurs only inside table, so its coverage query holds and no finding
     is emitted for it. -->
<xsl:stylesheet xmlns:xsl="http://www.w3.org/1999/XSL/Transform" version="1.0">

  <xsl:import href="audit_imported.xsl"/>

  <xsl:template match="/">
    <xsl:apply-templates select="html"/>
  </xsl:template>

  <xsl:template match="html">
    <xsl:apply-templates select="head/title"/>
    <xsl:apply-templates select="body"/>
  </xsl:template>

  <xsl:template match="head/title">
    <xsl:value-of select="text()"/>
  </xsl:template>

  <xsl:template match="body">
    <xsl:choose>
      <xsl:when test="h1/p">block inside a heading: can never happen</xsl:when>
      <xsl:otherwise>
        <xsl:apply-templates select=".//ul | .//table"/>
      </xsl:otherwise>
    </xsl:choose>
  </xsl:template>

  <xsl:template match="ul/li">
    <item/>
  </xsl:template>

  <xsl:template match="table/caption">
    <caption/>
  </xsl:template>

  <xsl:template match="tbody/tr">
    <row/>
  </xsl:template>

  <xsl:template match="tr" priority="2">
    <any-row/>
  </xsl:template>

  <xsl:template match="body/title">
    <never/>
  </xsl:template>

</xsl:stylesheet>
