"""Persistent, cross-process solve cache: ``repro.cache``.

:class:`repro.api.StaticAnalyzer` already answers repeated questions from an
in-process dictionary keyed by the hash-consed Lµ formula (the "solve cache"
of the module docstring of :mod:`repro.api`).  That cache dies with the
process, so a service restarting — or a fleet of short-lived CLI invocations —
pays the full solver cost again for questions it has already answered.  This
module stores solver verdicts on disk so *cold processes start warm*:

* **Content-addressed.**  Each entry is keyed by a SHA-256 digest of a
  canonical serialisation of the solved formula together with its Lean
  alphabet (atomic propositions and attribute names, Section 6.1 of the
  paper).  The serialisation renames bound recursion variables to their order
  of first appearance, so two alpha-equivalent formulas — e.g. the same query
  translated in two different processes, where :func:`repro.logic.syntax.
  fresh_var_name` hands out different suffixes — map to the same entry.
* **Versioned.**  Entries live under a ``v<N>/`` directory and carry the
  format version in their payload; bumping :data:`CACHE_FORMAT_VERSION`
  invalidates every old entry without touching it.
* **Safe under concurrent writers.**  One JSON file per entry, written to a
  temporary name and published with :func:`os.replace` (atomic on POSIX and
  NTFS).  Two processes racing on the same key write byte-identical content,
  so last-writer-wins is harmless; readers never observe partial files, and a
  corrupt or truncated entry is treated as a miss, quarantined to a
  ``.corrupt`` sibling for inspection, and rewritten on the next solve.

The cache stores *verdicts*, not BDDs: satisfiability, the serialized
counterexample document (when one exists) and the solver statistics of the
original run.  That is exactly what :class:`repro.api.AnalysisOutcome` needs,
and it keeps entries small (a few hundred bytes) and independent of the BDD
engine's internals.

Usage is normally indirect, through ``StaticAnalyzer(cache_dir=...)`` or the
``repro`` command line's ``--cache-dir`` option::

    from repro.api import Query, StaticAnalyzer

    analyzer = StaticAnalyzer(cache_dir="~/.cache/repro")
    analyzer.solve(Query.containment("a/b", "a//b"))   # first process: solver runs
    # ... a later process with the same cache_dir answers from disk.
"""

from __future__ import annotations

import hashlib
import json
import os
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Iterator

from repro.core import faults
from repro.logic import syntax as sx
from repro.logic.printer import format_formula

#: Bump to invalidate every existing on-disk entry (entries are stored under
#: a ``v<N>`` directory and re-checked against this value when read).
#: v2: entry keys gained a ``scope`` discriminator (``single`` verdicts vs
#: ``merged-batch`` entries holding one record per goal bit of a merged-Lean
#: batch solve), so batch-level and subformula entries can never alias the
#: old v1 single-query entries; v1 entries read as clean misses (they live
#: under the untouched ``v1/`` directory), never as corruption.
CACHE_FORMAT_VERSION = 2

#: Characters of :func:`repro.logic.printer.format_formula` output stored in
#: each entry for human inspection (informational only — never parsed back).
_FORMULA_PREVIEW_CHARS = 400


# ---------------------------------------------------------------------------
# Canonical content addressing
# ---------------------------------------------------------------------------


def _canonical_names(formula: sx.Formula) -> dict[str, str]:
    """Map every bound recursion-variable name to a canonical ``%<k>`` token.

    The map is built by a deterministic pre-order walk of the formula DAG
    (children in syntactic order, each shared node visited once), numbering
    binders in order of first appearance.  The renaming is injective, so it
    preserves the binding structure even for shadowed names; alpha-equivalent
    formulas built independently (with different globally-fresh suffixes)
    receive identical maps.
    """
    names: dict[str, str] = {}
    visited: set[int] = set()
    stack = [formula]
    while stack:
        node = stack.pop()
        if id(node) in visited:
            continue
        visited.add(id(node))
        kind = node.kind
        if kind in (sx.KIND_MU, sx.KIND_NU):
            for name, _ in node.defs:
                if name not in names:
                    names[name] = f"%{len(names)}"
            # Push in reverse so definitions are walked in syntactic order.
            children = [definition for _, definition in node.defs] + [node.body]
            stack.extend(reversed(children))
        elif kind in (sx.KIND_AND, sx.KIND_OR):
            stack.append(node.right)
            stack.append(node.left)
        elif kind == sx.KIND_DIA:
            stack.append(node.left)
    return names


def _node_children(node: sx.Formula) -> tuple[sx.Formula, ...]:
    kind = node.kind
    if kind in (sx.KIND_AND, sx.KIND_OR):
        return (node.left, node.right)
    if kind == sx.KIND_DIA:
        return (node.left,)
    if kind in (sx.KIND_MU, sx.KIND_NU):
        return tuple(definition for _, definition in node.defs) + (node.body,)
    return ()


def _node_header(node: sx.Formula, names: dict[str, str]) -> str:
    kind = node.kind
    if kind in (sx.KIND_PROP, sx.KIND_NPROP, sx.KIND_ATTR, sx.KIND_NATTR):
        return f"{kind}:{node.label}"
    if kind == sx.KIND_VAR:
        # Free variables (never produced by the translations, which build
        # closed formulas) keep their own name so they stay distinguishable.
        return f"var:{names.get(node.label, 'free:' + node.label)}"
    if kind in (sx.KIND_DIA, sx.KIND_NDIA):
        return f"{kind}:{node.prog}"
    if kind in (sx.KIND_MU, sx.KIND_NU):
        bound = ",".join(names[name] for name, _ in node.defs)
        return f"{kind}:{bound}"
    return kind  # true / false / start / nstart


def formula_digest(formula: sx.Formula) -> str:
    """SHA-256 hex digest of the canonical (alpha-invariant) form of a formula.

    Computed as a Merkle hash over the formula DAG — linear in the number of
    *distinct* subformulas, with no recursion and no materialised text, so
    heavily shared translation outputs stay cheap to address.
    """
    names = _canonical_names(formula)
    memo: dict[int, bytes] = {}
    stack: list[tuple[sx.Formula, bool]] = [(formula, False)]
    while stack:
        node, expanded = stack.pop()
        if id(node) in memo:
            continue
        children = _node_children(node)
        if not expanded:
            stack.append((node, True))
            stack.extend((child, False) for child in children)
            continue
        hasher = hashlib.sha256()
        hasher.update(_node_header(node, names).encode())
        for child in children:
            hasher.update(b"|")
            hasher.update(memo[id(child)])
        memo[id(node)] = hasher.digest()
    return memo[id(formula)].hex()


def lean_alphabet(formula: sx.Formula) -> dict[str, list[str]]:
    """The Lean alphabet of a formula: atomic propositions and attribute names.

    This is the ``Σ(ψ)`` part of ``Lean(ψ)`` (Section 6.1) before the
    implicit ``#other``/``#otherattr`` extras are appended; it is part of the
    cache key and stored in each entry for inspection.

    With cone-of-influence pruning (the default), the formulas reaching the
    cache are built over the problem's *pruned* element alphabet — collapsed
    names are gone from the formula itself — so digests key on the pruned
    alphabet automatically: a pruned and an unpruned reduction of the same
    query are distinct cache entries, and pruned entries are shared by every
    problem projecting onto the same alphabet.
    """
    return {
        "labels": sorted(sx.atomic_propositions(formula)),
        "attributes": sorted(sx.attribute_propositions(formula)),
    }


def solve_cache_key(
    formula: sx.Formula, track_marks: bool = True, scope: str = "single"
) -> str:
    """The content address of a formula's solver verdict (``entry_key``).

    Covers the canonical formula digest, the Lean alphabet, the cache format
    version, the only solver option that changes verdicts
    (``track_marks=False`` is the deliberately unsound ablation mode of
    :class:`repro.solver.symbolic.SymbolicSolver`), and the entry ``scope``:
    ``"single"`` for ordinary per-formula verdicts (including the
    subformula-level entries a merged batch solve writes per goal — the
    verdict is the same question, so they *should* share addresses with
    single-query solves), versus the distinct scope of
    :func:`merged_entry_key` for batch-level entries, which can therefore
    never alias a per-formula record.
    """
    alphabet = lean_alphabet(formula)
    material = "\n".join(
        [
            f"repro-solve-cache/v{CACHE_FORMAT_VERSION}",
            f"scope={scope}",
            formula_digest(formula),
            "labels=" + ",".join(alphabet["labels"]),
            "attributes=" + ",".join(alphabet["attributes"]),
            f"track_marks={track_marks}",
        ]
    )
    return hashlib.sha256(material.encode()).hexdigest()


#: Backwards-compatible alias: the function other modules historically call
#: "the entry key" of the disk cache.
entry_key = solve_cache_key


def merged_entry_key(goal_keys: "list[str] | tuple[str, ...]", track_marks: bool = True) -> str:
    """The content address of one merged-Lean *batch-level* entry.

    A merged batch solve decides N goal formulas in one fixpoint; the batch
    entry stores all N records under a single key so an identical batch
    replays with one read.  The key material covers the per-goal entry keys
    *in goal-bit order* — the order assigns the goal bits of the merged
    Lean, so two batches with the same goals in different order are
    different encodings and different entries — plus a ``merged-batch``
    scope line that keeps these entries disjoint from every single-formula
    address by construction.
    """
    material = "\n".join(
        [
            f"repro-solve-cache/v{CACHE_FORMAT_VERSION}",
            "scope=merged-batch",
            f"track_marks={track_marks}",
            "goals=" + ",".join(goal_keys),
        ]
    )
    return hashlib.sha256(material.encode()).hexdigest()


# ---------------------------------------------------------------------------
# Records and the on-disk store
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class SolveRecord:
    """A solver verdict in storable form (what both cache layers hold).

    ``counterexample`` is the satisfying model already serialized by
    :func:`repro.trees.unranked.serialize_tree` (``None`` when the formula is
    unsatisfiable); ``statistics`` is the
    :meth:`repro.solver.symbolic.SolverStatistics.as_dict` of the run that
    produced the verdict.
    """

    satisfiable: bool
    counterexample: str | None
    statistics: dict
    solve_seconds: float

    def as_dict(self) -> dict:
        return {
            "satisfiable": self.satisfiable,
            "counterexample": self.counterexample,
            "statistics": self.statistics,
            "solve_seconds": self.solve_seconds,
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "SolveRecord":
        return cls(
            satisfiable=bool(payload["satisfiable"]),
            counterexample=payload["counterexample"],
            statistics=dict(payload["statistics"]),
            solve_seconds=float(payload["solve_seconds"]),
        )


class DiskSolveCache:
    """A directory of solver verdicts, one atomic JSON file per formula.

    Layout: ``<directory>/v<version>/<key[:2]>/<key>.json`` — the two-level
    fan-out keeps directories small for large caches.  All operations are
    safe under concurrent readers and writers (see the module docstring).
    """

    def __init__(self, directory: str | os.PathLike, track_marks: bool = True):
        self.directory = Path(directory).expanduser()
        self.track_marks = track_marks
        self.root = self.directory / f"v{CACHE_FORMAT_VERSION}"
        self.root.mkdir(parents=True, exist_ok=True)
        self._sequence = 0
        # Formulas are hash-consed (identity == structure), so the canonical
        # digest of each one is computed once — a get followed by the put of
        # a fresh verdict must not walk the formula DAG twice.
        self._key_memo: dict[sx.Formula, str] = {}

    # -- addressing --------------------------------------------------------------

    def key_for(self, formula: sx.Formula) -> str:
        key = self._key_memo.get(formula)
        if key is None:
            key = solve_cache_key(formula, track_marks=self.track_marks)
            self._key_memo[formula] = key
        return key

    def path_for_key(self, key: str) -> Path:
        return self.root / key[:2] / f"{key}.json"

    # -- read / write ------------------------------------------------------------

    def get(self, formula: sx.Formula) -> SolveRecord | None:
        """The stored verdict for a formula, or ``None`` on miss/corruption.

        A file that exists but does not decode — truncated by a torn write,
        bit-rotted, hand-edited — is *quarantined*: renamed to
        ``<entry>.corrupt`` so the next writer republishes a good entry while
        the evidence stays on disk for inspection.  Version or key mismatches
        are well-formed files and stay in place (plain miss).
        """
        key = self.key_for(formula)
        path = self.path_for_key(key)
        try:
            payload = json.loads(path.read_text(encoding="utf-8"))
            if payload.get("version") != CACHE_FORMAT_VERSION or payload.get("key") != key:
                return None
            return SolveRecord.from_dict(payload)
        except FileNotFoundError:
            return None
        except (OSError, ValueError, KeyError, TypeError):
            self._quarantine(path)
            return None

    @staticmethod
    def _quarantine(path: Path) -> None:
        """Move a corrupt entry aside; never raises (losing the race is fine)."""
        try:
            os.replace(path, path.with_suffix(path.suffix + ".corrupt"))
        except OSError:
            pass

    def put(self, formula: sx.Formula, record: SolveRecord) -> Path:
        """Persist a verdict (atomic publish); returns the entry path."""
        key = self.key_for(formula)
        path = self.path_for_key(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        payload = {
            "version": CACHE_FORMAT_VERSION,
            "key": key,
            **record.as_dict(),
            "alphabet": lean_alphabet(formula),
            "formula": format_formula(formula)[:_FORMULA_PREVIEW_CHARS],
            "created": time.time(),
        }
        encoded = json.dumps(payload, ensure_ascii=False, indent=1) + "\n"
        if faults.should_fire("cache-torn-write", key):
            # Simulate a writer dying mid-write *without* the atomic-publish
            # protection: half a payload lands at the final path.
            path.write_text(encoded[: len(encoded) // 2], encoding="utf-8")
            return path
        self._sequence += 1
        scratch = path.parent / f".{key}.{os.getpid()}.{self._sequence}.tmp"
        scratch.write_text(encoded, encoding="utf-8")
        os.replace(scratch, path)
        return path

    # -- merged-batch entries ----------------------------------------------------

    def batch_key(self, formulas: "list[sx.Formula] | tuple[sx.Formula, ...]") -> str:
        """The batch-level address of a merged solve over ``formulas``."""
        return merged_entry_key(
            [self.key_for(formula) for formula in formulas],
            track_marks=self.track_marks,
        )

    def get_batch(
        self, formulas: "list[sx.Formula] | tuple[sx.Formula, ...]"
    ) -> "list[SolveRecord] | None":
        """Stored records of an identical merged batch (one per goal), or ``None``.

        Same quarantine-on-corruption discipline as :meth:`get`; an entry
        whose goal list does not match exactly (a hash collision, or a
        hand-edited file) is a plain miss.
        """
        key = self.batch_key(formulas)
        path = self.path_for_key(key)
        try:
            payload = json.loads(path.read_text(encoding="utf-8"))
            if payload.get("version") != CACHE_FORMAT_VERSION or payload.get("key") != key:
                return None
            if payload.get("scope") != "merged-batch":
                return None
            if payload.get("goals") != [self.key_for(formula) for formula in formulas]:
                return None
            records = payload["records"]
            if len(records) != len(formulas):
                return None
            return [SolveRecord.from_dict(record) for record in records]
        except FileNotFoundError:
            return None
        except (OSError, ValueError, KeyError, TypeError):
            self._quarantine(path)
            return None

    def put_batch(
        self,
        formulas: "list[sx.Formula] | tuple[sx.Formula, ...]",
        records: "list[SolveRecord]",
    ) -> Path:
        """Persist a merged batch's per-goal records (atomic publish)."""
        if len(records) != len(formulas):
            raise ValueError("one record per goal formula required")
        key = self.batch_key(formulas)
        path = self.path_for_key(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        payload = {
            "version": CACHE_FORMAT_VERSION,
            "key": key,
            "scope": "merged-batch",
            "goals": [self.key_for(formula) for formula in formulas],
            "records": [record.as_dict() for record in records],
            "created": time.time(),
        }
        encoded = json.dumps(payload, ensure_ascii=False, indent=1) + "\n"
        if faults.should_fire("cache-torn-write", key):
            path.write_text(encoded[: len(encoded) // 2], encoding="utf-8")
            return path
        self._sequence += 1
        scratch = path.parent / f".{key}.{os.getpid()}.{self._sequence}.tmp"
        scratch.write_text(encoded, encoding="utf-8")
        os.replace(scratch, path)
        return path

    # -- maintenance -------------------------------------------------------------

    def entry_paths(self) -> Iterator[Path]:
        return self.root.glob("??/*.json")

    def __len__(self) -> int:
        return sum(1 for _ in self.entry_paths())

    def entries(self) -> Iterator[dict]:
        """Iterate decoded entry payloads (skipping corrupt files)."""
        for path in sorted(self.entry_paths()):
            try:
                yield json.loads(path.read_text(encoding="utf-8"))
            except (OSError, ValueError):
                continue

    def clear(self) -> int:
        """Remove every entry of the *current* format version; returns count."""
        removed = 0
        for path in list(self.entry_paths()):
            try:
                path.unlink()
                removed += 1
            except OSError:
                continue
        return removed
