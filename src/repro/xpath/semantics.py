"""Denotational semantics of the XPath fragment (Figures 5 and 6).

Expressions are interpreted as functions between sets of focused trees.  The
initial set represents the possible evaluation contexts; a relative path keeps
only the contexts whose focus carries the start mark, while an absolute path
first navigates to the root of each document.  The result is the set of
focused trees (nodes) selected by the expression.

This interpreter is the executable specification against which the Lµ
translation of :mod:`repro.xpath.compile` is validated (Proposition 5.1(1)).
"""

from __future__ import annotations

from typing import FrozenSet

from repro.trees.focus import FocusedTree, all_focuses
from repro.trees.unranked import Tree
from repro.xpath import ast as xp

FocusSet = FrozenSet[FocusedTree]


# -- auxiliary navigation functions (Figure 6) ---------------------------------


def _fchild(nodes: FocusSet) -> FocusSet:
    return frozenset(f.follow(1) for f in nodes if f.follow(1) is not None)


def _nsibling(nodes: FocusSet) -> FocusSet:
    return frozenset(f.follow(2) for f in nodes if f.follow(2) is not None)


def _psibling(nodes: FocusSet) -> FocusSet:
    return frozenset(f.follow(-2) for f in nodes if f.follow(-2) is not None)


def _parent(nodes: FocusSet) -> FocusSet:
    result = set()
    for focus in nodes:
        current = focus
        # The parent navigation of Figure 6 rebuilds the parent node whatever
        # the position of the focus among its siblings; with the zipper this
        # is "move to the leftmost sibling, then up".
        while current.follow(-2) is not None:
            current = current.follow(-2)
        up = current.follow(-1)
        if up is not None:
            result.add(up)
    return frozenset(result)


def _root(nodes: FocusSet) -> FocusSet:
    return frozenset(f.to_root() for f in nodes)


def _transitive(step, nodes: FocusSet) -> FocusSet:
    """Least fixpoint of repeatedly applying ``step`` (used for recursive axes)."""
    result: set[FocusedTree] = set()
    frontier = step(nodes)
    while frontier - result:
        result |= frontier
        frontier = step(frozenset(frontier))
    return frozenset(result)


# -- axes (Figure 5, bottom) -----------------------------------------------------


def axis_function(axis: xp.Axis, nodes: FocusSet) -> FocusSet:
    """The interpretation ``S_a[[axis]]`` applied to a set of focused trees."""
    if axis is xp.Axis.SELF:
        return nodes
    if axis is xp.Axis.CHILD:
        first = _fchild(nodes)
        return first | _transitive(_nsibling, first)
    if axis is xp.Axis.FOLL_SIBLING:
        return _transitive(_nsibling, nodes)
    if axis is xp.Axis.PREC_SIBLING:
        return _transitive(_psibling, nodes)
    if axis is xp.Axis.PARENT:
        return _parent(nodes)
    if axis is xp.Axis.DESCENDANT:
        return _transitive(lambda current: axis_function(xp.Axis.CHILD, current), nodes)
    if axis is xp.Axis.DESC_OR_SELF:
        return nodes | axis_function(xp.Axis.DESCENDANT, nodes)
    if axis is xp.Axis.ANCESTOR:
        return _transitive(_parent, nodes)
    if axis is xp.Axis.ANC_OR_SELF:
        return nodes | axis_function(xp.Axis.ANCESTOR, nodes)
    if axis is xp.Axis.FOLLOWING:
        return axis_function(
            xp.Axis.DESC_OR_SELF,
            axis_function(xp.Axis.FOLL_SIBLING, axis_function(xp.Axis.ANC_OR_SELF, nodes)),
        )
    if axis is xp.Axis.PRECEDING:
        return axis_function(
            xp.Axis.DESC_OR_SELF,
            axis_function(xp.Axis.PREC_SIBLING, axis_function(xp.Axis.ANC_OR_SELF, nodes)),
        )
    raise AssertionError(f"unknown axis {axis!r}")


# -- paths and qualifiers ----------------------------------------------------------


def path_function(path: xp.Path, nodes: FocusSet) -> FocusSet:
    """The interpretation ``S_p[[path]]`` applied to a set of focused trees."""
    if isinstance(path, xp.PathCompose):
        return path_function(path.second, path_function(path.first, nodes))
    if isinstance(path, xp.QualifiedPath):
        selected = path_function(path.path, nodes)
        return frozenset(f for f in selected if qualifier_holds(path.qualifier, f))
    if isinstance(path, xp.PathUnion):
        return path_function(path.left, nodes) | path_function(path.right, nodes)
    if isinstance(path, xp.Step):
        selected = axis_function(path.axis, nodes)
        if path.label is None:
            return selected
        return frozenset(f for f in selected if f.name == path.label)
    if isinstance(path, xp.AttributeStep):
        # Attribute presence is a property of the element: the step filters
        # the current nodes without navigating (there are no attribute nodes).
        return frozenset(f for f in nodes if f.has_attribute(path.name))
    raise AssertionError(f"unknown path node {path!r}")


def qualifier_holds(qualifier: xp.Qualifier, focus: FocusedTree) -> bool:
    """The interpretation ``S_q[[qualifier]]`` at a single focused tree."""
    if isinstance(qualifier, xp.QualifierAnd):
        return qualifier_holds(qualifier.left, focus) and qualifier_holds(
            qualifier.right, focus
        )
    if isinstance(qualifier, xp.QualifierOr):
        return qualifier_holds(qualifier.left, focus) or qualifier_holds(
            qualifier.right, focus
        )
    if isinstance(qualifier, xp.QualifierNot):
        return not qualifier_holds(qualifier.inner, focus)
    if isinstance(qualifier, xp.QualifierPath):
        start = frozenset({focus})
        if qualifier.absolute:
            # Absolute qualifier paths anchor at the document root (XPath 1.0).
            start = _root(start)
        return bool(path_function(qualifier.path, start))
    raise AssertionError(f"unknown qualifier node {qualifier!r}")


# -- expressions ----------------------------------------------------------------------


def evaluate_xpath(expr: xp.Expr, contexts: FocusSet) -> FocusSet:
    """The interpretation ``S_e[[expr]]`` applied to a set of context candidates."""
    if isinstance(expr, xp.AbsolutePath):
        return path_function(expr.path, _root(contexts))
    if isinstance(expr, xp.RelativePath):
        return path_function(expr.path, frozenset(f for f in contexts if f.marked))
    if isinstance(expr, xp.ExprUnion):
        return evaluate_xpath(expr.left, contexts) | evaluate_xpath(expr.right, contexts)
    if isinstance(expr, xp.ExprIntersection):
        return evaluate_xpath(expr.left, contexts) & evaluate_xpath(expr.right, contexts)
    raise AssertionError(f"unknown expression node {expr!r}")


def select(expr: xp.Expr, document: Tree) -> FocusSet:
    """Evaluate an expression against a document carrying one start mark.

    The contexts are all focuses of the document; relative expressions start
    from the marked node, absolute ones from the root.  The result is the set
    of selected focused trees.
    """
    if document.mark_count() != 1:
        raise ValueError(
            "the document must carry exactly one start mark designating the "
            "evaluation context; use Tree.mark_at"
        )
    contexts = frozenset(all_focuses(document))
    return evaluate_xpath(expr, contexts)


def select_labels(expr: xp.Expr, document: Tree) -> list[str]:
    """Labels of the selected nodes, in document order (testing convenience)."""
    selected = select(expr, document)
    ordered = []
    for path, node in sorted(document.iter_paths()):
        from repro.trees.focus import focus_at

        focus = focus_at(document, path)
        if focus in selected:
            ordered.append(node.label)
    return ordered
