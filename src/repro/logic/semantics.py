"""Interpretation of Lµ formulas over finite universes of focused trees (Figure 2).

The paper interprets formulas over ``F``, the set of *all* finite focused
trees carrying a single start mark.  That set is infinite, so this module
interprets formulas over an explicitly given finite universe instead —
typically :func:`repro.trees.focus.document_universe` of a few documents.
Because navigation never leaves the underlying document of a focused tree,
membership of a focused tree in the interpretation of a closed formula only
depends on the focused trees of the same document; restricting the universe to
whole documents therefore agrees with the global interpretation.

This interpreter is intentionally straightforward: it serves as the semantic
oracle against which the satisfiability algorithm, the XPath translation and
the type translation are tested.
"""

from __future__ import annotations

from typing import Mapping

from repro.logic import syntax as sx
from repro.trees.focus import FocusedTree, all_focuses
from repro.trees.unranked import Tree

Universe = frozenset[FocusedTree]
Valuation = Mapping[str, frozenset[FocusedTree]]


def interpret(
    formula: sx.Formula,
    universe: Universe,
    valuation: Valuation | None = None,
) -> frozenset[FocusedTree]:
    """The interpretation ``JϕK_V`` restricted to ``universe``."""
    valuation = dict(valuation or {})
    return _interpret(formula, universe, valuation)


def _interpret(
    formula: sx.Formula,
    universe: Universe,
    valuation: dict[str, frozenset[FocusedTree]],
) -> frozenset[FocusedTree]:
    kind = formula.kind
    if kind == sx.KIND_TRUE:
        return universe
    if kind == sx.KIND_FALSE:
        return frozenset()
    if kind == sx.KIND_PROP:
        return frozenset(f for f in universe if f.name == formula.label)
    if kind == sx.KIND_NPROP:
        return frozenset(f for f in universe if f.name != formula.label)
    if kind == sx.KIND_ATTR:
        return frozenset(f for f in universe if f.has_attribute(formula.label))
    if kind == sx.KIND_NATTR:
        return frozenset(f for f in universe if not f.has_attribute(formula.label))
    if kind == sx.KIND_START:
        return frozenset(f for f in universe if f.marked)
    if kind == sx.KIND_NSTART:
        return frozenset(f for f in universe if not f.marked)
    if kind == sx.KIND_VAR:
        return valuation.get(formula.label, frozenset())
    if kind == sx.KIND_OR:
        return _interpret(formula.left, universe, valuation) | _interpret(
            formula.right, universe, valuation
        )
    if kind == sx.KIND_AND:
        return _interpret(formula.left, universe, valuation) & _interpret(
            formula.right, universe, valuation
        )
    if kind == sx.KIND_DIA:
        inner = _interpret(formula.left, universe, valuation)
        return frozenset(
            f
            for f in universe
            if (successor := f.follow(formula.prog)) is not None and successor in inner
        )
    if kind == sx.KIND_NDIA:
        return frozenset(f for f in universe if f.follow(formula.prog) is None)
    if kind in (sx.KIND_MU, sx.KIND_NU):
        return _interpret_fixpoint(formula, universe, valuation)
    raise AssertionError(f"unknown formula kind {kind!r}")


def _interpret_fixpoint(
    formula: sx.Formula,
    universe: Universe,
    valuation: dict[str, frozenset[FocusedTree]],
) -> frozenset[FocusedTree]:
    names = [name for name, _definition in formula.defs]
    if formula.kind == sx.KIND_MU:
        current = {name: frozenset() for name in names}
    else:
        current = {name: universe for name in names}
    while True:
        extended = dict(valuation)
        extended.update(current)
        updated = {
            name: _interpret(definition, universe, extended)
            for name, definition in formula.defs
        }
        if updated == current:
            break
        current = updated
    extended = dict(valuation)
    extended.update(current)
    return _interpret(formula.body, universe, extended)


def satisfies(formula: sx.Formula, focused: FocusedTree) -> bool:
    """Whether a focused tree satisfies a closed formula.

    The universe is the set of focuses of the underlying document of
    ``focused``; the document must carry exactly one start mark.
    """
    document = focused.document()
    if document.mark_count() != 1:
        raise ValueError(
            "the underlying document must carry exactly one start mark; "
            f"found {document.mark_count()}"
        )
    universe = frozenset(all_focuses(document))
    return focused in interpret(formula, universe)


def models_of(formula: sx.Formula, documents: list[Tree]) -> frozenset[FocusedTree]:
    """All focused trees drawn from ``documents`` that satisfy the formula.

    Every document must carry exactly one start mark.  This is a convenience
    wrapper used by tests to compare the declarative semantics against the
    satisfiability algorithm and the XPath interpreter.
    """
    result: set[FocusedTree] = set()
    for document in documents:
        if document.mark_count() != 1:
            raise ValueError("each document must carry exactly one start mark")
        universe = frozenset(all_focuses(document))
        result |= interpret(formula, universe)
    return frozenset(result)
