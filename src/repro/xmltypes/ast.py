"""Binary regular tree type expressions (Section 5.2).

The paper's binary tree type expressions are::

    T ::= ∅ | ε | T₁ ∪ T₂ | σ(X₁, X₂) | let Xᵢ.Tᵢ in T

A whole ``let`` is represented here as a *grammar*: a mapping from type
variables to their sets of alternatives, where each alternative is either the
leaf ``ε`` or a labelled pair ``σ(X₁, X₂)`` (label, type of the first child,
type of the next sibling), plus a designated start variable.  This matches the
textual presentation of Figure 13::

    $5 -> edit($6, $Epsilon) | edit($6, $5)
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Union


@dataclass(frozen=True)
class Epsilon:
    """The alternative ε: the empty tree (end of a sibling chain)."""

    def __str__(self) -> str:
        return "EPSILON"


#: The unique ε alternative.
EPSILON = Epsilon()


@dataclass(frozen=True)
class LabelAlternative:
    """The alternative ``σ(X₁, X₂)``: a node labelled ``label`` whose children
    forest has type ``first`` and whose remaining siblings have type ``next``."""

    label: str
    first: str
    next: str

    def __str__(self) -> str:
        return f"{self.label}(${self.first}, ${self.next})"


Alternative = Union[Epsilon, LabelAlternative]


@dataclass
class BinaryTypeGrammar:
    """A binary regular tree type: variables, alternatives and a start variable."""

    variables: dict[str, tuple[Alternative, ...]] = field(default_factory=dict)
    start: str = "Start"
    name: str = "type"

    #: Conventional name of the variable denoting the empty tree.
    EPSILON_VARIABLE = "Epsilon"

    def alternatives(self, variable: str) -> tuple[Alternative, ...]:
        if variable == self.EPSILON_VARIABLE and variable not in self.variables:
            return (EPSILON,)
        return self.variables[variable]

    def is_nullable(self, variable: str) -> bool:
        """Whether the variable's language contains the empty tree."""
        return any(isinstance(alt, Epsilon) for alt in self.alternatives(variable))

    def is_epsilon_only(self, variable: str) -> bool:
        """Whether the variable is bound to exactly ε."""
        alternatives = self.alternatives(variable)
        return len(alternatives) == 1 and isinstance(alternatives[0], Epsilon)

    def is_empty(self, variable: str) -> bool:
        """Whether the variable denotes the empty language ∅."""
        return len(self.alternatives(variable)) == 0

    def variable_count(self) -> int:
        """Number of type variables (the second column of Table 1)."""
        return len(self.variables)

    def labels(self) -> set[str]:
        """Element labels mentioned by the grammar."""
        return {
            alternative.label
            for alternatives in self.variables.values()
            for alternative in alternatives
            if isinstance(alternative, LabelAlternative)
        }

    def reachable_variables(self, roots: Iterable[str] | None = None) -> set[str]:
        """Variables reachable from the start (or from the given roots)."""
        frontier = list(roots) if roots is not None else [self.start]
        seen: set[str] = set()
        while frontier:
            current = frontier.pop()
            if current in seen or current == self.EPSILON_VARIABLE:
                continue
            seen.add(current)
            for alternative in self.alternatives(current):
                if isinstance(alternative, LabelAlternative):
                    frontier.append(alternative.first)
                    frontier.append(alternative.next)
        return seen

    def restricted_to_reachable(self) -> "BinaryTypeGrammar":
        """A copy keeping only the variables reachable from the start."""
        keep = self.reachable_variables()
        return BinaryTypeGrammar(
            variables={name: alts for name, alts in self.variables.items() if name in keep},
            start=self.start,
            name=self.name,
        )

    def relabelled(self, keep: set[str], other_label: str) -> "BinaryTypeGrammar":
        """A copy whose labels outside ``keep`` all become ``other_label``.

        This is a *label homomorphism*: the grammar's variables, alternatives
        and recursion structure are untouched, only node labels collapse, so
        the resulting language is exactly the homomorphic image of the
        original one.  It is the projection step of cone-of-influence Lean
        pruning: element names a problem's expressions never test are
        indistinguishable to the problem, and collapsing them onto the
        logic's "any other label" proposition removes one Lean bit per name
        (plus the quadratic exactly-one-label constraints that go with them).
        """
        if keep >= self.labels():
            return self
        relabelled: dict[str, tuple[Alternative, ...]] = {}
        for variable, alternatives in self.variables.items():
            relabelled[variable] = tuple(
                alternative
                if not isinstance(alternative, LabelAlternative)
                or alternative.label in keep
                else LabelAlternative(other_label, alternative.first, alternative.next)
                for alternative in alternatives
            )
        return BinaryTypeGrammar(
            variables=relabelled, start=self.start, name=self.name
        )

    def minimized(self) -> "BinaryTypeGrammar":
        """A copy merging language-equivalent variables (partition refinement).

        Two variables are merged when their alternative sets coincide once
        every referenced variable is replaced by its equivalence class — the
        coarsest congruence, computed by the classic refine-until-stable
        loop.  After :meth:`relabelled` has collapsed labels, many variables
        become indistinguishable (every leaf element, every chain over
        collapsed labels, ...), so the grammar — and with it the closure and
        Lean of its compiled formula — shrinks accordingly.
        """
        variables = list(self.variables)
        # The ε variable is its own fixed class; everything else starts in
        # one class and is split by alternative signatures until stable.
        classes: dict[str, int] = {variable: 0 for variable in variables}
        classes[self.EPSILON_VARIABLE] = -1

        def signature(variable: str):
            parts = set()
            for alternative in self.alternatives(variable):
                if isinstance(alternative, LabelAlternative):
                    parts.add(
                        (
                            alternative.label,
                            classes.get(alternative.first, -1),
                            classes.get(alternative.next, -1),
                        )
                    )
                else:
                    parts.add(("ε",))
            return frozenset(parts)

        while True:
            buckets: dict[tuple[int, frozenset], int] = {}
            next_classes: dict[str, int] = {self.EPSILON_VARIABLE: -1}
            for variable in variables:
                key = (classes[variable], signature(variable))
                next_classes[variable] = buckets.setdefault(key, len(buckets))
            stable = len(buckets) == len({classes[v] for v in variables})
            classes = next_classes
            if stable:
                break

        # One representative per class (the first in declaration order, so
        # the start variable's class keeps a stable name).
        representative: dict[int, str] = {}
        for variable in variables:
            representative.setdefault(classes[variable], variable)
        if len(representative) == len(variables):
            return self

        def rename(variable: str) -> str:
            if variable == self.EPSILON_VARIABLE or variable not in classes:
                return variable
            return representative[classes[variable]]

        minimized: dict[str, tuple[Alternative, ...]] = {}
        for variable in variables:
            name = representative[classes[variable]]
            if name in minimized:
                continue
            minimized[name] = tuple(
                dict.fromkeys(
                    alternative
                    if not isinstance(alternative, LabelAlternative)
                    else LabelAlternative(
                        alternative.label,
                        rename(alternative.first),
                        rename(alternative.next),
                    )
                    for alternative in self.alternatives(variable)
                )
            )
        return BinaryTypeGrammar(
            variables=minimized, start=rename(self.start), name=self.name
        )

    def describe(self) -> str:
        """Textual rendering in the style of Figure 13."""
        lines = []
        for variable, alternatives in self.variables.items():
            rendered = " | ".join(str(alt) for alt in alternatives) or "EMPTY"
            lines.append(f"${variable} -> {rendered}")
        lines.append(f"Start Symbol is ${self.start}")
        lines.append(f"{len(self.variables)} type variables.")
        lines.append(f"{len(self.labels())} terminals.")
        return "\n".join(lines)
