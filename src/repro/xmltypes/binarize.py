"""Conversion of a DTD (unranked regular tree grammar) to binary tree types.

This reproduces the step from Figure 12 to Figure 13 of the paper: the
children content model of every element is compiled, with a continuation
variable describing the remaining siblings, into binary type variables whose
alternatives are either ``ε`` or ``σ(first-child-type, next-sibling-type)``.

The construction hash-conses alternative sets, so equivalent continuations
share one variable; the resulting variable counts are in the same range as the
ones reported in Table 1 of the paper.

Nullable constructs (``ε``, ``?``, ``*``) *inline* their continuation's
alternatives.  While a recursive variable is still being defined — the loop
variable of an enclosing ``*``/``+``, or an element's content variable — its
alternatives are not known yet, so inlining would silently read an empty
placeholder and drop every exit of the loop (historically, ``(b*)*`` compiled
to a chain that could never terminate; found by differential fuzzing).  Such
reads now produce a :class:`_Ref` marker instead, and a final resolution pass
expands the markers transitively once every definition is complete.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.xmltypes import content as cm
from repro.xmltypes.ast import (
    Alternative,
    BinaryTypeGrammar,
    EPSILON,
    LabelAlternative,
)
from repro.xmltypes.dtd import DTD


@dataclass(frozen=True)
class _Ref:
    """Build-time marker: "include the (final) alternatives of ``variable``".

    Only exists between construction and :func:`_resolve_refs`; resolved
    grammars never contain one.
    """

    variable: str


class _Builder:
    def __init__(self, dtd: DTD):
        self.dtd = dtd
        self.grammar = BinaryTypeGrammar(name=dtd.name)
        self.grammar.variables[BinaryTypeGrammar.EPSILON_VARIABLE] = (EPSILON,)
        # One "content" variable per element, describing its children forest.
        self.content_variable: dict[str, str] = {}
        self.counter = 0
        # Variables whose definition is in progress: their alternatives must
        # not be inlined (they would read as empty), see _Ref.
        self.pending: set[str] = set()
        # Hash-consing of alternative sets.
        self.by_alternatives: dict[tuple[Alternative, ...], str] = {
            (EPSILON,): BinaryTypeGrammar.EPSILON_VARIABLE
        }

    def continuation_alternatives(self, continuation: str) -> tuple[Alternative, ...]:
        """The alternatives of a continuation variable, safe to inline.

        While the continuation is still being defined, a reference marker is
        returned instead of its (incomplete) alternatives; the marker is
        expanded by :func:`_resolve_refs` once building is finished.
        """
        if continuation in self.pending:
            return (_Ref(continuation),)
        return self.grammar.alternatives(continuation)

    def fresh(self, hint: str) -> str:
        self.counter += 1
        return f"{hint}_{self.counter}"

    def define(self, alternatives: tuple[Alternative, ...], hint: str) -> str:
        """Return a variable with exactly these alternatives (hash-consed)."""
        key = tuple(alternatives)
        existing = self.by_alternatives.get(key)
        if existing is not None:
            return existing
        name = self.fresh(hint)
        self.grammar.variables[name] = key
        self.by_alternatives[key] = name
        return name

    def content_of(self, element: str) -> str:
        """Variable describing the children forest of ``element``."""
        existing = self.content_variable.get(element)
        if existing is not None:
            return existing
        # Reserve the name first: recursive elements reference themselves.
        name = f"C_{element}"
        self.content_variable[element] = name
        self.grammar.variables[name] = ()
        self.pending.add(name)
        if element in self.dtd.elements:
            model = self.dtd.content_of(element)
        else:
            # Referenced but undeclared elements are treated as empty, which
            # is what XML validators do modulo a warning.
            model = cm.CEmpty()
        alternatives = self.alternatives_of(
            model, BinaryTypeGrammar.EPSILON_VARIABLE, hint=element
        )
        self.grammar.variables[name] = alternatives
        self.pending.discard(name)
        return name

    def alternatives_of(
        self, model: cm.ContentModel, continuation: str, hint: str
    ) -> tuple[Alternative, ...]:
        """Alternatives of the type "a forest matching ``model`` followed by a
        forest of type ``continuation``"."""
        if isinstance(model, cm.CEmpty):
            return self.continuation_alternatives(continuation)
        if isinstance(model, cm.CSymbol):
            child_content = self.content_of(model.name)
            return (LabelAlternative(model.name, child_content, continuation),)
        if isinstance(model, cm.CSeq):
            rest = self.variable_of(model.right, continuation, hint)
            return self.alternatives_of(model.left, rest, hint)
        if isinstance(model, cm.CChoice):
            left = self.alternatives_of(model.left, continuation, hint)
            right = self.alternatives_of(model.right, continuation, hint)
            return _merge(left, right)
        if isinstance(model, cm.COptional):
            inner = self.alternatives_of(model.inner, continuation, hint)
            return _merge(inner, self.continuation_alternatives(continuation))
        if isinstance(model, cm.CStar):
            return self._star_alternatives(model.inner, continuation, hint)
        if isinstance(model, cm.CPlus):
            loop = self._star_variable(model.inner, continuation, hint)
            return self.alternatives_of(model.inner, loop, hint)
        raise AssertionError(f"unknown content model {model!r}")

    def variable_of(self, model: cm.ContentModel, continuation: str, hint: str) -> str:
        """A variable for ``model`` followed by ``continuation``."""
        alternatives = self.alternatives_of(model, continuation, hint)
        return self.define(alternatives, hint)

    def _star_variable(self, inner: cm.ContentModel, continuation: str, hint: str) -> str:
        """A variable ``X`` with ``X = inner · X  |  continuation``."""
        name = self.fresh(hint)
        self.grammar.variables[name] = ()
        self.pending.add(name)
        looped = self.alternatives_of(inner, name, hint)
        alternatives = _merge(looped, self.continuation_alternatives(continuation))
        self.grammar.variables[name] = alternatives
        self.pending.discard(name)
        # Register for hash-consing only after the definition is complete; a
        # recursive definition cannot be shared by key before it is known.
        self.by_alternatives.setdefault(alternatives, name)
        return name

    def _star_alternatives(
        self, inner: cm.ContentModel, continuation: str, hint: str
    ) -> tuple[Alternative, ...]:
        return self.grammar.alternatives(self._star_variable(inner, continuation, hint))


def _merge(
    left: tuple[Alternative, ...], right: tuple[Alternative, ...]
) -> tuple[Alternative, ...]:
    merged = list(left)
    for alternative in right:
        if alternative not in merged:
            merged.append(alternative)
    return tuple(merged)


def _resolve_refs(grammar: BinaryTypeGrammar) -> None:
    """Expand every :class:`_Ref` marker into the referenced alternatives.

    Reference chains (and cycles through a loop variable referencing itself)
    are followed transitively; the original alternative order is preserved
    and duplicates are dropped.  Variables without markers — every grammar
    the old inlining handled correctly — come out untouched.
    """
    resolved: dict[str, tuple[Alternative, ...]] = {}

    def resolve(name: str) -> tuple[Alternative, ...]:
        done = resolved.get(name)
        if done is not None:
            return done
        raw = grammar.variables[name]
        if not any(isinstance(alternative, _Ref) for alternative in raw):
            resolved[name] = raw
            return raw
        out: list[Alternative] = []
        visited: set[str] = set()

        def expand(variable: str) -> None:
            if variable in visited:
                return
            visited.add(variable)
            for alternative in resolved.get(variable, grammar.variables[variable]):
                if isinstance(alternative, _Ref):
                    expand(alternative.variable)
                elif alternative not in out:
                    out.append(alternative)

        expand(name)
        result = tuple(out)
        resolved[name] = result
        return result

    for name in list(grammar.variables):
        grammar.variables[name] = resolve(name)


def binarize_dtd(dtd: DTD, root: str | None = None) -> BinaryTypeGrammar:
    """Convert a DTD to a binary regular tree type grammar.

    The start variable describes a forest made of exactly one ``root`` element
    (the document element) and nothing else, matching the encoding of
    Figure 13 where ``$article -> article($1, $Epsilon)``.
    """
    builder = _Builder(dtd)
    root_element = root if root is not None else dtd.root
    if root_element is None or root_element not in dtd.elements:
        raise ValueError(f"unknown root element {root_element!r}")
    root_content = builder.content_of(root_element)
    start_alternatives: tuple[Alternative, ...] = (
        LabelAlternative(root_element, root_content, BinaryTypeGrammar.EPSILON_VARIABLE),
    )
    start_name = f"Doc_{root_element}"
    builder.grammar.variables[start_name] = start_alternatives
    builder.grammar.start = start_name
    builder.grammar.name = dtd.name
    _resolve_refs(builder.grammar)
    return builder.grammar
