"""The XPath fragment of the paper (Section 5, Figures 4-11).

The fragment covers the major navigational features of XPath 1.0 — all
thirteen structural axes, qualifiers (predicates) with boolean connectives,
path composition, union and intersection — and leaves out counting and
comparisons of data values, whose addition makes the decision problems
undecidable.

* :mod:`repro.xpath.ast`       — abstract syntax (Figure 4),
* :mod:`repro.xpath.parser`    — a parser for standard XPath surface syntax,
  including the abbreviations ``//``, ``*``, ``.`` and leading ``/``,
* :mod:`repro.xpath.semantics` — denotational semantics as functions between
  sets of focused trees (Figures 5 and 6),
* :mod:`repro.xpath.compile`   — the linear translation to Lµ (Figures 7, 8
  and 10).
"""

from repro.xpath.ast import (
    Axis,
    Expr,
    AbsolutePath,
    RelativePath,
    ExprUnion,
    ExprIntersection,
    Path,
    PathCompose,
    PathUnion,
    QualifiedPath,
    Step,
    Qualifier,
    QualifierAnd,
    QualifierOr,
    QualifierNot,
    QualifierPath,
)
from repro.xpath.parser import parse_xpath
from repro.xpath.semantics import evaluate_xpath, select
from repro.xpath.compile import compile_xpath, translate_expression

__all__ = [
    "Axis",
    "Expr",
    "AbsolutePath",
    "RelativePath",
    "ExprUnion",
    "ExprIntersection",
    "Path",
    "PathCompose",
    "PathUnion",
    "QualifiedPath",
    "Step",
    "Qualifier",
    "QualifierAnd",
    "QualifierOr",
    "QualifierNot",
    "QualifierPath",
    "parse_xpath",
    "evaluate_xpath",
    "select",
    "compile_xpath",
    "translate_expression",
]
