"""Element content models: regular expressions over element names.

A DTD constrains the children sequence of each element with a regular
expression; text content (``#PCDATA``) carries no structural information in
the paper's data model and is treated as the empty sequence.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Union


@dataclass(frozen=True)
class CEmpty:
    """The empty sequence ε (also the translation of ``EMPTY`` and ``#PCDATA``)."""

    def __str__(self) -> str:
        return "EMPTY"


@dataclass(frozen=True)
class CSymbol:
    """One occurrence of a child element."""

    name: str

    def __str__(self) -> str:
        return self.name


@dataclass(frozen=True)
class CSeq:
    """Sequential composition ``left, right``."""

    left: "ContentModel"
    right: "ContentModel"

    def __str__(self) -> str:
        return f"({self.left}, {self.right})"


@dataclass(frozen=True)
class CChoice:
    """Choice ``left | right``."""

    left: "ContentModel"
    right: "ContentModel"

    def __str__(self) -> str:
        return f"({self.left} | {self.right})"


@dataclass(frozen=True)
class COptional:
    """Zero or one occurrence ``inner?``."""

    inner: "ContentModel"

    def __str__(self) -> str:
        return f"{self.inner}?"


@dataclass(frozen=True)
class CStar:
    """Zero or more occurrences ``inner*``."""

    inner: "ContentModel"

    def __str__(self) -> str:
        return f"{self.inner}*"


@dataclass(frozen=True)
class CPlus:
    """One or more occurrences ``inner+``."""

    inner: "ContentModel"

    def __str__(self) -> str:
        return f"{self.inner}+"


ContentModel = Union[CEmpty, CSymbol, CSeq, CChoice, COptional, CStar, CPlus]


def sequence(parts: list[ContentModel]) -> ContentModel:
    """Right-nested sequence of ``parts`` (ε when empty)."""
    if not parts:
        return CEmpty()
    result = parts[-1]
    for part in reversed(parts[:-1]):
        result = CSeq(part, result)
    return result


def choice(parts: list[ContentModel]) -> ContentModel:
    """Right-nested choice of ``parts`` (ε when empty)."""
    if not parts:
        return CEmpty()
    result = parts[-1]
    for part in reversed(parts[:-1]):
        result = CChoice(part, result)
    return result


def nullable(model: ContentModel) -> bool:
    """Whether the empty children sequence matches the content model."""
    if isinstance(model, CEmpty):
        return True
    if isinstance(model, CSymbol):
        return False
    if isinstance(model, CSeq):
        return nullable(model.left) and nullable(model.right)
    if isinstance(model, CChoice):
        return nullable(model.left) or nullable(model.right)
    if isinstance(model, (COptional, CStar)):
        return True
    if isinstance(model, CPlus):
        return nullable(model.inner)
    raise AssertionError(f"unknown content model {model!r}")


def symbols(model: ContentModel) -> set[str]:
    """Element names mentioned by the content model."""
    if isinstance(model, CSymbol):
        return {model.name}
    if isinstance(model, (CSeq, CChoice)):
        return symbols(model.left) | symbols(model.right)
    if isinstance(model, (COptional, CStar, CPlus)):
        return symbols(model.inner)
    return set()


def matches(model: ContentModel, names: list[str]) -> bool:
    """Whether a sequence of child element names matches the content model.

    Implemented with Brzozowski derivatives; performance is more than enough
    for validation of the documents used in tests and benchmarks.
    """
    current = model
    for name in names:
        current = _derivative(current, name)
        if current is None:
            return False
    return nullable(current)


def _derivative(model: ContentModel, name: str) -> ContentModel | None:
    """Brzozowski derivative of the content model by one element name."""
    if isinstance(model, CEmpty):
        return None
    if isinstance(model, CSymbol):
        return CEmpty() if model.name == name else None
    if isinstance(model, CSeq):
        left = _derivative(model.left, name)
        first = CSeq(left, model.right) if left is not None else None
        if nullable(model.left):
            second = _derivative(model.right, name)
            return _union(first, second)
        return first
    if isinstance(model, CChoice):
        return _union(_derivative(model.left, name), _derivative(model.right, name))
    if isinstance(model, COptional):
        return _derivative(model.inner, name)
    if isinstance(model, CStar):
        inner = _derivative(model.inner, name)
        return CSeq(inner, model) if inner is not None else None
    if isinstance(model, CPlus):
        inner = _derivative(model.inner, name)
        return CSeq(inner, CStar(model.inner)) if inner is not None else None
    raise AssertionError(f"unknown content model {model!r}")


def _union(left: ContentModel | None, right: ContentModel | None) -> ContentModel | None:
    if left is None:
        return right
    if right is None:
        return left
    return CChoice(left, right)
