"""``repro analyze`` — one-shot decision problems from the command line.

Queries come either from the positional arguments (one expression →
satisfiability, two → containment, unless ``--kind`` says otherwise) or from
a ``--batch`` file in the wire format of :mod:`repro.cli.wire`.  The full
:class:`repro.api.BatchReport` is printed to stdout as JSON; exit code 0
means every query was analysed, 1 that at least one produced a structured
error outcome (malformed expression, unknown schema, ...), 2 that the
invocation itself was unusable (bad flags, unreadable batch file).
"""

from __future__ import annotations

import json
import sys

from repro.api import StaticAnalyzer
from repro.cli import wire

#: Exit codes of ``repro analyze`` (and ``repro serve``, which only uses 0/2).
EXIT_OK = 0
EXIT_ANALYSIS_ERROR = 1
EXIT_USAGE = 2


def default_kind(expression_count: int) -> str | None:
    """The implied ``--kind`` for bare positional expressions."""
    return {1: "satisfiability", 2: "containment"}.get(expression_count)


def request_payloads(args) -> list[dict]:
    """The request objects this invocation describes (see module docstring)."""
    if args.batch:
        if args.exprs or args.kind or args.types:
            raise wire.WireError("--batch cannot be combined with inline queries")
        return wire.read_batch(args.batch)
    kind = args.kind or default_kind(len(args.exprs))
    if kind is None:
        raise wire.WireError(
            f"--kind is required for {len(args.exprs)} expressions "
            "(only 1 or 2 have an implied kind)"
        )
    payload = {"kind": kind, "exprs": list(args.exprs)}
    if args.types:
        payload["types"] = list(args.types)
    return [payload]


def run(args) -> int:
    try:
        payloads = request_payloads(args)
        if not payloads:
            raise wire.WireError("no queries to analyze")
    except (OSError, wire.WireError) as exc:
        print(f"repro analyze: {exc}", file=sys.stderr)
        return EXIT_USAGE

    # Convert what converts; wire-format failures become error entries in the
    # report (mirroring the analyzer's structured error outcomes) so one bad
    # batch line never hides the verdicts of the others.
    analyzer = StaticAnalyzer(
        cache_dir=args.cache_dir, backend=getattr(args, "backend", None)
    )
    dtd_cache: wire.DTDCache = {}
    queries, conversion_errors = [], {}
    for position, payload in enumerate(payloads):
        try:
            queries.append(wire.query_from_dict(payload, dtd_cache))
        except (wire.WireError, ValueError) as exc:
            # Same shape as AnalysisOutcome.as_dict() so consumers of the
            # outcomes array never meet a second schema.
            conversion_errors[position] = {
                "query": payload,
                "problem": f"{payload.get('kind', 'query') if isinstance(payload, dict) else 'query'} (failed)",
                "holds": False,
                "satisfiable": False,
                "from_cache": False,
                "cache": None,
                "solve_seconds": 0.0,
                "statistics": {},
                "counterexample": None,
                "error": wire.error_payload(exc),
            }

    report = analyzer.solve_many(queries)
    solved = iter(report.outcomes)
    outcomes = [
        conversion_errors[position]
        if position in conversion_errors
        else next(solved).as_dict()
        for position in range(len(payloads))
    ]
    document = report.as_dict()
    document["outcomes"] = outcomes
    document["errors"] = report.errors + len(conversion_errors)
    document["cache_statistics"] = analyzer.cache_statistics()

    indent = None if args.compact else 2
    print(json.dumps(document, ensure_ascii=False, indent=indent))
    return EXIT_OK if document["errors"] == 0 else EXIT_ANALYSIS_ERROR
