"""Tests for XSLT pattern compilation (:mod:`repro.xslt.patterns`)."""

import pytest

from repro.core.errors import ParseError
from repro.xpath import ast as xp
from repro.xpath.parser import parse_pattern, parse_xpath_cached
from repro.xslt.patterns import (
    ComposeError,
    _last_steps,
    compose_context,
    default_priority,
    match_expression,
    matches_all_elements,
    matches_exactly_element,
    may_match_element,
    outranks,
    parse_test,
    pattern_alternatives,
)


def alternative(text: str) -> xp.Expr:
    (single,) = pattern_alternatives(text)
    return single


# ---------------------------------------------------------------------------
# Pattern grammar: alternatives
# ---------------------------------------------------------------------------


def test_top_level_alternatives_split_in_order():
    alts = pattern_alternatives("a | b/c | //d")
    assert [str(a) for a in alts] == [
        "child::a",
        "child::b/child::c",
        "/desc-or-self::*/child::d",
    ]


def test_parenthesised_unions_stay_inside_their_alternative():
    alts = pattern_alternatives("html/(head | body) | hr")
    assert len(alts) == 2
    assert "child::head | child::body" in str(alts[0])


@pytest.mark.parametrize(
    "text, needle",
    [
        ("id('x')", "identity"),
        ("key('k', 'v')", "identity"),
        ("ancestor::a", "axis"),
        ("a/..", ".."),
        ("", "empty pattern"),
    ],
)
def test_pattern_only_constructs_raise_targeted_errors(text, needle):
    with pytest.raises(ParseError) as excinfo:
        pattern_alternatives(text)
    assert needle in str(excinfo.value)
    assert excinfo.value.position is not None


def test_identity_function_error_points_at_the_function_name():
    with pytest.raises(ParseError) as excinfo:
        pattern_alternatives("article/id('x')")
    assert excinfo.value.position == len("article/")


# ---------------------------------------------------------------------------
# Match expressions (under the document-rooted reading)
# ---------------------------------------------------------------------------


def test_relative_pattern_gets_the_descendant_anchor():
    expr = match_expression(alternative("a/b"))
    assert isinstance(expr, xp.AbsolutePath)
    assert str(expr) == "/desc-or-self::*/child::a/child::b"


def test_absolute_pattern_is_itself():
    alt = alternative("/html/body")
    assert match_expression(alt) is alt


def test_document_node_pattern_is_rooted_self():
    assert str(match_expression(alternative("/"))) == "/self::*"


# ---------------------------------------------------------------------------
# Default priorities and conflict resolution (XSLT 1.0 §5.5)
# ---------------------------------------------------------------------------


@pytest.mark.parametrize(
    "pattern, priority",
    [
        ("foo", 0.0),
        ("*", -0.5),
        ("@href", 0.0),
        ("@*", -0.5),
        ("a/b", 0.5),
        ("/", 0.5),
        ("a[b]", 0.5),
        ("//a", 0.5),
    ],
)
def test_default_priorities(pattern, priority):
    assert default_priority(alternative(pattern)) == priority


def test_outranks_prefers_precedence_then_priority():
    assert outranks((2, -0.5), (1, 9.0))  # import precedence dominates
    assert outranks((1, 1.0), (1, 0.0))
    assert not outranks((1, 0.0), (1, 1.0))
    # Equal rank is a conflict, not a shadow: neither outranks the other.
    assert not outranks((1, 0.5), (1, 0.5))


# ---------------------------------------------------------------------------
# Context composition
# ---------------------------------------------------------------------------


def compose(context_text: str, expr_text: str) -> str:
    context = parse_xpath_cached(context_text)
    return str(compose_context(context, parse_xpath_cached(expr_text)))


def test_compose_concatenates_paths():
    assert compose("//a", "b/c") == "/desc-or-self::*/child::a/child::b/child::c"


def test_compose_ignores_context_for_absolute_expressions():
    assert compose("//a", "/html/head") == "/child::html/child::head"


def test_compose_distributes_over_expression_unions():
    assert compose("//a", "b | c") == (
        "/desc-or-self::*/child::a/child::b | /desc-or-self::*/child::a/child::c"
    )


def test_compose_distributes_over_context_unions():
    context = xp.ExprUnion(parse_xpath_cached("//a"), parse_xpath_cached("//b"))
    composed = compose_context(context, parse_xpath_cached("c"))
    assert str(composed) == (
        "/desc-or-self::*/child::a/child::c | /desc-or-self::*/child::b/child::c"
    )


def test_compose_from_attribute_context_is_an_error():
    with pytest.raises(ComposeError, match="attribute"):
        compose_context(parse_xpath_cached("//a/@href"), parse_xpath_cached("b"))


# ---------------------------------------------------------------------------
# Test-expression parsing
# ---------------------------------------------------------------------------


def test_parse_test_wraps_the_qualifier_grammar():
    expr = parse_test("b and not(c)")
    assert str(expr) == "self::*[child::b and not(child::c)]"
    assert str(parse_test("@href")) == "self::*[@href]"


def test_parse_test_shifts_error_positions_onto_the_test_text():
    text = "a and position()"
    with pytest.raises(ParseError) as excinfo:
        parse_test(text)
    assert excinfo.value.position == text.index("position")
    assert 0 <= excinfo.value.position <= len(text)
    # The original wrapped-text position does not leak into the message.
    assert "self::*" not in str(excinfo.value)


def test_parse_test_position_is_clamped_to_the_text():
    with pytest.raises(ParseError) as excinfo:
        parse_test("a[")
    assert 0 <= excinfo.value.position <= len("a[")


# ---------------------------------------------------------------------------
# Syntactic prescreens
# ---------------------------------------------------------------------------


def test_last_steps_traverse_compositions_qualifiers_and_unions():
    pattern = parse_pattern("a/(b | c[d])")
    steps = _last_steps(pattern.path)
    labels = {step.label for step in steps}
    assert labels == {"b", "c"}


def test_may_match_element():
    assert may_match_element(alternative("a/b"), "b")
    assert not may_match_element(alternative("a/b"), "a")
    assert may_match_element(alternative("*"), "anything")
    assert not may_match_element(alternative("@href"), "href")
    assert not may_match_element(alternative("/"), "html")


def test_matches_all_and_exactly():
    assert matches_all_elements(alternative("*"))
    assert not matches_all_elements(alternative("a"))
    assert not matches_all_elements(alternative("//*"))  # anchored: structured
    assert matches_exactly_element(alternative("li"), "li")
    assert matches_exactly_element(alternative("*"), "li")
    assert not matches_exactly_element(alternative("ul/li"), "li")
    assert not matches_exactly_element(alternative("li[a]"), "li")
