"""A DTD parser covering the subset relevant to the paper's data model.

Supported declarations:

* ``<!ELEMENT name content-spec>`` with content specifications ``EMPTY``,
  ``ANY``, mixed content ``(#PCDATA | a | b)*`` and children content models
  built from sequences ``,``, choices ``|`` and the ``?``, ``*``, ``+``
  occurrence operators;
* ``<!ENTITY % name "replacement">`` parameter entities and their references
  ``%name;`` (the XHTML DTD makes heavy use of them);
* ``<!ATTLIST ...>`` declarations and comments are recognised and ignored —
  attributes and data values are outside the paper's XPath fragment.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field

from repro.core.errors import ParseError
from repro.xmltypes import content as cm


@dataclass(frozen=True)
class ElementDeclaration:
    """One ``<!ELEMENT ...>`` declaration."""

    name: str
    content: cm.ContentModel


@dataclass
class DTD:
    """A parsed DTD: element declarations plus a designated root element."""

    elements: dict[str, ElementDeclaration] = field(default_factory=dict)
    root: str | None = None
    name: str = "dtd"

    def element_names(self) -> tuple[str, ...]:
        """Declared element names, in declaration order."""
        return tuple(self.elements)

    def content_of(self, name: str) -> cm.ContentModel:
        return self.elements[name].content

    def with_root(self, root: str) -> "DTD":
        """A copy of the DTD with a different designated root element."""
        if root not in self.elements:
            raise ValueError(f"element {root!r} is not declared by this DTD")
        return DTD(elements=dict(self.elements), root=root, name=self.name)

    def symbol_count(self) -> int:
        """Number of element symbols (the "Symbols" column of Table 1)."""
        return len(self.elements)


_COMMENT_RE = re.compile(r"<!--.*?-->", re.DOTALL)
_ENTITY_RE = re.compile(r'<!ENTITY\s+%\s+([\w.\-]+)\s+"([^"]*)"\s*>')
_ATTLIST_RE = re.compile(r"<!ATTLIST\b.*?>", re.DOTALL)
_ELEMENT_RE = re.compile(r"<!ELEMENT\s+([\w.\-]+)\s+(.*?)>", re.DOTALL)
_PE_REF_RE = re.compile(r"%([\w.\-]+);")


def parse_dtd(text: str, root: str | None = None, name: str = "dtd") -> DTD:
    """Parse DTD text into a :class:`DTD`.

    ``root`` designates the document element; when omitted it defaults to the
    first declared element.
    """
    without_comments = _COMMENT_RE.sub(" ", text)

    entities: dict[str, str] = {}
    for match in _ENTITY_RE.finditer(without_comments):
        entities[match.group(1)] = match.group(2)

    def expand(value: str, depth: int = 0) -> str:
        if depth > 50:
            raise ParseError("parameter entities nested too deeply (cycle?)")
        result = _PE_REF_RE.sub(
            lambda m: expand(entities.get(m.group(1), ""), depth + 1), value
        )
        return result

    stripped = _ENTITY_RE.sub(" ", without_comments)
    stripped = _ATTLIST_RE.sub(" ", stripped)

    dtd = DTD(name=name)
    for match in _ELEMENT_RE.finditer(stripped):
        element_name = match.group(1)
        spec = expand(match.group(2)).strip()
        model = _parse_content_spec(spec, element_name)
        dtd.elements[element_name] = ElementDeclaration(element_name, model)
    if not dtd.elements:
        raise ParseError("no <!ELEMENT> declaration found in DTD")
    dtd.root = root if root is not None else next(iter(dtd.elements))
    if dtd.root not in dtd.elements:
        raise ParseError(f"designated root element {dtd.root!r} is not declared")

    # ANY content models need the full element list; resolve them now.
    any_elements = [
        name_ for name_, declaration in dtd.elements.items()
        if isinstance(declaration.content, _AnyPlaceholder)
    ]
    if any_elements:
        every = cm.CStar(cm.choice([cm.CSymbol(n) for n in dtd.elements]))
        for name_ in any_elements:
            dtd.elements[name_] = ElementDeclaration(name_, every)
    return dtd


@dataclass(frozen=True)
class _AnyPlaceholder(cm.CEmpty):
    """Marker for ``ANY`` content, resolved once all elements are known."""


def _parse_content_spec(spec: str, element_name: str) -> cm.ContentModel:
    spec = spec.strip()
    if spec == "EMPTY":
        return cm.CEmpty()
    if spec == "ANY":
        return _AnyPlaceholder()
    parser = _ContentParser(spec, element_name)
    model = parser.parse()
    return model


class _ContentParser:
    """Recursive-descent parser for children and mixed content models."""

    def __init__(self, text: str, element_name: str):
        self.text = text
        self.element_name = element_name
        self.pos = 0

    def error(self, message: str) -> ParseError:
        return ParseError(
            f"in content model of <!ELEMENT {self.element_name}>: {message}",
            self.pos,
            self.text,
        )

    def skip_ws(self) -> None:
        while self.pos < len(self.text) and self.text[self.pos].isspace():
            self.pos += 1

    def at(self, string: str) -> bool:
        self.skip_ws()
        return self.text.startswith(string, self.pos)

    def accept(self, string: str) -> bool:
        if self.at(string):
            self.pos += len(string)
            return True
        return False

    def expect(self, string: str) -> None:
        if not self.accept(string):
            raise self.error(f"expected {string!r}")

    def read_name(self) -> str:
        self.skip_ws()
        match = re.match(r"[\w.\-]+", self.text[self.pos:])
        if match is None:
            raise self.error("expected an element name")
        self.pos += match.end()
        return match.group(0)

    def parse(self) -> cm.ContentModel:
        model = self._parse_particle()
        self.skip_ws()
        if self.pos != len(self.text):
            raise self.error("trailing characters in content model")
        return model

    def _parse_particle(self) -> cm.ContentModel:
        self.skip_ws()
        if self.accept("("):
            inner = self._parse_group_body()
            self.expect(")")
            return self._parse_occurrence(inner)
        if self.accept("#PCDATA"):
            return cm.CEmpty()
        name = self.read_name()
        return self._parse_occurrence(cm.CSymbol(name))

    def _parse_group_body(self) -> cm.ContentModel:
        first = self._parse_particle()
        self.skip_ws()
        if self.at("|"):
            parts = [first]
            while self.accept("|"):
                parts.append(self._parse_particle())
            return cm.choice(parts)
        if self.at(","):
            parts = [first]
            while self.accept(","):
                parts.append(self._parse_particle())
            return cm.sequence(parts)
        return first

    def _parse_occurrence(self, inner: cm.ContentModel) -> cm.ContentModel:
        if self.accept("?"):
            return cm.COptional(inner)
        if self.accept("*"):
            return cm.CStar(inner)
        if self.accept("+"):
            return cm.CPlus(inner)
        return inner
