"""Binary regular tree type expressions (Section 5.2).

The paper's binary tree type expressions are::

    T ::= ∅ | ε | T₁ ∪ T₂ | σ(X₁, X₂) | let Xᵢ.Tᵢ in T

A whole ``let`` is represented here as a *grammar*: a mapping from type
variables to their sets of alternatives, where each alternative is either the
leaf ``ε`` or a labelled pair ``σ(X₁, X₂)`` (label, type of the first child,
type of the next sibling), plus a designated start variable.  This matches the
textual presentation of Figure 13::

    $5 -> edit($6, $Epsilon) | edit($6, $5)
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Union


@dataclass(frozen=True)
class Epsilon:
    """The alternative ε: the empty tree (end of a sibling chain)."""

    def __str__(self) -> str:
        return "EPSILON"


#: The unique ε alternative.
EPSILON = Epsilon()


@dataclass(frozen=True)
class LabelAlternative:
    """The alternative ``σ(X₁, X₂)``: a node labelled ``label`` whose children
    forest has type ``first`` and whose remaining siblings have type ``next``."""

    label: str
    first: str
    next: str

    def __str__(self) -> str:
        return f"{self.label}(${self.first}, ${self.next})"


Alternative = Union[Epsilon, LabelAlternative]


@dataclass
class BinaryTypeGrammar:
    """A binary regular tree type: variables, alternatives and a start variable."""

    variables: dict[str, tuple[Alternative, ...]] = field(default_factory=dict)
    start: str = "Start"
    name: str = "type"

    #: Conventional name of the variable denoting the empty tree.
    EPSILON_VARIABLE = "Epsilon"

    def alternatives(self, variable: str) -> tuple[Alternative, ...]:
        if variable == self.EPSILON_VARIABLE and variable not in self.variables:
            return (EPSILON,)
        return self.variables[variable]

    def is_nullable(self, variable: str) -> bool:
        """Whether the variable's language contains the empty tree."""
        return any(isinstance(alt, Epsilon) for alt in self.alternatives(variable))

    def is_epsilon_only(self, variable: str) -> bool:
        """Whether the variable is bound to exactly ε."""
        alternatives = self.alternatives(variable)
        return len(alternatives) == 1 and isinstance(alternatives[0], Epsilon)

    def is_empty(self, variable: str) -> bool:
        """Whether the variable denotes the empty language ∅."""
        return len(self.alternatives(variable)) == 0

    def variable_count(self) -> int:
        """Number of type variables (the second column of Table 1)."""
        return len(self.variables)

    def labels(self) -> set[str]:
        """Element labels mentioned by the grammar."""
        return {
            alternative.label
            for alternatives in self.variables.values()
            for alternative in alternatives
            if isinstance(alternative, LabelAlternative)
        }

    def reachable_variables(self, roots: Iterable[str] | None = None) -> set[str]:
        """Variables reachable from the start (or from the given roots)."""
        frontier = list(roots) if roots is not None else [self.start]
        seen: set[str] = set()
        while frontier:
            current = frontier.pop()
            if current in seen or current == self.EPSILON_VARIABLE:
                continue
            seen.add(current)
            for alternative in self.alternatives(current):
                if isinstance(alternative, LabelAlternative):
                    frontier.append(alternative.first)
                    frontier.append(alternative.next)
        return seen

    def restricted_to_reachable(self) -> "BinaryTypeGrammar":
        """A copy keeping only the variables reachable from the start."""
        keep = self.reachable_variables()
        return BinaryTypeGrammar(
            variables={name: alts for name, alts in self.variables.items() if name in keep},
            start=self.start,
            name=self.name,
        )

    def describe(self) -> str:
        """Textual rendering in the style of Figure 13."""
        lines = []
        for variable, alternatives in self.variables.items():
            rendered = " | ".join(str(alt) for alt in alternatives) or "EMPTY"
            lines.append(f"${variable} -> {rendered}")
        lines.append(f"Start Symbol is ${self.start}")
        lines.append(f"{len(self.variables)} type variables.")
        lines.append(f"{len(self.labels())} terminals.")
        return "\n".join(lines)
