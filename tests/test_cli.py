"""Tests for the ``repro`` command line (:mod:`repro.cli`)."""

import io
import json

import pytest

from repro.cli import build_parser, main
from repro.cli import wire
from repro.cli.analyze import EXIT_ANALYSIS_ERROR, EXIT_OK, EXIT_USAGE
from repro.cli.bench import cli_cache_workload
from repro.cli.serve import serve


# ---------------------------------------------------------------------------
# Argument parsing
# ---------------------------------------------------------------------------


def test_parser_accepts_every_subcommand():
    parser = build_parser()
    args = parser.parse_args(["analyze", "a", "b", "--kind", "containment"])
    assert args.command == "analyze" and args.exprs == ["a", "b"]
    assert parser.parse_args(["serve"]).command == "serve"
    assert parser.parse_args(["schemas", "xhtml"]).name == "xhtml"
    assert parser.parse_args(["bench", "--output-dir", "/tmp"]).names == []
    assert parser.parse_args(["bench", "--workers", "2"]).workers == 2
    fuzz = parser.parse_args(["fuzz", "--budget", "50", "--seed", "3", "--workers", "2"])
    assert fuzz.command == "fuzz" and fuzz.budget == 50
    assert fuzz.seed == 3 and fuzz.workers == 2


def test_parser_rejects_unknown_subcommand(capsys):
    with pytest.raises(SystemExit) as excinfo:
        build_parser().parse_args(["frobnicate"])
    assert excinfo.value.code == EXIT_USAGE


def test_cache_dir_defaults_to_environment(monkeypatch):
    monkeypatch.setenv("REPRO_CACHE_DIR", "/tmp/from-env")
    assert build_parser().parse_args(["serve"]).cache_dir == "/tmp/from-env"
    monkeypatch.delenv("REPRO_CACHE_DIR")
    assert build_parser().parse_args(["serve"]).cache_dir is None


# ---------------------------------------------------------------------------
# The wire format
# ---------------------------------------------------------------------------


def test_query_from_dict_with_broadcast_type():
    query = wire.query_from_dict(
        {"kind": "containment", "exprs": ["a/b", "a//b"], "types": ["wikipedia"]}
    )
    assert query.types == ("wikipedia", "wikipedia")


def test_query_from_dict_rejects_malformed_payloads():
    with pytest.raises(wire.WireError):
        wire.query_from_dict({"kind": "nope", "exprs": ["a"]})
    with pytest.raises(wire.WireError):
        wire.query_from_dict({"kind": "containment", "exprs": "a"})
    with pytest.raises(wire.WireError):
        wire.query_from_dict({"kind": "containment", "exprs": ["a", "b"], "oops": 1})
    with pytest.raises(ValueError):
        wire.query_from_dict({"kind": "containment", "exprs": ["a"]})  # arity


def test_inline_dtd_objects_are_parsed_and_cached():
    cache: wire.DTDCache = {}
    payload = {
        "kind": "satisfiability",
        "exprs": ["child::b"],
        "types": [{"dtd": "<!ELEMENT a (b)><!ELEMENT b EMPTY>", "root": "a"}],
    }
    first = wire.query_from_dict(payload, cache)
    second = wire.query_from_dict(payload, cache)
    assert first.types[0] is second.types[0]  # identity preserved for caching


def test_read_batch_json_and_jsonl(tmp_path):
    requests = [{"kind": "satisfiability", "exprs": ["a"]}]
    as_json = tmp_path / "batch.json"
    as_json.write_text(json.dumps(requests), encoding="utf-8")
    as_jsonl = tmp_path / "batch.jsonl"
    as_jsonl.write_text("# comment\n" + json.dumps(requests[0]) + "\n\n", encoding="utf-8")
    assert wire.read_batch(as_json) == requests
    assert wire.read_batch(as_jsonl) == requests
    as_jsonl.write_text("not json\n", encoding="utf-8")
    with pytest.raises(wire.WireError):
        wire.read_batch(as_jsonl)


# ---------------------------------------------------------------------------
# repro analyze
# ---------------------------------------------------------------------------


def test_analyze_containment_exit_zero(capsys):
    code = main(["analyze", "child::a[b]", "child::a", "--compact"])
    payload = json.loads(capsys.readouterr().out)
    assert code == EXIT_OK
    assert payload["outcomes"][0]["holds"] is True
    assert payload["outcomes"][0]["query"]["kind"] == "containment"
    assert payload["errors"] == 0


def test_analyze_malformed_expression_exit_one(capsys):
    code = main(["analyze", "child::a[", "--compact"])
    payload = json.loads(capsys.readouterr().out)
    assert code == EXIT_ANALYSIS_ERROR
    assert payload["errors"] == 1
    assert payload["outcomes"][0]["error"]["kind"] == "ParseError"


def test_analyze_unknown_schema_exit_one(capsys):
    code = main(["analyze", "child::a", "--type", "nosuch", "--compact"])
    payload = json.loads(capsys.readouterr().out)
    assert code == EXIT_ANALYSIS_ERROR
    assert payload["outcomes"][0]["error"]["kind"] == "SchemaLookupError"


def test_analyze_three_exprs_need_explicit_kind(capsys):
    assert main(["analyze", "a", "b", "c"]) == EXIT_USAGE
    assert main(["analyze"]) == EXIT_USAGE
    assert main(["analyze", "a", "b", "c", "--kind", "coverage", "--compact"]) == EXIT_OK


def test_analyze_batch_mixes_verdicts_and_errors(tmp_path, capsys):
    batch = tmp_path / "batch.jsonl"
    batch.write_text(
        "\n".join(
            [
                json.dumps({"kind": "containment", "exprs": ["child::a[b]", "child::a"]}),
                json.dumps({"kind": "spelling", "exprs": ["a"]}),  # wire error
                json.dumps({"kind": "satisfiability", "exprs": ["child::a["]}),
            ]
        ),
        encoding="utf-8",
    )
    code = main(["analyze", "--batch", str(batch), "--compact"])
    payload = json.loads(capsys.readouterr().out)
    assert code == EXIT_ANALYSIS_ERROR
    assert payload["errors"] == 2
    assert [bool(o.get("error")) for o in payload["outcomes"]] == [False, True, True]
    assert payload["outcomes"][0]["holds"] is True  # good query still answered


def test_analyze_missing_batch_file_exit_two(capsys):
    assert main(["analyze", "--batch", "/nonexistent.jsonl"]) == EXIT_USAGE
    assert "analyze" in capsys.readouterr().err


def test_analyze_uses_persistent_cache(tmp_path, capsys):
    argv = ["analyze", "child::a[b]", "child::a", "--compact", "--cache-dir", str(tmp_path)]
    main(argv)
    first = json.loads(capsys.readouterr().out)
    main(argv)
    second = json.loads(capsys.readouterr().out)
    assert first["solver_runs"] == 1 and first["disk_cache_hits"] == 0
    assert second["solver_runs"] == 0 and second["disk_cache_hits"] == 1
    assert second["outcomes"][0]["cache"] == "disk"


# ---------------------------------------------------------------------------
# repro serve: JSONL round trips
# ---------------------------------------------------------------------------


def _serve_lines(requests: list[dict | str], **kwargs) -> list[dict]:
    text = "\n".join(
        request if isinstance(request, str) else json.dumps(request)
        for request in requests
    )
    output = io.StringIO()
    assert serve(io.StringIO(text + "\n"), output, **kwargs) == 0
    return [json.loads(line) for line in output.getvalue().splitlines()]


def test_serve_round_trips_queries_with_ids():
    responses = _serve_lines(
        [
            {"id": "q1", "kind": "containment", "exprs": ["child::a[b]", "child::a"]},
            {"id": "q2", "kind": "satisfiability", "exprs": ["child::meta/child::title"],
             "types": ["wikipedia"]},
            {"id": "q1", "kind": "containment", "exprs": ["child::a[b]", "child::a"]},
        ]
    )
    assert [r["id"] for r in responses] == ["q1", "q2", "q1"]
    assert all(r["ok"] for r in responses)
    assert responses[0]["outcome"]["holds"] is True
    assert responses[2]["outcome"]["from_cache"] is True


def test_serve_survives_malformed_lines_and_unknown_ops():
    responses = _serve_lines(
        [
            "this is not json",
            "[1, 2]",
            {"id": 9, "op": "selfdestruct"},
            {"id": 10, "kind": "satisfiability", "exprs": ["child::a"]},
        ]
    )
    assert [r["ok"] for r in responses] == [False, False, False, True]
    assert responses[0]["error"]["kind"] == "JSONDecodeError"
    assert responses[2]["error"]["kind"] == "ProtocolError"
    assert responses[3]["outcome"]["holds"] is True


def test_serve_analysis_errors_are_per_request():
    responses = _serve_lines(
        [
            {"id": 1, "kind": "satisfiability", "exprs": ["child::a["]},
            {"id": 2, "kind": "satisfiability", "exprs": ["child::a"]},
        ]
    )
    assert responses[0]["ok"] is False
    assert responses[0]["outcome"]["error"]["kind"] == "ParseError"
    assert responses[1]["ok"] is True


def test_serve_ops_ping_stats_schemas(tmp_path):
    responses = _serve_lines(
        [
            {"op": "ping"},
            {"id": 1, "kind": "satisfiability", "exprs": ["child::a"]},
            {"op": "stats"},
            {"op": "schemas"},
        ],
        cache_dir=str(tmp_path),
    )
    assert responses[0] == {"ok": True, "op": "ping"}
    stats = responses[2]["stats"]
    assert stats["solver_runs"] == 1
    assert stats["disk_cache_writes"] == 1
    assert stats["disk_cache_entries"] == 1
    assert {s["name"] for s in responses[3]["schemas"]} >= {"xhtml", "wikipedia"}


def test_serve_blank_and_comment_lines_are_ignored():
    responses = _serve_lines(["", "# warmup", {"op": "ping"}])
    assert len(responses) == 1


# ---------------------------------------------------------------------------
# repro schemas
# ---------------------------------------------------------------------------


def test_schemas_listing_and_detail(capsys):
    assert main(["schemas"]) == EXIT_OK
    listing = capsys.readouterr().out
    for name in ("smil", "xhtml", "xhtml-core", "wikipedia"):
        assert name in listing

    assert main(["schemas", "wikipedia", "--json"]) == EXIT_OK
    detail = json.loads(capsys.readouterr().out)
    assert detail["root"] == "article"
    assert detail["elements"] == 9
    assert "article" in detail["element_names"]

    assert main(["schemas", "nosuch"]) == EXIT_USAGE
    assert "unknown built-in DTD" in capsys.readouterr().err


def test_schemas_alias_resolves(capsys):
    assert main(["schemas", "xhtml-strict", "--json"]) == EXIT_OK
    assert json.loads(capsys.readouterr().out)["name"] == "xhtml"


# ---------------------------------------------------------------------------
# repro bench plumbing (the heavy two-process run lives in benchmarks/)
# ---------------------------------------------------------------------------


def test_bench_rejects_unknown_names(capsys):
    assert main(["bench", "nosuch"]) == EXIT_USAGE
    assert "unknown benchmark" in capsys.readouterr().err


def test_cli_cache_workload_is_fifty_valid_requests():
    workload = cli_cache_workload()
    assert len(workload) == 50
    assert len({json.dumps(q, sort_keys=True) for q in workload}) == 50  # distinct ids
    for payload in workload:
        wire.query_from_dict(payload)  # every request is wire-valid


# ---------------------------------------------------------------------------
# serve --workers (parallel request/response loop)
# ---------------------------------------------------------------------------


def _serve_raw_lines(lines, **kwargs):
    output = io.StringIO()
    code = serve(io.StringIO("\n".join(lines) + "\n"), output, **kwargs)
    assert code == 0
    return [json.loads(line) for line in output.getvalue().splitlines()]


def test_serve_workers_preserves_request_order_and_errors():
    lines = [
        '{"id": 1, "kind": "containment", "exprs": ["child::a[b]", "child::a"]}',
        "this is not json",
        '{"id": 3, "kind": "overlap", "exprs": ["a//b", "a/b"]}',
        '{"id": 4, "kind": "satisfiability", "exprs": ["child::a["]}',
        '{"id": 5, "kind": "emptiness", "exprs": ["child::title/child::meta"], "types": ["wikipedia"]}',
    ]
    sequential = _serve_raw_lines(lines, workers=1)
    parallel = _serve_raw_lines(lines, workers=2)
    assert [r.get("id") for r in parallel] == [1, None, 3, 4, 5]
    assert [r.get("ok") for r in parallel] == [r.get("ok") for r in sequential]
    for fast, slow in zip(parallel, sequential):
        if fast.get("outcome") and slow.get("outcome"):
            assert fast["outcome"]["holds"] == slow["outcome"]["holds"]


def test_serve_workers_stats_op_is_a_barrier():
    lines = [
        '{"id": 1, "kind": "containment", "exprs": ["child::a[b]", "child::a"]}',
        '{"id": 2, "kind": "overlap", "exprs": ["a//b", "a/b"]}',
        '{"id": 3, "op": "stats"}',
    ]
    responses = _serve_raw_lines(lines, workers=2)
    assert [r["id"] for r in responses] == [1, 2, 3]
    # The barrier flushed both queries before answering, and the worker
    # counters were folded into the parent's statistics.
    assert responses[2]["stats"]["solver_runs"] == 2


def test_serve_workers_share_the_persistent_cache(tmp_path):
    cache_dir = str(tmp_path / "serve-cache")
    lines = [
        '{"id": 1, "kind": "containment", "exprs": ["child::a[b]", "child::a"]}',
        '{"id": 2, "op": "stats"}',
    ]
    first = _serve_raw_lines(lines, cache_dir=cache_dir, workers=2)
    assert first[1]["stats"]["disk_cache_writes"] == 1
    replay = _serve_raw_lines(lines, cache_dir=cache_dir, workers=2)
    assert replay[1]["stats"]["solver_runs"] == 0
    assert replay[1]["stats"]["disk_cache_hits"] == 1


def test_serve_workers_answers_non_object_json_lines():
    """Regression: a line holding JSON `null` (or any non-object) must get a
    ProtocolError response, not be silently dropped (which would shift every
    later position-matched response by one)."""
    lines = [
        "null",
        '{"id": 2, "kind": "overlap", "exprs": ["a//b", "a/b"]}',
    ]
    for workers in (1, 2):
        responses = _serve_raw_lines(lines, workers=workers)
        assert len(responses) == 2, responses
        assert responses[0]["ok"] is False
        assert responses[0]["error"]["kind"] == "ProtocolError"
        assert responses[1]["id"] == 2 and responses[1]["ok"]
