"""Abstract syntax of the XPath fragment (Figure 4 of the paper).

The grammar is::

    e ::= /p | p | e₁ ∪ e₂ | e₁ ∩ e₂          expressions
    p ::= p₁/p₂ | p[q] | a::σ | a::* | (p₁ | p₂)   paths
    q ::= q₁ and q₂ | q₁ or q₂ | not q | p     qualifiers
    a ::= child | self | parent | descendant | desc-or-self | ancestor
        | anc-or-self | foll-sibling | prec-sibling | following | preceding

The parenthesised path union ``(p₁ | p₂)`` is a small extension of Figure 4
needed to express the paper's own benchmark query e10, ``html/(head | body)``;
it translates like an expression union applied mid-path.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Union


class Axis(enum.Enum):
    """The navigation axes of the fragment."""

    CHILD = "child"
    SELF = "self"
    PARENT = "parent"
    DESCENDANT = "descendant"
    DESC_OR_SELF = "desc-or-self"
    ANCESTOR = "ancestor"
    ANC_OR_SELF = "anc-or-self"
    FOLL_SIBLING = "foll-sibling"
    PREC_SIBLING = "prec-sibling"
    FOLLOWING = "following"
    PRECEDING = "preceding"

    def __str__(self) -> str:
        return self.value


#: The symmetric axis used by the "filtering" translation of qualifiers
#: (Figure 10): ``symmetric(child) = parent`` and so on.
SYMMETRIC_AXIS: dict[Axis, Axis] = {
    Axis.CHILD: Axis.PARENT,
    Axis.PARENT: Axis.CHILD,
    Axis.SELF: Axis.SELF,
    Axis.DESCENDANT: Axis.ANCESTOR,
    Axis.ANCESTOR: Axis.DESCENDANT,
    Axis.DESC_OR_SELF: Axis.ANC_OR_SELF,
    Axis.ANC_OR_SELF: Axis.DESC_OR_SELF,
    Axis.FOLL_SIBLING: Axis.PREC_SIBLING,
    Axis.PREC_SIBLING: Axis.FOLL_SIBLING,
    Axis.FOLLOWING: Axis.PRECEDING,
    Axis.PRECEDING: Axis.FOLLOWING,
}


# -- Paths -------------------------------------------------------------------


@dataclass(frozen=True)
class Step:
    """A navigation step ``a::σ`` or ``a::*`` (``label`` is ``None`` for ``*``)."""

    axis: Axis
    label: str | None = None

    def __str__(self) -> str:
        test = self.label if self.label is not None else "*"
        return f"{self.axis}::{test}"


@dataclass(frozen=True)
class PathCompose:
    """Path composition ``p₁/p₂``."""

    first: "Path"
    second: "Path"

    def __str__(self) -> str:
        return f"{self.first}/{self.second}"


@dataclass(frozen=True)
class QualifiedPath:
    """A qualified path ``p[q]``."""

    path: "Path"
    qualifier: "Qualifier"

    def __str__(self) -> str:
        return f"{self.path}[{self.qualifier}]"


@dataclass(frozen=True)
class PathUnion:
    """A parenthesised union of paths ``(p₁ | p₂)`` used inside a larger path."""

    left: "Path"
    right: "Path"

    def __str__(self) -> str:
        return f"({self.left} | {self.right})"


Path = Union[Step, PathCompose, QualifiedPath, PathUnion]


# -- Qualifiers ---------------------------------------------------------------


@dataclass(frozen=True)
class QualifierAnd:
    left: "Qualifier"
    right: "Qualifier"

    def __str__(self) -> str:
        return f"{self.left} and {self.right}"


@dataclass(frozen=True)
class QualifierOr:
    left: "Qualifier"
    right: "Qualifier"

    def __str__(self) -> str:
        return f"{self.left} or {self.right}"


@dataclass(frozen=True)
class QualifierNot:
    inner: "Qualifier"

    def __str__(self) -> str:
        return f"not({self.inner})"


@dataclass(frozen=True)
class QualifierPath:
    """A qualifier that tests the existence of a path."""

    path: Path

    def __str__(self) -> str:
        return str(self.path)


Qualifier = Union[QualifierAnd, QualifierOr, QualifierNot, QualifierPath]


# -- Expressions ----------------------------------------------------------------


@dataclass(frozen=True)
class AbsolutePath:
    """An absolute expression ``/p``: navigation starts at the document root."""

    path: Path

    def __str__(self) -> str:
        return f"/{self.path}"


@dataclass(frozen=True)
class RelativePath:
    """A relative expression ``p``: navigation starts at the marked context node."""

    path: Path

    def __str__(self) -> str:
        return str(self.path)


@dataclass(frozen=True)
class ExprUnion:
    """Union of the node sets selected by two expressions."""

    left: "Expr"
    right: "Expr"

    def __str__(self) -> str:
        return f"{self.left} | {self.right}"


@dataclass(frozen=True)
class ExprIntersection:
    """Intersection of the node sets selected by two expressions."""

    left: "Expr"
    right: "Expr"

    def __str__(self) -> str:
        return f"{self.left} intersect {self.right}"


Expr = Union[AbsolutePath, RelativePath, ExprUnion, ExprIntersection]
