"""Cone-of-influence Lean pruning: semantics preservation and proportionality.

The projection collapses element names a problem's expressions never test
onto the "any other label" proposition before any BDD is built
(:func:`repro.xmltypes.compile.project_grammar`).  These tests check the
three properties the optimisation rests on:

* **semantics preservation** — every verdict matches the unpruned run
  (``Analyzer(prune_labels=False)``), including across problem kinds;
* **proportionality** — a query touching 2 of 40 element names solves with a
  proportionally smaller Lean;
* **witness quality** — satisfying models are lifted back to concrete
  element names and validate against the original DTD.
"""

import pytest

from repro.analysis import Analyzer
from repro.analysis.problems import label_projection, relevant_labels
from repro.api import Query, StaticAnalyzer
from repro.logic import syntax as sx
from repro.xmltypes.binarize import binarize_dtd
from repro.xmltypes.compile import project_grammar
from repro.xmltypes.dtd import parse_dtd
from repro.xmltypes.library import builtin_dtd
from repro.xmltypes.membership import dtd_accepts, grammar_accepts, lift_wildcards


def wide_dtd(sections: int = 19):
    """A DTD with ``2 * sections + 2`` elements: root -> s1..sN -> leafN."""
    parts = [
        "<!ELEMENT root ("
        + ", ".join(f"s{i}" for i in range(1, sections + 1))
        + ", leaf0?)>"
    ]
    for i in range(1, sections + 1):
        parts.append(f"<!ELEMENT s{i} (leaf{i})*>")
        parts.append(f"<!ELEMENT leaf{i} EMPTY>")
    parts.append("<!ELEMENT leaf0 EMPTY>")
    return parse_dtd("\n".join(parts), name="wide", root="root")


# -- the projection itself -----------------------------------------------------------


def test_relevant_labels_collects_name_tests_only():
    assert relevant_labels("a/b[c]", "descendant::d/following::*") == (
        "a",
        "b",
        "c",
        "d",
    )
    assert relevant_labels("child::*") == ()


def test_label_projection_requires_a_single_shared_type():
    dtd = wide_dtd()
    other = wide_dtd()
    # One shared type (possibly repeated, possibly with None sides): prune.
    assert label_projection(("a", "b"), (dtd, dtd)) == ("a", "b")
    assert label_projection(("a",), (dtd, None)) == ("a",)
    # Two distinct type objects can be told apart through collapsed names:
    # pruning must be skipped.
    assert label_projection(("a", "b"), (dtd, other)) is None
    # Raw-formula constraints contribute their alphabet instead.
    assert label_projection(("a",), (dtd, sx.prop("x"))) == ("a", "x")


def test_projected_grammar_is_a_label_homomorphism():
    from repro.trees.unranked import Tree

    grammar = binarize_dtd(wide_dtd())
    projected = project_grammar(grammar, {"s2", "leaf2"})
    assert projected.labels() == {"s2", "leaf2", "#other"}
    # Structure is preserved: the projected grammar accepts exactly the
    # label-homomorphic image of the original language (spot-check one
    # document and its image).
    original = Tree(
        "root",
        tuple(
            Tree("s2", (Tree("leaf2", ()),)) if i == 2 else Tree(f"s{i}", ())
            for i in range(1, 20)
        ),
    )
    image = Tree(
        "root" if "root" in projected.labels() else "#other",
        tuple(
            Tree("s2", (Tree("leaf2", ()),)) if i == 2 else Tree("#other", ())
            for i in range(1, 20)
        ),
    )
    assert grammar_accepts(grammar, original)
    assert grammar_accepts(projected, image)


def test_minimization_merges_collapsed_variables():
    grammar = binarize_dtd(wide_dtd())
    projected = project_grammar(grammar, {"s2", "leaf2"})
    # The 19 isomorphic (sN, leafN) chains collapse into a handful of
    # classes once their labels coincide.
    assert projected.variable_count() < grammar.variable_count() / 2


# -- semantics preservation across problem kinds -------------------------------------


@pytest.mark.parametrize(
    "method, args",
    [
        ("satisfiability", ("child::s2/child::leaf2",)),
        ("satisfiability", ("child::s2/child::leaf3",)),
        ("emptiness", ("child::leaf0/child::s1",)),
        ("containment", ("child::s2[leaf2]", "child::s2")),
        ("containment", ("child::s2", "child::s2[leaf2]")),
        ("overlap", ("child::s2", "child::s3")),
    ],
)
def test_pruned_verdicts_match_unpruned(method, args):
    dtd = wide_dtd()
    pruned = Analyzer()
    unpruned = Analyzer(prune_labels=False)
    types = (dtd,) * (2 if method in ("containment", "overlap") else 1)
    fast = getattr(pruned, method)(*args, *types)
    slow = getattr(unpruned, method)(*args, *types)
    assert fast.holds == slow.holds


def test_pruned_lean_is_proportionally_smaller():
    """A query touching 2 of 40 element names: the Lean shrinks ~3x."""
    dtd = wide_dtd()
    assert len(dtd.element_names()) == 40
    pruned = Analyzer().satisfiability("child::s2/child::leaf2", dtd)
    unpruned = Analyzer(prune_labels=False).satisfiability(
        "child::s2/child::leaf2", dtd
    )
    assert pruned.holds == unpruned.holds is True
    pruned_lean = pruned.solver_result.statistics.lean_size
    unpruned_lean = unpruned.solver_result.statistics.lean_size
    # 40 collapsed propositions and their content-model chains are gone.
    assert pruned_lean < unpruned_lean / 2


def test_pruned_witness_is_lifted_to_a_valid_document():
    dtd = wide_dtd()
    result = Analyzer().satisfiability("child::s2/child::leaf2", dtd)
    assert result.holds
    witness = result.counterexample
    assert witness is not None
    # Collapsed labels were reassigned concrete element names.
    assert dtd_accepts(dtd, witness.unmark_all())


def test_lift_wildcards_returns_none_when_no_assignment_exists():
    from repro.trees.unranked import Tree

    dtd = wide_dtd()
    # `_` cannot be the root's only child: the root requires 19 sections.
    assert lift_wildcards(dtd, Tree("root", (Tree("_", ()),))) is None


# -- the API façade mirrors the problem layer ----------------------------------------


def test_api_prunes_and_lifts_like_the_analyzer():
    analyzer = StaticAnalyzer()
    outcome = analyzer.solve(
        Query.satisfiability("child::meta/child::title", "wikipedia")
    )
    assert outcome.holds
    # The witness validates against the schema (labels were lifted).
    from repro.trees.unranked import parse_tree

    assert dtd_accepts(builtin_dtd("wikipedia"), parse_tree(outcome.counterexample).unmark_all())


def test_api_prune_labels_off_reproduces_unpruned_lean():
    query = Query.satisfiability("child::meta/child::title", "wikipedia")
    pruned = StaticAnalyzer().solve(query)
    unpruned = StaticAnalyzer(prune_labels=False).solve(query)
    assert pruned.holds == unpruned.holds
    assert pruned.statistics["lean_size"] < unpruned.statistics["lean_size"]


def test_lifted_witness_never_reuses_a_tested_label():
    """Lifting must pick labels *outside* the pruned alphabet.

    Regression: with elements c and x both allowed where the witness has a
    collapsed node, assigning the tested name c would make the counterexample
    to `//a ⊆ //c/a` select the node on both sides — no longer a witness.
    """
    from repro.xmltypes.membership import dtd_accepts

    dtd = parse_dtd(
        "<!ELEMENT r (x | c)>\n<!ELEMENT c (a)>\n<!ELEMENT x (a)>\n"
        "<!ELEMENT a EMPTY>",
        name="lift",
        root="r",
    )
    result = Analyzer().containment("//a", "//c/a", dtd, dtd)
    reference = Analyzer(prune_labels=False).containment("//a", "//c/a", dtd, dtd)
    assert result.holds == reference.holds is False
    witness = result.counterexample
    assert witness is not None
    # The lifted witness must still separate the two queries: the `a` node
    # must not sit under a `c`.
    assert all(node.label != "c" for node in witness.iter_nodes())
    assert dtd_accepts(dtd, witness.unmark_all())
