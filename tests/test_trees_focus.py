"""Unit and property tests for focused trees (the zipper of Section 3)."""

import pytest
from hypothesis import given, strategies as st

from repro.core.errors import NavigationError
from repro.trees.focus import (
    FocusedTree,
    all_focuses,
    document_universe,
    focus_at,
    focus_root,
    inverse,
)
from repro.trees.unranked import parse_tree


@pytest.fixture
def doc():
    return parse_tree("<r!><a><c/></a><b/></r>")


def test_root_focus_observations(doc):
    focus = focus_root(doc)
    assert focus.name == "r"
    assert focus.marked
    assert focus.context.is_top


def test_first_child_and_back(doc):
    focus = focus_root(doc)
    child = focus.follow(1)
    assert child.name == "a"
    assert child.follow(-1) == focus


def test_next_and_previous_sibling(doc):
    first = focus_root(doc).follow(1)
    second = first.follow(2)
    assert second.name == "b"
    assert second.follow(-2) == first


def test_undefined_navigations_return_none(doc):
    focus = focus_root(doc)
    assert focus.follow(-1) is None
    assert focus.follow(-2) is None
    assert focus.follow(2) is None
    leaf = focus.follow(1).follow(1)
    assert leaf.name == "c"
    assert leaf.follow(1) is None


def test_follow_or_raise(doc):
    with pytest.raises(NavigationError):
        focus_root(doc).follow_or_raise(-1)


def test_parent_only_from_leftmost_sibling(doc):
    second = focus_root(doc).follow(1).follow(2)
    assert second.follow(-1) is None  # not the leftmost sibling


def test_inverse():
    assert inverse(1) == -1 and inverse(-2) == 2
    with pytest.raises(ValueError):
        inverse(3)


def test_focus_at_path(doc):
    focus = focus_at(doc, (0, 0))
    assert focus.name == "c"
    assert focus.document() == doc


def test_all_focuses_covers_every_node(doc):
    names = sorted(f.name for f in all_focuses(doc))
    assert names == ["a", "b", "c", "r"]


def test_document_rebuild_after_navigation(doc):
    wandering = focus_root(doc).follow(1).follow(1)
    assert wandering.document() == doc


def test_document_universe_requires_single_mark():
    with pytest.raises(ValueError):
        document_universe([parse_tree("<a><b/></a>")])


def test_exactly_one_marked_focus(doc):
    marked = [f for f in all_focuses(doc) if f.marked]
    assert len(marked) == 1 and marked[0].name == "r"


# -- property: every defined navigation step is undone by its converse ------------------

_DOCS = st.sampled_from(
    [
        "<a!><b/><c><d/><e/></c></a>",
        "<r!><x><y><z/></y></x></r>",
        "<p><q!/><q/><q><r/></q></p>",
    ]
)


@given(_DOCS, st.lists(st.sampled_from([1, 2, -1, -2]), max_size=6))
def test_navigation_inverse_property(text, moves):
    focus: FocusedTree = focus_root(parse_tree(text))
    for move in moves:
        following = focus.follow(move)
        if following is None:
            continue
        assert following.follow(inverse(move)) == focus
        focus = following
