"""Stable batch façade over the static analyzer: ``repro.api``.

This module is the recommended entry point for programs that issue *many*
decision problems — a schema-aware editor validating every XPath expression in
a stylesheet, a query optimiser probing containment between rewrite
candidates, a service answering analysis requests over the same few schemas.
It wraps the problem reductions of :mod:`repro.analysis` behind three layers
of memoisation so that work is shared across an entire workload instead of
being redone per call:

1. **Type-translation cache** — compiling a DTD to its Lµ formula
   (Section 5.2 of the paper) is pure and depends only on the type, so each
   distinct type is translated once per analyzer.
2. **Query-translation cache** — likewise for the XPath-to-Lµ translation
   (Section 5.1), keyed by ``(expression, type)``.
3. **Solve cache** — Lµ formulas are hash-consed (:mod:`repro.logic.syntax`),
   so two problems that reduce to the same logical formula are *the same
   satisfiability question*; the solver runs once per distinct formula and
   every later occurrence is answered from cache.  This is where batch
   workloads win: containment, emptiness and equivalence checks over the same
   schema keep meeting the same sub-translations and often the same formulas.
4. **Persistent solve cache** (opt-in) — constructing the analyzer with
   ``cache_dir=...`` writes every solver verdict through to an on-disk,
   content-addressed store (:mod:`repro.cache`) and consults it on in-memory
   misses, so a *cold process* replaying a workload answered by an earlier
   process performs zero solver runs.

Results are plain data: every :class:`AnalysisOutcome` (and the
:class:`BatchReport` returned by :meth:`StaticAnalyzer.solve_many`) converts
to JSON-compatible dictionaries via ``as_dict()`` / ``to_json()``, including
the solver statistics of :class:`repro.solver.symbolic.SolverStatistics` and a
serialized counterexample document when one exists.

Quickstart::

    from repro.api import Query, StaticAnalyzer

    analyzer = StaticAnalyzer()
    report = analyzer.solve_many([
        Query.containment("child::a[b]", "child::a"),
        Query.satisfiability("descendant::a[ancestor::a]", "xhtml-core"),
        Query.emptiness("child::title/child::meta", "wikipedia"),
    ])
    for outcome in report.outcomes:
        print(outcome.problem, outcome.holds)
    print(report.to_json())

XML types may be given as built-in schema names (``"smil"``, ``"xhtml"``,
``"xhtml-core"``, ``"wikipedia"``), parsed :class:`repro.xmltypes.dtd.DTD`
objects, binary type grammars, raw Lµ formulas, or ``None`` for "any tree".

Expressions may use attribute steps (``@href``, ``attribute::*``); DTD types
then contribute their ``<!ATTLIST>`` constraints, projected onto the
attribute names the query mentions::

    # Under XHTML 1.0 Strict every img carries an alt attribute...
    analyzer.solve(Query.containment(".//img", ".//img[@alt]", "xhtml", "xhtml"))
    # ...but not every a carries href (a counterexample document is returned).
    analyzer.solve(Query.containment(".//a", ".//a[@href]", "xhtml", "xhtml"))

(The queries are relative to the marked, typed node: a bare DTD constraint
deliberately leaves the context of that node unconstrained — Section 5.2 —
so absolute ``//`` queries could select nodes outside the typed subtree.
For whole-document readings wrap the type in
:class:`repro.analysis.problems.Rooted` — ``Query.satisfiability("/html/head",
Rooted("xhtml"))`` — which anchors the context node at a virtual document
node above the typed root element, the data model XSLT patterns use; on the
CLI wire the same wrapper is spelled ``"rooted:xhtml"``.)
"""

from __future__ import annotations

import json
import os
import time
from dataclasses import dataclass, field
from typing import Iterable, Sequence

from repro.analysis.problems import (
    Rooted,
    document_formula,
    label_projection,
    relevant_attributes,
    relevant_labels,
    type_inclusion_attributes,
)
from repro.cache import DiskSolveCache, SolveRecord
from repro.core import faults
from repro.core.errors import BudgetExceeded, ReproError, UnsupportedTypeError
from repro.logic import syntax as sx
from repro.logic.negation import negate
from repro.solver.governor import Budget
from repro.solver.symbolic import MergedSolver, SymbolicSolver
from repro.trees.unranked import serialize_tree
from repro.xmltypes.ast import BinaryTypeGrammar
from repro.xmltypes.compile import compile_dtd, compile_grammar, project_grammar
from repro.xmltypes.dtd import DTD
from repro.xmltypes.membership import lift_wildcards
from repro.xmltypes.library import builtin_dtd
from repro.xpath import ast as xp
from repro.xpath.compile import compile_xpath
from repro.xpath.parser import parse_xpath_cached

#: Modes of :meth:`StaticAnalyzer.solve_many` merged-Lean batch solving.
#: ``"off"`` — one fixpoint per query (the classic behaviour, the default);
#: ``"on"`` — group compatible queries and decide each group in one merged
#: fixpoint; ``"auto"`` — merged for in-process batches of two or more
#: queries, classic otherwise (multiprocess fan-out keeps per-query solves).
BATCH_FIXPOINT_MODES = ("on", "off", "auto")

#: Query kinds accepted by :class:`Query` / :meth:`StaticAnalyzer.solve_many`.
KINDS = (
    "satisfiability",
    "emptiness",
    "containment",
    "equivalence",
    "overlap",
    "coverage",
    "type_inclusion",
)


@dataclass(frozen=True)
class Query:
    """One decision problem, as plain data (JSON-able via :meth:`as_dict`).

    Use the factory classmethods rather than the constructor; they document
    which fields each kind uses.  ``exprs`` holds the XPath expressions
    involved (the subject first) and ``types`` the matching tree-type
    constraints (``None`` entries mean "any tree").
    """

    kind: str
    exprs: tuple[str, ...]
    types: tuple[object, ...] = ()

    #: Required (exprs, types) arities per kind; ``None`` means "one or more
    #: expressions, with exactly one type each" (coverage).
    _ARITIES = {
        "satisfiability": (1, 1),
        "emptiness": (1, 1),
        "containment": (2, 2),
        "equivalence": (2, 2),
        "overlap": (2, 2),
        "coverage": None,
        "type_inclusion": (1, 2),
    }

    def __post_init__(self) -> None:
        if self.kind not in KINDS:
            raise ValueError(f"unknown query kind {self.kind!r}; expected one of {KINDS}")
        arity = self._ARITIES[self.kind]
        if arity is None:
            if not self.exprs or len(self.types) != len(self.exprs):
                raise ValueError(
                    f"{self.kind} takes one or more expressions with one type "
                    f"each; got {len(self.exprs)} expressions and "
                    f"{len(self.types)} types"
                )
        elif (len(self.exprs), len(self.types)) != arity:
            raise ValueError(
                f"{self.kind} takes {arity[0]} expression(s) and {arity[1]} "
                f"type(s); got {len(self.exprs)} and {len(self.types)}"
            )

    # -- factories ---------------------------------------------------------------

    @classmethod
    def satisfiability(cls, expr: str, xml_type: object = None) -> "Query":
        """Can ``expr`` select at least one node in a document of ``xml_type``?"""
        return cls("satisfiability", (expr,), (xml_type,))

    @classmethod
    def emptiness(cls, expr: str, xml_type: object = None) -> "Query":
        """Is ``expr`` empty on every document of ``xml_type``?"""
        return cls("emptiness", (expr,), (xml_type,))

    @classmethod
    def containment(
        cls, expr1: str, expr2: str, type1: object = None, type2: object = None
    ) -> "Query":
        """Is every node selected by ``expr1`` also selected by ``expr2``?"""
        return cls("containment", (expr1, expr2), (type1, type2))

    @classmethod
    def equivalence(
        cls, expr1: str, expr2: str, type1: object = None, type2: object = None
    ) -> "Query":
        """Containment in both directions."""
        return cls("equivalence", (expr1, expr2), (type1, type2))

    @classmethod
    def overlap(
        cls, expr1: str, expr2: str, type1: object = None, type2: object = None
    ) -> "Query":
        """Can the two expressions select a common node?"""
        return cls("overlap", (expr1, expr2), (type1, type2))

    @classmethod
    def coverage(
        cls,
        expr: str,
        covering: Sequence[str],
        xml_type: object = None,
        covering_types: Sequence[object] | None = None,
    ) -> "Query":
        """Is every node selected by ``expr`` selected by one of ``covering``?"""
        others = tuple(covering)
        other_types = (
            tuple(covering_types) if covering_types is not None else (None,) * len(others)
        )
        # Arity (one type per covering expression) is enforced by __post_init__.
        return cls("coverage", (expr,) + others, (xml_type,) + other_types)

    @classmethod
    def type_inclusion(cls, expr: str, input_type: object, output_type: object) -> "Query":
        """Does every node ``expr`` selects under ``input_type`` root a subtree
        of ``output_type``?"""
        return cls("type_inclusion", (expr,), (input_type, output_type))

    # -- serialisation -----------------------------------------------------------

    def as_dict(self) -> dict:
        return {
            "kind": self.kind,
            "exprs": list(self.exprs),
            "types": [_describe_type(t) for t in self.types],
        }


def _describe_type(xml_type: object) -> str | None:
    if xml_type is None:
        return None
    if isinstance(xml_type, Rooted):
        inner = _describe_type(xml_type.xml_type)
        return f"rooted:{inner if inner is not None else 'any'}"
    if isinstance(xml_type, str):
        return xml_type
    if isinstance(xml_type, DTD):
        return xml_type.name
    if isinstance(xml_type, BinaryTypeGrammar):
        return "grammar"
    if isinstance(xml_type, sx.Formula):
        return "formula"
    return type(xml_type).__name__


#: The three verdict statuses an :class:`AnalysisOutcome` can carry.
#: ``"definite"`` — ``holds``/``satisfiable`` are valid booleans;
#: ``"unknown"`` — a resource budget ran out before a verdict (``holds`` and
#: ``satisfiable`` are ``None``, ``budget_reason`` says which bound tripped);
#: ``"error"`` — the input itself was bad (``error``/``error_kind`` are set).
VERDICT_STATUSES = ("definite", "unknown", "error")


@dataclass
class AnalysisOutcome:
    """Outcome of one :class:`Query`, as structured JSON-able data.

    ``holds`` answers the question the query asked; ``satisfiable`` reports
    the verdict of the underlying satisfiability test (they differ for the
    "negative" problems: containment holds iff its formula is unsatisfiable).
    ``from_cache`` is True when the verdict was answered from the analyzer's
    solve cache without running the solver.

    Outcomes are three-valued (see :data:`VERDICT_STATUSES`): a resource
    budget running out produces a first-class *unknown* outcome — not an
    error — with ``verdict_status == "unknown"``, ``holds is None`` and the
    structured ``budget_reason`` (``"deadline"``, ``"steps"``,
    ``"iterations"``, ``"lean"``, ``"worker-crash"``).  Consumers acting on
    a verdict must gate on :attr:`definite`, never on ``holds`` alone.
    """

    query: Query
    problem: str
    holds: bool | None
    satisfiable: bool | None
    from_cache: bool
    solve_seconds: float
    statistics: dict
    counterexample: str | None = None
    #: Which cache layer answered: ``"memory"``, ``"disk"``, or ``None`` when
    #: the solver actually ran (always ``None`` for error outcomes).
    cache: str | None = None
    #: Machine-readable failure: the exception class name (``"ParseError"``,
    #: ``"KeyError"``, ...) and its message.  ``None`` on success.
    error_kind: str | None = None
    error: str | None = None
    #: One of :data:`VERDICT_STATUSES`.
    verdict_status: str = "definite"
    #: Which budget bound tripped (:data:`repro.core.errors.BUDGET_REASONS`);
    #: ``None`` unless ``verdict_status == "unknown"``.
    budget_reason: str | None = None
    #: For equivalence queries: the two directed containment outcomes.
    parts: list["AnalysisOutcome"] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        """True when the query was *analysed* — no structured input error.

        Unknown outcomes are ``ok`` (the input was fine; the budget was not):
        check :attr:`definite` before trusting ``holds``.
        """
        return self.error is None

    @property
    def definite(self) -> bool:
        """True when ``holds``/``satisfiable`` carry a valid verdict."""
        return self.verdict_status == "definite"

    @property
    def unknown(self) -> bool:
        """True when a resource budget ran out before a verdict."""
        return self.verdict_status == "unknown"

    @property
    def time_ms(self) -> float:
        """Solver running time in milliseconds (as reported in Table 2)."""
        return 1000.0 * self.solve_seconds

    def as_dict(self) -> dict:
        result = {
            "query": self.query.as_dict(),
            "problem": self.problem,
            "verdict_status": self.verdict_status,
            "holds": self.holds,
            "satisfiable": self.satisfiable,
            "budget_reason": self.budget_reason,
            "from_cache": self.from_cache,
            "cache": self.cache,
            "solve_seconds": round(self.solve_seconds, 6),
            "statistics": self.statistics,
            "counterexample": self.counterexample,
            "error": None
            if self.error is None
            else {"kind": self.error_kind, "message": self.error},
        }
        if self.parts:
            result["parts"] = [part.as_dict() for part in self.parts]
        return result

    def to_json(self, **kwargs) -> str:
        return json.dumps(self.as_dict(), **kwargs)


@dataclass
class BatchReport:
    """The outcomes of a :meth:`StaticAnalyzer.solve_many` run plus totals."""

    outcomes: list[AnalysisOutcome]
    total_seconds: float
    solver_runs: int
    cache_hits: int
    #: Verdicts answered from the persistent cache (0 without ``cache_dir``).
    disk_cache_hits: int = 0
    #: Worker processes the batch fanned out to (1: solved in-process).
    workers: int = 1
    #: Merged-Lean fixpoint groups the batch was decided through (0 when
    #: batch-fixpoint mode was off or nothing was mergeable); each group of
    #: N queries costs one solver run instead of up to N.
    merged_groups: int = 0
    #: Queries (equivalence directions counted separately) answered by a
    #: merged group's shared fixpoint rather than an individual solve.
    merged_queries: int = 0

    @property
    def errors(self) -> int:
        """Number of outcomes that are structured errors (``not outcome.ok``)."""
        return sum(1 for outcome in self.outcomes if not outcome.ok)

    @property
    def unknowns(self) -> int:
        """Number of outcomes whose budget ran out (``verdict_status=="unknown"``)."""
        return sum(1 for outcome in self.outcomes if outcome.unknown)

    def as_dict(self) -> dict:
        return {
            "outcomes": [outcome.as_dict() for outcome in self.outcomes],
            "total_seconds": round(self.total_seconds, 6),
            "solver_runs": self.solver_runs,
            "cache_hits": self.cache_hits,
            "disk_cache_hits": self.disk_cache_hits,
            "workers": self.workers,
            "merged_groups": self.merged_groups,
            "merged_queries": self.merged_queries,
            "errors": self.errors,
            "unknowns": self.unknowns,
        }

    def to_json(self, **kwargs) -> str:
        return json.dumps(self.as_dict(), **kwargs)


#: Sentinel distinguishing "not passed" from an explicit ``None``/``()``
#: override in :meth:`StaticAnalyzer._reduce`.
_UNSET = object()


@dataclass
class _WorkItem:
    """One solvable unit of a batch: a query, or one equivalence direction.

    Batch paths (merged and multiprocess) decompose each equivalence query
    into its two directed containments so the directions can share solver
    work with the rest of the batch exactly like the sequential path's
    recursive :meth:`StaticAnalyzer.solve` does; ``role`` remembers which
    direction this item is so the equivalence outcome can be reassembled.
    """

    out_index: int
    #: ``None`` for a plain query, ``"forward"``/``"backward"`` for the two
    #: directed containments of an equivalence query.
    role: str | None
    query: Query
    #: Populated by the merged path: the item's own (batch-independent)
    #: reduction, its problem description and polarity, and the outcome.
    formula: object | None = None
    problem: str = ""
    positive: bool = True
    outcome: AnalysisOutcome | None = None


# ---------------------------------------------------------------------------
# Worker-process plumbing for multiprocess batch solving
# ---------------------------------------------------------------------------

#: The per-process analyzer of a :class:`~concurrent.futures.
#: ProcessPoolExecutor` worker, created once by :func:`_pool_initializer`;
#: its in-memory caches warm up over the worker's lifetime and its disk cache
#: (when configured) is shared with every sibling process.
_WORKER_ANALYZER: "StaticAnalyzer | None" = None


def _pool_initializer(options: dict) -> None:
    global _WORKER_ANALYZER
    _WORKER_ANALYZER = StaticAnalyzer(**options)


def _pool_solve(item: tuple) -> tuple:
    """Solve one indexed query in a worker; returns counters for aggregation.

    ``item`` is ``(index, query)`` optionally followed by a per-query
    :class:`~repro.solver.governor.Budget` override and a *marker directory*.
    While this function runs it keeps ``<marker_dir>/<index>.running`` on
    disk; a worker dying mid-solve (OOM kill, injected crash) leaves the
    marker behind, which is how :meth:`StaticAnalyzer._solve_many_parallel`
    attributes a ``BrokenProcessPool`` to the query that poisoned the pool.
    The per-query wall-clock timeout is the budget's deadline, enforced
    cooperatively *inside* the worker by the resource governor.
    """
    index, query = item[0], item[1]
    budget = item[2] if len(item) > 2 else None
    marker_dir = item[3] if len(item) > 3 else None
    marker = None
    if marker_dir is not None:
        marker = os.path.join(marker_dir, f"{index}.running")
        try:
            with open(marker, "w", encoding="utf-8"):
                pass
        except OSError:
            marker = None
    if faults.should_fire("worker-crash", " ".join(query.exprs)):
        os._exit(137)  # simulate an OOM kill: no cleanup, no marker removal
    analyzer = _WORKER_ANALYZER
    runs = analyzer.solver_runs
    hits = analyzer.solve_cache_hits
    disk_hits = analyzer.disk_cache_hits
    disk_writes = analyzer.disk_cache_writes
    outcome = analyzer.solve(query, budget=budget)
    if marker is not None:
        try:
            os.unlink(marker)
        except OSError:
            pass
    return (
        index,
        outcome,
        analyzer.solver_runs - runs,
        analyzer.solve_cache_hits - hits,
        analyzer.disk_cache_hits - disk_hits,
        analyzer.disk_cache_writes - disk_writes,
    )


def _parallel_safe(query: Query) -> bool:
    """Whether a query can be shipped to a worker process.

    Raw-formula type constraints are hash-consed (equality is identity), so
    pickling them across a process boundary would break their semantics;
    such queries are solved in the parent instead.  Everything else — names,
    ``None``, DTDs, grammars, and :class:`Rooted` wrappers thereof —
    round-trips through pickle safely.
    """
    return all(
        not isinstance(
            xml_type.xml_type if isinstance(xml_type, Rooted) else xml_type,
            sx.Formula,
        )
        for xml_type in query.types
    )


#: Input-shaped failures that :meth:`StaticAnalyzer.solve` converts into
#: structured error outcomes instead of raising.  Everything input-shaped is
#: a :class:`repro.core.errors.ReproError` subclass: parser errors, solver
#: limits, unknown built-in schema names (``SchemaLookupError``, also a
#: :class:`KeyError`) and unsupported type-constraint objects
#: (``UnsupportedTypeError``, also a :class:`TypeError`).  A plain
#: ``KeyError``/``TypeError`` out of the translation or solver internals is a
#: bug and still raises.
ANALYSIS_ERRORS = (ReproError,)


class StaticAnalyzer:
    """Caching façade over the decision problems of Section 8.

    Construction options mirror :class:`repro.solver.symbolic.SymbolicSolver`
    (they are forwarded to every solver run).  All methods are pure with
    respect to the caches: a cached answer is always the answer the solver
    would produce — the solve cache is keyed by the (hash-consed) Lµ formula,
    the translation caches by the expression/type pair they translate.

    With ``cache_dir`` set, solver verdicts are additionally written through
    to a :class:`repro.cache.DiskSolveCache` rooted at that directory and
    looked up there on in-memory misses, so a fresh process replaying a
    workload another process has answered performs zero solver runs.  The
    disk cache is content-addressed by the canonical formula (alpha-invariant
    across processes) and safe under concurrent writers; see
    :mod:`repro.cache`.

    **Resource governance.**  ``budget`` bounds every solve (see
    :class:`repro.solver.governor.Budget`); ``max_lean`` is shorthand for a
    Lean-size bound — the analyzer then refuses to *compile* an
    exponentially-sized problem (Lemma 6.7 prices it at ``2^O(lean)``) and
    returns an ``unknown`` outcome up front.  Budget exhaustion never raises:
    it produces a first-class ``unknown`` outcome with a structured
    ``budget_reason``.  With ``degrade=True`` a budget-exhausted solve falls
    back to the bounded ψ-type :class:`repro.solver.explicit.ExplicitSolver`
    when the problem is small enough (``≤ DEGRADE_MAX_TYPES`` estimated
    ψ-types), so small-but-tightly-budgeted queries still get a definite
    verdict.  Only definite verdicts ever enter a cache layer.
    """

    #: Estimated-ψ-type ceiling under which graceful degradation engages
    #: (mirrors the fuzzer's explicit-oracle gate, ``Bounds.explicit_types``).
    DEGRADE_MAX_TYPES = 2048

    def __init__(
        self,
        early_quantification: bool = True,
        monolithic_relation: bool = False,
        interleaved_order: bool = True,
        track_marks: bool = True,
        cache_dir: str | None = None,
        prune_labels: bool = True,
        backend: str | None = None,
        budget: Budget | None = None,
        max_lean: int | None = None,
        degrade: bool = False,
        batch_fixpoint: str = "off",
    ):
        if batch_fixpoint not in BATCH_FIXPOINT_MODES:
            raise ValueError(
                f"batch_fixpoint must be one of {BATCH_FIXPOINT_MODES}; "
                f"got {batch_fixpoint!r}"
            )
        #: Default merged-Lean batching mode for :meth:`solve_many` (see
        #: :data:`BATCH_FIXPOINT_MODES`); per-call overrides win.
        self.batch_fixpoint = batch_fixpoint
        self.early_quantification = early_quantification
        self.monolithic_relation = monolithic_relation
        self.interleaved_order = interleaved_order
        self.track_marks = track_marks
        self.prune_labels = prune_labels
        #: BDD engine for every solver run (``"dict"``, ``"arena"``, or
        #: ``None`` to follow ``REPRO_BDD_BACKEND`` / the default).  Verdicts
        #: are backend-independent, so cache layers need no qualification.
        self.backend = backend
        #: Default resource budget for every solve (``None`` = unlimited);
        #: per-call overrides merge on top (see :meth:`solve`).
        self.budget = budget
        if max_lean is not None:
            base = self.budget or Budget()
            if base.max_lean is None:
                self.budget = base.merged_with(Budget(max_lean=max_lean))
        self.degrade = degrade
        self.disk_cache = (
            None
            if cache_dir is None
            else DiskSolveCache(cache_dir, track_marks=track_marks)
        )
        # (type key, constrain_siblings) -> compiled type formula.
        self._type_cache: dict[tuple, sx.Formula] = {}
        # (expression text, type key) -> compiled query formula.
        self._query_cache: dict[tuple, sx.Formula] = {}
        # Lµ formula (hash-consed, so identity == structure) -> SolveRecord.
        self._solve_cache: dict[sx.Formula, SolveRecord] = {}
        # Strong references keeping id()-keyed type objects alive (one entry
        # per distinct object, tracked via _pinned_ids).
        self._type_refs: list[object] = []
        self._pinned_ids: set[int] = set()
        self.solver_runs = 0
        self.solve_cache_hits = 0
        self.disk_cache_hits = 0
        self.disk_cache_writes = 0

    # -- caching layers ----------------------------------------------------------

    def _resolve_type(self, xml_type: object) -> object:
        if isinstance(xml_type, Rooted):
            return Rooted(self._resolve_type(xml_type.xml_type))
        return builtin_dtd(xml_type) if isinstance(xml_type, str) else xml_type

    def _type_key(self, xml_type: object) -> object:
        if xml_type is None:
            return None
        if isinstance(xml_type, Rooted):
            return ("rooted", self._type_key(xml_type.xml_type))
        if isinstance(xml_type, str):
            return ("builtin", xml_type)
        if isinstance(xml_type, sx.Formula):
            return ("formula", xml_type)
        # DTDs and grammars are mutable containers: key by identity and pin a
        # reference so the id cannot be recycled while the cache lives.
        if id(xml_type) not in self._pinned_ids:
            self._pinned_ids.add(id(xml_type))
            self._type_refs.append(xml_type)
        return ("object", id(xml_type))

    def _label_projection(
        self, exprs: Sequence[object], types: Sequence[object]
    ) -> tuple[str, ...] | None:
        """The element alphabet to prune type constraints onto, or ``None``.

        Delegates to :func:`repro.analysis.problems.label_projection` (the
        single home of the soundness rule), comparing types through this
        analyzer's cache keys so two mentions of the same built-in schema
        name count as one type.  Returns ``None`` — no pruning — when the
        analyzer was built with ``prune_labels=False`` or the problem mixes
        distinct schemas.
        """
        if not self.prune_labels:
            return None
        return label_projection(exprs, types, type_key=self._type_key)

    def type_formula(
        self,
        xml_type: object,
        constrain_siblings: bool = True,
        attributes: tuple[str, ...] = (),
        labels: tuple[str, ...] | None = None,
    ) -> sx.Formula:
        """The (cached) Lµ translation of a type constraint (⊤ for ``None``).

        ``attributes`` is the attribute alphabet of the surrounding problem:
        DTD types project their ATTLIST constraints onto it (see
        :mod:`repro.xmltypes.compile`).  ``labels`` is the problem's element
        alphabet: when given, DTD/grammar element names outside it collapse
        onto the "any other label" proposition (cone-of-influence Lean
        pruning).  Both are part of the cache key.
        """
        key = (self._type_key(xml_type), constrain_siblings, attributes, labels)
        cached = self._type_cache.get(key)
        if cached is not None:
            return cached
        resolved = self._resolve_type(xml_type)
        if resolved is None:
            formula = sx.TRUE
        elif isinstance(resolved, Rooted):
            # Recurse on the *unresolved* inner type so the inner translation
            # is cached under its own key (shared with unwrapped uses).
            inner_type = (
                xml_type.xml_type if isinstance(xml_type, Rooted) else resolved.xml_type
            )
            formula = document_formula(
                self.type_formula(
                    inner_type,
                    constrain_siblings=True,
                    attributes=attributes,
                    labels=labels,
                )
            )
        elif isinstance(resolved, sx.Formula):
            formula = resolved
        elif isinstance(resolved, DTD):
            formula = compile_dtd(
                resolved,
                constrain_siblings=constrain_siblings,
                attributes=attributes or None,
                labels=labels,
            )
        elif isinstance(resolved, BinaryTypeGrammar):
            grammar = (
                project_grammar(resolved, labels) if labels is not None else resolved
            )
            formula = compile_grammar(grammar, constrain_siblings=constrain_siblings)
        else:
            raise UnsupportedTypeError(f"unsupported type constraint {resolved!r}")
        self._type_cache[key] = formula
        return formula

    def query_formula(
        self,
        expr: str | xp.Expr,
        xml_type: object = None,
        attributes: tuple[str, ...] | None = None,
        labels: tuple[str, ...] | None = None,
    ) -> sx.Formula:
        """The (cached) Lµ translation ``E→[[expr]]([[xml_type]])``.

        ``attributes`` is the problem's attribute alphabet (defaults to the
        names this expression mentions on its own); ``labels`` the problem's
        element alphabet for type pruning (defaults to no pruning).
        """
        if not isinstance(expr, str):
            # Pre-parsed expressions are not cacheable by text; translate only.
            if attributes is None:
                attributes = relevant_attributes(expr)
            return compile_xpath(
                expr,
                self.type_formula(xml_type, attributes=attributes, labels=labels),
            )
        if attributes is None:
            attributes = relevant_attributes(expr)
        key = (expr, self._type_key(xml_type), attributes, labels)
        cached = self._query_cache.get(key)
        if cached is not None:
            return cached
        formula = compile_xpath(
            parse_xpath_cached(expr),
            self.type_formula(xml_type, attributes=attributes, labels=labels),
        )
        self._query_cache[key] = formula
        return formula

    def _solve(
        self,
        formula: sx.Formula,
        lift_context: tuple[DTD, tuple[str, ...]] | None = None,
        budget: Budget | None = None,
    ) -> tuple[SolveRecord, str | None]:
        """Solve a formula, answering from a cache layer when possible.

        Returns the verdict record plus the layer that answered: ``"memory"``,
        ``"disk"``, or ``None`` when the solver actually ran.
        ``lift_context`` is the ``(schema, kept alphabet)`` to lift a pruned
        witness's collapsed labels against (see :func:`repro.xmltypes.
        membership.lift_wildcards`); lifting is deterministic, so cached
        records are already lifted.

        ``budget`` governs the solver run; exhaustion raises
        :class:`BudgetExceeded` *without* touching any cache layer — an
        unknown is a statement about the budget, not about the formula, so
        it must never shadow a definite verdict (cached answers, being free,
        are immune to budgets by construction).
        """
        record = self._solve_cache.get(formula)
        if record is not None:
            self.solve_cache_hits += 1
            return record, "memory"
        if self.disk_cache is not None:
            record = self.disk_cache.get(formula)
            if record is not None:
                self.disk_cache_hits += 1
                self._solve_cache[formula] = record
                return record, "disk"
        solver = SymbolicSolver(
            formula,
            early_quantification=self.early_quantification,
            monolithic_relation=self.monolithic_relation,
            interleaved_order=self.interleaved_order,
            track_marks=self.track_marks,
            backend=self.backend,
            budget=budget,
        )
        result = solver.solve()
        self.solver_runs += 1
        document = result.model_document()
        if document is not None and lift_context is not None:
            lift_dtd, kept_labels = lift_context
            document = lift_wildcards(lift_dtd, document, exclude=kept_labels) or document
        record = SolveRecord(
            satisfiable=result.satisfiable,
            counterexample=None if document is None else serialize_tree(document),
            statistics=result.statistics.as_dict(),
            solve_seconds=result.statistics.solve_seconds,
        )
        self._solve_cache[formula] = record
        if self.disk_cache is not None:
            self.disk_cache.put(formula, record)
            self.disk_cache_writes += 1
        return record, None

    def _degraded_record(
        self,
        formula: sx.Formula,
        lift_context: tuple[DTD, tuple[str, ...]] | None,
    ) -> SolveRecord | None:
        """Definite verdict from the bounded ψ-type solver, or ``None``.

        The degradation ladder's second rung: when the budgeted symbolic
        solve ran out, the eager algorithm of Figure 16 may still decide the
        problem — its cost is governed by the ψ-type count, not by how hard
        the BDD fixpoint happened to be under this budget.  Engages only
        below :data:`DEGRADE_MAX_TYPES` estimated types.  A verdict from
        here is sound and complete, so it enters the caches like any other.
        """
        from repro.core.errors import SolverLimitError
        from repro.solver.explicit import ExplicitSolver
        from repro.trees.binary import binary_forest_to_unranked

        started = time.perf_counter()
        solver = ExplicitSolver(formula, max_types=self.DEGRADE_MAX_TYPES)
        if solver.estimated_types() > self.DEGRADE_MAX_TYPES:
            return None
        try:
            result = solver.solve()
        except SolverLimitError:
            return None
        self.solver_runs += 1
        document = None
        if result.model is not None:
            document = binary_forest_to_unranked(result.model)[0]
            if lift_context is not None:
                lift_dtd, kept_labels = lift_context
                document = (
                    lift_wildcards(lift_dtd, document, exclude=kept_labels) or document
                )
        elapsed = time.perf_counter() - started
        record = SolveRecord(
            satisfiable=result.satisfiable,
            counterexample=None if document is None else serialize_tree(document),
            statistics={
                "degraded": True,
                "lean_size": len(result.lean),
                "iterations": result.iterations,
                "entry_count": result.entry_count,
                "type_count": result.type_count,
                "solve_seconds": round(elapsed, 6),
            },
            solve_seconds=elapsed,
        )
        self._solve_cache[formula] = record
        if self.disk_cache is not None:
            self.disk_cache.put(formula, record)
            self.disk_cache_writes += 1
        return record

    def clear_caches(self) -> None:
        """Drop every in-memory cached translation and solver verdict.

        The persistent cache (if any) is left untouched; clear it explicitly
        with ``analyzer.disk_cache.clear()``.
        """
        self._type_cache.clear()
        self._query_cache.clear()
        self._solve_cache.clear()
        self._type_refs.clear()
        self._pinned_ids.clear()

    def cache_statistics(self) -> dict[str, int]:
        return {
            "type_cache_entries": len(self._type_cache),
            "query_cache_entries": len(self._query_cache),
            "solve_cache_entries": len(self._solve_cache),
            "solver_runs": self.solver_runs,
            "solve_cache_hits": self.solve_cache_hits,
            "disk_cache_hits": self.disk_cache_hits,
            "disk_cache_writes": self.disk_cache_writes,
        }

    # -- single queries ----------------------------------------------------------

    def solve(self, query: Query, budget: Budget | None = None) -> AnalysisOutcome:
        """Answer one query (cached); see :class:`Query` for the kinds.

        Input-shaped failures — a malformed expression, an unknown built-in
        schema name, an unsupported type object — are returned as structured
        error outcomes (``outcome.ok`` is False, ``outcome.error`` carries
        the message) rather than raised, so one bad query never aborts a
        :meth:`solve_many` batch.  Programming errors still raise.

        ``budget`` tightens the analyzer-wide budget for this call only (the
        per-call limits win where both are set).  A budgeted solve that runs
        out returns an *unknown* outcome — ``verdict_status == "unknown"``,
        ``holds``/``satisfiable`` both ``None``, ``budget_reason`` naming the
        exhausted resource — unless ``degrade=True`` and the bounded explicit
        solver can still decide the instance.
        """
        if query.kind == "equivalence":
            return self._equivalence(query, budget)
        effective = self._effective_budget(budget)
        try:
            formula, problem, positive = self._reduce(query)
        except ANALYSIS_ERRORS as exc:
            return self._error_outcome(query, exc)
        lift_context = self._lift_context(query)
        try:
            record, source = self._solve(formula, lift_context, effective)
        except BudgetExceeded as exc:
            # Must precede the ANALYSIS_ERRORS arm: BudgetExceeded is a
            # ReproError, and swallowing it there would misreport resource
            # exhaustion as a definite input failure.
            if self.degrade and exc.reason != "worker-crash":
                record = self._degraded_record(formula, lift_context)
                if record is not None:
                    return self._outcome(query, problem, record, None, positive)
            return self._unknown_outcome(query, problem, exc)
        except ANALYSIS_ERRORS as exc:
            return self._error_outcome(query, exc)
        return self._outcome(query, problem, record, source, positive)

    def _effective_budget(self, budget: Budget | None) -> Budget | None:
        """The analyzer-wide budget tightened by a per-call override."""
        if budget is None:
            return self.budget
        if self.budget is None:
            return budget
        return self.budget.merged_with(budget)

    def _lift_context(self, query: Query) -> tuple[DTD, tuple[str, ...]] | None:
        """The schema and kept alphabet to lift pruned witnesses against.

        ``None`` when no lifting applies (pruning off or skipped, or no DTD
        in the problem).  The alphabet is passed to
        :func:`repro.xmltypes.membership.lift_wildcards` as the *excluded*
        names: a collapsed node stands for a label the queries never test.
        """
        labels = self._label_projection(query.exprs, query.types)
        if labels is None:
            return None
        for xml_type in query.types:
            resolved = self._resolve_type(xml_type)
            if isinstance(resolved, Rooted):
                resolved = resolved.xml_type
            if isinstance(resolved, DTD):
                return resolved, labels
        return None

    def _error_outcome(self, query: Query, exc: Exception) -> AnalysisOutcome:
        return AnalysisOutcome(
            query=query,
            problem=f"{query.kind} (failed)",
            holds=False,
            satisfiable=False,
            from_cache=False,
            solve_seconds=0.0,
            statistics={},
            counterexample=None,
            error_kind=type(exc).__name__,
            error=str(exc),
            verdict_status="error",
        )

    def _unknown_outcome(
        self, query: Query, problem: str, exc: BudgetExceeded
    ) -> AnalysisOutcome:
        """A structured three-valued outcome for a budget-exhausted solve.

        Unknowns are *ok* (nothing was malformed) but not *definite*;
        consumers that act on ``holds`` must gate on ``outcome.definite``.
        Nothing is cached: an unknown describes the budget, not the formula.
        """
        return AnalysisOutcome(
            query=query,
            problem=problem,
            holds=None,
            satisfiable=None,
            from_cache=False,
            solve_seconds=0.0,
            statistics={"budget": exc.as_dict()},
            counterexample=None,
            verdict_status="unknown",
            budget_reason=exc.reason,
        )

    def _crash_outcome(self, query: Query) -> AnalysisOutcome:
        """Unknown outcome for a query whose worker died twice (quarantined)."""
        exc = BudgetExceeded(
            "worker-crash",
            "worker process died while solving this query "
            "(in the shared pool and again in an isolated retry)",
        )
        return self._unknown_outcome(query, f"{query.kind} (unknown)", exc)

    def _problem_description(self, query: Query) -> str:
        """The human-readable problem string of a query (byte-stable: the
        batch paths rebuild outcomes for folded duplicates with it)."""
        kind, exprs = query.kind, query.exprs
        if kind == "satisfiability":
            return f"satisfiability of {exprs[0]}"
        if kind == "emptiness":
            return f"emptiness of {exprs[0]}"
        if kind == "containment":
            return f"containment {exprs[0]} ⊆ {exprs[1]}"
        if kind == "overlap":
            return f"overlap of {exprs[0]} and {exprs[1]}"
        if kind == "coverage":
            return f"coverage of {exprs[0]} by {len(exprs) - 1} expressions"
        if kind == "type_inclusion":
            return f"type inclusion of {exprs[0]}"
        if kind == "equivalence":
            return f"equivalence {exprs[0]} ≡ {exprs[1]}"
        raise ValueError(f"unknown query kind {kind!r}")  # pragma: no cover

    def _problem_attributes(self, query: Query) -> tuple[str, ...]:
        """The attribute alphabet a query's reduction is built over."""
        if query.kind == "type_inclusion":
            # The negated output type acts as a predicate on subtrees, so the
            # alphabet must also cover the DTDs' required/declared names (see
            # repro.analysis.problems.type_inclusion_attributes).
            return type_inclusion_attributes(
                query.exprs[0],
                self._resolve_type(query.types[0]),
                self._resolve_type(query.types[1]),
            )
        return relevant_attributes(*query.exprs)

    def _reduce(
        self,
        query: Query,
        labels: object = _UNSET,
        attributes: object = _UNSET,
    ) -> tuple[sx.Formula, str, bool]:
        """Reduce a (non-equivalence) query to one satisfiability question.

        Returns ``(formula, problem description, positive)`` where ``positive``
        tells whether the property *holds* when the formula is satisfiable
        (satisfiability, overlap) or when it is unsatisfiable (the rest).

        ``labels``/``attributes`` override the problem's own element/attribute
        alphabets: the merged-Lean batch path rebuilds every group member
        over the *group's* union alphabet so the goals agree on the meaning
        of the "any other label"/"any other attribute" propositions (pruning
        onto a superset of the tested labels preserves every verdict — the
        label-projection lemma of :func:`repro.analysis.problems.
        label_projection` — so the widened reduction answers the same
        question).
        """
        kind, exprs, types = query.kind, query.exprs, query.types
        # All expressions of a problem share one attribute alphabet (and one
        # element alphabet for pruning) so type constraints agree across the
        # sub-formulas (see repro.analysis); type_inclusion derives a richer
        # attribute alphabet of its own (see _problem_attributes).
        if labels is _UNSET:
            labels = self._label_projection(exprs, types)
        if attributes is _UNSET:
            attributes = self._problem_attributes(query)
        problem = self._problem_description(query)
        if kind == "satisfiability":
            return (
                self.query_formula(exprs[0], types[0], attributes, labels),
                problem,
                True,
            )
        if kind == "emptiness":
            return (
                self.query_formula(exprs[0], types[0], attributes, labels),
                problem,
                False,
            )
        if kind == "containment":
            formula = sx.mk_and(
                self.query_formula(exprs[0], types[0], attributes, labels),
                negate(self.query_formula(exprs[1], types[1], attributes, labels)),
            )
            return formula, problem, False
        if kind == "overlap":
            formula = sx.mk_and(
                self.query_formula(exprs[0], types[0], attributes, labels),
                self.query_formula(exprs[1], types[1], attributes, labels),
            )
            return formula, problem, True
        if kind == "coverage":
            formula = self.query_formula(exprs[0], types[0], attributes, labels)
            for other, other_type in zip(exprs[1:], types[1:]):
                formula = sx.mk_and(
                    formula,
                    negate(self.query_formula(other, other_type, attributes, labels)),
                )
            return formula, problem, False
        if kind == "type_inclusion":
            formula = sx.mk_and(
                self.query_formula(exprs[0], types[0], attributes, labels),
                negate(
                    self.type_formula(
                        types[1],
                        constrain_siblings=False,
                        attributes=attributes,
                        labels=labels,
                    )
                ),
            )
            return formula, problem, False
        raise ValueError(f"unknown query kind {kind!r}")  # pragma: no cover

    def _equivalence(
        self, query: Query, budget: Budget | None = None
    ) -> AnalysisOutcome:
        expr1, expr2 = query.exprs
        type1, type2 = query.types
        forward = self.solve(Query.containment(expr1, expr2, type1, type2), budget)
        backward = self.solve(Query.containment(expr2, expr1, type2, type1), budget)
        return self._assemble_equivalence(query, forward, backward)

    def _assemble_equivalence(
        self, query: Query, forward: AnalysisOutcome, backward: AnalysisOutcome
    ) -> AnalysisOutcome:
        """Combine the two directed containment outcomes of an equivalence.

        Shared by the sequential path (which solves the directions through
        :meth:`solve`) and the batch paths (which decompose equivalence into
        two :class:`_WorkItem` containments so the directions join batch
        deduplication and merged groups like any other query).
        """
        expr1, expr2 = query.exprs
        if not forward.ok or not backward.ok:
            broken = forward if not forward.ok else backward
            return AnalysisOutcome(
                query=query,
                problem=f"{query.kind} (failed)",
                holds=False,
                satisfiable=False,
                from_cache=False,
                solve_seconds=0.0,
                statistics={},
                error_kind=broken.error_kind,
                error=broken.error,
                verdict_status="error",
                parts=[forward, backward],
            )
        if not forward.definite or not backward.definite:
            # A definite failed containment already refutes the equivalence,
            # so an unknown in the *other* direction does not matter.
            refuted = next(
                (p for p in (forward, backward) if p.definite and not p.holds), None
            )
            if refuted is None:
                vague = forward if not forward.definite else backward
                return AnalysisOutcome(
                    query=query,
                    problem=f"equivalence {expr1} ≡ {expr2}",
                    holds=None,
                    satisfiable=None,
                    from_cache=False,
                    solve_seconds=forward.solve_seconds + backward.solve_seconds,
                    statistics={
                        "forward": forward.statistics,
                        "backward": backward.statistics,
                    },
                    verdict_status="unknown",
                    budget_reason=vague.budget_reason,
                    parts=[forward, backward],
                )
            return AnalysisOutcome(
                query=query,
                problem=f"equivalence {expr1} ≡ {expr2}",
                holds=False,
                satisfiable=refuted.satisfiable,
                from_cache=refuted.from_cache,
                solve_seconds=forward.solve_seconds + backward.solve_seconds,
                statistics={
                    "forward": forward.statistics,
                    "backward": backward.statistics,
                },
                counterexample=refuted.counterexample,
                parts=[forward, backward],
            )
        failed = forward if not forward.holds else backward
        return AnalysisOutcome(
            query=query,
            problem=f"equivalence {expr1} ≡ {expr2}",
            holds=forward.holds and backward.holds,
            satisfiable=failed.satisfiable,
            from_cache=forward.from_cache and backward.from_cache,
            solve_seconds=forward.solve_seconds + backward.solve_seconds,
            statistics={
                "forward": forward.statistics,
                "backward": backward.statistics,
            },
            counterexample=failed.counterexample,
            parts=[forward, backward],
        )

    def _outcome(
        self,
        query: Query,
        problem: str,
        record: SolveRecord,
        source: str | None,
        positive: bool,
    ) -> AnalysisOutcome:
        from_cache = source is not None
        return AnalysisOutcome(
            query=query,
            problem=problem,
            holds=record.satisfiable if positive else not record.satisfiable,
            satisfiable=record.satisfiable,
            from_cache=from_cache,
            cache=source,
            solve_seconds=0.0 if from_cache else record.solve_seconds,
            statistics=dict(record.statistics),
            counterexample=record.counterexample,
        )

    # -- batch -------------------------------------------------------------------

    def _options(self) -> dict:
        """Constructor options replicating this analyzer in another process."""
        return {
            "early_quantification": self.early_quantification,
            "monolithic_relation": self.monolithic_relation,
            "interleaved_order": self.interleaved_order,
            "track_marks": self.track_marks,
            "cache_dir": None if self.disk_cache is None else str(self.disk_cache.directory),
            "prune_labels": self.prune_labels,
            "backend": self.backend,
            "budget": self.budget,
            "degrade": self.degrade,
            "batch_fixpoint": self.batch_fixpoint,
        }

    def solve_many(
        self,
        queries: Iterable[Query],
        workers: int = 1,
        budget: Budget | None = None,
        batch_fixpoint: str | None = None,
    ) -> BatchReport:
        """Answer a batch of queries, amortising translations and solves.

        Queries over the same schema share its type translation; queries that
        reduce to the same Lµ formula (duplicates, or e.g. a containment that
        an equivalence in the batch already checked) share one solver run.
        The returned :class:`BatchReport` records how much was shared.

        With ``workers > 1``, independent queries fan out to a
        :class:`~concurrent.futures.ProcessPoolExecutor`; result order always
        matches query order.  Workers are fresh processes whose in-memory
        caches warm up per worker — construct the analyzer with
        ``cache_dir=...`` to share solver verdicts between them (the disk
        store is atomic-publish-safe under concurrent writers, and its hits
        and writes are aggregated into this analyzer's counters).  Queries
        whose type constraints cannot cross a process boundary (raw Lµ
        formulas) are transparently solved in the parent.

        ``budget`` applies per query (tightening the analyzer-wide budget),
        and with ``workers > 1`` it doubles as the per-query wall-clock cap
        inside each worker.  The batch survives worker crashes: the pool is
        respawned, surviving queries are retried with capped backoff, and a
        query whose worker dies twice (once in the shared pool, once in an
        isolated single-worker retry) is quarantined as
        ``unknown("worker-crash")`` — every other verdict is unaffected.

        ``batch_fixpoint`` selects merged-Lean batch solving (see
        :data:`BATCH_FIXPOINT_MODES`; ``None`` falls back to the analyzer's
        construction-time mode, default ``"off"``).  When merged solving
        engages, compatible cache-missing queries are grouped by schema,
        rebuilt over each group's union alphabet, and decided by *one*
        fixpoint per group — ``solver_runs`` then counts fixpoints, not
        queries, and ``merged_groups``/``merged_queries`` report the
        grouping.  Verdicts, witnesses and ``verdict_status`` are identical
        to per-query mode; a budget exhausted inside a merged group bisects
        the group and re-solves the halves so only genuinely expensive
        queries go unknown, never bystanders.
        """
        queries = list(queries)
        mode = self.batch_fixpoint if batch_fixpoint is None else batch_fixpoint
        if mode not in BATCH_FIXPOINT_MODES:
            raise ValueError(
                f"batch_fixpoint must be one of {BATCH_FIXPOINT_MODES}; got {mode!r}"
            )
        if mode == "on" or (mode == "auto" and workers <= 1 and len(queries) >= 2):
            return self._solve_many_merged(queries, budget)
        if workers <= 1 or len(queries) <= 1:
            runs_before = self.solver_runs
            hits_before = self.solve_cache_hits
            disk_before = self.disk_cache_hits
            started = time.perf_counter()
            outcomes = [self.solve(query, budget) for query in queries]
            return BatchReport(
                outcomes=outcomes,
                total_seconds=time.perf_counter() - started,
                solver_runs=self.solver_runs - runs_before,
                cache_hits=self.solve_cache_hits - hits_before,
                disk_cache_hits=self.disk_cache_hits - disk_before,
            )
        return self._solve_many_parallel(queries, workers, budget)

    def _dedupe_key(self, query: Query) -> tuple:
        """A hashable identity for batch deduplication (types via cache keys).

        Satisfiability and emptiness of the same expression reduce to the
        *same* formula (only the polarity of the answer differs), so they
        share one class — the sequential path answers the second from its
        solve cache, and the parallel path must fold them onto one worker
        solve to keep :class:`BatchReport` counters in parity.
        """
        kind = "satclass" if query.kind in ("satisfiability", "emptiness") else query.kind
        return (
            kind,
            query.exprs,
            tuple(self._type_key(xml_type) for xml_type in query.types),
        )

    # -- merged-Lean batch solving -------------------------------------------------

    def _expand_work_items(self, queries: list[Query]) -> list[_WorkItem]:
        """Decompose a batch into work items (equivalence → two containments)."""
        items: list[_WorkItem] = []
        for index, query in enumerate(queries):
            if query.kind == "equivalence":
                expr1, expr2 = query.exprs
                type1, type2 = query.types
                items.append(
                    _WorkItem(
                        index, "forward", Query.containment(expr1, expr2, type1, type2)
                    )
                )
                items.append(
                    _WorkItem(
                        index, "backward", Query.containment(expr2, expr1, type2, type1)
                    )
                )
            else:
                items.append(_WorkItem(index, None, query))
        return items

    def _assemble_outcomes(
        self,
        queries: list[Query],
        items: list[_WorkItem],
        item_outcomes: list[AnalysisOutcome],
    ) -> list[AnalysisOutcome]:
        """Map work-item outcomes back onto the batch's query order."""
        outcomes: list[AnalysisOutcome | None] = [None] * len(queries)
        parts: dict[int, dict[str, AnalysisOutcome]] = {}
        for item, outcome in zip(items, item_outcomes):
            if item.role is None:
                outcomes[item.out_index] = outcome
            else:
                parts.setdefault(item.out_index, {})[item.role] = outcome
        for index, pair in parts.items():
            outcomes[index] = self._assemble_equivalence(
                queries[index], pair["forward"], pair["backward"]
            )
        return outcomes

    @staticmethod
    def _mergeable_key(key: object) -> bool:
        """Whether a type cache key may join a merged-Lean group.

        Grouping is a sharing heuristic, not a soundness requirement (each
        goal keeps its own alphabet inside the merged solver): built-in
        schema names and parsed DTD/grammar objects put queries whose
        closures overlap heavily — the schema's type translation — in one
        arena.  Raw-formula type constraints share no such structure, so
        such queries solve individually rather than bloat a group's Lean.
        """
        if key is None:
            return True
        if key[0] == "rooted":
            return StaticAnalyzer._mergeable_key(key[1])
        return key[0] in ("builtin", "object")

    def _solve_many_merged(
        self, queries: list[Query], budget: Budget | None
    ) -> BatchReport:
        """The merged-Lean batch path: one fixpoint per compatible group.

        Stage 1 answers every work item it can from the cache layers (keyed
        by the item's own batch-independent reduction).  Stage 2 groups the
        misses by schema — one shared non-``None`` type per group, or all
        untyped — so grouped closures actually overlap, dedupes the goals,
        and decides each group in one
        :class:`repro.solver.symbolic.MergedSolver` fixpoint.  Goals keep
        their per-query reductions (the solver factors its state per goal,
        restricting each goal to its own alphabet), so every verdict is
        published under the same batch-independent key a single solve uses
        and later batches of any composition transfer the work.
        """
        started = time.perf_counter()
        runs_before = self.solver_runs
        hits_before = self.solve_cache_hits
        disk_before = self.disk_cache_hits
        items = self._expand_work_items(queries)
        pending: list[_WorkItem] = []
        for item in items:
            query = item.query
            try:
                formula, problem, positive = self._reduce(query)
            except ANALYSIS_ERRORS as exc:
                item.outcome = self._error_outcome(query, exc)
                continue
            item.formula, item.problem, item.positive = formula, problem, positive
            record = self._solve_cache.get(formula)
            if record is not None:
                self.solve_cache_hits += 1
                item.outcome = self._outcome(query, problem, record, "memory", positive)
                continue
            if self.disk_cache is not None:
                record = self.disk_cache.get(formula)
                if record is not None:
                    self.disk_cache_hits += 1
                    self._solve_cache[formula] = record
                    item.outcome = self._outcome(query, problem, record, "disk", positive)
                    continue
            pending.append(item)

        groups: dict[object, list[_WorkItem]] = {}
        singles: list[_WorkItem] = []
        for item in pending:
            keys = {
                self._type_key(xml_type)
                for xml_type in item.query.types
                if xml_type is not None
            }
            if len(keys) > 1 or not all(self._mergeable_key(key) for key in keys):
                singles.append(item)
                continue
            group_key = next(iter(keys)) if keys else None
            groups.setdefault(group_key, []).append(item)

        merged_groups = 0
        merged_queries = 0
        for group in groups.values():
            if len(group) < 2:
                singles.extend(group)
                continue
            merged_groups += 1
            merged_queries += len(group)
            self._solve_merged_group(group, budget)
        for item in singles:
            item.outcome = self.solve(item.query, budget)

        outcomes = self._assemble_outcomes(
            queries, items, [item.outcome for item in items]
        )
        return BatchReport(
            outcomes=outcomes,
            total_seconds=time.perf_counter() - started,
            solver_runs=self.solver_runs - runs_before,
            cache_hits=self.solve_cache_hits - hits_before,
            disk_cache_hits=self.disk_cache_hits - disk_before,
            merged_groups=merged_groups,
            merged_queries=merged_queries,
        )

    def _solve_merged_group(
        self, group: list[_WorkItem], budget: Budget | None
    ) -> None:
        """Decide one compatible group of cache-missing items in one fixpoint.

        Sets ``item.outcome`` on every member.  Each member keeps its own
        batch-independent reduction (its per-query pruned alphabet): the
        merged solver's factored per-goal state restricts every goal's label
        constraint to its own alphabet, so no rebuild over a union alphabet
        is needed — which keeps cache keys batch-independent *and* makes the
        verdicts, statistics-relevant iteration counts, and reconstructed
        witnesses of a merged run identical to the per-query ones.  The
        goals are deduped — a batch whose queries reduce to one formula
        still costs one goal bit.
        """
        effective = self._effective_budget(budget)
        members = [item for item in group if item.formula is not None]
        if not members:
            return

        # Dedupe the goals, preserving first-appearance order (the order
        # assigns the goal bits of the merged Lean).
        order: list[sx.Formula] = []
        leaders: dict[sx.Formula, _WorkItem] = {}
        followers: dict[sx.Formula, list[_WorkItem]] = {}
        for item in members:
            formula = item.formula
            if formula in leaders:
                followers[formula].append(item)
            else:
                leaders[formula] = item
                followers[formula] = []
                order.append(formula)
        lift_contexts = {
            formula: self._lift_context(leaders[formula].query) for formula in order
        }

        records: dict[sx.Formula, SolveRecord] = {}
        sources: dict[sx.Formula, str | None] = {}
        failures: dict[sx.Formula, Exception] = {}
        unsolved: list[sx.Formula] = []
        for formula in order:
            record = self._solve_cache.get(formula)
            if record is not None:
                self.solve_cache_hits += 1
                records[formula] = record
                sources[formula] = "memory"
            else:
                unsolved.append(formula)
        if unsolved and self.disk_cache is not None:
            batch_records = self.disk_cache.get_batch(unsolved)
            if batch_records is not None:
                for formula, record in zip(unsolved, batch_records):
                    self.disk_cache_hits += 1
                    self._solve_cache[formula] = record
                    records[formula] = record
                    sources[formula] = "disk"
                unsolved = []
        if unsolved:
            solved = self._run_merged_goals(unsolved, effective, lift_contexts)
            for formula, result in solved.items():
                if isinstance(result, SolveRecord):
                    self._solve_cache[formula] = result
                    records[formula] = result
                    sources[formula] = None
                else:
                    failures[formula] = result

        for formula in order:
            leader = leaders[formula]
            duplicates = followers[formula]
            if formula not in records:
                failure = failures[formula]
                for item in [leader] + duplicates:
                    if isinstance(failure, BudgetExceeded):
                        item.outcome = self._unknown_outcome(
                            item.query, item.problem, failure
                        )
                    else:
                        item.outcome = self._error_outcome(item.query, failure)
                continue
            record = records[formula]
            source = sources[formula]
            # The goal *is* the item's batch-independent reduction, so the
            # subformula-level entry written here transfers to later batches
            # of any composition and to plain single-query solves.
            if source is None and self.disk_cache is not None:
                self.disk_cache.put(formula, record)
                self.disk_cache_writes += 1
            leader.outcome = self._outcome(
                leader.query, leader.problem, record, source, leader.positive
            )
            for item in duplicates:
                self.solve_cache_hits += 1
                item.outcome = self._outcome(
                    item.query, item.problem, record, "memory", item.positive
                )

    def _run_merged_goals(
        self,
        goals: list[sx.Formula],
        budget: Budget | None,
        lift_contexts: dict[sx.Formula, tuple[DTD, tuple[str, ...]] | None],
    ) -> dict[sx.Formula, object]:
        """Run one merged fixpoint; bisect on budget exhaustion.

        Returns a map from goal formula to its :class:`SolveRecord`, or to
        the exception that stopped it.  A ``BudgetExceeded`` in a merged
        group must not take bystanders down with the offending goal, so the
        group is split in half and each half re-solved under a fresh
        governor; the recursion bottoms out at single goals, where the
        failure is genuinely attributable (and, with ``degrade=True``, the
        bounded explicit solver still gets its chance).
        """
        try:
            merged = MergedSolver(
                tuple(goals),
                early_quantification=self.early_quantification,
                monolithic_relation=self.monolithic_relation,
                interleaved_order=self.interleaved_order,
                track_marks=self.track_marks,
                backend=self.backend,
                budget=budget,
            ).solve()
        except BudgetExceeded as exc:
            if len(goals) == 1:
                if self.degrade and exc.reason != "worker-crash":
                    record = self._degraded_record(goals[0], lift_contexts[goals[0]])
                    if record is not None:
                        return {goals[0]: record}
                return {goals[0]: exc}
            middle = len(goals) // 2
            solved = self._run_merged_goals(goals[:middle], budget, lift_contexts)
            solved.update(self._run_merged_goals(goals[middle:], budget, lift_contexts))
            return solved
        except ANALYSIS_ERRORS as exc:
            # Input-shaped failures (e.g. a closure-size limit on the merged
            # disjunction) bisect the same way so only the offending goal
            # reports the error.
            if len(goals) == 1:
                return {goals[0]: exc}
            middle = len(goals) // 2
            solved = self._run_merged_goals(goals[:middle], budget, lift_contexts)
            solved.update(self._run_merged_goals(goals[middle:], budget, lift_contexts))
            return solved
        self.solver_runs += 1
        results: dict[sx.Formula, object] = {}
        solved_records: list[SolveRecord] = []
        for formula, result in zip(goals, merged.results):
            document = result.model_document()
            lift_context = lift_contexts[formula]
            if document is not None and lift_context is not None:
                lift_dtd, kept_labels = lift_context
                document = (
                    lift_wildcards(lift_dtd, document, exclude=kept_labels) or document
                )
            statistics = result.statistics.as_dict()
            statistics["merged_goals"] = len(goals)
            record = SolveRecord(
                satisfiable=result.satisfiable,
                counterexample=None if document is None else serialize_tree(document),
                statistics=statistics,
                solve_seconds=result.statistics.solve_seconds,
            )
            results[formula] = record
            solved_records.append(record)
        if self.disk_cache is not None:
            self.disk_cache.put_batch(goals, solved_records)
            self.disk_cache_writes += 1
        return results

    #: Pool respawns tolerated per batch before the remaining queries are
    #: declared ``unknown("worker-crash")`` wholesale.  A bound this small is
    #: only reached when workers die repeatedly without attribution (e.g. the
    #: pool initializer itself crashes), where retrying cannot converge.
    MAX_POOL_RESPAWNS = 5

    def _record_payload(self, payload: tuple, queries: list[Query], outcomes: list) -> None:
        """Fold one worker result into ``outcomes`` and the cache counters."""
        index, outcome, runs, hits, disk_hits, disk_writes = payload
        # The worker's query object is a pickle round-trip copy; hand the
        # caller back the exact object it submitted.
        outcome.query = queries[index]
        outcomes[index] = outcome
        self.solver_runs += runs
        self.solve_cache_hits += hits
        self.disk_cache_hits += disk_hits
        self.disk_cache_writes += disk_writes

    def _retry_isolated(
        self, index: int, query: Query, budget: Budget | None, marker_dir: str
    ) -> tuple | None:
        """One quarantined retry in a fresh single-worker pool.

        Returns the worker payload, or ``None`` when the worker died again —
        at which point the query is confirmed poison, not a bystander that
        happened to share a pool with one.
        """
        from concurrent.futures import ProcessPoolExecutor
        from concurrent.futures.process import BrokenProcessPool

        pool = ProcessPoolExecutor(
            max_workers=1,
            initializer=_pool_initializer,
            initargs=(self._options(),),
        )
        try:
            return pool.submit(_pool_solve, (index, query, budget, marker_dir)).result()
        except BrokenProcessPool:
            return None
        finally:
            pool.shutdown(wait=False)
            try:
                os.unlink(os.path.join(marker_dir, f"{index}.running"))
            except OSError:
                pass

    def _replicate_outcome(
        self, leader: AnalysisOutcome, query: Query
    ) -> AnalysisOutcome:
        """A duplicate item's outcome, derived from its dedupe-class leader.

        Mirrors what the sequential path produces when the duplicate answers
        from the in-memory solve cache: the polarity and problem description
        are the duplicate's *own* (a satisfiability and an emptiness share a
        leader but disagree on ``holds``); only the verdict is shared.
        """
        from dataclasses import replace

        if leader.verdict_status == "error":
            return replace(leader, query=query, problem=f"{query.kind} (failed)")
        problem = self._problem_description(query)
        if not leader.definite:
            return replace(leader, query=query, problem=problem)
        record = SolveRecord(
            satisfiable=leader.satisfiable,
            counterexample=leader.counterexample,
            statistics=dict(leader.statistics),
            solve_seconds=leader.solve_seconds,
        )
        positive = query.kind in ("satisfiability", "overlap")
        return self._outcome(query, problem, record, "memory", positive)

    def _solve_many_parallel(
        self, queries: list[Query], workers: int, budget: Budget | None = None
    ) -> BatchReport:
        from concurrent.futures import ProcessPoolExecutor
        from concurrent.futures.process import BrokenProcessPool

        import shutil
        import tempfile

        started = time.perf_counter()
        runs_before = self.solver_runs
        hits_before = self.solve_cache_hits
        disk_before = self.disk_cache_hits
        # Fan out *work items*, not queries: an equivalence decomposes into
        # its two containment halves so a standalone containment elsewhere in
        # the batch shares a solve with it, exactly as the sequential path's
        # solve cache would.
        items = self._expand_work_items(queries)
        item_queries = [item.query for item in items]
        outcomes: list[AnalysisOutcome | None] = [None] * len(items)
        # Ship each *distinct* item once: without deduplication every worker
        # re-solves the duplicates the sequential path answers from its solve
        # cache, and the fan-out loses exactly what the batch API gained.
        groups: dict[tuple, list[int]] = {}
        local: list[int] = []
        for index, query in enumerate(item_queries):
            if _parallel_safe(query):
                groups.setdefault(self._dedupe_key(query), []).append(index)
            else:
                local.append(index)
        # Each worker drops a `<index>.running` marker in this directory for
        # the duration of a solve; a marker that survives a pool collapse is
        # how the crash gets blamed on specific queries.
        marker_dir = tempfile.mkdtemp(prefix="repro-batch-")
        pending = {indices[0] for indices in groups.values()}
        pool = None
        respawns = 0
        backoff = 0.05
        first_round = True
        try:
            while pending or first_round:
                if pool is None:
                    pool = ProcessPoolExecutor(
                        max_workers=workers,
                        initializer=_pool_initializer,
                        initargs=(self._options(),),
                    )
                submit = sorted(pending)
                futures = {
                    leader: pool.submit(
                        _pool_solve, (leader, item_queries[leader], budget, marker_dir)
                    )
                    for leader in submit
                }
                if first_round:
                    # Queries that cannot be shipped (raw-formula types) run
                    # in the parent while the workers chew on theirs.
                    for index in local:
                        outcomes[index] = self.solve(item_queries[index], budget)
                    first_round = False
                broken = False
                for leader in submit:
                    # Futures that completed before a pool collapse still
                    # hold their results, so drain every one rather than
                    # bailing at the first BrokenProcessPool.
                    try:
                        payload = futures[leader].result()
                    except BrokenProcessPool:
                        broken = True
                        continue
                    self._record_payload(payload, item_queries, outcomes)
                    pending.discard(leader)
                if not broken:
                    continue
                pool.shutdown(wait=False)
                pool = None
                respawns += 1
                # Leftover markers name the queries that were mid-solve when
                # the pool died (the killer plus any collateral siblings the
                # executor tore down with it).  Each gets one isolated retry;
                # dying again in a pool of one is conclusive.
                suspects = set()
                for name in os.listdir(marker_dir):
                    if not name.endswith(".running"):
                        continue
                    try:
                        suspect = int(name.split(".", 1)[0])
                    except ValueError:
                        continue
                    suspects.add(suspect)
                    try:
                        os.unlink(os.path.join(marker_dir, name))
                    except OSError:
                        pass
                for leader in sorted(suspects & pending):
                    payload = self._retry_isolated(
                        leader, item_queries[leader], budget, marker_dir
                    )
                    if payload is None:
                        outcomes[leader] = self._crash_outcome(item_queries[leader])
                    else:
                        self._record_payload(payload, item_queries, outcomes)
                    pending.discard(leader)
                if pending:
                    if respawns >= self.MAX_POOL_RESPAWNS:
                        for leader in sorted(pending):
                            outcomes[leader] = self._crash_outcome(item_queries[leader])
                        pending.clear()
                    else:
                        time.sleep(backoff)
                        backoff = min(backoff * 2, 1.0)
        finally:
            if pool is not None:
                pool.shutdown(wait=False)
            shutil.rmtree(marker_dir, ignore_errors=True)
        for indices in groups.values():
            outcome = outcomes[indices[0]]
            for duplicate in indices[1:]:
                outcomes[duplicate] = self._replicate_outcome(
                    outcome, item_queries[duplicate]
                )
                if outcome.definite:
                    self.solve_cache_hits += 1
        return BatchReport(
            outcomes=self._assemble_outcomes(queries, items, outcomes),
            total_seconds=time.perf_counter() - started,
            solver_runs=self.solver_runs - runs_before,
            cache_hits=self.solve_cache_hits - hits_before,
            disk_cache_hits=self.disk_cache_hits - disk_before,
            workers=workers,
        )


def solve_many(queries: Iterable[Query], workers: int = 1, **options) -> BatchReport:
    """One-shot batch entry point (a fresh :class:`StaticAnalyzer` per call)."""
    return StaticAnalyzer(**options).solve_many(queries, workers=workers)
