"""Figure 21 + Proposition 5.1 — the benchmark queries and their translations.

For every query of Figure 21 the benchmark measures the XPath → Lµ translation
time and records the size of the resulting formula and of its Lean, checking
the linearity and cycle-freeness claims of Proposition 5.1.
"""

import pytest

from conftest import FIGURE_21, write_report
from repro.logic.closure import lean
from repro.logic.cyclefree import is_cycle_free
from repro.logic.syntax import formula_size
from repro.xpath.compile import compile_xpath
from repro.xpath.parser import parse_xpath

_ROWS: dict[str, str] = {}


@pytest.mark.parametrize("name", list(FIGURE_21))
def test_fig21_translation(benchmark, name):
    text = FIGURE_21[name]
    expr = parse_xpath(text)
    formula = benchmark(compile_xpath, expr)
    size = formula_size(formula)
    lean_size = len(lean(formula))
    assert is_cycle_free(formula)
    assert size <= 40 * (len(text) + 1)
    _ROWS[name] = (
        f"{name:<4} | {len(text):>5} | {size:>12} | {lean_size:>9} | cycle-free"
    )
    if len(_ROWS) == len(FIGURE_21):
        write_report(
            "fig21_translation",
            ["expr | chars | formula size | lean size | Prop. 5.1(2)"]
            + [_ROWS[key] for key in FIGURE_21],
        )
