"""Tests of the satisfiability solvers (Sections 6 and 7).

The central properties checked here:

* soundness — when the solver reports "satisfiable" it produces a model, and
  the model really satisfies the formula according to the declarative
  semantics of Figure 2;
* completeness — formulas known to be satisfiable (because a concrete document
  satisfies them) are reported satisfiable;
* agreement between the explicit solver (Figure 16) and the symbolic BDD
  solver (Section 7);
* the mark-tracking update keeps exactly one start mark in every model.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.logic import syntax as sx
from repro.logic.negation import negate
from repro.logic.semantics import interpret
from repro.solver.explicit import ExplicitSolver
from repro.solver.symbolic import SymbolicSolver
from repro.solver.truth import psi_types, status_on_set
from repro.logic.closure import lean as compute_lean
from repro.trees.binary import binary_forest_to_unranked
from repro.trees.focus import all_focuses
from repro.trees.unranked import parse_tree


def model_satisfies(result, formula) -> bool:
    """Check a solver model against the declarative semantics."""
    forest = result.model_forest()
    assert forest is not None
    assert sum(tree.mark_count() for tree in forest) == 1
    for tree in forest:
        if tree.mark_count() != 1:
            continue
        universe = frozenset(all_focuses(tree))
        if interpret(formula, universe):
            return True
    return False


# -- truth assignment ------------------------------------------------------------------


def test_status_of_lean_atoms():
    formula = sx.mk_and(sx.prop("a"), sx.dia(1, sx.prop("b")))
    lean = compute_lean(formula)
    members = frozenset({sx.prop("a"), sx.dia(1, sx.prop("b")), sx.dia(1, sx.TRUE)})
    assert status_on_set(formula, members)
    assert not status_on_set(sx.prop("b"), members)
    assert status_on_set(sx.nprop("b"), members)
    assert status_on_set(sx.no_dia(2), members)
    assert not status_on_set(sx.NSTART, members) is False  # ¬s holds: no mark
    assert len(lean) >= 7


def test_status_unfolds_fixpoints():
    formula = sx.mu1(lambda x: sx.prop("a") | sx.dia(1, x))
    members_direct = frozenset({sx.prop("a")})
    assert status_on_set(formula, members_direct)
    members_modal = frozenset({sx.dia(1, sx.TRUE), sx.dia(1, formula), sx.prop("b")})
    assert status_on_set(formula, members_modal)
    assert not status_on_set(formula, frozenset({sx.prop("b")}))


def test_psi_types_satisfy_constraints():
    lean = compute_lean(sx.mk_and(sx.prop("a"), sx.dia(1, sx.prop("b"))))
    types = list(psi_types(lean))
    assert types
    for assignment in types:
        assert sum(1 for item in assignment.members if item.kind == sx.KIND_PROP) == 1
        assert not (
            assignment.has_parent_program(-1) and assignment.has_parent_program(-2)
        )


# -- symbolic solver: satisfiable cases ---------------------------------------------------


SATISFIABLE = [
    sx.prop("a") & sx.START,
    sx.prop("a") & sx.dia(1, sx.prop("b")) & sx.START,
    sx.dia(1, sx.dia(2, sx.prop("c"))) & sx.no_dia(-1) & sx.START,
    sx.mu1(lambda x: sx.prop("b") | sx.dia(1, x)) & sx.START,
    sx.dia(-1, sx.prop("a") & sx.START),
    sx.NSTART & sx.dia(1, sx.START),
]


@pytest.mark.parametrize("formula", SATISFIABLE)
def test_symbolic_satisfiable_with_verified_model(formula):
    result = SymbolicSolver(formula).solve()
    assert result.satisfiable
    assert model_satisfies(result, formula)


UNSATISFIABLE = [
    sx.FALSE,
    sx.prop("a") & sx.nprop("a"),
    sx.prop("a") & sx.prop("b"),
    sx.dia(1, sx.TRUE) & sx.no_dia(1),
    sx.dia(-1, sx.TRUE) & sx.dia(-2, sx.TRUE),
    sx.START & sx.NSTART,
    sx.START & sx.dia(1, sx.START),       # two marks are impossible
    sx.mu1(lambda x: sx.dia(1, x)),       # no base case: empty least fixpoint
]


@pytest.mark.parametrize("formula", UNSATISFIABLE)
def test_symbolic_unsatisfiable(formula):
    result = SymbolicSolver(formula).solve()
    assert not result.satisfiable
    assert result.model is None


def test_symbolic_statistics_are_populated():
    result = SymbolicSolver(SATISFIABLE[1]).solve()
    stats = result.statistics.as_dict()
    assert stats["lean_size"] > 0 and stats["iterations"] >= 1
    assert stats["solve_seconds"] >= 0.0


def test_solver_options_do_not_change_the_answer():
    formula = sx.prop("a") & sx.dia(1, sx.prop("b") & sx.dia(2, sx.prop("c"))) & sx.START
    reference = SymbolicSolver(formula).solve().satisfiable
    for options in (
        {"early_quantification": False},
        {"monolithic_relation": True},
        {"interleaved_order": False},
    ):
        assert SymbolicSolver(formula, **options).solve().satisfiable == reference


def test_mark_tracking_rejects_double_mark_requirement():
    # ⟨1⟩(s ∧ ⟨2⟩s): two distinct nodes would have to carry the mark.
    formula = sx.dia(1, sx.START & sx.dia(2, sx.START))
    assert not SymbolicSolver(formula).solve().satisfiable
    # Without mark tracking (ablation mode) the solver accepts it — this is
    # exactly the unsoundness the four-case update of Figure 16 prevents.
    assert SymbolicSolver(formula, track_marks=False).solve().satisfiable


def test_cycle_freeness_check_option():
    from repro.core.errors import CycleFreenessError

    bad = sx.mu1(lambda x: sx.dia(1, sx.dia(-1, x)))
    with pytest.raises(CycleFreenessError):
        SymbolicSolver(bad, check_cycle_freeness=True)


# -- explicit solver and agreement ---------------------------------------------------------


SMALL_FORMULAS = [
    sx.prop("a") & sx.START,
    sx.prop("a") & sx.nprop("a"),
    sx.dia(1, sx.prop("b")) & sx.START,
    sx.dia(1, sx.TRUE) & sx.no_dia(1),
    sx.dia(-1, sx.START),
    sx.START & sx.dia(2, sx.TRUE),
]


@pytest.mark.parametrize("formula", SMALL_FORMULAS)
def test_explicit_and_symbolic_agree(formula):
    explicit = ExplicitSolver(formula).solve()
    symbolic = SymbolicSolver(formula).solve()
    assert explicit.satisfiable == symbolic.satisfiable
    if explicit.satisfiable:
        forest = binary_forest_to_unranked(explicit.model)
        assert sum(tree.mark_count() for tree in forest) == 1


def test_explicit_solver_reports_statistics():
    result = ExplicitSolver(sx.prop("a") & sx.START).solve()
    assert result.type_count > 0 and result.iterations >= 1


# -- satisfiability is consistent with negation (small property) ----------------------------


@settings(max_examples=25, deadline=None)
@given(
    st.sampled_from(
        [
            sx.prop("a"),
            sx.dia(1, sx.prop("b")),
            sx.no_dia(-1),
            sx.dia(2, sx.TRUE),
            sx.prop("a") & sx.dia(1, sx.prop("a")),
        ]
    )
)
def test_formula_or_negation_is_satisfiable(formula):
    anchored = formula & sx.START
    negated = negate(formula) & sx.START
    sat_positive = SymbolicSolver(anchored).solve().satisfiable
    sat_negative = SymbolicSolver(negated).solve().satisfiable
    assert sat_positive or sat_negative


# -- frontier fixpoint, garbage collection, determinism -------------------------------------


def _containment_formula(depth: int) -> sx.Formula:
    """The depth-N nested containment formula of the scaling benchmark."""
    from repro.analysis.problems import _query_formula

    steps = ["a1"] + [f"a{i}[b{i}]" for i in range(2, depth + 1)]
    query = "/".join(steps)
    return sx.mk_and(
        _query_formula(query, None),
        negate(_query_formula(query.replace("[b2]", ""), None)),
    )


def test_frontier_fixpoint_matches_naive_evaluation():
    formula = _containment_formula(3)
    fast = SymbolicSolver(formula, frontier=True).solve()
    naive = SymbolicSolver(formula, frontier=False).solve()
    assert fast.satisfiable == naive.satisfiable
    assert fast.statistics.iterations == naive.statistics.iterations
    # Incremental products engaged (the size gate admits the small deltas of
    # this problem) and are reported; the naive mode never uses them.
    assert fast.statistics.delta_iterations > 0
    assert naive.statistics.delta_iterations == 0


def test_partitions_skipped_counts_empty_set_products():
    result = SymbolicSolver(_containment_formula(2)).solve()
    # Iteration 1 runs every product against the empty set: each partition
    # of each relation is skipped at least once over the run.
    assert result.statistics.partitions_skipped >= result.statistics.relation_partitions


@pytest.mark.parametrize("satisfiable_case", [True, False])
def test_garbage_collection_mid_fixpoint_preserves_results(satisfiable_case):
    if satisfiable_case:
        formula = sx.prop("a") & sx.dia(1, sx.prop("b") & sx.dia(1, sx.prop("c")))
    else:
        formula = _containment_formula(2)
    plain = SymbolicSolver(formula).solve()
    collected = SymbolicSolver(formula, collect_every=1).solve()
    assert collected.satisfiable == plain.satisfiable
    assert collected.statistics.iterations == plain.statistics.iterations
    if plain.model is not None:
        assert collected.model is not None
        assert collected.model == plain.model
    # The collector actually ran (and reclaimed mid-fixpoint garbage).
    solver = SymbolicSolver(formula, collect_every=1)
    result = solver.solve()
    assert result.satisfiable == plain.satisfiable


def test_garbage_collection_reclaims_and_keeps_statistics_sane():
    formula = _containment_formula(3)
    collected = SymbolicSolver(formula, collect_every=2).solve()
    plain = SymbolicSolver(formula).solve()
    assert collected.satisfiable == plain.satisfiable
    # GC shrinks the live table: the collected run must not end with more
    # live nodes than the uncollected one.
    assert collected.statistics.bdd_node_count <= plain.statistics.bdd_node_count


def test_gc_hooks_translate_external_caches():
    """A GC during a solve leaves relation/status caches usable (no stale ids)."""
    from repro.solver.relations import LeanEncoding, TransitionRelation

    formula = sx.prop("a") & sx.dia(1, sx.prop("b"))
    plunged = sx.mu1(lambda x: formula | sx.dia(1, x) | sx.dia(2, x), prefix="T")
    lean = compute_lean(plunged)
    encoding = LeanEncoding(lean)
    relation = TransitionRelation(encoding, 1)
    types = encoding.types_constraint()
    witness_before = relation.witness(types)
    generation = encoding.manager.generation
    remap = encoding.manager.garbage_collect([types.node, witness_before.node])
    assert encoding.manager.generation == generation + 1
    # The relation's product cache survived the collection (translated, not
    # cleared): asking again must be a cache hit with a valid node.
    hits_before = relation.product_cache_hits
    witness_after = relation.witness(encoding.manager.wrap(remap[types.node]))
    assert relation.product_cache_hits == hits_before + 1
    assert witness_after.node == remap[witness_before.node]


def test_solver_counters_are_deterministic_across_runs():
    """Byte-identical counters let CI guard performance without wall-clock."""
    formula = _containment_formula(3)

    def counters():
        stats = SymbolicSolver(formula).solve().statistics.as_dict()
        stats.pop("translation_seconds")
        stats.pop("solve_seconds")
        return stats

    first = counters()
    second = counters()
    assert first == second
    for key in ("iterations", "product_calls", "delta_iterations",
                "partitions_skipped", "bdd_ite_calls", "peak_set_nodes"):
        assert first[key] == second[key], key
