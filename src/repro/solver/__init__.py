"""The satisfiability-testing algorithm (Sections 6 and 7).

Given a cycle-free, closed Lµ formula ψ, the algorithm decides whether some
finite focused tree (with a single start mark) satisfies ψ, and produces a
smallest satisfying model when one exists.

Two implementations are provided:

* :mod:`repro.solver.explicit` — a direct implementation of the abstract
  algorithm of Figure 16, manipulating explicit sets of ψ-types and witness
  triples.  It is exponential in the Lean size and intended for small
  formulas and for cross-validating the symbolic solver.
* :mod:`repro.solver.symbolic` — the BDD-based implementation described in
  Section 7: ψ-types as bit vectors, the ``∆ₐ`` relations as conjunctively
  partitioned BDDs with early quantification, the "plunging" root formula,
  and satisfying-model reconstruction.
"""

from repro.solver.truth import TypeAssignment, status_on_set, psi_types
from repro.solver.explicit import ExplicitSolver
from repro.solver.symbolic import SymbolicSolver, SolverResult, SolverStatistics
from repro.solver.models import reconstruct_counterexample

__all__ = [
    "TypeAssignment",
    "status_on_set",
    "psi_types",
    "ExplicitSolver",
    "SymbolicSolver",
    "SolverResult",
    "SolverStatistics",
    "reconstruct_counterexample",
]
