"""Direct membership checking (validation) against binary tree types and DTDs.

This module is independent of the logic and of the solver: it decides whether
a concrete document belongs to a regular tree language by structural
recursion.  The test-suite uses it as an oracle for the Lµ translation of
types (a document validates against a DTD exactly when its root satisfies the
translated formula) and the benchmarks use it to sanity-check reconstructed
counterexample models.
"""

from __future__ import annotations

from typing import Iterable

from repro.trees.binary import BinTree, to_binary
from repro.trees.unranked import Tree
from repro.xmltypes import content as cm
from repro.xmltypes.ast import BinaryTypeGrammar, LabelAlternative
from repro.xmltypes.dtd import DTD


def grammar_accepts(grammar: BinaryTypeGrammar, document: Tree) -> bool:
    """Whether the document (an unranked tree) belongs to the grammar's language."""
    binary = to_binary(document.unmark_all())
    cache: dict[tuple[int, str], bool] = {}

    def accepts(node: BinTree | None, variable: str) -> bool:
        if node is None:
            return grammar.is_nullable(variable)
        key = (id(node), variable)
        cached = cache.get(key)
        if cached is not None:
            return cached
        # Guard against pathological cyclic queries: assume False while
        # computing (regular tree languages over finite trees are well-founded
        # in the first-child direction, so this only affects sibling cycles
        # that cannot accept a finite tree anyway).
        cache[key] = False
        result = False
        for alternative in grammar.alternatives(variable):
            if not isinstance(alternative, LabelAlternative):
                continue
            if alternative.label != node.label:
                continue
            if accepts(node.left, alternative.first) and accepts(
                node.right, alternative.next
            ):
                result = True
                break
        cache[key] = result
        return result

    return accepts(binary, grammar.start)


def dtd_accepts(dtd: DTD, document: Tree, root: str | None = None) -> bool:
    """Whether the document validates against the DTD.

    Validation checks that the document element is the designated root and
    that every element's children sequence matches its declared content model.
    Elements that are referenced but not declared must be empty.
    """
    expected_root = root if root is not None else dtd.root
    if document.label != expected_root:
        return False

    def valid(node: Tree) -> bool:
        declaration = dtd.elements.get(node.label)
        if declaration is None:
            return not node.children
        child_names = [child.label for child in node.children]
        if not cm.matches(declaration.content, child_names):
            return False
        return all(valid(child) for child in node.children)

    return valid(document)


def lift_wildcards(
    dtd: DTD,
    document: Tree,
    wildcard: str = "_",
    root: str | None = None,
    exclude: "Iterable[str]" = (),
) -> Tree | None:
    """Reassign concrete element names to wildcard-labelled nodes.

    Counterexample models solved under a *label-projected* type constraint
    (cone-of-influence Lean pruning, :func:`repro.xmltypes.compile.
    project_grammar`) carry the placeholder label for every element the
    problem's expressions never test.  This is the lifting direction of the
    projection's correctness argument made concrete: search for an
    assignment of declared element names to the wildcard nodes under which
    the whole document validates against the original DTD.  Returns the
    relabelled document, or ``None`` when no assignment exists (e.g. the
    model's typed region does not span the whole document, so parts of it
    are genuinely unconstrained).

    ``exclude`` must be the problem's kept alphabet: a wildcard node stands
    for "some label *outside* the names the queries test", so assigning it a
    kept name could change which nodes the queries select and hand back a
    document that no longer witnesses the verdict.

    The search is a backtracking walk of the content models (Brzozowski
    derivatives, one nondeterministic choice per wildcard child); witness
    documents are small, so this is cheap.
    """
    excluded = set(exclude)
    names = tuple(name for name in dtd.elements if name not in excluded)
    fit_cache: dict[tuple[int, str], Tree | None] = {}

    def fit(node: Tree, name: str) -> Tree | None:
        """The node relabelled as a valid ``name`` element, or ``None``."""
        if node.label != wildcard and node.label != name:
            return None
        key = (id(node), name)
        if key in fit_cache:
            return fit_cache[key]
        fit_cache[key] = None
        declaration = dtd.elements.get(name)
        result: Tree | None = None
        if declaration is None:
            # Referenced-but-undeclared elements must be empty.
            result = (
                Tree(name, (), node.marked, node.attributes)
                if not node.children
                else None
            )
        else:
            for children in assignments(declaration.content, node.children, 0):
                result = Tree(name, tuple(children), node.marked, node.attributes)
                break
        fit_cache[key] = result
        return result

    def assignments(model: cm.ContentModel, children: tuple[Tree, ...], index: int):
        """Yield lifted children lists matching the content model."""
        if index == len(children):
            if cm.nullable(model):
                yield []
            return
        child = children[index]
        candidates = names if child.label == wildcard else (child.label,)
        for name in candidates:
            derived = cm._derivative(model, name)
            if derived is None:
                continue
            lifted = fit(child, name)
            if lifted is None:
                continue
            for rest in assignments(derived, children, index + 1):
                yield [lifted, *rest]

    return fit(document, root if root is not None else dtd.root)


def dtd_attribute_violations(
    dtd: DTD, document: Tree, alphabet: tuple[str, ...] | None = None
) -> list[str]:
    """Attribute inconsistencies of a document against the DTD's ATTLISTs.

    Checks, for every element node, that ``#REQUIRED`` attributes are present
    and that present attributes are declared.  ``alphabet`` restricts both
    checks to the given attribute names — pass the projection alphabet used
    when compiling the type so that counterexample documents (which only
    carry attributes the problem could observe) validate exactly.  The
    placeholder name (:data:`repro.solver.models.FRESH_ATTRIBUTE`, a solver
    model's "any other attribute") is only accepted on elements that declare
    at least one attribute outside the alphabet.  Returns human-readable
    violation strings (empty: consistent).
    """
    from repro.solver.models import FRESH_ATTRIBUTE

    violations: list[str] = []
    for node in document.iter_nodes():
        declared = {decl.name for decl in dtd.attributes_of(node.label)}
        required = set(dtd.required_attributes(node.label))
        if alphabet is not None:
            required &= set(alphabet)
        for name in sorted(required - set(node.attributes)):
            violations.append(f"<{node.label}> is missing required attribute {name!r}")
        for name in node.attributes:
            if name == FRESH_ATTRIBUTE:
                named = set(alphabet) if alphabet is not None else set()
                if not (declared - named):
                    violations.append(
                        f"<{node.label}> carries an undeclarable extra attribute"
                    )
                continue
            if alphabet is not None and name not in alphabet:
                continue
            if name not in declared:
                violations.append(
                    f"<{node.label}> carries undeclared attribute {name!r}"
                )
    return violations
