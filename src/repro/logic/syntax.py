"""Hash-consed abstract syntax of the logic Lµ (Figure 1).

Formulas are::

    ϕ, ψ ::= ⊤ | ⊥                    truth / falsity
           | σ | ¬σ                   atomic proposition (possibly negated)
           | @l | ¬@l                 attribute proposition (possibly negated)
           | s | ¬s                   start proposition (possibly negated)
           | X                        recursion variable
           | ϕ ∨ ψ | ϕ ∧ ψ            disjunction / conjunction
           | ⟨a⟩ϕ | ¬⟨a⟩⊤             existential modality (possibly negated)
           | µ(Xᵢ = ϕᵢ) in ψ          least n-ary fixpoint
           | ν(Xᵢ = ϕᵢ) in ψ          greatest n-ary fixpoint

Programs ``a`` range over ``1, 2, -1, -2`` (first child, next sibling and the
converse modalities written 1̄, 2̄ in the paper).

The paper encodes falsity as ``σ ∧ ¬σ``; an explicit ``⊥`` node is provided
here for convenience and is treated exactly like that encoding by every
algorithm (its truth status is constantly false).

Attribute propositions ``@l`` follow the attribute extension of the companion
thesis ("Logics for XML"): ``@l`` holds at a focused tree whose focus node
carries attribute ``l``.  Unlike element labels, any number of attribute
propositions may hold at a node simultaneously.  The special label ``*``
(:data:`ANY_ATTRIBUTE`) stands for "some attribute, whatever its name".

Every construction goes through the module-level intern table, so formulas are
immutable, structurally shared, and can be compared and hashed by identity.
The smart constructors :func:`mk_or` and :func:`mk_and` perform the obvious
boolean simplifications; this keeps translated formulas small without changing
their meaning.
"""

from __future__ import annotations

import itertools
from typing import Callable, Iterable, Iterator

from repro.trees.focus import MODALITIES

# Formula kinds -------------------------------------------------------------

KIND_TRUE = "true"
KIND_FALSE = "false"
KIND_PROP = "prop"        # σ
KIND_NPROP = "nprop"      # ¬σ
KIND_ATTR = "attr"        # @l
KIND_NATTR = "nattr"      # ¬@l
KIND_START = "start"      # s
KIND_NSTART = "nstart"    # ¬s
KIND_VAR = "var"          # X
KIND_OR = "or"
KIND_AND = "and"
KIND_DIA = "dia"          # ⟨a⟩ϕ
KIND_NDIA = "ndia"        # ¬⟨a⟩⊤
KIND_MU = "mu"
KIND_NU = "nu"

_FIXPOINT_KINDS = (KIND_MU, KIND_NU)


class Formula:
    """A hash-consed Lµ formula node.

    Do not instantiate directly; use the module-level constructors
    (:func:`prop`, :func:`dia`, :func:`mu`, ...).  Two structurally equal
    formulas are always the *same* object, so ``==`` and ``is`` coincide.
    """

    __slots__ = ("kind", "label", "prog", "left", "right", "defs", "body", "_hash")

    def __init__(
        self,
        kind: str,
        label: str | None = None,
        prog: int | None = None,
        left: "Formula | None" = None,
        right: "Formula | None" = None,
        defs: tuple[tuple[str, "Formula"], ...] | None = None,
        body: "Formula | None" = None,
    ):
        self.kind = kind
        self.label = label
        self.prog = prog
        self.left = left
        self.right = right
        self.defs = defs
        self.body = body
        self._hash = hash(
            (
                kind,
                label,
                prog,
                id(left),
                id(right),
                None if defs is None else tuple((name, id(f)) for name, f in defs),
                id(body),
            )
        )

    def __hash__(self) -> int:
        return self._hash

    # Hash-consing makes structural equality coincide with identity.
    def __eq__(self, other: object) -> bool:
        return self is other

    def __ne__(self, other: object) -> bool:
        return self is not other

    def __repr__(self) -> str:
        from repro.logic.printer import format_formula

        return format_formula(self)

    # -- convenient predicates ------------------------------------------------

    @property
    def is_fixpoint(self) -> bool:
        """True for µ and ν nodes."""
        return self.kind in _FIXPOINT_KINDS

    @property
    def is_atom(self) -> bool:
        """True for leaves: ⊤, ⊥, σ, ¬σ, @l, ¬@l, s, ¬s, X and ¬⟨a⟩⊤."""
        return self.kind in (
            KIND_TRUE,
            KIND_FALSE,
            KIND_PROP,
            KIND_NPROP,
            KIND_ATTR,
            KIND_NATTR,
            KIND_START,
            KIND_NSTART,
            KIND_VAR,
            KIND_NDIA,
        )

    # -- operator sugar (used pervasively by the translations) ----------------

    def __or__(self, other: "Formula") -> "Formula":
        return mk_or(self, other)

    def __and__(self, other: "Formula") -> "Formula":
        return mk_and(self, other)


# ---------------------------------------------------------------------------
# Intern table and constructors
# ---------------------------------------------------------------------------

_INTERN: dict[tuple, Formula] = {}


def _intern(
    kind: str,
    label: str | None = None,
    prog: int | None = None,
    left: Formula | None = None,
    right: Formula | None = None,
    defs: tuple[tuple[str, Formula], ...] | None = None,
    body: Formula | None = None,
) -> Formula:
    key = (
        kind,
        label,
        prog,
        id(left),
        id(right),
        None if defs is None else tuple((name, id(f)) for name, f in defs),
        id(body),
    )
    found = _INTERN.get(key)
    if found is None:
        found = Formula(kind, label, prog, left, right, defs, body)
        _INTERN[key] = found
    return found


#: The constant true formula ⊤.
TRUE = _intern(KIND_TRUE)
#: The constant false formula (the paper writes it σ ∧ ¬σ).
FALSE = _intern(KIND_FALSE)
#: The start proposition ``s`` (the focus carries the start mark).
START = _intern(KIND_START)
#: The negated start proposition ``¬s``.
NSTART = _intern(KIND_NSTART)


def prop(label: str) -> Formula:
    """Atomic proposition σ: the node in focus is labelled ``label``."""
    return _intern(KIND_PROP, label=label)


def nprop(label: str) -> Formula:
    """Negated atomic proposition ¬σ."""
    return _intern(KIND_NPROP, label=label)


#: The wildcard attribute label: ``attr(ANY_ATTRIBUTE)`` holds at nodes that
#: carry at least one attribute, whatever its name.
ANY_ATTRIBUTE = "*"


def attr(label: str) -> Formula:
    """Attribute proposition @l: the node in focus carries attribute ``label``.

    ``attr(ANY_ATTRIBUTE)`` (i.e. ``attr("*")``) holds when the node carries
    *some* attribute.
    """
    return _intern(KIND_ATTR, label=label)


def nattr(label: str) -> Formula:
    """Negated attribute proposition ¬@l (for ``*``: the node has no attribute)."""
    return _intern(KIND_NATTR, label=label)


def var(name: str) -> Formula:
    """Recursion variable X."""
    return _intern(KIND_VAR, label=name)


def mk_or(left: Formula, right: Formula) -> Formula:
    """Disjunction with the obvious simplifications."""
    if left is TRUE or right is TRUE:
        return TRUE
    if left is FALSE:
        return right
    if right is FALSE:
        return left
    if left is right:
        return left
    return _intern(KIND_OR, left=left, right=right)


def mk_and(left: Formula, right: Formula) -> Formula:
    """Conjunction with the obvious simplifications."""
    if left is FALSE or right is FALSE:
        return FALSE
    if left is TRUE:
        return right
    if right is TRUE:
        return left
    if left is right:
        return left
    return _intern(KIND_AND, left=left, right=right)


def big_or(formulas: Iterable[Formula]) -> Formula:
    """Disjunction of a (possibly empty) collection; empty gives ⊥."""
    result = FALSE
    for formula in formulas:
        result = mk_or(result, formula)
    return result


def big_and(formulas: Iterable[Formula]) -> Formula:
    """Conjunction of a (possibly empty) collection; empty gives ⊤."""
    result = TRUE
    for formula in formulas:
        result = mk_and(result, formula)
    return result


def dia(program: int, sub: Formula) -> Formula:
    """Existential modality ⟨a⟩ϕ (``a`` one of 1, 2, -1, -2)."""
    if program not in MODALITIES:
        raise ValueError(f"not a program: {program!r}")
    if sub is FALSE:
        return FALSE
    return _intern(KIND_DIA, prog=program, left=sub)


def no_dia(program: int) -> Formula:
    """The negated modality ¬⟨a⟩⊤ ("there is no a-successor")."""
    if program not in MODALITIES:
        raise ValueError(f"not a program: {program!r}")
    return _intern(KIND_NDIA, prog=program)


def _make_fixpoint(kind: str, defs, body: Formula) -> Formula:
    defs = tuple((str(name), formula) for name, formula in defs)
    if not defs:
        raise ValueError("a fixpoint needs at least one definition")
    names = [name for name, _ in defs]
    if len(set(names)) != len(names):
        raise ValueError(f"duplicate fixpoint variables: {names}")
    return _intern(kind, defs=defs, body=body)


def mu(defs: Iterable[tuple[str, Formula]], body: Formula) -> Formula:
    """Least n-ary fixpoint ``µ(Xᵢ = ϕᵢ) in ψ``."""
    return _make_fixpoint(KIND_MU, defs, body)


def nu(defs: Iterable[tuple[str, Formula]], body: Formula) -> Formula:
    """Greatest n-ary fixpoint ``ν(Xᵢ = ϕᵢ) in ψ``."""
    return _make_fixpoint(KIND_NU, defs, body)


_FRESH_COUNTER = itertools.count(1)


def fresh_var_name(prefix: str = "X") -> str:
    """Return a globally fresh recursion-variable name."""
    return f"{prefix}{next(_FRESH_COUNTER)}"


def mu1(build: Callable[[Formula], Formula], prefix: str = "X") -> Formula:
    """Unary least fixpoint ``µX.ϕ(X)`` with a fresh variable.

    ``build`` receives the variable (as a formula) and returns the definition.
    Following the paper, ``µX.ϕ`` abbreviates ``µX = ϕ in ϕ``.
    """
    name = fresh_var_name(prefix)
    definition = build(var(name))
    return mu(((name, definition),), definition)


# ---------------------------------------------------------------------------
# Structural operations
# ---------------------------------------------------------------------------


def iter_children(formula: Formula) -> Iterator[Formula]:
    """Yield the immediate syntactic children of a formula."""
    if formula.kind in (KIND_OR, KIND_AND):
        yield formula.left
        yield formula.right
    elif formula.kind == KIND_DIA:
        yield formula.left
    elif formula.is_fixpoint:
        for _name, definition in formula.defs:
            yield definition
        yield formula.body


def iter_subformulas(formula: Formula) -> Iterator[Formula]:
    """Yield every distinct subformula (including ``formula``), depth first."""
    seen: set[int] = set()
    stack = [formula]
    while stack:
        current = stack.pop()
        if id(current) in seen:
            continue
        seen.add(id(current))
        yield current
        stack.extend(iter_children(current))


def formula_size(formula: Formula) -> int:
    """Size of the formula as a syntax tree (shared subterms counted once).

    This is the measure used by Proposition 5.1(3): the translations of XPath
    expressions and regular tree types are linear in this size.
    """
    return sum(1 for _ in iter_subformulas(formula))


def atomic_propositions(formula: Formula) -> set[str]:
    """The set of atomic propositions σ occurring in the formula."""
    return {
        sub.label
        for sub in iter_subformulas(formula)
        if sub.kind in (KIND_PROP, KIND_NPROP)
    }


def attribute_propositions(formula: Formula) -> set[str]:
    """The set of *named* attribute propositions @l occurring in the formula.

    The wildcard :data:`ANY_ATTRIBUTE` is not a name and is excluded; use
    :func:`uses_attributes` to detect it.
    """
    return {
        sub.label
        for sub in iter_subformulas(formula)
        if sub.kind in (KIND_ATTR, KIND_NATTR) and sub.label != ANY_ATTRIBUTE
    }


def uses_attributes(formula: Formula) -> bool:
    """Whether any attribute proposition (named or wildcard) occurs."""
    return any(
        sub.kind in (KIND_ATTR, KIND_NATTR) for sub in iter_subformulas(formula)
    )


def free_variables(formula: Formula) -> frozenset[str]:
    """The free recursion variables of a formula."""
    cache: dict[int, frozenset[str]] = {}

    def go(current: Formula) -> frozenset[str]:
        cached = cache.get(id(current))
        if cached is not None:
            return cached
        if current.kind == KIND_VAR:
            result = frozenset({current.label})
        elif current.is_fixpoint:
            bound = {name for name, _ in current.defs}
            inner: set[str] = set()
            for _name, definition in current.defs:
                inner |= go(definition)
            inner |= go(current.body)
            result = frozenset(inner - bound)
        else:
            inner = set()
            for child in iter_children(current):
                inner |= go(child)
            result = frozenset(inner)
        cache[id(current)] = result
        return result

    return go(formula)


def substitute(formula: Formula, mapping: dict[str, Formula]) -> Formula:
    """Capture-avoiding substitution of recursion variables.

    Fixpoint binders shadow outer variables of the same name: substitution
    does not descend for names re-bound by the fixpoint.  The formulas built
    by the XPath and type translations always use globally fresh variable
    names, so capture can only arise through deliberately crafted inputs; in
    that case the substitution raises ``ValueError`` rather than silently
    capturing.
    """
    if not mapping:
        return formula
    cache: dict[tuple[int, frozenset[str]], Formula] = {}

    def go(current: Formula, active: frozenset[str]) -> Formula:
        if not active:
            return current
        key = (id(current), active)
        cached = cache.get(key)
        if cached is not None:
            return cached
        if current.kind == KIND_VAR:
            result = mapping[current.label] if current.label in active else current
        elif current.is_fixpoint:
            bound = frozenset(name for name, _ in current.defs)
            remaining = active - bound
            for name in bound:
                for active_name in remaining:
                    if name in free_variables(mapping[active_name]):
                        raise ValueError(
                            f"substitution would capture variable {name!r}; "
                            "rename bound variables first"
                        )
            new_defs = tuple(
                (name, go(definition, remaining)) for name, definition in current.defs
            )
            new_body = go(current.body, remaining)
            result = _intern(current.kind, defs=new_defs, body=new_body)
        elif current.kind in (KIND_OR, KIND_AND):
            result = _intern(
                current.kind,
                left=go(current.left, active),
                right=go(current.right, active),
            )
        elif current.kind == KIND_DIA:
            result = _intern(KIND_DIA, prog=current.prog, left=go(current.left, active))
        else:
            result = current
        cache[key] = result
        return result

    active_names = frozenset(mapping) & (free_variables(formula) | set())
    return go(formula, frozenset(mapping) if active_names else active_names)


def expand_fixpoint(formula: Formula) -> Formula:
    """The expansion ``exp(ϕ)`` of Section 6.1.

    For ``ϕ = µ(Xᵢ = ϕᵢ) in ψ`` (or ν), returns ``ψ`` with every occurrence of
    an ``Xᵢ`` replaced by the closed fixpoint formula defining ``Xᵢ``.

    The paper writes the replacement as ``µ(Xᵢ = ϕᵢ) in Xᵢ``; we use the
    equivalent ``µ(Xᵢ = ϕᵢ) in ϕᵢ`` (the interpretation of both is the i-th
    component of the fixpoint).  The latter makes the expansion well-founded
    for guarded formulas: repeatedly expanding always ends up below a modality
    — which is what the truth-assignment relation of Figure 15 and the
    Fisher–Ladner closure rely on.
    """
    if not formula.is_fixpoint:
        raise ValueError("expand_fixpoint expects a fixpoint formula")
    definitions = dict(formula.defs)
    mapping = {
        name: _intern(formula.kind, defs=formula.defs, body=definitions[name])
        for name, _definition in formula.defs
    }
    return substitute(formula.body, mapping)


def rename_bound_variables(formula: Formula, prefix: str = "R") -> Formula:
    """Alpha-rename every bound variable to a globally fresh name.

    Used before analyses that require distinct binder names (for instance the
    cycle-freeness graph construction).
    """

    def go(current: Formula, env: dict[str, str]) -> Formula:
        if current.kind == KIND_VAR:
            new_name = env.get(current.label)
            return var(new_name) if new_name is not None else current
        if current.is_fixpoint:
            new_env = dict(env)
            fresh_names = {}
            for name, _definition in current.defs:
                fresh = fresh_var_name(prefix)
                fresh_names[name] = fresh
                new_env[name] = fresh
            new_defs = tuple(
                (fresh_names[name], go(definition, new_env))
                for name, definition in current.defs
            )
            return _intern(current.kind, defs=new_defs, body=go(current.body, new_env))
        if current.kind in (KIND_OR, KIND_AND):
            return _intern(
                current.kind, left=go(current.left, env), right=go(current.right, env)
            )
        if current.kind == KIND_DIA:
            return _intern(KIND_DIA, prog=current.prog, left=go(current.left, env))
        return current

    return go(formula, {})
