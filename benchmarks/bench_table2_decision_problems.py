"""Table 2 — the paper's decision problems and solver running times.

Each row reproduces one line of Table 2.  Absolute times are not comparable
with the paper's (a pure-Python BDD engine against a Java implementation on
2007 hardware); what is compared is the *decision* of each problem and the
relative cost ordering (untyped containment ≪ SMIL-constrained satisfiability
≪ XHTML-constrained problems).  The XHTML rows use the reduced "core" DTD by
default so a full benchmark run stays within minutes; set the environment
variable ``REPRO_XHTML=strict`` to use the full 77-element DTD as in the paper
(expect a long run).  See EXPERIMENTS.md for the recorded numbers and for the
discussion of the e6 ⊆ e5 row.
"""

import os

import pytest

from conftest import FIGURE_21, write_report
from repro.analysis import Analyzer
from repro.xmltypes.library import smil_dtd, xhtml_core_dtd, xhtml_strict_dtd

_XHTML = xhtml_strict_dtd if os.environ.get("REPRO_XHTML") == "strict" else xhtml_core_dtd

PAPER_ROWS = {
    "row1_e1_e2": ("e1 ⊆ e2 and e2 ⊄ e1", "none", 353),
    "row2_e4_e3": ("e4 ⊆ e3 and e3 ⊆ e4", "none", 45),
    "row3_e6_e5": ("e6 ⊆ e5 and e5 ⊄ e6", "none", 41),
    "row4_e7": ("e7 is satisfiable", "SMIL 1.0", 157),
    "row5_e8": ("e8 is satisfiable", "XHTML 1.0", 2630),
    "row6_e9": ("e9 ⊆ (e10 ∪ e11 ∪ e12)", "XHTML 1.0", 2872),
}

_RESULTS: dict[str, str] = {}


def _record(key: str, verdicts: list[str], milliseconds: float) -> None:
    label, xml_type, paper_ms = PAPER_ROWS[key]
    _RESULTS[key] = (
        f"{label:<28} | {xml_type:<9} | paper {paper_ms:>5} ms | ours {milliseconds:>10.1f} ms | "
        + "; ".join(verdicts)
    )
    if len(_RESULTS) == len(PAPER_ROWS):
        write_report(
            "table2_decision_problems",
            ["problem                      | type      | paper time  | measured time   | verdicts"]
            + [_RESULTS[key] for key in PAPER_ROWS],
        )


def test_row1_e1_e2_containment(benchmark):
    analyzer = Analyzer()

    def run():
        forward = analyzer.containment(FIGURE_21["e1"], FIGURE_21["e2"])
        backward = analyzer.containment(FIGURE_21["e2"], FIGURE_21["e1"])
        return forward, backward

    forward, backward = benchmark.pedantic(run, rounds=1, iterations=1)
    assert forward.holds and not backward.holds
    _record(
        "row1_e1_e2",
        [f"e1⊆e2: {forward.holds}", f"e2⊆e1: {backward.holds}"],
        forward.time_ms + backward.time_ms,
    )


def test_row2_e4_e3_equivalence(benchmark):
    analyzer = Analyzer()

    def run():
        return analyzer.equivalence(FIGURE_21["e4"], FIGURE_21["e3"])

    forward, backward = benchmark.pedantic(run, rounds=1, iterations=1)
    assert forward.holds and backward.holds
    _record(
        "row2_e4_e3",
        [f"e4⊆e3: {forward.holds}", f"e3⊆e4: {backward.holds}"],
        forward.time_ms + backward.time_ms,
    )


def test_row3_e6_e5_containment(benchmark):
    analyzer = Analyzer()

    def run():
        as_printed = analyzer.containment(FIGURE_21["e6"], FIGURE_21["e5"])
        descendant_variant = analyzer.containment(FIGURE_21["e6"], "a//c/following::d/e")
        reverse = analyzer.containment("a//c/following::d/e", FIGURE_21["e6"])
        return as_printed, descendant_variant, reverse

    as_printed, variant, reverse = benchmark.pedantic(run, rounds=1, iterations=1)
    assert variant.holds and not reverse.holds
    _record(
        "row3_e6_e5",
        [
            f"e6⊆e5 (as printed): {as_printed.holds}",
            f"e6⊆e5' (a//c…): {variant.holds}",
            f"e5'⊆e6: {reverse.holds}",
        ],
        as_printed.time_ms + variant.time_ms + reverse.time_ms,
    )


def test_row4_e7_satisfiable_under_smil(benchmark):
    analyzer = Analyzer()
    result = benchmark.pedantic(
        lambda: analyzer.satisfiability(FIGURE_21["e7"], smil_dtd()),
        rounds=1,
        iterations=1,
    )
    assert result.holds
    _record("row4_e7", [f"satisfiable: {result.holds}"], result.time_ms)


def test_row5_e8_satisfiable_under_xhtml(benchmark):
    analyzer = Analyzer()
    dtd = _XHTML()
    result = benchmark.pedantic(
        lambda: analyzer.satisfiability(FIGURE_21["e8"], dtd), rounds=1, iterations=1
    )
    assert result.holds
    _record(
        "row5_e8",
        [f"satisfiable: {result.holds} (DTD: {dtd.name})"],
        result.time_ms,
    )


def test_row6_e9_coverage_under_xhtml(benchmark):
    analyzer = Analyzer()
    dtd = _XHTML()

    def run():
        return analyzer.coverage(
            FIGURE_21["e9"],
            [FIGURE_21["e10"], FIGURE_21["e11"], FIGURE_21["e12"]],
            xml_type=dtd,
            covering_types=[dtd, dtd, dtd],
        )

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    _record(
        "row6_e9",
        [f"covered: {result.holds} (DTD: {dtd.name}; see EXPERIMENTS.md)"],
        result.time_ms,
    )
