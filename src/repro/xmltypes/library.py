"""Built-in XML types used by the paper's evaluation (Section 8, Table 1).

The evaluation of the paper uses two real-world DTDs — SMIL 1.0 (19 element
symbols) and XHTML 1.0 Strict (77 element symbols) — plus the Wikipedia DTD
fragment of Figure 12 used to illustrate the type translation.  The DTD texts
shipped with this package are hand-written reproductions of the element
structure of those DTDs (see DESIGN.md, "Substitutions"); a reduced XHTML
"core" subset is also provided for fast regression runs.
"""

from __future__ import annotations

import functools
from importlib import resources

from repro.xmltypes.dtd import DTD, parse_dtd


def _load(filename: str, root: str, name: str) -> DTD:
    data = resources.files("repro.xmltypes.data").joinpath(filename).read_text()
    return parse_dtd(data, root=root, name=name)


@functools.lru_cache(maxsize=None)
def smil_dtd() -> DTD:
    """SMIL 1.0 (19 element symbols), rooted at ``smil``."""
    return _load("smil10.dtd", root="smil", name="smil")


@functools.lru_cache(maxsize=None)
def xhtml_strict_dtd() -> DTD:
    """XHTML 1.0 Strict (77 element symbols), rooted at ``html``."""
    return _load("xhtml1_strict.dtd", root="html", name="xhtml")


@functools.lru_cache(maxsize=None)
def xhtml_core_dtd() -> DTD:
    """A 21-element structural subset of XHTML 1.0 Strict, rooted at ``html``."""
    return _load("xhtml1_core.dtd", root="html", name="xhtmlcore")


@functools.lru_cache(maxsize=None)
def wikipedia_dtd() -> DTD:
    """The Wikipedia DTD fragment of Figure 12, rooted at ``article``."""
    return _load("wikipedia.dtd", root="article", name="wikipedia")


_BUILTINS = {
    "smil": smil_dtd,
    "xhtml": xhtml_strict_dtd,
    "xhtml-strict": xhtml_strict_dtd,
    "xhtml-core": xhtml_core_dtd,
    "wikipedia": wikipedia_dtd,
}


def builtin_dtd(name: str) -> DTD:
    """Look up a built-in DTD by name (``smil``, ``xhtml``, ``xhtml-core``,
    ``wikipedia``)."""
    try:
        return _BUILTINS[name]()
    except KeyError:
        raise KeyError(
            f"unknown built-in DTD {name!r}; available: {sorted(set(_BUILTINS))}"
        ) from None
