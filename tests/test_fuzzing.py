"""Unit tests for the differential fuzzing subsystem (``repro.testing``)."""

import json
import random

import pytest

from repro.logic import syntax as sx
from repro.testing.corpus import FuzzCase, load_corpus, write_corpus_case
from repro.testing.fuzz import (
    FuzzConfig,
    case_formula,
    evaluate_case,
    run_fuzz,
    single_root,
)
from repro.testing.generators import (
    GeneratorConfig,
    gen_case,
    gen_content_model,
    gen_dtd,
    gen_tree,
    gen_xpath,
    render_content,
)
from repro.testing.oracle import (
    Bounds,
    bounded_search,
    enumerate_trees,
    explicit_verdict,
    replay_witness,
    type_holds_at,
)
from repro.testing.shrink import case_size, shrink_case
from repro.trees.focus import all_focuses, focus_at
from repro.trees.unranked import Tree, parse_tree
from repro.xmltypes import content as cm
from repro.xmltypes.dtd import parse_dtd
from repro.xmltypes.membership import dtd_accepts
from repro.xpath.parser import parse_xpath

CONFIG = GeneratorConfig()


# -- generators -----------------------------------------------------------------


def test_gen_dtd_source_reparses_identically():
    for seed in range(30):
        source, dtd = gen_dtd(random.Random(seed), CONFIG)
        reparsed = parse_dtd(source, root=dtd.root, name="fuzz")
        assert reparsed.element_names() == dtd.element_names()
        assert reparsed.attlists.keys() == dtd.attlists.keys()


def test_gen_tree_documents_validate():
    produced = 0
    for seed in range(40):
        rng = random.Random(seed)
        _source, dtd = gen_dtd(rng, CONFIG)
        tree = gen_tree(rng, dtd, CONFIG)
        if tree is not None:
            produced += 1
            assert dtd_accepts(dtd, tree)
    # Random DTDs may describe empty languages, but most do not.
    assert produced >= 20


def test_gen_tree_respects_required_attributes():
    dtd = parse_dtd(
        "<!ELEMENT a (b)*><!ELEMENT b EMPTY><!ATTLIST b p CDATA #REQUIRED>",
        root="a",
    )
    for seed in range(10):
        tree = gen_tree(random.Random(seed), dtd, CONFIG)
        assert tree is not None
        for node in tree.iter_nodes():
            if node.label == "b":
                assert "p" in node.attributes


def test_render_content_round_trips_through_the_dtd_parser():
    for seed in range(40):
        rng = random.Random(seed)
        model = gen_content_model(rng, ("a", "b", "c"), 3)
        source = f"<!ELEMENT r {render_content(model)}><!ELEMENT a EMPTY>"
        dtd = parse_dtd(source, root="r")
        # The reparsed model accepts the same small words.
        words = [[], ["a"], ["b"], ["a", "b"], ["b", "a"], ["a", "a", "b"]]
        for word in words:
            assert cm.matches(dtd.content_of("r"), word) == cm.matches(model, word)


def test_gen_xpath_round_trips_and_respects_trailing_attributes():
    for seed in range(120):
        rng = random.Random(seed)
        expr = gen_xpath(rng, ("a", "b", "c"), ("p", "q"), CONFIG)
        text = str(expr)
        assert parse_xpath(text) == expr, text


def test_gen_case_is_deterministic_per_seed():
    first = gen_case(random.Random(7), CONFIG)
    second = gen_case(random.Random(7), CONFIG)
    assert first == second


# -- the bounded enumeration oracle ---------------------------------------------


def test_enumerate_trees_is_exhaustive_and_small_first():
    bounds = Bounds(max_depth=2, max_width=2)
    trees = list(enumerate_trees(("a", "b"), ((),), bounds))
    sizes = [tree.size() for tree in trees]
    assert sizes == sorted(sizes)
    # depth<=2, width<=2 over 2 labels: 2 singles, 2*2 one-child, 2*4
    # two-children = 14 trees.
    assert len(trees) == 14
    assert len(set(trees)) == 14


def test_type_holds_at_matches_membership_and_anchoring():
    dtd = parse_dtd("<!ELEMENT a (b)?><!ELEMENT b EMPTY>", root="a")
    document = parse_tree("<r><a!><b/></a><c/></r>")
    focus = focus_at(document, (0,))
    # Subtree valid but a following sibling exists: the anchor fails.
    assert not type_holds_at(dtd, focus)
    document = parse_tree("<r><c/><a!><b/></a></r>")
    assert type_holds_at(dtd, focus_at(document, (1,)))
    # Invalid subtree.
    document = parse_tree("<r><c/><a!><c/></a></r>")
    assert not type_holds_at(dtd, focus_at(document, (1,)))


def test_bounded_search_finds_witnesses():
    case = FuzzCase(kind="satisfiability", exprs=("child::a[child::b]",))
    verdict = bounded_search(case, Bounds(max_documents=200))
    assert verdict.witness_found
    assert verdict.witness is not None and verdict.witness.mark_count() == 1


def test_bounded_search_exhausts_unsatisfiable_cases():
    case = FuzzCase(kind="satisfiability", exprs=("child::a[self::b]",))
    bounds = Bounds(max_depth=2, max_width=1, max_documents=10_000)
    verdict = bounded_search(case, bounds)
    assert not verdict.witness_found
    assert verdict.exhausted


def test_bounded_search_semantic_checks_cover_the_compiled_formula():
    case = FuzzCase(kind="satisfiability", exprs=("child::a",))
    formula = case_formula(case, None, pruned=False)
    verdict = bounded_search(case, Bounds(max_documents=60), formula=formula)
    assert verdict.semantic_checks >= 1
    assert verdict.semantic_mismatches == []


def test_bounded_search_respects_the_type_constraint():
    dtd_source = "<!ELEMENT a (b)><!ELEMENT b EMPTY>"
    # Under the DTD an `a` always has a `b` child: no witness without one.
    case = FuzzCase(
        kind="satisfiability",
        exprs=("self::a[not(child::b)]",),
        dtd_source=dtd_source,
        root="a",
    )
    assert not bounded_search(case, Bounds()).witness_found
    positive = FuzzCase(
        kind="satisfiability",
        exprs=("self::a[child::b]",),
        dtd_source=dtd_source,
        root="a",
    )
    assert bounded_search(positive, Bounds()).witness_found


# -- the explicit psi-type oracle -----------------------------------------------


def test_explicit_verdict_agrees_on_small_formulas():
    bounds = Bounds(explicit_types=10_000)
    satisfiable, estimated = explicit_verdict(sx.prop("a") & sx.START, bounds)
    assert satisfiable is True and estimated > 0
    unsatisfiable, _ = explicit_verdict(sx.prop("a") & sx.nprop("a"), bounds)
    assert unsatisfiable is False


def test_explicit_verdict_declines_above_the_type_budget():
    verdict, estimated = explicit_verdict(
        sx.prop("a") & sx.START, Bounds(explicit_types=1)
    )
    assert verdict is None and estimated > 1


# -- witness replay -------------------------------------------------------------


def test_replay_witness_accepts_a_genuine_witness():
    case = FuzzCase(kind="satisfiability", exprs=("child::b",))
    witness = parse_tree("<a!><b/></a>")
    assert replay_witness(case, witness) == []


def test_replay_witness_rejects_bad_documents():
    case = FuzzCase(kind="satisfiability", exprs=("child::b",))
    assert replay_witness(case, parse_tree("<a!><c/></a>"))  # nothing selected
    assert replay_witness(case, parse_tree("<a><b/></a>"))  # no mark
    typed = FuzzCase(
        kind="satisfiability",
        exprs=("self::a",),
        dtd_source="<!ELEMENT a (b)><!ELEMENT b EMPTY>",
        root="a",
    )
    # Structurally invalid subtree at the mark.
    problems = replay_witness(typed, parse_tree("<a!><c/></a>"))
    assert any("validate" in problem for problem in problems)


def test_replay_witness_rejects_hedge_models():
    # The single-root anchoring of fuzzed problems forbids hedge witnesses;
    # a multi-tree forest surfacing here is itself a finding.
    case = FuzzCase(kind="satisfiability", exprs=("foll-sibling::b",))
    hedge = (parse_tree("<a!/>"), parse_tree("<b/>"))
    problems = replay_witness(case, hedge)
    assert problems and "hedge" in problems[0]


# -- single-root anchoring ------------------------------------------------------


def test_single_root_holds_everywhere_in_a_document():
    from repro.logic.semantics import interpret

    document = parse_tree("<r!><a><b/></a><c/></r>")
    universe = frozenset(all_focuses(document))
    assert interpret(single_root(), universe) == universe


def test_case_formula_is_tree_satisfiable_only():
    from repro.solver.symbolic import SymbolicSolver

    # Satisfiable over hedges (two top-level siblings) but not over
    # single-rooted documents: the fuzz reduction must answer "unsat".
    case = FuzzCase(kind="satisfiability", exprs=("/foll-sibling::a",))
    formula = case_formula(case, None, pruned=False)
    assert not SymbolicSolver(formula).solve().satisfiable


# -- shrinking ------------------------------------------------------------------


def test_shrink_case_minimises_while_predicate_holds():
    case = FuzzCase(
        kind="satisfiability",
        exprs=("child::a[child::b and child::c]/descendant::d",),
        dtd_source="<!ELEMENT a (b, c, d*)><!ELEMENT b EMPTY><!ELEMENT c EMPTY>"
        "<!ELEMENT d EMPTY>",
        root="a",
    )

    def mentions_b(candidate: FuzzCase) -> bool:
        return any("b" in text for text in candidate.exprs)

    shrunk = shrink_case(case, mentions_b)
    assert mentions_b(shrunk)
    assert case_size(shrunk) < case_size(case)
    assert shrunk.dtd_source is None  # the type is irrelevant to the predicate


def test_shrink_case_survives_predicate_exceptions():
    case = FuzzCase(kind="satisfiability", exprs=("child::a/child::b",))

    def explosive(candidate: FuzzCase) -> bool:
        raise RuntimeError("predicate blew up")

    assert shrink_case(case, explosive) == case


def test_oversized_cases_are_skipped_deterministically():
    case = FuzzCase(kind="satisfiability", exprs=("child::a",))
    outcome = evaluate_case(case, Bounds(max_lean=1))
    assert outcome.skipped_oversized and outcome.satisfiable is None
    assert outcome.lean_size > 1 and not outcome.disagreements
    normal = evaluate_case(case, Bounds())
    assert not normal.skipped_oversized and normal.satisfiable is True


# -- the campaign driver --------------------------------------------------------


def test_evaluate_case_agrees_on_known_problems():
    known = [
        (FuzzCase(kind="satisfiability", exprs=("child::a",)), True, True),
        (FuzzCase(kind="emptiness", exprs=("child::a[self::b]",)), False, True),
        (
            FuzzCase(kind="containment", exprs=("child::a[b]", "child::a")),
            False,
            True,
        ),
        (FuzzCase(kind="overlap", exprs=("child::a", "child::b")), False, False),
    ]
    for case, satisfiable, holds in known:
        outcome = evaluate_case(case, Bounds(max_documents=150))
        assert outcome.error is None
        assert not outcome.disagreements, outcome.disagreements
        assert outcome.satisfiable is satisfiable, case.describe()
        assert outcome.holds is holds, case.describe()
        assert len(outcome.ablation) == 4


def test_evaluate_case_backend_axis_multiplies_the_matrix():
    from repro.bdd.backends import available_backends

    backends = available_backends()
    assert set(backends) >= {"dict", "arena"}
    case = FuzzCase(kind="containment", exprs=("child::a[b]", "child::a"))
    outcome = evaluate_case(case, Bounds(max_documents=150), backends=backends)
    assert outcome.error is None
    assert not outcome.disagreements, outcome.disagreements
    assert len(outcome.ablation) == 4 * len(backends)
    assert outcome.holds is True
    assert set(outcome.ablation.values()) == {False}
    for name in backends:
        cells = [key for key in outcome.ablation if key.endswith(f"backend={name}")]
        assert len(cells) == 4, outcome.ablation


def test_run_fuzz_records_backends_in_report_and_seeds(tmp_path):
    config = FuzzConfig(
        budget=2,
        seed=5,
        bounds=Bounds(max_documents=100),
        corpus_dir=str(tmp_path),
        sample_corpus=1,
        backends=("dict", "arena"),
    )
    report = run_fuzz(config)
    assert not report.disagreements and not report.errors
    payload = report.as_dict()
    assert payload["ablation"]["backends"] == ["dict", "arena"]
    assert all("backend" in cell for cell in payload["ablation"]["matrix"])
    (entry,) = load_corpus(tmp_path)
    assert entry.expected["backends"] == ["dict", "arena"]


def test_run_fuzz_small_campaign_is_clean_and_deterministic():
    config = FuzzConfig(budget=4, seed=11, bounds=Bounds(max_documents=120))
    first = run_fuzz(config)
    second = run_fuzz(config)
    assert len(first.trials) == 4
    assert not first.disagreements and not first.errors
    assert [t.satisfiable for t in first.trials] == [
        t.satisfiable for t in second.trials
    ]
    assert [t.case for t in first.trials] == [t.case for t in second.trials]


def test_run_fuzz_writes_corpus_samples(tmp_path):
    config = FuzzConfig(
        budget=3,
        seed=5,
        bounds=Bounds(max_documents=100),
        corpus_dir=str(tmp_path),
        sample_corpus=2,
    )
    report = run_fuzz(config)
    assert len(report.corpus_files) == 2
    entries = load_corpus(tmp_path)
    assert len(entries) == 2
    for entry in entries:
        assert entry.expected is not None and entry.disagreement is None
        replay = evaluate_case(entry.case, config.bounds)
        assert replay.satisfiable == entry.expected["satisfiable"]


def test_corpus_round_trip(tmp_path):
    case = FuzzCase(
        kind="containment",
        exprs=("child::a", "child::*"),
        dtd_source="<!ELEMENT a EMPTY>",
        root="a",
    )
    path = write_corpus_case(
        tmp_path, case, origin="unit test", expected={"satisfiable": False, "holds": True}
    )
    (entry,) = load_corpus(tmp_path)
    assert entry.case == case and entry.path == path
    # Content-addressed names: rewriting the same case reuses the file.
    assert write_corpus_case(tmp_path, case, origin="again") == path
    assert len(load_corpus(tmp_path)) == 1


# -- the CLI --------------------------------------------------------------------


def test_cli_fuzz_reports_and_exits_zero(tmp_path, capsys):
    from repro.cli.main import main

    code = main(
        [
            "fuzz",
            "--budget",
            "2",
            "--seed",
            "9",
            "--max-docs",
            "80",
            "--corpus-dir",
            str(tmp_path),
            "--compact",
        ]
    )
    out = capsys.readouterr().out
    payload = json.loads(out)
    assert code == 0
    assert payload["trials"] == 2
    assert payload["disagreements"] == [] and payload["errors"] == []
    assert payload["ablation"]["identical_verdicts"] is True


def test_cli_fuzz_rejects_bad_budget(capsys):
    from repro.cli.main import main

    assert main(["fuzz", "--budget", "0"]) == 2


def test_cli_internal_errors_exit_2_without_traceback(tmp_path, capsys):
    from repro.cli.main import main

    # --corpus-dir pointing at a *file* makes corpus writing blow up; the
    # central handler must turn that into one stderr line and exit code 2.
    blocker = tmp_path / "not-a-dir"
    blocker.write_text("x")
    code = main(
        [
            "fuzz",
            "--budget",
            "1",
            "--seed",
            "0",
            "--max-docs",
            "40",
            "--sample-corpus",
            "1",
            "--corpus-dir",
            str(blocker),
        ]
    )
    captured = capsys.readouterr()
    assert code == 2
    assert "internal error" in captured.err
    assert "Traceback" not in captured.err
