"""Compiling XSLT match patterns and context-relative expressions.

Everything the auditor decides is phrased over a *document-rooted* type
constraint (:class:`repro.analysis.problems.Rooted`): the marked context
node of each query is a virtual document node whose single child is the
typed root element.  Under that convention:

* a match pattern compiles to the absolute expression selecting exactly the
  nodes it matches — a relative pattern ``p`` matches any node with an
  ancestor-or-self anchor, i.e. ``//p``; an absolute pattern is itself; the
  document-node pattern ``/`` is ``/self::*`` (only the document node
  satisfies a self step at the marked node);
* a ``select``/``test`` expression evaluated inside a template composes
  with its *static context* — the expression selecting the template's
  matchable nodes, further composed through enclosing ``xsl:for-each``
  selects — by path concatenation (absolute expressions ignore the
  context, exactly as at run time).

Top-level pattern alternatives (``|``) become separate branches, because
XSLT treats each alternative as its own template rule with its own default
priority (§5.5).
"""

from __future__ import annotations

import re

from repro.core.errors import ParseError
from repro.xpath import ast as xp
from repro.xpath.parser import parse_pattern_cached, parse_xpath_cached

_STAR_STEP = xp.Step(xp.Axis.DESC_OR_SELF, None)

#: Offset introduced by :func:`parse_test`'s wrapper, subtracted from error
#: positions so they point into the original ``test`` text.
_TEST_PREFIX = "self::*["


def pattern_alternatives(text: str) -> list[xp.Expr]:
    """The top-level ``|`` alternatives of a match pattern, in order.

    Each alternative is an :class:`~repro.xpath.ast.AbsolutePath` or
    :class:`~repro.xpath.ast.RelativePath` (parenthesised unions nested
    *inside* an alternative stay put).  Raises :class:`ParseError` for
    patterns outside the audited grammar.
    """
    alternatives: list[xp.Expr] = []

    def walk(expr: xp.Expr) -> None:
        if isinstance(expr, xp.ExprUnion):
            walk(expr.left)
            walk(expr.right)
        else:
            alternatives.append(expr)

    walk(parse_pattern_cached(text))
    return alternatives


def match_expression(alternative: xp.Expr) -> xp.AbsolutePath:
    """The absolute expression selecting exactly the nodes a pattern
    alternative matches (under a document-rooted type)."""
    if isinstance(alternative, xp.AbsolutePath):
        return alternative
    return xp.AbsolutePath(xp.PathCompose(_STAR_STEP, alternative.path))


def default_priority(alternative: xp.Expr) -> float:
    """The XSLT 1.0 §5.5 default priority of one pattern alternative.

    A bare name test gets 0, a bare wildcard −0.5 (likewise for attribute
    patterns); every structured pattern — multiple steps, predicates, root
    anchoring — gets 0.5.  (``ns:*`` name tests, the −0.25 row, are outside
    the tokeniser's QName grammar and cannot occur.)
    """
    if isinstance(alternative, xp.RelativePath):
        step = alternative.path
        if isinstance(step, xp.Step) and step.axis is xp.Axis.CHILD:
            return 0.0 if step.label is not None else -0.5
        if isinstance(step, xp.AttributeStep):
            return 0.0 if step.name is not None else -0.5
    return 0.5


def outranks(left, right) -> bool:
    """Does template-rule branch ``left`` outrank ``right`` in conflict
    resolution?  Import precedence first, then priority (XSLT 1.0 §5.5);
    equal rank is a stylesheet conflict, not a shadow, and returns False.
    Operands are ``(precedence, priority)`` pairs."""
    if left[0] != right[0]:
        return left[0] > right[0]
    return left[1] > right[1]


class ComposeError(ValueError):
    """A context expression no relative path can navigate from."""


def compose_context(context: xp.Expr, expr: xp.Expr) -> xp.Expr:
    """The nodes ``expr`` selects when evaluated from ``context``'s nodes.

    Distributes over unions and intersections on both sides; absolute
    expressions ignore the context (they are anchored at the document node
    already).  Raises :class:`ComposeError` when the context ends in an
    attribute step — the data model has no attribute nodes to navigate
    from, so such expressions are skipped rather than mis-analysed.
    """
    if isinstance(expr, xp.ExprUnion):
        return xp.ExprUnion(
            compose_context(context, expr.left), compose_context(context, expr.right)
        )
    if isinstance(expr, xp.ExprIntersection):
        return xp.ExprIntersection(
            compose_context(context, expr.left), compose_context(context, expr.right)
        )
    if isinstance(expr, xp.AbsolutePath):
        return expr
    if isinstance(context, xp.ExprUnion):
        return xp.ExprUnion(
            compose_context(context.left, expr), compose_context(context.right, expr)
        )
    if not isinstance(context, xp.AbsolutePath):
        raise ComposeError(f"cannot compose from context {context}")
    if xp.ends_in_attribute(context.path):
        raise ComposeError(
            "the context selects attribute nodes, which relative expressions "
            "cannot navigate from"
        )
    return xp.AbsolutePath(xp.PathCompose(context.path, expr.path))


def parse_test(text: str) -> xp.Expr:
    """Parse an ``xsl:if``/``xsl:when`` ``test`` as a truth question.

    XSLT evaluates ``test`` and takes its boolean value; for the fragment's
    expressions that is "does it select any node from the context node?".
    Parsing ``self::*[test]`` puts the whole qualifier grammar — ``and``/
    ``or``/``not(...)``, attribute tests, nested paths — at the test's
    disposal: the wrapped expression selects the context node iff the test
    is true there, so the *emptiness* of its context composition decides
    whether the branch can ever be taken.

    Error positions are shifted back onto the original ``test`` text.
    """
    try:
        return parse_xpath_cached(f"{_TEST_PREFIX}{text}]")
    except ParseError as exc:
        message = re.sub(r" \(at position .*\)$", "", str(exc), flags=re.DOTALL)
        position = exc.position
        if position is not None:
            position = min(max(0, position - len(_TEST_PREFIX)), len(text))
        raise ParseError(message, position, text) from None


# -- syntactic prescreens --------------------------------------------------------


def _last_steps(path: xp.Path) -> list[xp.Path]:
    if isinstance(path, xp.PathCompose):
        return _last_steps(path.second)
    if isinstance(path, xp.QualifiedPath):
        return _last_steps(path.path)
    if isinstance(path, xp.PathUnion):
        return _last_steps(path.left) + _last_steps(path.right)
    return [path]


def may_match_element(alternative: xp.Expr, label: str) -> bool:
    """Syntactic may-analysis: could this pattern alternative match an
    element named ``label``?  (Pattern steps are child-axis only, so the
    last step decides; the document-node pattern matches no element.)"""
    for step in _last_steps(alternative.path):
        if isinstance(step, xp.Step) and step.axis is xp.Axis.CHILD:
            if step.label is None or step.label == label:
                return True
    return False


def matches_all_elements(alternative: xp.Expr) -> bool:
    """Does this alternative trivially match *every* element node?

    True exactly for the bare wildcard pattern ``*`` (no anchoring, no
    predicate, a single unconditional child step): under the document-
    rooted model every element — including the root element, a child of
    the document node — is some node's child, so ``//*`` covers all of
    them without consulting the solver.
    """
    return (
        isinstance(alternative, xp.RelativePath)
        and isinstance(alternative.path, xp.Step)
        and alternative.path.axis is xp.Axis.CHILD
        and alternative.path.label is None
    )


def matches_exactly_element(alternative: xp.Expr, label: str) -> bool:
    """Does this alternative trivially match every element named ``label``?

    True for the bare name pattern (``label`` with no anchoring and no
    predicate) and for the bare wildcard: either way ``//label`` is covered
    syntactically and the coverage check needs no solver run.
    """
    if matches_all_elements(alternative):
        return True
    return (
        isinstance(alternative, xp.RelativePath)
        and isinstance(alternative.path, xp.Step)
        and alternative.path.axis is xp.Axis.CHILD
        and alternative.path.label == label
    )
