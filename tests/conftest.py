"""Shared fixtures for the test-suite.

The ``src`` directory is added to ``sys.path`` so the tests run even when the
package has not been installed (the offline reproduction environment lacks the
``wheel`` package needed by ``pip install -e .``; ``python setup.py develop``
is the documented fallback).
"""

from __future__ import annotations

import sys
from pathlib import Path

SRC = Path(__file__).resolve().parent.parent / "src"
if str(SRC) not in sys.path:
    sys.path.insert(0, str(SRC))

import pytest

from repro.trees.unranked import Tree, parse_tree


@pytest.fixture
def small_document() -> Tree:
    """A small document with the start mark on the root."""
    return parse_tree("<r!><a><c/></a><a><d/><b/></a><b/></r>")


@pytest.fixture
def book_document() -> Tree:
    """The book/chapter/section document from the paper's XPath primer."""
    return parse_tree(
        "<book!>"
        "<chapter><section/><section/></chapter>"
        "<chapter><section><title/></section></chapter>"
        "</book>"
    )


def documents_with_every_mark(text: str) -> list[Tree]:
    """All markings of a document: one copy per node carrying the start mark."""
    base = parse_tree(text).unmark_all()
    return [base.mark_at(path) for path, _node in sorted(base.iter_paths())]


#: Wildcard label of pruned witnesses whose collapsed elements could not be
#: lifted back to concrete names (repro.xmltypes.membership.lift_wildcards).
from repro.solver.models import FRESH_LABEL as WILDCARD_LABEL  # noqa: E402


def assert_genuine_counterexample(result, dtd=None, exprs=()) -> Tree:
    """Shared witness-validity invariant for satisfiable analysis outcomes.

    ``result`` is an :class:`repro.analysis.problems.AnalysisResult` (or a
    bare document).  Asserts that the witness exists and carries exactly one
    start mark; with ``dtd`` given, additionally that the marked node's
    subtree validates against the DTD and that
    :func:`repro.xmltypes.membership.dtd_attribute_violations` is empty when
    restricted to the attribute alphabet of ``exprs`` (the expressions of
    the problem that produced the witness).  Returns the document so tests
    can chain further assertions.

    Subtrees still containing the wildcard label (a pruned model the lifter
    could not fully concretise) skip the membership check — their attribute
    constraints are still enforced.
    """
    from repro.analysis.problems import relevant_attributes
    from repro.trees.focus import focus_at
    from repro.xmltypes.membership import dtd_accepts, dtd_attribute_violations

    document = getattr(result, "counterexample", result)
    assert document is not None, "expected a witness document"
    assert document.mark_count() == 1, (
        f"witness must carry exactly one start mark: {document}"
    )
    if dtd is None:
        return document
    focus = focus_at(document, document.find_mark())
    subtree = focus.tree.unmark_all()
    if WILDCARD_LABEL not in subtree.labels():
        assert dtd_accepts(dtd, subtree), (
            f"witness subtree does not validate against {dtd.name}: {subtree}"
        )
    alphabet = relevant_attributes(*exprs) if exprs else ()
    violations = dtd_attribute_violations(dtd, subtree, alphabet)
    assert not violations, f"witness attribute violations: {violations}"
    return document
