"""The ROBDD manager: node table, boolean operations, quantification.

Nodes are identified by non-negative integers.  The two terminals are ``0``
(false) and ``1`` (true); every other node is a triple ``(level, low, high)``
stored in the manager's node table, where ``level`` is the position of the
node's variable in the manager's fixed variable order, ``low`` is the cofactor
for the variable being false and ``high`` for it being true.  The standard
reduction rules apply: no node with ``low == high``, and no two distinct nodes
with the same triple.

Because the node table is append-only (until :meth:`BDDManager.garbage_collect`
runs), a node's children always have smaller indices than the node itself —
several algorithms below rely on this for bottom-up passes.

Operation caching follows the classical computed-table design [Brace, Rudell &
Bryant, DAC'90]: every :meth:`BDDManager.ite` call is normalised to a
*canonical* triple first (constant-argument simplifications, then argument
swaps for the commutative ``∧``/``∨`` shapes), so equivalent calls share one
cache entry.  Negation has a dedicated two-way cache, and the renaming used
for the solver's primed/unprimed vectors takes a linear structural fast path
whenever the mapping preserves the variable order.  :meth:`BDDManager.statistics`
exposes the node-table and cache counters the benchmarks report.

The :class:`BDD` wrapper pairs a node id with its manager and provides
operator overloading (``&``, ``|``, ``~``, ...) so client code reads like the
boolean formulas of Section 7.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Callable, Iterable, Iterator, Mapping, Sequence


@dataclass
class BDDStatistics:
    """A snapshot of the manager's node-table and cache counters.

    * ``var_count`` / ``node_count`` — declared variables and live internal
      nodes (terminals excluded); ``peak_node_count`` is the largest the table
      has ever been (it only decreases via :meth:`BDDManager.garbage_collect`).
    * ``ite_calls`` / ``ite_cache_hits`` — top-level *and* recursive ternary
      operations, and how many were answered from the computed table.
    * ``neg_calls`` / ``neg_cache_hits`` — negations and negation-cache hits
      (the cache stores both directions, so ``¬¬f`` is always a hit).
    * ``rename_fast_paths`` — renamings that took the linear structural path
      because the mapping preserved the variable order.
    * ``cache_entries`` — total entries across every operation cache.
    * ``gc_runs`` / ``nodes_reclaimed`` — garbage collections performed and
      nodes dropped by them.
    """

    var_count: int = 0
    node_count: int = 0
    peak_node_count: int = 0
    ite_calls: int = 0
    ite_cache_hits: int = 0
    neg_calls: int = 0
    neg_cache_hits: int = 0
    rename_fast_paths: int = 0
    cache_entries: int = 0
    gc_runs: int = 0
    nodes_reclaimed: int = 0

    def as_dict(self) -> dict[str, int]:
        return dataclasses.asdict(self)


class BDDManager:
    """Owner of the node table and operation caches for one variable order."""

    backend_name = "dict"

    FALSE = 0
    TRUE = 1

    def __init__(self, variables: Sequence[str] = ()):
        # Node table: index -> (level, low, high).  Entries 0 and 1 are
        # placeholders for the terminals and never dereferenced.
        self._nodes: list[tuple[int, int, int]] = [(-1, -1, -1), (-1, -1, -1)]
        self._unique: dict[tuple[int, int, int], int] = {}
        self._ite_cache: dict[tuple[int, int, int], int] = {}
        self._neg_cache: dict[int, int] = {}
        self._quant_cache: dict[tuple, int] = {}
        self._rename_cache: dict[tuple, int] = {}
        self._restrict_cache: dict[tuple, int] = {}
        self._var_names: list[str] = []
        self._var_levels: dict[str, int] = {}
        # Counters behind ``statistics()``.
        self._ite_calls = 0
        self._ite_hits = 0
        self._neg_calls = 0
        self._neg_hits = 0
        self._rename_fast = 0
        self._peak_nodes = 0
        self._gc_runs = 0
        self._reclaimed = 0
        # GC participants: (roots provider, remap listener) pairs — see
        # ``add_gc_hook``.  ``generation`` increments on every collection so
        # holders of raw node ids can detect staleness.
        self._gc_hooks: list[tuple[Callable[[], Iterable[int]], Callable[[dict[int, int]], None]]] = []
        self.generation = 0
        # Cooperative resource governor (``set_governor``); ``None`` keeps the
        # kernels on their ungoverned fast path (one ``None`` check per frame).
        self._governor = None
        for name in variables:
            self.add_variable(name)

    # -- variables -----------------------------------------------------------

    def add_variable(self, name: str) -> int:
        """Append a variable at the end of the order; returns its level."""
        if name in self._var_levels:
            raise ValueError(f"variable {name!r} already declared")
        level = len(self._var_names)
        self._var_names.append(name)
        self._var_levels[name] = level
        return level

    @property
    def variable_names(self) -> tuple[str, ...]:
        return tuple(self._var_names)

    def level_of(self, name: str) -> int:
        return self._var_levels[name]

    def name_of(self, level: int) -> str:
        return self._var_names[level]

    def var_count(self) -> int:
        return len(self._var_names)

    def node_count(self) -> int:
        """Total number of live nodes in the table (terminals excluded)."""
        return len(self._nodes) - 2

    # -- statistics and cache management --------------------------------------

    def statistics(self) -> BDDStatistics:
        """A snapshot of the node-table and operation-cache counters."""
        return BDDStatistics(
            var_count=len(self._var_names),
            node_count=self.node_count(),
            peak_node_count=max(self._peak_nodes, self.node_count()),
            ite_calls=self._ite_calls,
            ite_cache_hits=self._ite_hits,
            neg_calls=self._neg_calls,
            neg_cache_hits=self._neg_hits,
            rename_fast_paths=self._rename_fast,
            cache_entries=(
                len(self._ite_cache)
                + len(self._neg_cache)
                + len(self._quant_cache)
                + len(self._rename_cache)
                + len(self._restrict_cache)
            ),
            gc_runs=self._gc_runs,
            nodes_reclaimed=self._reclaimed,
        )

    def clear_caches(self) -> None:
        """Drop every operation cache (the node table is untouched).

        Useful between unrelated workloads sharing one manager: results stay
        valid (node ids are stable), only memoisation is lost.
        """
        self._ite_cache.clear()
        self._neg_cache.clear()
        self._quant_cache.clear()
        self._rename_cache.clear()
        self._restrict_cache.clear()

    def set_governor(self, governor: object | None) -> None:
        """Attach/detach a cooperative resource governor (see the protocol).

        While attached, every ``ite``/``exists``/``and_exists`` kernel frame
        calls ``governor.tick()``, which may raise ``BudgetExceeded``.  A
        raise mid-operation leaves the node table and caches consistent
        (partial results are hash-consed nodes like any other), so the
        manager stays usable afterwards.
        """
        self._governor = governor

    def add_gc_hook(
        self,
        roots: Callable[[], Iterable[int]],
        remap: Callable[[dict[int, int]], None],
    ) -> None:
        """Register a GC participant holding raw node ids across collections.

        ``roots()`` is called at the start of every :meth:`garbage_collect`
        and must yield every node id the participant needs to survive;
        ``remap(relocations)`` is called after the table has been rebuilt and
        must translate (or drop) the participant's stored ids.  This is how
        long-lived external structures — the partition and product caches of
        :class:`repro.solver.relations.TransitionRelation`, the status cache
        of :class:`repro.solver.relations.LeanEncoding` — stay valid when a
        collection runs *during* a solve instead of between workloads.
        """
        self._gc_hooks.append((roots, remap))

    def garbage_collect(self, roots: Iterable[int] = ()) -> dict[int, int]:
        """Rebuild the node table keeping only nodes reachable from ``roots``.

        The roots of every registered GC hook (see :meth:`add_gc_hook`) are
        collected as well, and hooks are given the relocation map afterwards
        so their stored ids stay valid.

        Returns the relocation map ``old id -> new id`` for every surviving
        node (terminals map to themselves).  **All other node ids become
        invalid**, as do outstanding :class:`BDD` wrappers not covered by the
        map, and every operation cache is cleared; callers must translate the
        ids they intend to keep.  Any *external* structure that memoises node
        ids and is not registered through :meth:`add_gc_hook` must be
        discarded by the caller.
        """
        reachable: set[int] = set()
        stack = [root for root in roots]
        for provider, _remap in self._gc_hooks:
            stack.extend(provider())
        while stack:
            current = stack.pop()
            if current <= 1 or current in reachable:
                continue
            reachable.add(current)
            _level, low, high = self._nodes[current]
            stack.append(low)
            stack.append(high)

        old_nodes = self._nodes
        old_count = self.node_count()
        remap = {self.FALSE: self.FALSE, self.TRUE: self.TRUE}
        new_nodes: list[tuple[int, int, int]] = [(-1, -1, -1), (-1, -1, -1)]
        new_unique: dict[tuple[int, int, int], int] = {}
        # Children always precede parents in the table, so one ascending pass
        # can relocate bottom-up.
        for index in range(2, len(old_nodes)):
            if index not in reachable:
                continue
            level, low, high = old_nodes[index]
            triple = (level, remap[low], remap[high])
            new_index = len(new_nodes)
            new_nodes.append(triple)
            new_unique[triple] = new_index
            remap[index] = new_index

        self._nodes = new_nodes
        self._unique = new_unique
        self.clear_caches()
        self._gc_runs += 1
        self._reclaimed += old_count - self.node_count()
        self.generation += 1
        for _provider, remap_listener in self._gc_hooks:
            remap_listener(remap)
        return remap

    def translate(self, remap: Mapping[int, int], node: int) -> int:
        """Translate a node id through a GC relocation map, asserting validity.

        Raises ``KeyError`` on a stale id (a node that was reclaimed although
        a holder still references it) — the assert-and-clear contract of GC
        hooks: surviving entries are translated, anything else must have been
        dropped by its holder.
        """
        if node <= 1:
            return node
        return remap[node]

    # -- raw node constructors ------------------------------------------------

    def _mk(self, level: int, low: int, high: int) -> int:
        if low == high:
            return low
        key = (level, low, high)
        found = self._unique.get(key)
        if found is not None:
            return found
        index = len(self._nodes)
        self._nodes.append(key)
        self._unique[key] = index
        if index - 1 > self._peak_nodes:
            self._peak_nodes = index - 1
        return index

    def var_node(self, name: str) -> int:
        """Node id of the literal ``name``."""
        return self._mk(self._var_levels[name], self.FALSE, self.TRUE)

    def nvar_node(self, name: str) -> int:
        """Node id of the literal ``¬name``."""
        return self._mk(self._var_levels[name], self.TRUE, self.FALSE)

    def _level(self, node: int) -> int:
        if node <= 1:
            return len(self._var_names)  # terminals sit below every variable
        return self._nodes[node][0]

    # -- core operations -------------------------------------------------------

    def _ite_shortcut(self, cond: int, then: int, other: int) -> int | None:
        """Terminal cases of ITE, or ``None`` when real work remains."""
        if cond == self.TRUE:
            return then
        if cond == self.FALSE:
            return other
        if then == other:
            return then
        if then == self.TRUE and other == self.FALSE:
            return cond
        if then == self.FALSE and other == self.TRUE:
            return self.neg(cond)
        return None

    @staticmethod
    def _ite_key(cond: int, then: int, other: int) -> tuple[int, int, int]:
        """Canonical computed-table key for a non-terminal ITE triple.

        The two commutative shapes are normalised so the smaller operand id
        comes first: ``ite(f, 1, h) = f ∨ h = ite(h, 1, f)`` and
        ``ite(f, g, 0) = f ∧ g = ite(g, f, 0)``.  Conjunction and disjunction
        issued with swapped operands therefore share one cache entry.
        """
        if then == BDDManager.TRUE and other > cond:
            return (other, BDDManager.TRUE, cond)
        if other == BDDManager.FALSE and then > cond:
            return (then, cond, BDDManager.FALSE)
        return (cond, then, other)

    def ite(self, cond: int, then: int, other: int) -> int:
        """If-then-else ``(cond ∧ then) ∨ (¬cond ∧ other)``, iteratively.

        The classical recursive cofactor expansion is run on an explicit
        two-phase stack (``CALL`` frames expand a triple, ``BUILD`` frames pop
        the two child results and hash-cons the node), so deeply nested
        formulas never hit the Python recursion limit and every intermediate
        triple goes through the canonical computed table.
        """
        CALL, BUILD = 0, 1
        tasks: list[tuple] = [(CALL, cond, then, other)]
        values: list[int] = []
        nodes = self._nodes
        terminal_level = len(self._var_names)
        governor = self._governor
        while tasks:
            task = tasks.pop()
            if task[0] == CALL:
                _tag, f, g, h = task
                self._ite_calls += 1
                if governor is not None:
                    governor.tick()
                # Redundant-argument simplifications: ite(f, f, h) = ite(f, 1, h)
                # and ite(f, g, f) = ite(f, g, 0).
                if g == f:
                    g = self.TRUE
                if h == f:
                    h = self.FALSE
                shortcut = self._ite_shortcut(f, g, h)
                if shortcut is not None:
                    values.append(shortcut)
                    continue
                key = self._ite_key(f, g, h)
                cached = self._ite_cache.get(key)
                if cached is not None:
                    self._ite_hits += 1
                    values.append(cached)
                    continue
                f, g, h = key
                f_level = nodes[f][0] if f > 1 else terminal_level
                g_level = nodes[g][0] if g > 1 else terminal_level
                h_level = nodes[h][0] if h > 1 else terminal_level
                level = min(f_level, g_level, h_level)
                if f_level == level:
                    _l, f_low, f_high = nodes[f]
                else:
                    f_low = f_high = f
                if g_level == level:
                    _l, g_low, g_high = nodes[g]
                else:
                    g_low = g_high = g
                if h_level == level:
                    _l, h_low, h_high = nodes[h]
                else:
                    h_low = h_high = h
                tasks.append((BUILD, level, key))
                tasks.append((CALL, f_high, g_high, h_high))
                tasks.append((CALL, f_low, g_low, h_low))
            else:
                _tag, level, key = task
                high = values.pop()
                low = values.pop()
                result = self._mk(level, low, high)
                self._ite_cache[key] = result
                values.append(result)
        return values[0]

    def neg(self, node: int) -> int:
        """Negation through a dedicated two-way complement cache.

        The cache records ``f -> ¬f`` in both directions, so double negation
        and the extremely common ``¬`` of an already-negated function are O(1).
        The traversal is a bottom-up structural pass (no ITE involved).
        """
        self._neg_calls += 1
        if node <= 1:
            return node ^ 1
        cache = self._neg_cache
        cached = cache.get(node)
        if cached is not None:
            self._neg_hits += 1
            return cached
        nodes = self._nodes
        stack = [node]
        while stack:
            current = stack[-1]
            if current in cache:
                stack.pop()
                continue
            _level, low, high = nodes[current]
            missing = [
                child for child in (high, low) if child > 1 and child not in cache
            ]
            if missing:
                stack.extend(missing)
                continue
            stack.pop()
            neg_low = low ^ 1 if low <= 1 else cache[low]
            neg_high = high ^ 1 if high <= 1 else cache[high]
            result = self._mk(_level, neg_low, neg_high)
            cache[current] = result
            cache[result] = current
        return cache[node]

    def conj(self, a: int, b: int) -> int:
        return self.ite(a, b, self.FALSE)

    def disj(self, a: int, b: int) -> int:
        return self.ite(a, self.TRUE, b)

    def xor(self, a: int, b: int) -> int:
        return self.ite(a, self.neg(b), b)

    def iff(self, a: int, b: int) -> int:
        return self.ite(a, b, self.neg(b))

    def implies(self, a: int, b: int) -> int:
        return self.ite(a, b, self.TRUE)

    def conj_all(self, nodes: Iterable[int]) -> int:
        result = self.TRUE
        for node in nodes:
            result = self.conj(result, node)
            if result == self.FALSE:
                return result
        return result

    def disj_all(self, nodes: Iterable[int]) -> int:
        result = self.FALSE
        for node in nodes:
            result = self.disj(result, node)
            if result == self.TRUE:
                return result
        return result

    # -- quantification --------------------------------------------------------

    def exists(self, node: int, names: Iterable[str]) -> int:
        """Existential quantification over the given variables."""
        levels = frozenset(self._var_levels[name] for name in names)
        if not levels:
            return node
        return self._exists(node, levels, cache_tag=("exists", levels))

    def _exists(self, node: int, levels: frozenset[int], cache_tag: tuple) -> int:
        if node <= 1:
            return node
        if self._governor is not None:
            self._governor.tick()
        level, low, high = self._nodes[node]
        if level > max(levels):
            return node
        key = (cache_tag, node)
        cached = self._quant_cache.get(key)
        if cached is not None:
            return cached
        low_result = self._exists(low, levels, cache_tag)
        if level in levels:
            # ∃v . f = f|v=0 ∨ f|v=1 — already ⊤ once either cofactor is.
            if low_result == self.TRUE:
                result = self.TRUE
            else:
                result = self.disj(low_result, self._exists(high, levels, cache_tag))
        else:
            result = self._mk(level, low_result, self._exists(high, levels, cache_tag))
        self._quant_cache[key] = result
        return result

    def forall(self, node: int, names: Iterable[str]) -> int:
        """Universal quantification over the given variables."""
        return self.neg(self.exists(self.neg(node), names))

    def and_exists(
        self,
        a: int,
        b: int,
        names: Iterable[str],
        cache: dict[tuple[int, int], int] | None = None,
    ) -> int:
        """The relational product ``∃ names . a ∧ b`` computed in one pass.

        This is the operation at the heart of the conjunctive-partitioning
        optimisation of Section 7.3: conjoining a partition of the transition
        relation with the current frontier and quantifying variables out
        without ever building the full conjunction.

        ``cache`` may be a caller-owned memo dictionary, persisted across
        calls that share the same quantified variable set: the frontier
        fixpoint pushes monotonically growing sets through fixed relation
        blocks, so later products recurse into subproblems earlier products
        already solved.  The caller is responsible for clearing the cache
        when node ids are invalidated (garbage collection).
        """
        levels = frozenset(self._var_levels[name] for name in names)
        if not levels:
            return self.conj(a, b)
        return self._and_exists(a, b, levels, cache if cache is not None else {})

    def _and_exists(
        self, a: int, b: int, levels: frozenset[int], cache: dict[tuple[int, int], int]
    ) -> int:
        """Recursive core of :meth:`and_exists`.

        Recursion depth is bounded by the variable count (once per level), so
        the C stack is safe; an algebraic short-circuit prunes whole
        branches: when the split level is quantified, ``∃v . f = f|₀ ∨ f|₁``
        is already ``⊤`` once the low branch is — the high branch is never
        computed.
        """
        FALSE, TRUE = self.FALSE, self.TRUE
        if a == FALSE or b == FALSE:
            return FALSE
        if a == TRUE and b == TRUE:
            return TRUE
        if self._governor is not None:
            self._governor.tick()
        if a == TRUE or b == TRUE:
            node = b if a == TRUE else a
            return self._exists(node, levels, cache_tag=("exists", levels))
        if a > b:
            a, b = b, a
        key = (a, b)
        cached = cache.get(key)
        if cached is not None:
            return cached
        nodes = self._nodes
        a_level, a_low, a_high = nodes[a]
        b_level, b_low, b_high = nodes[b]
        if a_level < b_level:
            level = a_level
            b_low = b_high = b
        elif b_level < a_level:
            level = b_level
            a_low = a_high = a
        else:
            level = a_level
        quantified = level in levels
        low = self._and_exists(a_low, b_low, levels, cache)
        if quantified and low == TRUE:
            result = TRUE
        else:
            high = self._and_exists(a_high, b_high, levels, cache)
            if quantified:
                result = self.disj(low, high)
            elif low == high:
                result = low
            else:
                result = self._mk(level, low, high)
        cache[key] = result
        return result

    def _cofactors(self, node: int, level: int) -> tuple[int, int]:
        if node <= 1 or self._nodes[node][0] != level:
            return node, node
        _lvl, low, high = self._nodes[node]
        return low, high

    # -- substitution / renaming ----------------------------------------------

    def rename(self, node: int, mapping: Mapping[str, str]) -> int:
        """Rename variables according to ``mapping`` (old name -> new name).

        When the mapping preserves the relative order of the variables that
        actually occur in ``node`` (as the solver's interleaved x/y vectors
        do), the result is built by a linear structural pass.  Otherwise the
        general (and much slower) composition with fresh literals through
        ``ite`` is used, which is correct for any mapping.  Results are
        memoised per ``(node, mapping)``.
        """
        if node <= 1 or not mapping:
            return node
        items = tuple(sorted(mapping.items()))
        memo_key = (node, items)
        memoised = self._rename_cache.get(memo_key)
        if memoised is not None:
            return memoised
        level_map = {
            self._var_levels[old]: self._var_levels[new] for old, new in mapping.items()
        }
        support = self._support_levels(node)
        images = [level_map.get(level, level) for level in sorted(support)]
        monotone = all(a < b for a, b in zip(images, images[1:]))
        if monotone:
            self._rename_fast += 1
            result = self._rename_structural(node, level_map)
        else:
            result = self._rename_general(node, level_map)
        self._rename_cache[memo_key] = result
        return result

    def _support_levels(self, node: int) -> set[int]:
        seen: set[int] = set()
        levels: set[int] = set()
        stack = [node]
        while stack:
            current = stack.pop()
            if current <= 1 or current in seen:
                continue
            seen.add(current)
            level, low, high = self._nodes[current]
            levels.add(level)
            stack.append(low)
            stack.append(high)
        return levels

    def _rename_structural(self, node: int, level_map: Mapping[int, int]) -> int:
        """Order-preserving rename: rebuild bottom-up, relabelling levels."""
        cache: dict[int, int] = {}
        nodes = self._nodes
        stack = [node]
        while stack:
            current = stack[-1]
            if current <= 1 or current in cache:
                stack.pop()
                continue
            level, low, high = nodes[current]
            missing = [c for c in (high, low) if c > 1 and c not in cache]
            if missing:
                stack.extend(missing)
                continue
            stack.pop()
            new_low = low if low <= 1 else cache[low]
            new_high = high if high <= 1 else cache[high]
            cache[current] = self._mk(level_map.get(level, level), new_low, new_high)
        return node if node <= 1 else cache[node]

    def _rename_general(self, node: int, level_map: Mapping[int, int]) -> int:
        cache: dict[int, int] = {}

        def go(current: int) -> int:
            if current <= 1:
                return current
            cached = cache.get(current)
            if cached is not None:
                return cached
            level, low, high = self._nodes[current]
            new_level = level_map.get(level, level)
            literal = self._mk(new_level, self.FALSE, self.TRUE)
            result = self.ite(literal, go(high), go(low))
            cache[current] = result
            return result

        return go(node)

    def restrict(self, node: int, assignment: Mapping[str, bool]) -> int:
        """Cofactor with respect to a partial assignment.

        ``restrict(f, {v: b, ...})`` is ``f`` with each variable ``v`` fixed
        to ``b`` — the generalised cofactor the relational layer uses to
        specialise a relation to a concrete parent type.  Results are memoised
        per ``(node, assignment)`` across calls.
        """
        if node <= 1 or not assignment:
            return node
        items = tuple(sorted(assignment.items()))
        memo_key = (node, items)
        memoised = self._restrict_cache.get(memo_key)
        if memoised is not None:
            return memoised
        values = {self._var_levels[name]: value for name, value in assignment.items()}
        cache: dict[int, int] = {}

        def go(current: int) -> int:
            if current <= 1:
                return current
            cached = cache.get(current)
            if cached is not None:
                return cached
            level, low, high = self._nodes[current]
            if level in values:
                result = go(high) if values[level] else go(low)
            else:
                result = self._mk(level, go(low), go(high))
            cache[current] = result
            return result

        result = go(node)
        self._restrict_cache[memo_key] = result
        return result

    def cofactor(self, node: int, name: str, value: bool) -> int:
        """Single-variable cofactor ``f|_{name=value}`` (see :meth:`restrict`)."""
        return self.restrict(node, {name: value})

    # -- inspection -------------------------------------------------------------

    def evaluate(self, node: int, assignment: Mapping[str, bool]) -> bool:
        """Evaluate the function under a total assignment of its support."""
        current = node
        while current > 1:
            level, low, high = self._nodes[current]
            current = high if assignment.get(self._var_names[level], False) else low
        return current == self.TRUE

    def support(self, node: int) -> set[str]:
        """Names of the variables the function actually depends on."""
        return {self._var_names[level] for level in self._support_levels(node)}

    def dag_size(self, node: int, limit: int | None = None) -> int:
        """Number of internal nodes reachable from ``node``.

        With ``limit`` set, the walk stops as soon as more than ``limit``
        nodes have been seen and returns ``limit + 1`` — for cheap "is this
        function bigger than X" checks on potentially huge functions.
        """
        seen: set[int] = set()
        stack = [node]
        while stack:
            current = stack.pop()
            if current <= 1 or current in seen:
                continue
            seen.add(current)
            if limit is not None and len(seen) > limit:
                return limit + 1
            _level, low, high = self._nodes[current]
            stack.append(low)
            stack.append(high)
        return len(seen)

    def pick_assignment(self, node: int) -> dict[str, bool] | None:
        """One satisfying assignment (unmentioned variables default to False)."""
        if node == self.FALSE:
            return None
        assignment: dict[str, bool] = {}
        current = node
        while current > 1:
            level, low, high = self._nodes[current]
            name = self._var_names[level]
            if low != self.FALSE:
                assignment[name] = False
                current = low
            else:
                assignment[name] = True
                current = high
        return assignment

    def count_assignments(self, node: int, over: Sequence[str] | None = None) -> int:
        """Number of satisfying assignments over the given variables.

        ``over`` defaults to every declared variable.
        """
        names = list(over) if over is not None else list(self._var_names)
        levels = sorted(self._var_levels[name] for name in names)
        position = {level: i for i, level in enumerate(levels)}
        cache: dict[int, int] = {}

        def count(current: int) -> int:
            # Result is the count over variables strictly below the current
            # node's level within `levels`; scaled by the caller.
            if current == self.FALSE:
                return 0
            if current == self.TRUE:
                return 1
            cached = cache.get(current)
            if cached is None:
                level, low, high = self._nodes[current]
                if level not in position:
                    raise ValueError(
                        f"node depends on variable {self._var_names[level]!r} "
                        "not included in the count"
                    )
                cached = count(low) * _gap(level, low) + count(high) * _gap(level, high)
                cache[current] = cached
            return cached

        def _gap(level: int, child: int) -> int:
            # Number of skipped decision variables between `level` and `child`.
            child_level = self._level(child)
            upper = position[level]
            lower = (
                len(levels)
                if child <= 1
                else position.get(child_level, len(levels))
            )
            return 2 ** (lower - upper - 1)

        top = node
        top_level = self._level(top)
        if top <= 1:
            full = 2 ** len(levels)
            return full if top == self.TRUE else 0
        leading = position.get(top_level, 0)
        return count(top) * (2 ** leading)

    def iter_assignments(self, node: int, over: Sequence[str]) -> Iterator[dict[str, bool]]:
        """Iterate every satisfying assignment over exactly the given variables."""
        names = list(over)

        def go(current: int, index: int, partial: dict[str, bool]) -> Iterator[dict[str, bool]]:
            if current == self.FALSE:
                return
            if index == len(names):
                if current == self.TRUE:
                    yield dict(partial)
                return
            name = names[index]
            level = self._var_levels[name]
            current_level = self._level(current)
            if current_level == level:
                _lvl, low, high = self._nodes[current]
                partial[name] = False
                yield from go(low, index + 1, partial)
                partial[name] = True
                yield from go(high, index + 1, partial)
                del partial[name]
            else:
                partial[name] = False
                yield from go(current, index + 1, partial)
                partial[name] = True
                yield from go(current, index + 1, partial)
                del partial[name]

        yield from go(node, 0, {})

    # -- wrapper construction ---------------------------------------------------

    def false(self) -> "BDD":
        return BDD(self, self.FALSE)

    def true(self) -> "BDD":
        return BDD(self, self.TRUE)

    def variable(self, name: str) -> "BDD":
        return BDD(self, self.var_node(name))

    def wrap(self, node: int) -> "BDD":
        return BDD(self, node)


class BDD:
    """A boolean function: a node id tied to its manager, with operators."""

    __slots__ = ("manager", "node")

    def __init__(self, manager: BDDManager, node: int):
        self.manager = manager
        self.node = node

    # -- boolean structure ------------------------------------------------------

    def __invert__(self) -> "BDD":
        return BDD(self.manager, self.manager.neg(self.node))

    def __and__(self, other: "BDD") -> "BDD":
        return BDD(self.manager, self.manager.conj(self.node, other.node))

    def __or__(self, other: "BDD") -> "BDD":
        return BDD(self.manager, self.manager.disj(self.node, other.node))

    def __xor__(self, other: "BDD") -> "BDD":
        return BDD(self.manager, self.manager.xor(self.node, other.node))

    def iff(self, other: "BDD") -> "BDD":
        return BDD(self.manager, self.manager.iff(self.node, other.node))

    def implies(self, other: "BDD") -> "BDD":
        return BDD(self.manager, self.manager.implies(self.node, other.node))

    def ite(self, then: "BDD", other: "BDD") -> "BDD":
        return BDD(self.manager, self.manager.ite(self.node, then.node, other.node))

    # -- quantification ----------------------------------------------------------

    def exists(self, names: Iterable[str]) -> "BDD":
        return BDD(self.manager, self.manager.exists(self.node, names))

    def forall(self, names: Iterable[str]) -> "BDD":
        return BDD(self.manager, self.manager.forall(self.node, names))

    def and_exists(
        self,
        other: "BDD",
        names: Iterable[str],
        cache: dict[tuple[int, int], int] | None = None,
    ) -> "BDD":
        return BDD(
            self.manager, self.manager.and_exists(self.node, other.node, names, cache)
        )

    def rename(self, mapping: Mapping[str, str]) -> "BDD":
        return BDD(self.manager, self.manager.rename(self.node, mapping))

    def restrict(self, assignment: Mapping[str, bool]) -> "BDD":
        return BDD(self.manager, self.manager.restrict(self.node, assignment))

    def cofactor(self, name: str, value: bool) -> "BDD":
        return BDD(self.manager, self.manager.cofactor(self.node, name, value))

    # -- inspection ---------------------------------------------------------------

    @property
    def is_false(self) -> bool:
        # Compare against the owning manager's constant: terminal ids are
        # backend-specific (the arena backend's complement edges reverse them).
        return self.node == self.manager.FALSE

    @property
    def is_true(self) -> bool:
        return self.node == self.manager.TRUE

    def evaluate(self, assignment: Mapping[str, bool]) -> bool:
        return self.manager.evaluate(self.node, assignment)

    def support(self) -> set[str]:
        return self.manager.support(self.node)

    def dag_size(self, limit: int | None = None) -> int:
        return self.manager.dag_size(self.node, limit)

    def pick_assignment(self) -> dict[str, bool] | None:
        return self.manager.pick_assignment(self.node)

    def count_assignments(self, over: Sequence[str] | None = None) -> int:
        return self.manager.count_assignments(self.node, over)

    def iter_assignments(self, over: Sequence[str]) -> Iterator[dict[str, bool]]:
        return self.manager.iter_assignments(self.node, over)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, BDD):
            return NotImplemented
        return self.manager is other.manager and self.node == other.node

    def __hash__(self) -> int:
        return hash((id(self.manager), self.node))

    def __bool__(self) -> bool:
        raise TypeError(
            "a BDD has no implicit truth value; use .is_true / .is_false "
            "or compare with == explicitly"
        )

    def __repr__(self) -> str:
        return f"<BDD node={self.node} size={self.dag_size()}>"
