"""Translation of binary regular tree types into Lµ (Section 5.2, Figure 14).

The translation is::

    [[∅]] = [[ε]]          = ⊥
    [[T₁ ∪ T₂]]            = [[T₁]] ∨ [[T₂]]
    [[σ(X₁, X₂)]]          = σ ∧ succ₁(X₁) ∧ succ₂(X₂)
    [[let Xᵢ.Tᵢ in T]]     = µ Xᵢ = [[Tᵢ]] in [[T]]

with the successor formulas handling the type frontier::

    succ_α(X) = ¬⟨α⟩⊤               if X is bound to ε
              = ¬⟨α⟩⊤ ∨ ⟨α⟩X        if X is nullable
              = ⟨α⟩X                 otherwise

Only downward modalities occur: a type formula describes the subtree allowed
at a node and leaves its context unconstrained, which is exactly what makes it
composable with the XPath translation in the decision problems of Section 8.

**Attribute constraints** (the thesis extension).  When a DTD carries
``<!ATTLIST ...>`` declarations, :func:`compile_dtd` can additionally conjoin
per-element attribute constraints.  Because one bit per attribute name would
blow the Lean up on real DTDs (XHTML declares dozens of names), the
constraints are *projected onto a finite attribute alphabet* — normally the
attribute names the surrounding problem's XPath expressions mention.  The
projection is sound and complete for presence-based queries: for every
attribute ``a`` in the alphabet and every element ``σ``,

* ``@a`` is conjoined when ``a`` is ``#REQUIRED`` on ``σ``,
* ``¬@a`` is conjoined when ``σ`` does not declare ``a`` at all
  (valid documents cannot carry undeclared attributes),
* nothing is conjoined otherwise (the attribute is optional).

The constrained elements are the declared ones *plus* every element a
content model references without declaring: such elements are valid (as
empty nodes) but declare no attributes, so every alphabet attribute is
pinned to ``¬@a`` on them.

When the alphabet contains the "other attribute" marker (because a query used
``@*``), the marker bit is additionally pinned down wherever the DTD decides
it: an element with a ``#REQUIRED`` attribute outside the named alphabet gets
``@other`` (it always carries an attribute only the marker can account for),
and an element whose declared attributes all lie inside the alphabet gets
``¬@other`` (it has no way to carry an attribute the alphabet cannot name).
"""

from __future__ import annotations

from typing import Iterable, Mapping

from repro.logic import syntax as sx
from repro.logic.closure import OTHER_ATTRIBUTE, OTHER_LABEL
from repro.xmltypes.ast import Alternative, BinaryTypeGrammar, LabelAlternative
from repro.xmltypes.binarize import binarize_dtd
from repro.xmltypes.content import symbols as content_symbols
from repro.xmltypes.dtd import DTD


def project_grammar(
    grammar: BinaryTypeGrammar,
    labels: Iterable[str],
    protected: Iterable[str] = (),
) -> BinaryTypeGrammar:
    """Project a grammar onto the element alphabet a problem observes.

    Labels outside ``labels`` (and outside ``protected`` — e.g. elements
    carrying attribute constraints the problem can test) collapse onto the
    logic's "any other label" proposition, and language-equivalent variables
    are then merged.  The projection is a pure label homomorphism followed by
    a congruence quotient, so it is **semantics-preserving for any problem
    whose node tests stay inside** ``labels``: a query that never names a
    collapsed element cannot distinguish it from any other collapsed element,
    and the grammar's structure (content models, recursion, nullability) is
    kept intact.  See :func:`repro.analysis.problems.label_projection` for
    when a whole decision problem may apply it.
    """
    keep = set(labels) | set(protected)
    projected = grammar.relabelled(keep, OTHER_LABEL)
    if projected is grammar:
        return grammar
    return projected.minimized()


def _variable_formula_name(grammar_name: str, variable: str) -> str:
    # Keep names readable in printed formulas and unique across grammars.
    return f"{grammar_name}.{variable}"


def _successor(
    grammar: BinaryTypeGrammar, program: int, variable: str, var_name: str
) -> sx.Formula:
    if grammar.is_epsilon_only(variable):
        return sx.no_dia(program)
    if grammar.is_empty(variable):
        # An empty continuation can never be satisfied: the whole alternative
        # is contradictory.
        return sx.FALSE
    reference = sx.var(var_name)
    if grammar.is_nullable(variable):
        return sx.mk_or(sx.no_dia(program), sx.dia(program, reference))
    return sx.dia(program, reference)


def _attribute_constraint(
    attribute_constraints: Mapping[str, sx.Formula] | None, label: str
) -> sx.Formula:
    if attribute_constraints is None:
        return sx.TRUE
    return attribute_constraints.get(label, sx.TRUE)


def _alternative_formula(
    grammar: BinaryTypeGrammar,
    alternative: Alternative,
    names: dict[str, str],
    attribute_constraints: Mapping[str, sx.Formula] | None = None,
) -> sx.Formula:
    if not isinstance(alternative, LabelAlternative):
        # The ε alternative contributes no formula: a node cannot be the empty
        # tree.  Emptiness is expressed by the parent's succ_α(¬⟨α⟩⊤) clause.
        return sx.FALSE
    constraint = _attribute_constraint(attribute_constraints, alternative.label)
    return sx.big_and(
        (
            sx.prop(alternative.label),
            constraint,
            _successor(grammar, 1, alternative.first, names.get(alternative.first, alternative.first)),
            _successor(grammar, 2, alternative.next, names.get(alternative.next, alternative.next)),
        )
    )


def compile_grammar(
    grammar: BinaryTypeGrammar,
    constrain_siblings: bool = True,
    attribute_constraints: Mapping[str, sx.Formula] | None = None,
) -> sx.Formula:
    """Translate a binary type grammar into a closed Lµ formula.

    The resulting formula holds at a node exactly when the subtree rooted
    there (together with its following siblings, per the binary encoding)
    belongs to the start variable's language.

    With ``constrain_siblings=False`` the siblings of the node itself are left
    unconstrained (only its content is checked).  This corresponds to the
    paper's remark that a type compared against the *result* of an XPath
    expression should not fix where the root of the type is: selected nodes
    usually sit deep inside a document and do have following siblings.

    ``attribute_constraints`` optionally maps element labels to a formula
    conjoined at every node carrying that label (used by :func:`compile_dtd`
    for required/forbidden-attribute constraints).
    """
    reachable = grammar.reachable_variables()
    names = {
        variable: _variable_formula_name(grammar.name, variable)
        for variable in grammar.variables
    }

    definitions: list[tuple[str, sx.Formula]] = []
    for variable in grammar.variables:
        if variable not in reachable:
            continue
        if grammar.is_epsilon_only(variable) or grammar.is_empty(variable):
            # Never referenced through ⟨α⟩X (succ_α short-circuits them).
            continue
        body = sx.big_or(
            _alternative_formula(grammar, alternative, names, attribute_constraints)
            for alternative in grammar.alternatives(variable)
        )
        definitions.append((names[variable], body))

    def start_alternative(alternative: Alternative) -> sx.Formula:
        if constrain_siblings or not isinstance(alternative, LabelAlternative):
            return _alternative_formula(grammar, alternative, names, attribute_constraints)
        constraint = _attribute_constraint(attribute_constraints, alternative.label)
        return sx.big_and(
            (
                sx.prop(alternative.label),
                constraint,
                _successor(grammar, 1, alternative.first, names.get(alternative.first, alternative.first)),
            )
        )

    start_formula = sx.big_or(
        start_alternative(alternative)
        for alternative in grammar.alternatives(grammar.start)
    )
    if not definitions:
        return start_formula
    return sx.mu(tuple(definitions), start_formula)


def attribute_constraints(
    dtd: DTD, attributes: Iterable[str]
) -> dict[str, sx.Formula]:
    """Per-element attribute constraints projected onto ``attributes``.

    ``attributes`` is the finite attribute alphabet the surrounding problem
    observes (usually the names mentioned by its XPath expressions); it may
    contain :data:`~repro.logic.closure.OTHER_ATTRIBUTE` to account for the
    wildcard ``@*``.  See the module docstring for the projection rules.
    """
    alphabet = tuple(dict.fromkeys(attributes))
    named = [name for name in alphabet if name != OTHER_ATTRIBUTE]
    track_other = OTHER_ATTRIBUTE in alphabet
    constraints: dict[str, sx.Formula] = {}
    if not alphabet:
        return constraints
    # Referenced-but-undeclared elements are valid (empty) document nodes,
    # yet declare no attributes at all — they need the ¬@a constraints too,
    # or witnesses could decorate them with attributes no valid document
    # carries (membership.dtd_attribute_violations rejects exactly that).
    declared_names = dtd.element_names()
    referenced = set()
    for declaration in dtd.elements.values():
        referenced |= content_symbols(declaration.content)
    elements = tuple(declared_names) + tuple(
        sorted(referenced - set(declared_names))
    )
    for element in elements:
        declared = {decl.name for decl in dtd.attributes_of(element)}
        required = set(dtd.required_attributes(element))
        parts: list[sx.Formula] = []
        for name in named:
            if name in required:
                parts.append(sx.attr(name))
            elif name not in declared:
                parts.append(sx.nattr(name))
        if track_other:
            if required - set(named):
                # A required attribute without a bit of its own is always
                # present, so the "other attribute" bit must be on.
                parts.append(sx.attr(OTHER_ATTRIBUTE))
            elif declared <= set(named):
                # Every attribute the element may legally carry already has a
                # bit of its own, so the "other attribute" bit must stay off.
                parts.append(sx.nattr(OTHER_ATTRIBUTE))
        formula = sx.big_and(parts)
        if formula is not sx.TRUE:
            constraints[element] = formula
    return constraints


def compile_dtd(
    dtd: DTD,
    root: str | None = None,
    constrain_siblings: bool = True,
    attributes: Iterable[str] | None = None,
    labels: Iterable[str] | None = None,
) -> sx.Formula:
    """Translate a DTD (with designated root element) into a closed Lµ formula.

    ``attributes`` is the attribute alphabet to project the DTD's ATTLIST
    declarations onto (``None`` or empty: attributes are unconstrained, the
    attribute-free behaviour of the paper).

    ``labels`` is the element alphabet of the surrounding problem: when
    given, element names outside it collapse onto the "any other label"
    proposition before translation (:func:`project_grammar`), shrinking the
    Lean proportionally.  Elements with a non-trivial attribute constraint
    under the ``attributes`` alphabet are never collapsed — the problem can
    still distinguish them through their attributes.
    """
    grammar = binarize_dtd(dtd, root=root)
    constraints = (
        attribute_constraints(dtd, attributes) if attributes is not None else None
    )
    if labels is not None:
        grammar = project_grammar(
            grammar, labels, protected=constraints.keys() if constraints else ()
        )
    return compile_grammar(
        grammar,
        constrain_siblings=constrain_siblings,
        attribute_constraints=constraints or None,
    )
