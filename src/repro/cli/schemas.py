"""``repro schemas`` — list and inspect the bundled DTDs.

Without arguments, prints one line per registry entry (see
:func:`repro.xmltypes.library.schema_catalog`).  With a name, prints that
schema's details: root element, element names, and per-element required
attributes.  ``--json`` switches both forms to machine-readable output.
"""

from __future__ import annotations

import json
import sys

from repro.xmltypes.library import schema_catalog, schema_info


def run(args) -> int:
    if args.name:
        try:
            info = schema_info(args.name)
        except KeyError as exc:
            print(f"repro schemas: {exc.args[0]}", file=sys.stderr)
            return 2
        detail = info.as_dict(verbose=True)
        if args.json:
            print(json.dumps(detail, ensure_ascii=False, indent=2))
            return 0
        print(f"{detail['name']} — {detail['description']}")
        if detail["aliases"]:
            print(f"  aliases:    {', '.join(detail['aliases'])}")
        print(f"  file:       {detail['file']}")
        print(f"  root:       {detail['root']}")
        print(f"  elements:   {detail['elements']}: {', '.join(detail['element_names'])}")
        print(f"  attributes: {detail['attributes']} declared names")
        if detail["required_attributes"]:
            print("  required attributes:")
            for element, names in detail["required_attributes"].items():
                print(f"    {element}: {', '.join(names)}")
        return 0

    catalog = [info.as_dict() for info in schema_catalog()]
    if args.json:
        print(json.dumps(catalog, ensure_ascii=False, indent=2))
        return 0
    width = max(len(entry["name"]) for entry in catalog)
    for entry in catalog:
        names = "/".join([entry["name"], *entry["aliases"]])
        print(
            f"{names.ljust(width + 13)} root={entry['root']:<8} "
            f"elements={entry['elements']:<3} attributes={entry['attributes']:<3} "
            f"{entry['description']}"
        )
    return 0
