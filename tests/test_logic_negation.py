"""Tests for negation: De Morgan dualities, fixpoint duality, semantic correctness."""

import pytest
from hypothesis import given, strategies as st

from repro.logic import syntax as sx
from repro.logic.negation import NegationError, negate
from repro.logic.semantics import interpret
from repro.trees.focus import all_focuses
from repro.trees.unranked import parse_tree


def test_negate_atoms():
    assert negate(sx.TRUE) is sx.FALSE
    assert negate(sx.FALSE) is sx.TRUE
    assert negate(sx.prop("a")) is sx.nprop("a")
    assert negate(sx.nprop("a")) is sx.prop("a")
    assert negate(sx.START) is sx.NSTART
    assert negate(sx.NSTART) is sx.START


def test_negate_modalities():
    assert negate(sx.dia(1, sx.TRUE)) is sx.no_dia(1)
    assert negate(sx.no_dia(2)) is sx.dia(2, sx.TRUE)
    negated = negate(sx.dia(1, sx.prop("a")))
    assert negated is sx.mk_or(sx.no_dia(1), sx.dia(1, sx.nprop("a")))


def test_negate_connectives_are_de_morgan():
    a, b = sx.prop("a"), sx.prop("b")
    assert negate(a & b) is sx.mk_or(sx.nprop("a"), sx.nprop("b"))
    assert negate(a | b) is sx.mk_and(sx.nprop("a"), sx.nprop("b"))


def test_double_negation_on_modality_free_formulas_is_identity():
    formula = sx.mk_and(sx.prop("a"), sx.mk_or(sx.nprop("b"), sx.START))
    assert negate(negate(formula)) is formula


def test_double_negation_is_semantically_the_identity():
    formula = sx.mk_and(sx.prop("a"), sx.dia(1, sx.mk_or(sx.prop("b"), sx.START)))
    double = negate(negate(formula))
    universe = frozenset(all_focuses(parse_tree("<a!><b/><c><b/></c></a>")))
    assert interpret(double, universe) == interpret(formula, universe)


def test_negate_free_variable_is_rejected():
    with pytest.raises(NegationError):
        negate(sx.var("X"))


def test_negate_fixpoint_keeps_variables_unnegated():
    formula = sx.mu1(lambda x: sx.dia(1, x) | sx.prop("a"))
    negated = negate(formula)
    assert negated.is_fixpoint
    # The recursion variable still occurs positively in the dual definition.
    assert any(
        sub.kind == sx.KIND_VAR for sub in sx.iter_subformulas(negated.defs[0][1])
    )


# -- semantic correctness: ¬ϕ holds exactly where ϕ does not ------------------------------

_MARKED_DOCS = [
    "<a!><b/><c><d/></c></a>",
    "<a><b!/><b/></a>",
    "<x><y><z!/></y><y/></x>",
]

_FORMULAS = [
    sx.prop("b"),
    sx.START,
    sx.dia(1, sx.prop("b")),
    sx.no_dia(2),
    sx.mk_and(sx.dia(-1, sx.TRUE), sx.nprop("b")),
    sx.mu1(lambda x: sx.dia(1, x) | sx.prop("d")),          # some descendant-or-self is d
    sx.mu1(lambda x: sx.dia(-1, sx.START) | sx.dia(-2, x)),  # child of the marked node
]


@pytest.mark.parametrize("text", _MARKED_DOCS)
@pytest.mark.parametrize("formula", _FORMULAS)
def test_negation_is_semantic_complement(text, formula):
    universe = frozenset(all_focuses(parse_tree(text)))
    positive = interpret(formula, universe)
    negative = interpret(negate(formula), universe)
    assert positive | negative == universe
    assert positive & negative == frozenset()


# -- property-based: random boolean combinations over a fixed document ---------------------

_ATOMS = st.sampled_from(
    [sx.prop("a"), sx.prop("b"), sx.START, sx.dia(1, sx.TRUE), sx.no_dia(-1)]
)


def _formulas():
    return st.recursive(
        _ATOMS,
        lambda sub: st.one_of(
            st.builds(sx.mk_and, sub, sub),
            st.builds(sx.mk_or, sub, sub),
            st.builds(lambda inner: sx.dia(1, inner), sub),
            st.builds(lambda inner: sx.dia(-2, inner), sub),
        ),
        max_leaves=6,
    )


@given(_formulas())
def test_negation_complement_property(formula):
    universe = frozenset(all_focuses(parse_tree("<a!><b/><a><b/></a></a>")))
    positive = interpret(formula, universe)
    negative = interpret(negate(formula), universe)
    assert positive | negative == universe
    assert not (positive & negative)
