"""Tests of the cycle-freeness check against the paper's examples (Section 4)."""

import pytest

from repro.core.errors import CycleFreenessError
from repro.logic import syntax as sx
from repro.logic.cyclefree import assert_cycle_free, find_unbounded_cycle, is_cycle_free
from repro.xpath.compile import compile_xpath
from repro.xmltypes.compile import compile_dtd
from repro.xmltypes.library import smil_dtd, wikipedia_dtd


def test_formulas_without_fixpoints_are_cycle_free():
    assert is_cycle_free(sx.mk_and(sx.prop("a"), sx.dia(1, sx.dia(-1, sx.prop("b")))))


def test_paper_negative_example_mu_with_immediate_cycle():
    # µX.⟨1⟩(… ∨ ⟨1̄⟩X) is not cycle-free (Section 4): every unfolding adds a
    # ⟨1⟩⟨1̄⟩ modality cycle.  (The paper's disjunct is ⊤, which the smart
    # constructors would simplify away, so an atom is used instead.)
    formula = sx.mu1(lambda x: sx.dia(1, sx.prop("a") | sx.dia(-1, x)))
    assert not is_cycle_free(formula)


def test_paper_negative_example_strict_definition():
    # µX = ⟨1⟩⟨1̄⟩X in ⊤ "contains a cycle even though the variable on which
    # the cycle occurs never needs to be expanded".
    formula = sx.mu((("X", sx.dia(1, sx.dia(-1, sx.var("X")))),), sx.TRUE)
    assert not is_cycle_free(formula)


def test_paper_positive_example_with_mutual_recursion():
    # µX = ⟨1⟩(X ∨ Y), Y = ⟨1̄⟩(Y ∨ ⊤) in X is cycle-free: at most one
    # modality cycle per path.
    formula = sx.mu(
        (
            ("X", sx.dia(1, sx.var("X") | sx.var("Y"))),
            ("Y", sx.dia(-1, sx.var("Y") | sx.TRUE)),
        ),
        sx.var("X"),
    )
    assert is_cycle_free(formula)


def test_plain_recursion_formulas_are_cycle_free():
    assert is_cycle_free(sx.mu1(lambda x: sx.dia(1, x) | sx.prop("a")))
    assert is_cycle_free(sx.mu1(lambda x: sx.dia(-2, x) | sx.dia(-1, sx.START)))


def test_alternating_forward_backward_loop_is_rejected():
    # µX.⟨1̄⟩⟨2⟩⟨1⟩X pumps a ⟨1⟩⟨1̄⟩ cycle at every unfolding.
    formula = sx.mu1(lambda x: sx.dia(-1, sx.dia(2, sx.dia(1, x))))
    assert not is_cycle_free(formula)


def test_non_cycling_mixed_directions_are_accepted():
    # µX.⟨2̄⟩(⊤ ∨ ⟨1⟩X): repetition yields ⟨2̄⟩⟨1⟩⟨2̄⟩⟨1⟩… with no ⟨a⟩⟨ā⟩ pair.
    formula = sx.mu1(lambda x: sx.dia(-2, sx.TRUE | sx.dia(1, x)))
    assert is_cycle_free(formula)


def test_find_unbounded_cycle_returns_witness():
    formula = sx.mu1(lambda x: sx.dia(1, sx.dia(-1, x)))
    witness = find_unbounded_cycle(formula)
    assert witness is not None and len(witness) == 2


def test_assert_cycle_free_raises_on_bad_formula():
    formula = sx.mu1(lambda x: sx.dia(2, sx.dia(-2, x)))
    with pytest.raises(CycleFreenessError):
        assert_cycle_free(formula)


@pytest.mark.parametrize(
    "expression",
    [
        "child::a[child::b]",
        "descendant::a[ancestor::a]",
        "a/b//c/foll-sibling::d/e",
        "/a[.//b[c/*//d]/b[c//d]/b[c/d]]",
        "a/b[//c]/following::d/e",
        "preceding::d/e",
    ],
)
def test_xpath_translations_are_cycle_free(expression):
    # Proposition 5.1(2).
    assert is_cycle_free(compile_xpath(expression))


def test_type_translations_are_cycle_free():
    assert is_cycle_free(compile_dtd(wikipedia_dtd()))
    assert is_cycle_free(compile_dtd(smil_dtd()))
