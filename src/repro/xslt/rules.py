"""The audit rules: from a parsed stylesheet to one batch of decision problems.

The auditor is a *planner/interpreter* around
:meth:`repro.api.StaticAnalyzer.solve_many`:

1. **Compile** — parse every match pattern into its ``|`` alternatives and
   every body ``select``/``test`` expression, then compose each body
   expression with its static context (the template's match expression,
   folded through enclosing ``xsl:for-each`` selects).
2. **Plan** — one :class:`~repro.api.Query` per check, deduplicated, all
   under a single shared :class:`~repro.analysis.problems.Rooted` schema
   constraint so the analyzer's caches share every type translation.
3. **Solve** — exactly one ``solve_many`` call.
4. **Interpret** — map verdicts back to findings, applying suppression: a
   dead template silences its body and shadow findings, an empty enclosing
   ``xsl:for-each`` select or ``xsl:if``/``xsl:when`` test silences the
   findings nested under it (the enclosing finding already explains them).

Checks that syntax alone decides never reach the solver: coverage of an
element by a bare name/wildcard pattern is trivially true, and elements no
pattern could syntactically match are decided by DTD reachability
(:func:`repro.xmltypes.dtd.reachable_elements`) and aggregated into one
finding.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path

from repro.analysis.problems import Rooted
from repro.api import AnalysisOutcome, Query, StaticAnalyzer
from repro.core.errors import ParseError, SchemaLookupError
from repro.xmltypes.dtd import DTD, parse_dtd, reachable_elements
from repro.xmltypes.library import builtin_dtd
from repro.xpath import ast as xp
from repro.xpath.parser import parse_xpath_cached
from repro.xslt.parser import Stylesheet, Template, load_stylesheet
from repro.xslt.patterns import (
    ComposeError,
    _last_steps,
    compose_context,
    default_priority,
    match_expression,
    matches_exactly_element,
    may_match_element,
    outranks,
    parse_test,
    pattern_alternatives,
)
from repro.xslt.report import AuditReport, Finding


def audit_stylesheet(
    stylesheet: Stylesheet | str | Path,
    schema: object,
    analyzer: StaticAnalyzer | None = None,
    workers: int = 1,
    batch_fixpoint: str | None = None,
) -> AuditReport:
    """Audit a stylesheet against a schema; see the module docstring.

    ``schema`` is a built-in schema name, a path to a ``.dtd`` file, or a
    parsed :class:`~repro.xmltypes.dtd.DTD`.  ``analyzer`` defaults to a
    fresh :class:`~repro.api.StaticAnalyzer`; pass a configured one to reuse
    its caches (or a disk cache) across audits.

    ``batch_fixpoint`` opts the audit's one ``solve_many`` batch into
    merged-Lean solving (``"on"``/``"auto"``; ``None`` inherits the
    analyzer's mode).  An audit is the ideal customer: every query shares
    the schema's alphabet, so the whole batch typically collapses into one
    or two shared fixpoints while the findings stay identical.
    """
    if not isinstance(stylesheet, Stylesheet):
        stylesheet = load_stylesheet(stylesheet)
    dtd, schema_name = _resolve_schema(schema)
    if analyzer is None:
        analyzer = StaticAnalyzer()
    rooted = Rooted(dtd)
    plan = _Plan()
    findings: list[Finding] = []

    compiled = _compile_templates(stylesheet, findings)
    branches = [branch for entry in compiled for branch in entry.branches]
    for entry in compiled:
        entry.sat = plan.add(
            "dead-template", Query.satisfiability(entry.match_text, rooted)
        )
    _plan_shadows(compiled, branches, plan, rooted)
    _plan_bodies(compiled, plan, rooted, findings)
    coverage_plans = _plan_coverage(
        stylesheet, dtd, schema_name, branches, plan, rooted, findings
    )

    batch = analyzer.solve_many(
        plan.queries, workers=workers, batch_fixpoint=batch_fixpoint
    )
    outcomes = batch.outcomes

    # First pass: which templates are dead?  A dead template's own findings
    # collapse to the one dead-template error, and it is dropped from the
    # *displayed* shadowers of other templates (an unsatisfiable pattern
    # contributes nothing to the shadowing union, so this never changes a
    # verdict — only the provenance shown).
    dead = {
        id(entry.template)
        for entry in compiled
        if outcomes[entry.sat].definite and not outcomes[entry.sat].holds
    }
    for entry in compiled:
        _interpret_template(entry, outcomes, schema_name, findings, dead)
    for label, candidates, index in coverage_plans:
        _interpret_coverage(
            stylesheet, label, candidates, outcomes[index], schema_name, findings
        )

    return AuditReport(
        stylesheet=stylesheet.path,
        schema=schema_name,
        files=stylesheet.files,
        templates=len(stylesheet.templates),
        branches=len(branches),
        findings=findings,
        queries=plan.per_rule,
        solver_runs=batch.solver_runs,
        cache_hits=batch.cache_hits,
        total_seconds=batch.total_seconds,
        cache_statistics=analyzer.cache_statistics(),
    )


def _resolve_schema(schema: object) -> tuple[DTD, str]:
    if isinstance(schema, DTD):
        return schema, schema.name
    if isinstance(schema, (str, Path)):
        text = str(schema)
        if text.endswith(".dtd"):
            path = Path(text)
            if not path.is_file():
                raise SchemaLookupError(f"DTD file not found: {text}")
            return parse_dtd(path.read_text(encoding="utf-8"), name=path.stem), path.stem
        return builtin_dtd(text), text
    raise SchemaLookupError(f"unsupported schema constraint {schema!r}")


# -- compile ---------------------------------------------------------------------


@dataclass
class _Branch:
    """One pattern alternative of one template, with its resolved rank."""

    template: Template
    alternative: xp.Expr
    expr: xp.AbsolutePath
    precedence: int
    priority: float
    text: str
    #: Plan indices, filled in when the branch has outranking rivals.
    sat: int | None = None
    containment: int | None = None
    rivals: list["_Branch"] = field(default_factory=list)


@dataclass
class _BodyCheck:
    expression: object  # parser.Expression
    rule: str  # "unreachable-branch" | "dead-select"
    empty: int  # plan index of the emptiness query


@dataclass
class _Audited:
    """One match template that compiled successfully."""

    template: Template
    branches: list[_Branch]
    match_text: str
    sat: int | None = None
    body: list[_BodyCheck] = field(default_factory=list)


def _compile_templates(
    stylesheet: Stylesheet, findings: list[Finding]
) -> list[_Audited]:
    compiled: list[_Audited] = []
    for template in stylesheet.templates:
        if template.match is None:
            findings.append(
                Finding(
                    "skipped-template",
                    "info",
                    f"named template '{template.name}' has no match pattern; "
                    "its body is audited only through its call sites",
                    template.file,
                    template.line,
                    template.column,
                    {"name": template.name},
                )
            )
            continue
        try:
            alternatives = pattern_alternatives(template.match)
        except ParseError as exc:
            findings.append(
                Finding(
                    "unsupported-pattern",
                    "info",
                    f"match pattern not audited: {exc}",
                    template.file,
                    template.line,
                    template.column,
                    {"pattern": template.match, "position": exc.position},
                )
            )
            continue
        branches = [
            _Branch(
                template=template,
                alternative=alternative,
                expr=match_expression(alternative),
                precedence=template.precedence,
                priority=(
                    template.priority
                    if template.priority is not None
                    else default_priority(alternative)
                ),
                text=str(alternative),
            )
            for alternative in alternatives
        ]
        compiled.append(
            _Audited(
                template=template,
                branches=branches,
                match_text=str(_union(branch.expr for branch in branches)),
            )
        )
    return compiled


def _union(exprs) -> xp.Expr:
    exprs = list(exprs)
    result = exprs[0]
    for expr in exprs[1:]:
        result = xp.ExprUnion(result, expr)
    return result


# -- plan ------------------------------------------------------------------------


class _Plan:
    """The deduplicated query list of one audit (one ``solve_many`` batch)."""

    def __init__(self) -> None:
        self.queries: list[Query] = []
        self._index: dict[tuple, int] = {}
        self.per_rule: dict[str, int] = {}

    def add(self, rule: str, query: Query) -> int:
        key = (query.kind, query.exprs)
        index = self._index.get(key)
        if index is None:
            index = len(self.queries)
            self._index[key] = index
            self.queries.append(query)
            self.per_rule[rule] = self.per_rule.get(rule, 0) + 1
        return index


def _may_overlap(left: xp.Expr, right: xp.Expr) -> bool:
    """Syntactic prescreen: could the two pattern alternatives match a common
    node?  Compares the possible last steps (pattern steps are child/attribute
    only, so the last step decides the node kind and name)."""
    for a in _last_steps(left.path):
        for b in _last_steps(right.path):
            if isinstance(a, xp.Step) and isinstance(b, xp.Step):
                if a.axis is xp.Axis.SELF or b.axis is xp.Axis.SELF:
                    if a.axis is b.axis:
                        return True  # both are the document-node pattern "/"
                    continue
                if a.label is None or b.label is None or a.label == b.label:
                    return True
            elif isinstance(a, xp.AttributeStep) and isinstance(b, xp.AttributeStep):
                if a.name is None or b.name is None or a.name == b.name:
                    return True
    return False


def _plan_shadows(
    compiled: list[_Audited],
    branches: list[_Branch],
    plan: _Plan,
    rooted: Rooted,
) -> None:
    """Per branch: one containment against the union of every *outranking*
    same-mode branch of another template it could syntactically overlap,
    plus one satisfiability check (a branch that matches nothing is dead,
    not shadowed)."""
    for entry in compiled:
        for branch in entry.branches:
            rivals = [
                other
                for other in branches
                if other.template is not branch.template
                and other.template.mode == branch.template.mode
                and outranks(
                    (other.precedence, other.priority),
                    (branch.precedence, branch.priority),
                )
                and _may_overlap(branch.alternative, other.alternative)
            ]
            if not rivals:
                continue
            branch.rivals = rivals
            branch.sat = plan.add(
                "shadowed-template", Query.satisfiability(str(branch.expr), rooted)
            )
            branch.containment = plan.add(
                "shadowed-template",
                Query.containment(
                    str(branch.expr),
                    str(_union(other.expr for other in rivals)),
                    rooted,
                    rooted,
                ),
            )


def _plan_bodies(
    compiled: list[_Audited],
    plan: _Plan,
    rooted: Rooted,
    findings: list[Finding],
) -> None:
    for entry in compiled:
        context = _union(branch.expr for branch in entry.branches)
        asts: dict[int, xp.Expr | None] = {}
        for e in entry.template.expressions:
            try:
                ast = parse_test(e.text) if e.role == "test" else parse_xpath_cached(e.text)
            except ParseError as exc:
                asts[e.index] = None
                findings.append(
                    Finding(
                        "unsupported-expression",
                        "info",
                        f"{e.source} {e.role} not audited: {exc}",
                        e.file,
                        e.line,
                        e.column,
                        {"source": e.source, "text": e.text, "position": exc.position},
                    )
                )
                continue
            asts[e.index] = ast
            if any(asts.get(i) is None for i in e.context_chain):
                # An enclosing for-each select failed to parse; its own
                # note already covers everything nested under it.
                continue
            try:
                composed_context = context
                for i in e.context_chain:
                    composed_context = compose_context(composed_context, asts[i])
                composed = compose_context(composed_context, ast)
            except ComposeError as exc:
                findings.append(
                    Finding(
                        "skipped-expression",
                        "info",
                        f"{e.source} {e.role} not audited: {exc}",
                        e.file,
                        e.line,
                        e.column,
                        {"source": e.source, "text": e.text},
                    )
                )
                continue
            rule = "unreachable-branch" if e.role == "test" else "dead-select"
            entry.body.append(
                _BodyCheck(
                    expression=e,
                    rule=rule,
                    empty=plan.add(rule, Query.emptiness(str(composed), rooted)),
                )
            )


def _plan_coverage(
    stylesheet: Stylesheet,
    dtd: DTD,
    schema_name: str,
    branches: list[_Branch],
    plan: _Plan,
    rooted: Rooted,
    findings: list[Finding],
) -> list[tuple[str, list[_Branch], int]]:
    """Three tiers per reachable element: trivially covered by a bare
    name/wildcard pattern (no query), no syntactic candidate at all
    (aggregated finding, no query), or a semantic coverage query against
    the candidates' match expressions.  Mode-insensitive: a template in
    any mode counts as matching."""
    uncovered: list[str] = []
    plans: list[tuple[str, list[_Branch], int]] = []
    for label in sorted(reachable_elements(dtd)):
        candidates = [
            branch
            for branch in branches
            if may_match_element(branch.alternative, label)
        ]
        if any(
            matches_exactly_element(branch.alternative, label) for branch in candidates
        ):
            continue
        if not candidates:
            uncovered.append(label)
            continue
        index = plan.add(
            "coverage-gap",
            Query.coverage(
                f"//{label}",
                [str(branch.expr) for branch in candidates],
                rooted,
                [rooted] * len(candidates),
            ),
        )
        plans.append((label, candidates, index))
    if uncovered:
        findings.append(
            Finding(
                "coverage-gap",
                "warning",
                "no template matches element(s): " + ", ".join(uncovered),
                stylesheet.path,
                1,
                1,
                {"elements": uncovered, "schema": schema_name},
            )
        )
    return plans


# -- interpret -------------------------------------------------------------------


def _analysis_error(
    file: str, line: int, column: int, outcome: AnalysisOutcome
) -> Finding:
    return Finding(
        "analysis-error",
        "warning",
        f"analysis failed: {outcome.error}",
        file,
        line,
        column,
        {"kind": outcome.error_kind, "problem": outcome.problem},
    )


def _analysis_unknown(
    file: str, line: int, column: int, outcome: AnalysisOutcome
) -> Finding:
    """An audit query whose solver budget ran out: reported, never guessed.

    A non-definite outcome must not feed a rule verdict — treating an
    unknown satisfiability as "dead template" would turn a tight deadline
    into false positives — so the rule engine surfaces it as an ``info``
    finding and draws no conclusion from the query.
    """
    return Finding(
        "analysis-unknown",
        "info",
        f"analysis inconclusive (budget exhausted: {outcome.budget_reason}): "
        f"{outcome.problem}",
        file,
        line,
        column,
        {"budget_reason": outcome.budget_reason, "problem": outcome.problem},
    )


def _mode_suffix(template: Template) -> str:
    return f' mode="{template.mode}"' if template.mode is not None else ""


def _interpret_template(
    entry: _Audited,
    outcomes: list[AnalysisOutcome],
    schema_name: str,
    findings: list[Finding],
    dead: set[int],
) -> None:
    template = entry.template
    sat = outcomes[entry.sat]
    if not sat.ok:
        findings.append(
            _analysis_error(template.file, template.line, template.column, sat)
        )
        return
    if not sat.definite:
        findings.append(
            _analysis_unknown(template.file, template.line, template.column, sat)
        )
        return
    if not sat.holds:
        findings.append(
            Finding(
                "dead-template",
                "error",
                f'template match="{template.match}"{_mode_suffix(template)} can '
                f"never match any node of schema '{schema_name}'",
                template.file,
                template.line,
                template.column,
                {"match": template.match, "mode": template.mode, "schema": schema_name},
            )
        )
        return  # a dead template's shadow and body findings are redundant
    _interpret_shadows(entry, outcomes, findings, dead)
    _interpret_body(entry, outcomes, schema_name, findings)


def _interpret_shadows(
    entry: _Audited,
    outcomes: list[AnalysisOutcome],
    findings: list[Finding],
    dead: set[int],
) -> None:
    template = entry.template
    for branch in entry.branches:
        if branch.containment is None:
            continue
        sat = outcomes[branch.sat]
        contained = outcomes[branch.containment]
        broken = sat if not sat.ok else (contained if not contained.ok else None)
        if broken is not None:
            findings.append(
                _analysis_error(template.file, template.line, template.column, broken)
            )
            continue
        if not sat.definite or not contained.definite:
            vague = sat if not sat.definite else contained
            findings.append(
                _analysis_unknown(template.file, template.line, template.column, vague)
            )
            continue
        if not sat.holds or not contained.holds:
            continue  # dead branch, or genuinely reachable
        rivals = [
            rival for rival in branch.rivals if id(rival.template) not in dead
        ] or branch.rivals
        shadowers = sorted(
            {
                (rival.template.file, rival.template.line, rival.template.column)
                for rival in rivals
            }
        )
        where = "; ".join(f"{f}:{l}:{c}" for f, l, c in shadowers)
        subject = (
            f'match="{template.match}"'
            if len(entry.branches) == 1
            else f"match branch '{branch.text}'"
        )
        findings.append(
            Finding(
                "shadowed-template",
                "error",
                f"template {subject}{_mode_suffix(template)} never fires: every "
                f"node it matches is also matched by the higher-precedence "
                f"template(s) at {where}",
                template.file,
                template.line,
                template.column,
                {
                    "branch": branch.text,
                    "mode": template.mode,
                    "shadowed_by": [
                        {
                            "file": rival.template.file,
                            "line": rival.template.line,
                            "column": rival.template.column,
                            "match": rival.template.match,
                            "precedence": rival.precedence,
                            "priority": rival.priority,
                        }
                        for rival in rivals
                    ],
                },
            )
        )


def _interpret_body(
    entry: _Audited,
    outcomes: list[AnalysisOutcome],
    schema_name: str,
    findings: list[Finding],
) -> None:
    empties: dict[int, bool] = {}
    for check in entry.body:
        e = check.expression
        outcome = outcomes[check.empty]
        if not outcome.ok:
            findings.append(_analysis_error(e.file, e.line, e.column, outcome))
            continue
        if not outcome.definite:
            findings.append(_analysis_unknown(e.file, e.line, e.column, outcome))
            continue
        empties[e.index] = outcome.holds
        if not outcome.holds:
            continue
        if any(empties.get(i) for i in e.ancestors):
            continue  # an enclosing empty select/test already explains this
        if check.rule == "unreachable-branch":
            message = (
                f'{e.source} test="{e.text}" is never true in this context '
                f"under schema '{schema_name}'"
            )
        else:
            message = (
                f'{e.source} select="{e.text}" never selects any node in '
                f"this context under schema '{schema_name}'"
            )
        findings.append(
            Finding(
                check.rule,
                "warning",
                message,
                e.file,
                e.line,
                e.column,
                {"source": e.source, "text": e.text, "schema": schema_name},
            )
        )


def _interpret_coverage(
    stylesheet: Stylesheet,
    label: str,
    candidates: list[_Branch],
    outcome: AnalysisOutcome,
    schema_name: str,
    findings: list[Finding],
) -> None:
    if not outcome.ok:
        findings.append(_analysis_error(stylesheet.path, 1, 1, outcome))
        return
    if not outcome.definite:
        findings.append(_analysis_unknown(stylesheet.path, 1, 1, outcome))
        return
    if outcome.holds:
        return
    where = ", ".join(
        sorted(
            {
                f"{branch.template.file}:{branch.template.line}"
                for branch in candidates
            }
        )
    )
    findings.append(
        Finding(
            "coverage-gap",
            "warning",
            f"element '{label}' can occur where no template matches it: the "
            f"candidate template(s) at {where} miss some occurrences",
            stylesheet.path,
            1,
            1,
            {
                "element": label,
                "schema": schema_name,
                "candidates": [branch.text for branch in candidates],
                "witness": outcome.counterexample,
            },
        )
    )
