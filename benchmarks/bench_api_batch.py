"""Batch façade benchmark — amortised reuse across repeated Table 2 queries.

A realistic analysis workload (editor, optimiser, validation service) issues
the same family of decision problems over and over against the same schemas.
This benchmark replays the fast rows of Table 2 several times and compares

* the **cold path** — a fresh :class:`repro.api.StaticAnalyzer` per query, so
  every query re-translates and re-solves from scratch (this is what calling
  the one-shot helpers of :mod:`repro.analysis` in a loop costs), against
* the **batched path** — one analyzer answering the whole workload via
  :meth:`repro.api.StaticAnalyzer.solve_many`, sharing type translations,
  query translations and solver verdicts.

The measured speedup is asserted to be at least 1.5× and written to
``BENCH_api_batch.json`` together with the per-path timings so the perf
trajectory stays machine-readable across PRs.  The measurement itself lives
in :func:`repro.cli.bench.run_api_batch`, shared with the ``repro bench``
subcommand so the CLI and the suite can never drift apart.
"""

from conftest import write_bench_json, write_report
from repro.cli.bench import API_BATCH_REQUIRED_SPEEDUP as _REQUIRED_SPEEDUP
from repro.cli.bench import run_api_batch


def test_api_batch_speedup():
    payload = run_api_batch()
    speedup = payload["speedup"]
    lines = [
        f"workload: {payload['workload_queries']} queries "
        f"({payload['repeats']}x Table 2 fast rows)",
        f"cold per-query solves: {payload['cold_seconds'] * 1000:8.1f} ms",
        f"batched solve_many:    {payload['batch_seconds'] * 1000:8.1f} ms "
        f"({payload['solver_runs']} solver runs, {payload['cache_hits']} cache hits)",
        f"speedup: {speedup:.2f}x (required >= {_REQUIRED_SPEEDUP}x)",
    ]
    multiprocess = payload["multiprocess"]
    lines.append(
        f"multiprocess (workers={multiprocess['workers']}, "
        f"{multiprocess['cpu_count']} cpus): "
        f"{multiprocess['sequential_seconds'] * 1000:8.1f} ms sequential vs "
        f"{multiprocess['parallel_seconds'] * 1000:8.1f} ms parallel "
        f"({multiprocess['speedup']:.2f}x, required >= "
        f"{multiprocess['required_speedup']}x on >= 4 cpus)"
    )
    write_report("api_batch", lines)
    write_bench_json("api_batch", payload)
    assert speedup >= _REQUIRED_SPEEDUP, (
        f"batched path only {speedup:.2f}x faster than cold solves "
        f"(cold {payload['cold_seconds']:.3f}s vs batch {payload['batch_seconds']:.3f}s)"
    )
    # Verdict equality and stable ordering are asserted inside the runner;
    # the throughput threshold only binds where the hardware can express it.
    assert multiprocess["verdicts_identical"] and multiprocess["ordering_stable"]
    if multiprocess["threshold_applies"]:
        assert multiprocess["speedup"] >= multiprocess["required_speedup"], (
            f"solve_many(workers={multiprocess['workers']}) only "
            f"{multiprocess['speedup']:.2f}x faster on "
            f"{multiprocess['cpu_count']} cpus"
        )
