"""Tests for the XPath parser (surface syntax of the fragment of Figure 4)."""

import pytest

from repro.core.errors import ParseError
from repro.xpath import ast as xp
from repro.xpath.parser import parse_xpath


def test_abbreviated_child_step():
    expr = parse_xpath("book")
    assert isinstance(expr, xp.RelativePath)
    assert expr.path == xp.Step(xp.Axis.CHILD, "book")


def test_explicit_axis_step():
    expr = parse_xpath("preceding-sibling::a")
    assert expr.path == xp.Step(xp.Axis.PREC_SIBLING, "a")


def test_paper_axis_abbreviations():
    assert parse_xpath("foll-sibling::a").path.axis is xp.Axis.FOLL_SIBLING
    assert parse_xpath("desc-or-self::*").path.axis is xp.Axis.DESC_OR_SELF
    assert parse_xpath("anc-or-self::*").path.axis is xp.Axis.ANC_OR_SELF


def test_absolute_path():
    expr = parse_xpath("/child::book/child::chapter/child::section")
    assert isinstance(expr, xp.AbsolutePath)
    assert isinstance(expr.path, xp.PathCompose)


def test_star_dot_and_dotdot():
    assert parse_xpath("*").path == xp.Step(xp.Axis.CHILD, None)
    assert parse_xpath(".").path == xp.Step(xp.Axis.SELF, None)
    assert parse_xpath("..").path == xp.Step(xp.Axis.PARENT, None)


def test_double_slash_expands_to_descendant_or_self():
    expr = parse_xpath("a//b")
    assert isinstance(expr.path, xp.PathCompose)
    middle = expr.path.first
    assert isinstance(middle, xp.PathCompose)
    assert middle.second == xp.Step(xp.Axis.DESC_OR_SELF, None)


def test_leading_double_slash_is_absolute():
    expr = parse_xpath("//section")
    assert isinstance(expr, xp.AbsolutePath)


def test_qualifier_with_boolean_connectives():
    expr = parse_xpath("a[b and not(c or d)]")
    qualified = expr.path
    assert isinstance(qualified, xp.QualifiedPath)
    assert isinstance(qualified.qualifier, xp.QualifierAnd)
    assert isinstance(qualified.qualifier.right, xp.QualifierNot)


def test_nested_qualifiers():
    expr = parse_xpath("a[b[c]]")
    inner = expr.path.qualifier.path
    assert isinstance(inner, xp.QualifiedPath)


def test_union_and_intersection():
    union = parse_xpath("a/b | c")
    assert isinstance(union, xp.ExprUnion)
    intersection = parse_xpath("a ∩ b")
    assert isinstance(intersection, xp.ExprIntersection)
    keyword = parse_xpath("a intersect b")
    assert isinstance(keyword, xp.ExprIntersection)


def test_parenthesised_path_union():
    expr = parse_xpath("html/(head | body)")
    assert isinstance(expr.path, xp.PathCompose)
    assert isinstance(expr.path.second, xp.PathUnion)


def test_multiple_qualifiers_chain():
    expr = parse_xpath("a[b][c]")
    outer = expr.path
    assert isinstance(outer, xp.QualifiedPath)
    assert isinstance(outer.path, xp.QualifiedPath)


@pytest.mark.parametrize(
    "text",
    [
        "/a[.//b[c/*//d]/b[c//d]/b[c/d]]",
        "a/b//c/foll-sibling::d/e",
        "a/b//d[prec-sibling::c]/e",
        "a/c/following::d/e",
        "a/b[//c]/following::d/e ∩ a/d[preceding::c]/e",
        "*//switch[ancestor::head]//seq//audio[prec-sibling::video]",
        "descendant::a[ancestor::a]",
        "/descendant::*",
        "html/(head | body)",
        "html/head/descendant::*",
        "html/body/descendant::*",
    ],
)
def test_figure21_expressions_parse(text):
    parse_xpath(text)


@pytest.mark.parametrize("text", ["", "a[", "a]", "unknown::b", "a//", "a['v']"])
def test_parse_errors(text):
    with pytest.raises(ParseError):
        parse_xpath(text)


def test_round_trip_through_str():
    text = "child::a[child::b and not(c)]/foll-sibling::d"
    expr = parse_xpath(text)
    again = parse_xpath(str(expr))
    assert str(again) == str(expr)
