"""Findings and the audit report (text and JSON renderings).

A :class:`Finding` is one diagnostic at one source location; the
:class:`AuditReport` aggregates them with the batch-level evidence — how
many decision problems were planned, how many solver runs they cost, and
the analyzer's cache statistics, which *prove* the batching claim: one
``solve_many`` batch, shared type translations, no per-query recompiles.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field

#: Finding severities, most severe first (drives ``--fail-on`` exit codes).
SEVERITIES = ("error", "warning", "info")


@dataclass(frozen=True)
class Finding:
    """One diagnostic: a rule violation (or an ``info`` skip note) at a
    source location, with rule-specific evidence under ``detail``."""

    rule: str
    severity: str
    message: str
    file: str
    line: int
    column: int
    detail: dict = field(default_factory=dict, compare=False)

    def as_dict(self) -> dict:
        return {
            "rule": self.rule,
            "severity": self.severity,
            "message": self.message,
            "file": self.file,
            "line": self.line,
            "column": self.column,
            "detail": self.detail,
        }

    def location(self) -> str:
        return f"{self.file}:{self.line}:{self.column}"


def _sort_key(finding: Finding) -> tuple:
    return (finding.file, finding.line, finding.column, finding.rule, finding.message)


@dataclass
class AuditReport:
    """The outcome of auditing one stylesheet against one schema."""

    stylesheet: str
    schema: str
    files: tuple[str, ...]
    templates: int
    #: Template-rule branches (pattern alternatives) analysed.
    branches: int
    findings: list[Finding]
    #: Planned decision problems, per rule (``{"dead-template": 12, ...}``).
    queries: dict[str, int]
    #: Batch-level evidence from the single ``solve_many`` call.
    solver_runs: int = 0
    cache_hits: int = 0
    total_seconds: float = 0.0
    cache_statistics: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        self.findings.sort(key=_sort_key)

    def counts(self) -> dict[str, int]:
        counts = {severity: 0 for severity in SEVERITIES}
        for finding in self.findings:
            counts[finding.severity] += 1
        return counts

    def exit_code(self, fail_on: str | None = "error") -> int:
        """0 clean, 1 when a finding at or above ``fail_on`` exists.

        ``fail_on=None`` always reports success (findings are informational).
        """
        if fail_on is None:
            return 0
        counts = self.counts()
        threshold = SEVERITIES.index(fail_on)
        if any(counts[severity] for severity in SEVERITIES[: threshold + 1]):
            return 1
        return 0

    def as_dict(self) -> dict:
        return {
            "stylesheet": self.stylesheet,
            "schema": self.schema,
            "files": list(self.files),
            "templates": self.templates,
            "branches": self.branches,
            "findings": [finding.as_dict() for finding in self.findings],
            "counts": self.counts(),
            "queries": dict(self.queries),
            "batch": {
                "queries": sum(self.queries.values()),
                "solver_runs": self.solver_runs,
                "cache_hits": self.cache_hits,
                "total_seconds": round(self.total_seconds, 6),
            },
            "cache_statistics": dict(self.cache_statistics),
        }

    def to_json(self, **kwargs) -> str:
        return json.dumps(self.as_dict(), **kwargs)

    def to_text(self) -> str:
        """Compiler-style listing: ``file:line:col: severity: rule: message``."""
        lines = []
        for finding in self.findings:
            lines.append(
                f"{finding.location()}: {finding.severity}: "
                f"{finding.rule}: {finding.message}"
            )
        counts = self.counts()
        lines.append(
            f"{self.stylesheet}: audited {self.templates} template(s) "
            f"({self.branches} match branches) against schema "
            f"'{self.schema}': {counts['error']} error(s), "
            f"{counts['warning']} warning(s), {counts['info']} note(s)"
        )
        lines.append(
            f"{sum(self.queries.values())} decision problem(s) in one batch: "
            f"{self.solver_runs} solver run(s), {self.cache_hits} cache "
            f"hit(s), {self.total_seconds:.2f}s"
        )
        return "\n".join(lines)
