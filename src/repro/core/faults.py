"""Deterministic fault injection: the plumbing behind ``repro.testing.faults``.

Robustness code is only trustworthy if its failure paths actually run, so the
library carries *injectable failure points* at the places where the real world
misbehaves: a worker process dying mid-solve, a cache entry torn by a crashed
writer, a deadline expiring between checkpoints.  Production code calls
:func:`should_fire` at those sites; with no plan installed the call is a cheap
``None`` check and nothing ever fires.

This module lives in :mod:`repro.core` (stdlib-only, no intra-package
imports) so the solver, the cache and the API façade can all host injection
sites without import cycles; the user-facing harness — plan helpers, the
fuzzer's chaos axis — is :mod:`repro.testing.faults`, which re-exports it.

A plan is installed either programmatically (:func:`install`, in-process
tests) or through the :data:`FAULTS_ENV` environment variable, which worker
processes inherit — that is how a fault can reach the far side of a
``ProcessPoolExecutor``.  The env value is a JSON list of points::

    REPRO_FAULTS='[{"point": "worker-crash", "match": "poison", "times": 1}]'

Known points (the ``point`` names production sites use):

* ``worker-crash`` — a batch worker ``os._exit``\\ s mid-solve
  (:func:`repro.api._pool_solve`); ``match`` selects the query by substring.
* ``cache-torn-write`` — :meth:`repro.cache.DiskSolveCache.put` writes a
  truncated entry straight to the final path, simulating a torn write that
  the atomic-publish protocol normally makes impossible.
* ``deadline`` — the resource governor's next checkpoint behaves as if the
  wall-clock deadline had already expired
  (:meth:`repro.solver.governor.ResourceGovernor.poll`).

Every decision is deterministic: a point fires when its ``match`` substring
occurs in the site's detail string and its ``times`` counter (per process) is
not yet spent.  The optional ``latch`` field names a file created atomically
when the point first fires, after which no process fires it again — that is
how a test injects *exactly one* crash across a pool of workers and its
respawns.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field

#: Environment variable carrying a JSON fault plan into worker processes.
FAULTS_ENV = "REPRO_FAULTS"

#: Point names production injection sites use (documented above).
FAULT_POINTS = ("worker-crash", "cache-torn-write", "deadline")


@dataclass
class FaultPoint:
    """One injectable failure: fire ``point`` when ``match`` is seen."""

    point: str
    #: Substring that must occur in the site's detail string ("" matches all).
    match: str = ""
    #: Firings allowed in this process; ``None`` means unlimited.
    times: int | None = 1
    #: Optional latch file: once it exists (created atomically on the first
    #: firing, by whichever process wins), the point is spent *globally*.
    latch: str | None = None
    fired: int = field(default=0, compare=False)

    def should_fire(self, detail: str) -> bool:
        if self.match and self.match not in detail:
            return False
        if self.times is not None and self.fired >= self.times:
            return False
        if self.latch is not None and not self._acquire_latch():
            return False
        self.fired += 1
        return True

    def _acquire_latch(self) -> bool:
        try:
            fd = os.open(self.latch, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
        except FileExistsError:
            return False
        except OSError:
            return False
        os.close(fd)
        return True

    def as_dict(self) -> dict:
        payload: dict = {"point": self.point}
        if self.match:
            payload["match"] = self.match
        payload["times"] = self.times
        if self.latch is not None:
            payload["latch"] = self.latch
        return payload


class FaultPlan:
    """An ordered collection of :class:`FaultPoint` entries."""

    def __init__(self, points: "list[FaultPoint] | None" = None):
        self.points = list(points or [])

    def should_fire(self, point: str, detail: str = "") -> bool:
        for entry in self.points:
            if entry.point == point and entry.should_fire(detail):
                return True
        return False

    def to_env(self) -> str:
        """The plan as a :data:`FAULTS_ENV` value (JSON)."""
        return json.dumps([entry.as_dict() for entry in self.points])

    @classmethod
    def from_env(cls, value: str) -> "FaultPlan":
        entries = json.loads(value)
        if not isinstance(entries, list):
            raise ValueError(f"{FAULTS_ENV} must be a JSON list, got {value!r}")
        points = []
        for entry in entries:
            points.append(
                FaultPoint(
                    point=str(entry["point"]),
                    match=str(entry.get("match", "")),
                    times=entry.get("times", 1),
                    latch=entry.get("latch"),
                )
            )
        return cls(points)


#: The installed plan: a programmatic install wins over the environment.
_PLAN: FaultPlan | None = None
#: The env value the cached env plan was parsed from (re-parsed on change).
_ENV_VALUE: str | None = None
_ENV_PLAN: FaultPlan | None = None


def install(plan: FaultPlan) -> None:
    """Install a plan for this process (overrides :data:`FAULTS_ENV`)."""
    global _PLAN
    _PLAN = plan


def uninstall() -> None:
    """Remove any programmatic plan (the environment plan, if set, remains)."""
    global _PLAN
    _PLAN = None


def active() -> FaultPlan | None:
    """The plan in effect, or ``None`` (the overwhelmingly common case)."""
    global _ENV_VALUE, _ENV_PLAN
    if _PLAN is not None:
        return _PLAN
    value = os.environ.get(FAULTS_ENV)
    if not value:
        return None
    if value != _ENV_VALUE:
        _ENV_VALUE = value
        try:
            _ENV_PLAN = FaultPlan.from_env(value)
        except (ValueError, KeyError, TypeError):
            # A malformed plan must never take the host process down; chaos
            # tooling validates its own plans, so silently inert is correct.
            _ENV_PLAN = None
    return _ENV_PLAN


def should_fire(point: str, detail: str = "") -> bool:
    """Whether the failure point fires here; the hook production sites call."""
    plan = active()
    return plan is not None and plan.should_fire(point, detail)
