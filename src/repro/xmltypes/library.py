"""Built-in XML types used by the paper's evaluation (Section 8, Table 1).

The evaluation of the paper uses two real-world DTDs — SMIL 1.0 (19 element
symbols) and XHTML 1.0 Strict (77 element symbols) — plus the Wikipedia DTD
fragment of Figure 12 used to illustrate the type translation.  The DTD texts
shipped with this package are hand-written reproductions of the element
structure of those DTDs (see DESIGN.md, "Substitutions"); a reduced XHTML
"core" subset is also provided for fast regression runs.
"""

from __future__ import annotations

import functools
from dataclasses import dataclass, field
from importlib import resources
from typing import Callable

from repro.core.errors import SchemaLookupError
from repro.xmltypes.dtd import DTD, parse_dtd


def _load(filename: str, root: str, name: str) -> DTD:
    data = resources.files("repro.xmltypes.data").joinpath(filename).read_text()
    return parse_dtd(data, root=root, name=name)


@functools.lru_cache(maxsize=None)
def smil_dtd() -> DTD:
    """SMIL 1.0 (19 element symbols), rooted at ``smil``."""
    return _load("smil10.dtd", root="smil", name="smil")


@functools.lru_cache(maxsize=None)
def xhtml_strict_dtd() -> DTD:
    """XHTML 1.0 Strict (77 element symbols), rooted at ``html``."""
    return _load("xhtml1_strict.dtd", root="html", name="xhtml")


@functools.lru_cache(maxsize=None)
def xhtml_core_dtd() -> DTD:
    """A 21-element structural subset of XHTML 1.0 Strict, rooted at ``html``."""
    return _load("xhtml1_core.dtd", root="html", name="xhtmlcore")


@functools.lru_cache(maxsize=None)
def wikipedia_dtd() -> DTD:
    """The Wikipedia DTD fragment of Figure 12, rooted at ``article``."""
    return _load("wikipedia.dtd", root="article", name="wikipedia")


# ---------------------------------------------------------------------------
# Schema registry (used by ``repro schemas``, the serve protocol, and name
# resolution in builtin_dtd — one catalog, no second list to keep in sync)
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class SchemaInfo:
    """Registry metadata for one bundled schema (JSON-able via :meth:`as_dict`)."""

    name: str
    aliases: tuple[str, ...]
    filename: str
    description: str
    loader: Callable[[], DTD] = field(repr=False, compare=False, kw_only=True)

    def load(self) -> DTD:
        return self.loader()

    def as_dict(self, verbose: bool = False) -> dict:
        dtd = self.load()
        info = {
            "name": self.name,
            "aliases": list(self.aliases),
            "file": self.filename,
            "root": dtd.root,
            "elements": len(dtd.elements),
            "attributes": len(dtd.attribute_names()),
            "description": self.description,
        }
        if verbose:
            info["element_names"] = list(dtd.element_names())
            info["required_attributes"] = {
                element: list(required)
                for element in dtd.element_names()
                if (required := dtd.required_attributes(element))
            }
        return info


_CATALOG = (
    SchemaInfo(
        name="smil",
        aliases=(),
        filename="smil10.dtd",
        loader=smil_dtd,
        description="SMIL 1.0 (19 element symbols), rooted at smil; Table 1.",
    ),
    SchemaInfo(
        name="xhtml",
        aliases=("xhtml-strict",),
        filename="xhtml1_strict.dtd",
        loader=xhtml_strict_dtd,
        description="XHTML 1.0 Strict (77 element symbols), rooted at html; Table 1.",
    ),
    SchemaInfo(
        name="xhtml-core",
        aliases=(),
        filename="xhtml1_core.dtd",
        loader=xhtml_core_dtd,
        description="21-element structural subset of XHTML 1.0 Strict for fast runs.",
    ),
    SchemaInfo(
        name="wikipedia",
        aliases=(),
        filename="wikipedia.dtd",
        loader=wikipedia_dtd,
        description="The Wikipedia DTD fragment of Figure 12, rooted at article.",
    ),
)

_CATALOG_BY_NAME = {
    alias: info for info in _CATALOG for alias in (info.name, *info.aliases)
}

def builtin_dtd(name: str) -> DTD:
    """Look up a built-in DTD by registry name or alias (``smil``, ``xhtml``,
    ``xhtml-strict``, ``xhtml-core``, ``wikipedia``)."""
    return schema_info(name).load()


def schema_catalog() -> tuple[SchemaInfo, ...]:
    """Every bundled schema, in registry order."""
    return _CATALOG


def schema_names() -> tuple[str, ...]:
    """Canonical names of the bundled schemas (aliases excluded)."""
    return tuple(info.name for info in _CATALOG)


def schema_info(name: str) -> SchemaInfo:
    """Registry entry for a schema name or alias.

    Unknown names raise :class:`repro.core.errors.SchemaLookupError` — a
    :class:`KeyError` for dictionary-style callers, and an input-shaped
    :class:`ReproError` for the analyzer's structured error outcomes.
    """
    try:
        return _CATALOG_BY_NAME[name]
    except KeyError:
        raise SchemaLookupError(
            f"unknown built-in DTD {name!r}; available: "
            f"{sorted(_CATALOG_BY_NAME)}"
        ) from None
