"""Scaling study — solver cost as a function of Lean size (Lemma 6.7).

Lemma 6.7 bounds the running time by ``2^O(|Lean(ψ)|)``.  This benchmark runs
the solver on a family of containment problems of growing size (nested child
steps with qualifiers) and records Lean size, iterations and time, giving the
measured counterpart of the complexity claim.  It also compares the explicit
solver of Figure 16 with the symbolic solver of Section 7 on an instance small
enough for both.
"""

import pytest

from conftest import write_bench_json, write_report
from repro.analysis import Analyzer
from repro.logic import syntax as sx
from repro.solver.explicit import ExplicitSolver
from repro.solver.symbolic import SymbolicSolver

_ROWS: list[str] = []
_JSON_ROWS: list[dict] = []
_DEPTHS = [1, 2, 3, 4]


def _query(depth: int) -> str:
    """Nested path a1/a2[b2]/a3[b3]/… of the given depth."""
    steps = ["a1"] + [f"a{i}[b{i}]" for i in range(2, depth + 1)]
    return "/".join(steps)


@pytest.mark.parametrize("depth", _DEPTHS)
def test_scaling_with_query_depth(benchmark, depth):
    analyzer = Analyzer()
    query = _query(depth)
    weaker = query.replace("[b2]", "") if depth >= 2 else "*"

    result = benchmark.pedantic(
        lambda: analyzer.containment(query, weaker), rounds=1, iterations=1
    )
    assert result.holds
    stats = result.solver_result.statistics
    _ROWS.append(
        f"depth {depth}: lean={stats.lean_size:>3} iterations={stats.iterations:>2} "
        f"time={result.time_ms:>8.1f} ms"
    )
    _JSON_ROWS.append({"depth": depth, "query": query, **stats.as_dict()})
    if depth == _DEPTHS[-1]:
        write_report("scaling_lean_size", ["containment of nested queries"] + _ROWS)
        write_bench_json(
            "scaling",
            {
                "benchmark": "containment of nested queries (Lemma 6.7 scaling)",
                "rows": _JSON_ROWS,
            },
        )


def test_explicit_vs_symbolic(benchmark):
    formula = sx.prop("a") & sx.dia(1, sx.prop("b")) & sx.START

    def run():
        explicit = ExplicitSolver(formula).solve()
        symbolic = SymbolicSolver(formula).solve()
        return explicit, symbolic

    explicit, symbolic = benchmark(run)
    assert explicit.satisfiable == symbolic.satisfiable is True
    write_report(
        "scaling_explicit_vs_symbolic",
        [
            f"formula: {formula}",
            f"explicit solver (Figure 16): {explicit.entry_count} triples over "
            f"{explicit.type_count} psi-types, {explicit.iterations} iterations",
            f"symbolic solver (Section 7): lean {symbolic.statistics.lean_size}, "
            f"{symbolic.statistics.iterations} iterations, "
            f"{symbolic.statistics.solve_seconds * 1000:.1f} ms",
        ],
    )
