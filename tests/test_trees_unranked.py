"""Unit tests for unranked trees: parsing, serialisation, marking, traversal."""

import pytest

from repro.core.errors import ParseError
from repro.trees.unranked import Tree, parse_tree, serialize_tree


def test_parse_single_empty_element():
    tree = parse_tree("<a/>")
    assert tree.label == "a"
    assert tree.children == ()
    assert not tree.marked


def test_parse_nested_elements():
    tree = parse_tree("<a><b/><c><d/></c></a>")
    assert [child.label for child in tree.children] == ["b", "c"]
    assert tree.children[1].children[0].label == "d"


def test_parse_marked_node():
    tree = parse_tree("<a><b!/></a>")
    assert not tree.marked
    assert tree.children[0].marked
    assert tree.mark_count() == 1


def test_parse_rejects_mismatched_tags():
    with pytest.raises(ParseError):
        parse_tree("<a><b></a></b>")


def test_parse_rejects_trailing_content():
    with pytest.raises(ParseError):
        parse_tree("<a/><b/>")


def test_parse_rejects_text_content():
    with pytest.raises(ParseError):
        parse_tree("<a>hello</a>")


def test_serialize_round_trip():
    text = "<a><b!/><c><d/></c></a>"
    assert serialize_tree(parse_tree(text)) == text


def test_serialize_pretty_has_indentation():
    pretty = serialize_tree(parse_tree("<a><b/></a>"), indent=2)
    assert pretty == "<a>\n  <b/>\n</a>"


def test_size_and_depth():
    tree = parse_tree("<a><b/><c><d/></c></a>")
    assert tree.size() == 4
    assert tree.depth() == 3


def test_labels():
    tree = parse_tree("<a><b/><c><b/></c></a>")
    assert tree.labels() == {"a", "b", "c"}


def test_iter_paths_in_document_order():
    tree = parse_tree("<a><b/><c><d/></c></a>")
    paths = [path for path, _node in sorted(tree.iter_paths())]
    assert paths == [(), (0,), (1,), (1, 0)]


def test_mark_at_and_unmark_all():
    tree = parse_tree("<a><b/><c><d/></c></a>")
    marked = tree.mark_at((1, 0))
    assert marked.find_mark() == (1, 0)
    assert marked.mark_count() == 1
    assert marked.unmark_all().mark_count() == 0


def test_mark_at_invalid_path_raises():
    tree = parse_tree("<a><b/></a>")
    with pytest.raises(IndexError):
        tree.mark_at((3,))


def test_with_mark_does_not_mutate():
    tree = Tree("a")
    marked = tree.with_mark()
    assert marked.marked and not tree.marked


def test_trees_are_hashable_and_comparable():
    assert parse_tree("<a><b/></a>") == parse_tree("<a><b/></a>")
    assert hash(parse_tree("<a/>")) == hash(parse_tree("<a/>"))
    assert parse_tree("<a/>") != parse_tree("<a!/>")
