"""Fisher–Ladner closure and the Lean of a formula (Section 6.1).

The closure ``cl(ψ)`` is the smallest set containing ``ψ`` and closed under
taking immediate subformulas, with fixpoint formulas additionally unwound once
(``µXᵢ=ϕᵢ in ψ' →ₑ exp(µXᵢ=ϕᵢ in ψ')``).

The ``Lean(ψ)`` is the set of formulas from which every formula of
``cl(ψ) ∪ ¬cl(ψ)`` can be recovered as a boolean combination::

    Lean(ψ) = {⟨a⟩⊤ | a ∈ {1, 2, 1̄, 2̄}} ∪ Σ(ψ) ∪ {s} ∪ {⟨a⟩ϕ ∈ cl(ψ)}

where ``Σ(ψ)`` contains the atomic propositions of ``ψ`` plus one extra name
standing for "any other label".  ψ-types (Hintikka sets) are subsets of the
Lean; the satisfiability algorithm of Section 6 and its BDD-based symbolic
implementation of Section 7 both work directly on the Lean.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from collections import deque

from repro.core.errors import SolverLimitError
from repro.logic import syntax as sx
from repro.trees.focus import MODALITIES


#: Label used to represent "an atomic proposition not occurring in ψ"
#: (written σₓ in the paper).
OTHER_LABEL = "#other"

#: Attribute name standing for "an attribute named by none of the attribute
#: propositions of ψ".  It gives the wildcard ``@*`` something to be true of
#: on nodes whose attributes are all outside the formula's alphabet.
OTHER_ATTRIBUTE = "#otherattr"


def fisher_ladner_closure(formula: sx.Formula, max_size: int = 200_000) -> set[sx.Formula]:
    """Compute the Fisher–Ladner closure ``cl(ψ)``.

    ``max_size`` bounds the number of closure elements as a safety net: the
    closure of a cycle-free formula is finite, but a buggy or adversarial
    non-cycle-free input could otherwise loop forever.
    """
    closure: set[sx.Formula] = set()
    queue: deque[sx.Formula] = deque([formula])
    while queue:
        current = queue.popleft()
        if current in closure:
            continue
        closure.add(current)
        if len(closure) > max_size:
            raise SolverLimitError(
                f"Fisher-Ladner closure exceeded {max_size} formulas; "
                "is the formula cycle-free?"
            )
        kind = current.kind
        if kind in (sx.KIND_AND, sx.KIND_OR):
            queue.append(current.left)
            queue.append(current.right)
        elif kind == sx.KIND_DIA:
            queue.append(current.left)
        elif current.is_fixpoint:
            queue.append(sx.expand_fixpoint(current))
    return closure


@dataclass(frozen=True)
class Lean:
    """The Lean of a formula, with a fixed order used for bit-vector encodings.

    The order follows Section 7.4 and the layout of Figure 18: first the four
    topological propositions ``⟨a⟩⊤``, then the start proposition ``s``, then
    the atomic propositions, then the existential formulas of the closure in
    breadth-first order of their appearance in the formula (keeping sister
    subformulas close together, which is the variable-ordering heuristic the
    paper found to work best).
    """

    formula: sx.Formula
    items: tuple[sx.Formula, ...]
    index: dict[sx.Formula, int] = field(compare=False, hash=False)
    propositions: tuple[str, ...]
    other_label: str
    #: Attribute names with a bit of their own (empty when ψ never mentions
    #: attributes); always ends with :data:`OTHER_ATTRIBUTE` when non-empty.
    attributes: tuple[str, ...] = ()

    def __len__(self) -> int:
        return len(self.items)

    def __contains__(self, item: sx.Formula) -> bool:
        return item in self.index

    def position(self, item: sx.Formula) -> int:
        """Index of a lean formula in the bit-vector encoding."""
        return self.index[item]

    @property
    def start_index(self) -> int:
        """Index of the start proposition ``s``."""
        return self.index[sx.START]

    def modal_items(self) -> tuple[tuple[int, sx.Formula, int], ...]:
        """All ``⟨a⟩ϕ`` lean entries as ``(program, ϕ, index)`` triples."""
        result = []
        for position, item in enumerate(self.items):
            if item.kind == sx.KIND_DIA:
                result.append((item.prog, item.left, position))
        return tuple(result)

    def proposition_index(self, label: str) -> int:
        """Index of the lean entry for atomic proposition ``label``.

        Labels that do not occur in the formula are mapped to the extra
        "other" proposition.
        """
        formula = sx.prop(label if label in self.propositions else self.other_label)
        return self.index[formula]

    def attribute_index(self, name: str) -> int:
        """Index of the lean entry for attribute proposition ``@name``.

        Attribute names without a bit of their own map to the extra
        :data:`OTHER_ATTRIBUTE` bit (mirroring :meth:`proposition_index`).
        """
        formula = sx.attr(name if name in self.attributes else OTHER_ATTRIBUTE)
        return self.index[formula]

    def describe(self) -> str:
        """A short human-readable summary (used by reports and benchmarks)."""
        modal = sum(1 for item in self.items if item.kind == sx.KIND_DIA)
        attributes = (
            f", {len(self.attributes)} attribute propositions" if self.attributes else ""
        )
        return (
            f"Lean size {len(self.items)}: {len(self.propositions)} propositions"
            f"{attributes}, {modal} modal formulas"
        )


def closure_alphabet(closure: set[sx.Formula]) -> tuple[set[str], set[str]]:
    """The atomic propositions and attribute names of a set of formulas.

    Collecting ``Σ(ψ)`` from the *closure* instead of the raw syntax tree is
    the Lean-level half of cone-of-influence pruning: a proposition buried in
    a fixpoint definition the formula never references cannot influence any
    ψ-type, so it gets no bit.  (For formulas produced by the translations
    the two coincide — every definition is reachable — but projected type
    grammars and hand-built formulas can differ.)
    """
    labels: set[str] = set()
    attributes: set[str] = set()
    for item in closure:
        kind = item.kind
        if kind in (sx.KIND_PROP, sx.KIND_NPROP):
            labels.add(item.label)
        elif kind in (sx.KIND_ATTR, sx.KIND_NATTR):
            attributes.add(item.label)
    return labels, attributes


def union_lean(
    formulas: tuple[sx.Formula, ...], extra_labels: tuple[str, ...] = ()
) -> Lean:
    """The Lean of a *group* of formulas: ``Lean(ψ₁ ∨ ... ∨ ψₙ)``.

    The Fisher–Ladner closure of a disjunction is the union of the operands'
    closures (plus the disjunction spine itself, which contributes no Lean
    entry — only modal formulas and atomic propositions get bits), so the
    Lean of the ``∨``-chain *is* the merged Lean of the group: every
    subformula shared between two goals — in practice most of a schema's
    type translation — gets exactly one bit.  This is the shared abstraction
    the merged-Lean batch solver decides all goals against in one fixpoint.

    A formula that negates the "any other label" proposition (pruned type
    translations do) changes meaning when foreign labels join the alphabet,
    so a consumer of the merged Lean must pin each operand's own alphabet
    back down — the merged solver does, by restricting every goal's
    exactly-one-label constraint to the labels of that goal's closure and
    leaving the foreign labels entirely unmentioned (don't-care cylinders;
    see :meth:`repro.solver.relations.LeanEncoding.types_constraint`).
    One observable subtlety remains: merging can reorder the shared bits
    (labels are sorted, so a sibling goal pulling ``#other`` into the union
    closure shifts every level), which would change which of several valid
    witnesses a default lex-min BDD pick decodes — model reconstruction
    therefore pins its picks to each goal's own per-query Lean order
    (:func:`repro.solver.models._pick`).
    """
    if not formulas:
        raise ValueError("union_lean needs at least one formula")
    merged = formulas[0]
    for formula in formulas[1:]:
        merged = sx.mk_or(merged, formula)
    return lean(merged, extra_labels=extra_labels)


def lean(formula: sx.Formula, extra_labels: tuple[str, ...] = ()) -> Lean:
    """Compute ``Lean(ψ)`` together with its bit-vector ordering.

    ``extra_labels`` adds atomic propositions that must be representable even
    though they do not occur in the formula (useful when a model must mention
    labels from a surrounding problem).  One attribute bit is allocated per
    attribute name occurring in ψ, plus the :data:`OTHER_ATTRIBUTE` bit;
    formulas without attribute propositions pay nothing.

    The alphabet is read off the Fisher–Ladner closure (the formulas ψ-types
    are actually built from), not the raw syntax tree — see
    :func:`closure_alphabet`.
    """
    closure = fisher_ladner_closure(formula)
    closure_labels, closure_attributes = closure_alphabet(closure)

    labels = sorted(closure_labels | set(extra_labels))
    if OTHER_LABEL not in labels:
        labels.append(OTHER_LABEL)

    # The wildcard ``@*`` is not a name of its own, but its presence (like
    # any named attribute) forces the "other attribute" bit to exist.
    attribute_names = sorted(
        closure_attributes - {OTHER_ATTRIBUTE, sx.ANY_ATTRIBUTE}
    )
    if attribute_names or closure_attributes:
        attribute_names.append(OTHER_ATTRIBUTE)

    items: list[sx.Formula] = []
    seen: set[sx.Formula] = set()

    def add(item: sx.Formula) -> None:
        if item not in seen:
            seen.add(item)
            items.append(item)

    for program in MODALITIES:
        add(sx.dia(program, sx.TRUE))
    add(sx.START)
    for label in labels:
        add(sx.prop(label))
    for name in attribute_names:
        add(sx.attr(name))

    # Existential formulas of the closure, in breadth-first order of first
    # appearance starting from the root formula.
    queue: deque[sx.Formula] = deque([formula])
    visited: set[sx.Formula] = set()
    while queue:
        current = queue.popleft()
        if current in visited:
            continue
        visited.add(current)
        if current.kind == sx.KIND_DIA:
            add(current)
            queue.append(current.left)
        elif current.kind in (sx.KIND_AND, sx.KIND_OR):
            queue.append(current.left)
            queue.append(current.right)
        elif current.is_fixpoint:
            queue.append(sx.expand_fixpoint(current))

    # Any modal formula of the closure not reached by the traversal above
    # (possible only through unusual sharing) is appended at the end so the
    # Lean is always complete with respect to cl(ψ).
    for item in closure:
        if item.kind == sx.KIND_DIA:
            add(item)

    index = {item: position for position, item in enumerate(items)}
    return Lean(
        formula=formula,
        items=tuple(items),
        index=index,
        propositions=tuple(labels),
        other_label=OTHER_LABEL,
        attributes=tuple(attribute_names),
    )
